#!/usr/bin/env bash
# Bench gate: regenerate the wallclock bench (with span tracing + metrics
# enabled — the harness runs them always-on) and hold it to the committed
# contract.
#
# Usage: scripts/bench_gate.sh [out-dir]     (default: bench-artifacts/)
#
# Hard failures (exit 1, via `check_bench gate`):
#   * any kernel checksum off its pinned value (numerics moved), or
#   * any hot path over its steady-state allocation budget.
# Soft failure (warning only, via `check_bench compare --warn-pct 25`):
#   * pool-schedule time regression beyond 25% against the committed
#     BENCH_wallclock.json — wall-clock is too noisy on shared CI runners
#     to fail on, but the drift is printed and the artifacts are kept.
#
# The multi-node sweep regenerates BENCH_multinode.json and holds it to
# its own contract (`check_bench multinode`): schema, executed-N=1 bit
# equivalence with the single pipeline, monotone node counts, halo-free
# N=1, and a real end-to-end speedup at 64 nodes.
#
# The feature-cache legs hold the cache tier to its contract:
#   * a cached wallclock run (CLOCK, 4096 rows/device) must reproduce all
#     four pinned checksums and allocation budgets bit-for-bit — caching
#     changes cost, never values (`check_bench gate` on the cached run);
#   * the cache sweep regenerates BENCH_cache.json and `check_bench
#     cache` gates it: numerics pinned to the uncached baseline, bus
#     bytes conserved, monotone static hit rates, and a >=50% remote-row
#     cut from a <=10% hot-set cache.
#
# The storage legs hold the out-of-core tier to its contract:
#   * a wallclock run with the tier built at full residency
#     (--storage-rows 999999) must reproduce all four pinned checksums
#     and allocation budgets bit-for-bit — tiering changes cost, never
#     values (`check_bench gate` on the tiered run);
#   * the storage sweep regenerates BENCH_storage.json and `check_bench
#     storage` gates it: numerics pinned to the tier-off baseline,
#     dsm + disk bytes conserved exactly, zero disk traffic at full
#     residency, and the prefetch-overlapped storage time strictly below
#     the blocking sum at <=50% residency.
#
# The serving leg regenerates BENCH_serving.json and `check_bench
# serving` gates it: coalesced micro-batching must answer every request
# bit-identically to sequential serving, at >=2x the sustained QPS with
# equal-or-better exact p99, shed nothing on the main legs, and balance
# its shed books exactly on the overload leg.
#
# Leaves in <out-dir>: baseline.json (committed numbers), current.json
# (this run), wallclock_trace.json (merged host/sim Chrome trace — load
# in chrome://tracing or ui.perfetto.dev), criterion_benches.txt (the
# SIMD-vs-scalar criterion microbenchmarks — informational, never
# gated), multinode.json and multinode_trace.json (executed sweep +
# 4-node cluster trace, one Chrome process per node), serving.json and
# serving_trace.json (serving sweep + traced coalesced replay),
# current_storage.json (wallclock through the full-residency disk tier)
# and storage.json (the residency sweep). CI uploads the directory.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-bench-artifacts}"
mkdir -p "$OUT_DIR"

OFFLINE_FLAGS=()
if ! curl -sfI --max-time 5 https://index.crates.io/config.json >/dev/null 2>&1; then
    echo "bench_gate: registry unreachable, building offline"
    export CARGO_NET_OFFLINE=true
    OFFLINE_FLAGS=(--offline)
fi

cp BENCH_wallclock.json "$OUT_DIR/baseline.json"

echo "bench_gate: wallclock bench (tracing on)"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin wallclock -- \
    --trace "$OUT_DIR/wallclock_trace.json"
cp BENCH_wallclock.json "$OUT_DIR/current.json"

echo "bench_gate: checksum + allocation gate"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    gate "$OUT_DIR/current.json"

echo "bench_gate: time drift vs committed baseline (warn-only)"
# --expect-improvement gather: the feature-cache PR's baseline refresh,
# registered per the procedure in check_bench.rs — the refreshed
# BENCH_wallclock.json landed in the same commit, so this exempts gather
# from the drift thresholds while the cache-era baseline soaks (it warns,
# never fails, if gather is not faster). Drop the flag once the
# post-cache baseline has a few quiet CI runs behind it.
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    compare "$OUT_DIR/baseline.json" "$OUT_DIR/current.json" --warn-pct 25 \
    --expect-improvement gather

echo "bench_gate: cached wallclock leg (checksums must not move)"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin wallclock -- \
    --cache-rows 4096 --cache-mode clock
cp BENCH_wallclock.json "$OUT_DIR/current_cached.json"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    gate "$OUT_DIR/current_cached.json"

echo "bench_gate: feature-cache sweep"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin cache_sweep
cp BENCH_cache.json "$OUT_DIR/cache.json"

echo "bench_gate: feature-cache sweep gate"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    cache "$OUT_DIR/cache.json"

echo "bench_gate: storage-tier wallclock leg (checksums must not move)"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin wallclock -- \
    --storage-rows 999999
cp BENCH_wallclock.json "$OUT_DIR/current_storage.json"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    gate "$OUT_DIR/current_storage.json"

echo "bench_gate: storage sweep"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin storage_sweep
cp BENCH_storage.json "$OUT_DIR/storage.json"

echo "bench_gate: storage sweep gate"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    storage "$OUT_DIR/storage.json"

# Criterion microbenchmarks for the kernels the wallclock stages are
# built from: dispatched vs forced-scalar vs naive-reference matmul, and
# the gather row-copy / checksum loops. The criterion shim prints
# "bench <label>: best N ns" lines to stdout; keep them as an artifact
# so SIMD speedups are inspectable per-kernel, not just per-stage.
echo "bench_gate: criterion kernel microbenchmarks (matmul, gather_copy)"
cargo bench -q "${OFFLINE_FLAGS[@]}" -p wg-bench --bench matmul --bench gather_copy \
    | tee "$OUT_DIR/criterion_benches.txt"

echo "bench_gate: serving sweep (coalesced trace on)"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin serving_sweep -- \
    --trace "$OUT_DIR/serving_trace.json"
cp BENCH_serving.json "$OUT_DIR/serving.json"

echo "bench_gate: serving sweep gate"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    serving "$OUT_DIR/serving.json"

echo "bench_gate: executed multi-node sweep (4-node trace on)"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin multinode_sweep -- \
    --trace "$OUT_DIR/multinode_trace.json"
cp BENCH_multinode.json "$OUT_DIR/multinode.json"

echo "bench_gate: multi-node sweep gate"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    multinode "$OUT_DIR/multinode.json"

# The benches rewrote BENCH_wallclock.json / BENCH_multinode.json /
# BENCH_cache.json / BENCH_storage.json / BENCH_serving.json in place;
# restore the committed copies so the gate leaves the tree clean (this
# run's copies live in $OUT_DIR).
git checkout -- BENCH_wallclock.json BENCH_multinode.json BENCH_cache.json \
    BENCH_storage.json BENCH_serving.json 2>/dev/null || true

echo "bench_gate: OK (artifacts in $OUT_DIR/)"
