#!/usr/bin/env bash
# Tier-1 verification: build, test, format and lint the whole workspace.
#
# Usage: scripts/tier1.sh
#
# When the crates.io registry is unreachable (air-gapped CI, laptops on
# planes), cargo is forced offline — all dependencies resolve to the
# path-based shims under shims/, so offline builds are fully supported.

set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE_FLAGS=()
if ! curl -sfI --max-time 5 https://index.crates.io/config.json >/dev/null 2>&1; then
    echo "tier1: registry unreachable, building offline"
    export CARGO_NET_OFFLINE=true
    OFFLINE_FLAGS=(--offline)
fi

echo "tier1: cargo build --release"
cargo build --release "${OFFLINE_FLAGS[@]}"

# The suite runs twice: once on the work-stealing pool at its natural
# width and once pinned to one worker (WG_THREADS=1). The rayon shim
# guarantees bit-identical numerics at any thread count, so both passes
# must agree with the same expectations.
echo "tier1: cargo test -q"
cargo test -q "${OFFLINE_FLAGS[@]}"

echo "tier1: WG_THREADS=1 cargo test -q"
WG_THREADS=1 cargo test -q "${OFFLINE_FLAGS[@]}"

echo "tier1: cargo fmt --check"
cargo fmt --check

echo "tier1: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace "${OFFLINE_FLAGS[@]}" -- -D warnings

# The wallclock harness is a correctness gate as much as a benchmark: every
# kernel's FNV-1a checksum must stay pinned to the committed value (the
# numerics may never move), and every hot path must stay within its
# steady-state allocation budget (the workspace/scratch-arena contract —
# the harness itself asserts the same budgets under its counting
# allocator).
echo "tier1: wallclock bench (checksum + allocation gate)"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin wallclock

declare -A EXPECTED=(
    [sample]=f0d397b0ce92dc84
    [gather]=2b272988158bae37
    [spmm]=9ca0fe519fc2bdf1
    [epoch]=08f1c9d74e8dc560
)
declare -A ALLOC_BUDGET=(
    [sample]=0
    [gather]=1
    [spmm]=0
    [epoch]=16
)
for name in "${!EXPECTED[@]}"; do
    got=$(grep -o "\"name\": \"$name\"[^}]*" BENCH_wallclock.json \
        | grep -o '"checksum": "[0-9a-f]*"' | grep -o '[0-9a-f]\{16\}')
    if [ "$got" != "${EXPECTED[$name]}" ]; then
        echo "tier1: FAIL — $name checksum $got != ${EXPECTED[$name]}"
        exit 1
    fi
    allocs=$(grep -o "\"name\": \"$name\"[^}]*" BENCH_wallclock.json \
        | grep -o '"allocs_per_batch": [0-9]*' | grep -o '[0-9]*$')
    if [ "$allocs" -gt "${ALLOC_BUDGET[$name]}" ]; then
        echo "tier1: FAIL — $name allocs_per_batch = $allocs (budget ${ALLOC_BUDGET[$name]})"
        exit 1
    fi
done
echo "tier1: wallclock checksums pinned, alloc budgets held"

echo "tier1: OK"
