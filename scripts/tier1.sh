#!/usr/bin/env bash
# Tier-1 verification: build, test, format and lint the whole workspace.
#
# Usage: scripts/tier1.sh
#
# When the crates.io registry is unreachable (air-gapped CI, laptops on
# planes), cargo is forced offline — all dependencies resolve to the
# path-based shims under shims/, so offline builds are fully supported.
#
# With CI=1 (set by .github/workflows/ci.yml), the wall-clock *timing*
# comparison against the committed baseline is skipped — shared runners
# are too noisy for time assertions — while the bit-exactness checksums
# and allocation budgets (machine-independent) are still enforced.
#
# Baseline refresh (after a commit that legitimately step-changes a bench
# time, e.g. a SIMD or cache-blocking optimization):
#   1. on the reference machine run
#        cargo run --release -p wg-bench --bin wallclock
#      (the harness asserts bit-identical checksums and the allocation
#      budgets itself; checksums must NOT move for a perf-only change);
#   2. `check_bench gate BENCH_wallclock.json` must pass — if a commit
#      intentionally moved numerics, update the pinned checksums in
#      crates/bench/src/bin/check_bench.rs in the same commit;
#   3. commit the regenerated BENCH_wallclock.json with the code change.
#   Until the refreshed baseline lands, `check_bench compare` accepts
#   `--expect-improvement <bench>` to exempt the intentionally-faster
#   bench from the drift thresholds (it warns if the bench did NOT
#   improve instead).

set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE_FLAGS=()
if ! curl -sfI --max-time 5 https://index.crates.io/config.json >/dev/null 2>&1; then
    echo "tier1: registry unreachable, building offline"
    export CARGO_NET_OFFLINE=true
    OFFLINE_FLAGS=(--offline)
fi

echo "tier1: cargo build --release"
cargo build --release "${OFFLINE_FLAGS[@]}"

# The suite runs twice: once on the work-stealing pool at its natural
# width and once pinned to one worker (WG_THREADS=1). The rayon shim
# guarantees bit-identical numerics at any thread count, so both passes
# must agree with the same expectations.
echo "tier1: cargo test -q"
cargo test -q "${OFFLINE_FLAGS[@]}"

echo "tier1: WG_THREADS=1 cargo test -q"
WG_THREADS=1 cargo test -q "${OFFLINE_FLAGS[@]}"

echo "tier1: cargo fmt --check"
cargo fmt --check

echo "tier1: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace "${OFFLINE_FLAGS[@]}" -- -D warnings

# The wallclock harness is a correctness gate as much as a benchmark:
# every kernel's FNV-1a checksum must stay pinned to the committed value
# (the numerics may never move), and every hot path must stay within its
# steady-state allocation budget (the workspace/scratch-arena contract —
# the harness itself asserts the same budgets under its counting
# allocator, with span tracing and metrics enabled throughout). The pins
# and budgets live in one place: crates/bench/src/bin/check_bench.rs.
echo "tier1: wallclock bench (checksum + allocation gate)"
cp BENCH_wallclock.json "${TMPDIR:-/tmp}/tier1_bench_baseline.json"
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin wallclock
cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
    gate BENCH_wallclock.json
echo "tier1: wallclock checksums pinned, alloc budgets held"

if [ "${CI:-0}" = "1" ]; then
    echo "tier1: CI=1 — skipping wall-clock timing comparison (noisy runners)"
else
    echo "tier1: wall-clock drift vs committed baseline (warn-only)"
    cargo run -q --release "${OFFLINE_FLAGS[@]}" -p wg-bench --bin check_bench -- \
        compare "${TMPDIR:-/tmp}/tier1_bench_baseline.json" BENCH_wallclock.json \
        --warn-pct 25
fi

echo "tier1: OK"
