#!/usr/bin/env bash
# Tier-1 verification: build, test, format and lint the whole workspace.
#
# Usage: scripts/tier1.sh
#
# When the crates.io registry is unreachable (air-gapped CI, laptops on
# planes), cargo is forced offline — all dependencies resolve to the
# path-based shims under shims/, so offline builds are fully supported.

set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE_FLAGS=()
if ! curl -sfI --max-time 5 https://index.crates.io/config.json >/dev/null 2>&1; then
    echo "tier1: registry unreachable, building offline"
    export CARGO_NET_OFFLINE=true
    OFFLINE_FLAGS=(--offline)
fi

echo "tier1: cargo build --release"
cargo build --release "${OFFLINE_FLAGS[@]}"

echo "tier1: cargo test -q"
cargo test -q "${OFFLINE_FLAGS[@]}"

echo "tier1: cargo fmt --check"
cargo fmt --check

echo "tier1: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace "${OFFLINE_FLAGS[@]}" -- -D warnings

echo "tier1: OK"
