#!/usr/bin/env bash
# Tier-1 verification: build, test, format and lint the whole workspace.
#
# Usage: scripts/tier1.sh
#
# When the crates.io registry is unreachable (air-gapped CI, laptops on
# planes), cargo is forced offline — all dependencies resolve to the
# path-based shims under shims/, so offline builds are fully supported.

set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE_FLAGS=()
if ! curl -sfI --max-time 5 https://index.crates.io/config.json >/dev/null 2>&1; then
    echo "tier1: registry unreachable, building offline"
    export CARGO_NET_OFFLINE=true
    OFFLINE_FLAGS=(--offline)
fi

echo "tier1: cargo build --release"
cargo build --release "${OFFLINE_FLAGS[@]}"

# The suite runs twice: once on the work-stealing pool at its natural
# width and once pinned to one worker (WG_THREADS=1). The rayon shim
# guarantees bit-identical numerics at any thread count, so both passes
# must agree with the same expectations.
echo "tier1: cargo test -q"
cargo test -q "${OFFLINE_FLAGS[@]}"

echo "tier1: WG_THREADS=1 cargo test -q"
WG_THREADS=1 cargo test -q "${OFFLINE_FLAGS[@]}"

echo "tier1: cargo fmt --check"
cargo fmt --check

echo "tier1: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace "${OFFLINE_FLAGS[@]}" -- -D warnings

echo "tier1: OK"
