//! Offline shim for the parts of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] with the non-poisoning `lock()` / `read()` /
//! `write()` API, backed by the std primitives (a poisoned std lock —
//! which only happens if a holder panicked — propagates the panic).

use std::sync::{self, MutexGuard as StdMutexGuard};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
