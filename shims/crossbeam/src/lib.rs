//! Offline shim for the parts of `crossbeam` this workspace uses:
//! bounded MPMC-ish channels (backed by `std::sync::mpsc::sync_channel`,
//! which covers the workspace's single-consumer usage) and scoped thread
//! spawning (backed by `std::thread::scope`, with crossbeam's
//! closure-takes-the-scope signature).

pub mod channel {
    //! `crossbeam::channel` stand-in.

    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    #[derive(Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side hung up.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned when the sending side hung up.
    pub type RecvError = mpsc::RecvError;

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }
    }
}

/// A handle to a scoped thread (crossbeam's `ScopedJoinHandle`).
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// The scope passed to [`scope`]'s closure and to spawned threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. Crossbeam hands the closure a
    /// scope reference (for nested spawns); we reconstruct one from the
    /// underlying std scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope that joins all spawned threads before returning
/// (crossbeam's `scope`). The `Result` mirrors crossbeam's signature; the
/// std backend propagates child panics by panicking, so this never
/// actually returns `Err`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_deliver_in_order() {
        let (tx, rx) = channel::bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scoped_threads_exchange_over_channels() {
        let n = 4usize;
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..n {
            let (tx, rx) = channel::bounded::<usize>(1);
            txs.push(tx);
            rxs.push(rx);
        }
        let mut results = vec![0usize; n];
        scope(|s| {
            let mut joins = Vec::new();
            for (rank, rx) in rxs.into_iter().enumerate() {
                let txs = txs.clone();
                joins.push(s.spawn(move |_| {
                    txs[(rank + 1) % txs.len()].send(rank).unwrap();
                    rx.recv().unwrap()
                }));
            }
            for (rank, j) in joins.into_iter().enumerate() {
                results[rank] = j.join().unwrap();
            }
        })
        .unwrap();
        // Each rank received its left neighbor's rank.
        for (rank, &got) in results.iter().enumerate() {
            assert_eq!(got, (rank + n - 1) % n);
        }
    }
}
