//! Offline shim for the parts of `crossbeam` this workspace uses:
//! bounded MPMC-ish channels (backed by `std::sync::mpsc::sync_channel`,
//! which covers the workspace's single-consumer usage), scoped thread
//! spawning (backed by `std::thread::scope`, with crossbeam's
//! closure-takes-the-scope signature), and the `deque` work-stealing
//! primitives (`Injector`/`Worker`/`Stealer`) that back the rayon shim's
//! thread pool.

pub mod deque {
    //! `crossbeam::deque` stand-in: a global FIFO [`Injector`] plus
    //! per-worker deques ([`Worker`]) with FIFO thieves ([`Stealer`]).
    //!
    //! The owner pushes and pops at the back (LIFO, so it keeps working on
    //! the most recently split — cache-hot — half of a divide-and-conquer
    //! tree) while thieves steal from the front (FIFO, so they take the
    //! oldest, i.e. largest, pending subtree). Backed by `Mutex<VecDeque>`
    //! rather than the lock-free Chase–Lev deque: the rayon shim only
    //! schedules coarse chunk tasks, so lock hold times are tens of
    //! nanoseconds and correctness is trivially auditable.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, MutexGuard};

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        // A panicking task poisons nothing we care about: the queue only
        // holds plain task handles, so keep going.
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Result of a steal attempt (API-compatible subset of crossbeam's).
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and may be retried (never produced by
        /// this mutex-backed shim, but kept so caller loops match the real
        /// crate).
        Retry,
    }

    impl<T> Steal<T> {
        /// `Some` on success.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// The owning side of a worker deque.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push a task (owner side).
        pub fn push(&self, task: T) {
            lock(&self.q).push_back(task);
        }

        /// Pop the most recently pushed task (owner side, LIFO).
        pub fn pop(&self) -> Option<T> {
            lock(&self.q).pop_back()
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.q).is_empty()
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// The stealing side of a worker deque.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { q: self.q.clone() }
        }
    }

    impl<T> Stealer<T> {
        /// Steal the oldest task (FIFO side).
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.q).pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.q).is_empty()
        }
    }

    /// A global FIFO injection queue shared by all workers.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task from any thread.
        pub fn push(&self, task: T) {
            lock(&self.q).push_back(task);
        }

        /// Steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.q).pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.q).is_empty()
        }
    }
}

pub mod channel {
    //! `crossbeam::channel` stand-in.

    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    #[derive(Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side hung up.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned when the sending side hung up.
    pub type RecvError = mpsc::RecvError;

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }
    }
}

/// A handle to a scoped thread (crossbeam's `ScopedJoinHandle`).
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// The scope passed to [`scope`]'s closure and to spawned threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. Crossbeam hands the closure a
    /// scope reference (for nested spawns); we reconstruct one from the
    /// underlying std scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope that joins all spawned threads before returning
/// (crossbeam's `scope`). The `Result` mirrors crossbeam's signature; the
/// std backend propagates child panics by panicking, so this never
/// actually returns `Err`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_deliver_in_order() {
        let (tx, rx) = channel::bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deque_owner_is_lifo_thieves_are_fifo() {
        let w = deque::Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Thief takes the oldest…
        assert!(matches!(s.steal(), deque::Steal::Success(1)));
        // …owner takes the newest.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(matches!(s.steal(), deque::Steal::Empty));
    }

    #[test]
    fn injector_is_concurrent_fifo() {
        let inj = std::sync::Arc::new(deque::Injector::new());
        for i in 0..100 {
            inj.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = inj.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let deque::Steal::Success(v) = inj.steal() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_threads_exchange_over_channels() {
        let n = 4usize;
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..n {
            let (tx, rx) = channel::bounded::<usize>(1);
            txs.push(tx);
            rxs.push(rx);
        }
        let mut results = vec![0usize; n];
        scope(|s| {
            let mut joins = Vec::new();
            for (rank, rx) in rxs.into_iter().enumerate() {
                let txs = txs.clone();
                joins.push(s.spawn(move |_| {
                    txs[(rank + 1) % txs.len()].send(rank).unwrap();
                    rx.recv().unwrap()
                }));
            }
            for (rank, j) in joins.into_iter().enumerate() {
                results[rank] = j.join().unwrap();
            }
        })
        .unwrap();
        // Each rank received its left neighbor's rank.
        for (rank, &got) in results.iter().enumerate() {
            assert_eq!(got, (rank + n - 1) % n);
        }
    }
}
