//! The work-stealing thread pool behind the shim's parallel adapters.
//!
//! Architecture (a deliberately small cousin of rayon-core):
//!
//! - N worker threads (`WG_THREADS` > `RAYON_NUM_THREADS` >
//!   `available_parallelism()`), each owning a LIFO deque
//!   ([`crossbeam::deque::Worker`]) plus one global FIFO queue for jobs
//!   arriving from non-pool threads. The global queue is a mutex-guarded
//!   `VecDeque` rather than a segmented injector: root injections are rare
//!   (one per parallel op entered off-pool), and a `VecDeque` retains its
//!   capacity, so steady-state injection performs no heap allocation —
//!   which the wallclock harness's allocation gate relies on.
//! - [`join`] is the only fork primitive: it pushes the right half onto the
//!   caller's deque (stealable from the FIFO end by idle workers), runs the
//!   left half inline, then pops the right half back — or, if it was
//!   stolen, helps execute other tasks until the thief finishes
//!   ("steal until done"). All higher-level parallelism (the iterator
//!   adapters, [`scope`]) reduces to trees of `join` calls.
//! - A thread outside the pool that starts a parallel op injects one root
//!   job and blocks on a condvar latch; the whole op then runs on workers.
//!
//! Determinism: the pool decides only *where* closures run, never *what*
//! they compute or in which order results are combined — the iterator layer
//! splits purely by input length. `join(a, b)` always returns `(a(), b())`
//! exactly as the sequential semantics dictate, so any algorithm built on
//! it is bit-identical at every thread count, including 1.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crossbeam::deque::{Steal, Stealer, Worker};

/// Environment variable naming the thread count (checked first).
pub const THREADS_ENV: &str = "WG_THREADS";
/// Rayon's own thread-count variable (checked second, for drop-in parity).
pub const RAYON_THREADS_ENV: &str = "RAYON_NUM_THREADS";

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job living on some stack frame (or heap box)
/// that is guaranteed by its owner to outlive execution.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the referent is kept
// alive by the thread that created it (it blocks until the job's latch is
// set, or until the owning scope completes).
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn execute(self) {
        (self.execute)(self.data)
    }
}

/// Something a job can signal completion through.
trait Latch {
    fn set(&self);
}

/// Completion flag polled by a worker that waits by stealing.
struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// Completion flag a non-pool thread blocks on.
struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.cv.wait(done).unwrap();
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        *self.done.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// A `FnOnce` job embedded in its creator's stack frame, with a slot for
/// the (possibly panicked) result.
struct StackJob<F, R, L> {
    f: Cell<Option<F>>,
    result: Cell<Option<std::thread::Result<R>>>,
    latch: L,
}

// SAFETY: the thief only touches `f`/`result` through `execute_erased`,
// exactly once, strictly before the latch is set; the owner only touches
// them after observing the latch (Acquire). The Cells are never accessed
// concurrently.
unsafe impl<F: Send, R: Send, L: Sync> Sync for StackJob<F, R, L> {}

impl<F, R, L> StackJob<F, R, L>
where
    F: FnOnce() -> R + Send,
    R: Send,
    L: Latch + Sync,
{
    fn new(f: F, latch: L) -> Self {
        StackJob {
            f: Cell::new(Some(f)),
            result: Cell::new(None),
            latch,
        }
    }

    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = this.f.take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        this.result.set(Some(result));
        this.latch.set();
    }

    /// Retrieve the result after the latch fired (or after inline
    /// execution).
    unsafe fn take_result(&self) -> std::thread::Result<R> {
        self.result
            .take()
            .expect("job result taken before execution")
    }
}

/// A heap-allocated fire-and-forget job (used by [`Scope::spawn`]).
struct HeapJob {
    body: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef {
            data: Box::into_raw(self) as *const (),
            execute: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = Box::from_raw(ptr as *mut Self);
        (this.body)();
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Sleep {
    /// Bumped on every job push so sleepers re-scan; guarded by `gate`.
    epoch: Mutex<u64>,
    cv: Condvar,
    /// Number of workers inside the sleep protocol. Pushers skip the
    /// mutex+notify entirely while this is zero (the common case).
    sleepers: AtomicUsize,
}

/// Global FIFO for jobs injected from outside the pool. A `VecDeque` under
/// a mutex keeps its allocation across pushes (unlike a segmented
/// lock-free injector, which allocates blocks as entries flow through);
/// the atomic length lets idle workers skip the lock when it is empty.
struct GlobalQueue {
    len: AtomicUsize,
    jobs: Mutex<VecDeque<JobRef>>,
}

impl GlobalQueue {
    fn push(&self, job: JobRef) {
        let mut jobs = self.jobs.lock().unwrap();
        jobs.push_back(job);
        self.len.store(jobs.len(), Ordering::Release);
    }

    fn pop(&self) -> Option<JobRef> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut jobs = self.jobs.lock().unwrap();
        let job = jobs.pop_front();
        self.len.store(jobs.len(), Ordering::Release);
        job
    }
}

struct Registry {
    injector: GlobalQueue,
    stealers: Vec<Stealer<JobRef>>,
    n_threads: usize,
    sleep: Sleep,
}

struct WorkerLocal {
    index: usize,
    queue: Worker<JobRef>,
}

thread_local! {
    static WORKER: Cell<Option<&'static WorkerLocal>> = const { Cell::new(None) };
    static SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

fn current_worker() -> Option<&'static WorkerLocal> {
    WORKER.with(Cell::get)
}

static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();

fn env_threads() -> Option<usize> {
    for var in [THREADS_ENV, RAYON_THREADS_ENV] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                return Some(n.clamp(1, 512));
            }
        }
    }
    None
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn build_registry(n_threads: usize) -> &'static Registry {
    let workers: Vec<Worker<JobRef>> = (0..n_threads).map(|_| Worker::new_lifo()).collect();
    let stealers = workers.iter().map(Worker::stealer).collect();
    let reg: &'static Registry = Box::leak(Box::new(Registry {
        injector: GlobalQueue {
            len: AtomicUsize::new(0),
            jobs: Mutex::new(VecDeque::new()),
        },
        stealers,
        n_threads,
        sleep: Sleep {
            epoch: Mutex::new(0),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        },
    }));
    for (index, queue) in workers.into_iter().enumerate() {
        std::thread::Builder::new()
            .name(format!("wg-rayon-{index}"))
            .spawn(move || worker_main(reg, index, queue))
            .expect("failed to spawn pool worker");
    }
    reg
}

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| build_registry(env_threads().unwrap_or_else(default_threads)))
}

/// Initialize the global pool with `requested` threads **unless** the
/// `WG_THREADS` / `RAYON_NUM_THREADS` environment variables override it or
/// the pool already started (first initialization wins, like rayon's
/// `build_global`). Returns the actual thread count. Tests use this to get
/// a truly parallel pool on small CI machines while still honoring an
/// explicit `WG_THREADS=1` sequential run.
pub fn init_threads(requested: usize) -> usize {
    REGISTRY
        .get_or_init(|| build_registry(env_threads().unwrap_or(requested.clamp(1, 512))))
        .n_threads
}

/// Number of threads the global pool runs (1 means fully sequential).
pub fn current_num_threads() -> usize {
    registry().n_threads
}

/// Run `f` with all parallel adapters forced inline on this thread.
///
/// The split/merge tree is *unchanged* — only the execution site differs —
/// so this is the reference single-threaded schedule the determinism tests
/// and the wall-clock harness compare the pool against.
pub fn run_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SEQUENTIAL.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SEQUENTIAL.with(|c| c.replace(true)));
    f()
}

/// True while inside [`run_sequential`].
pub fn is_sequential() -> bool {
    SEQUENTIAL.with(Cell::get)
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

fn find_work(reg: &Registry, local: Option<&WorkerLocal>) -> Option<JobRef> {
    if let Some(local) = local {
        if let Some(job) = local.queue.pop() {
            return Some(job);
        }
    }
    if let Some(job) = reg.injector.pop() {
        return Some(job);
    }
    let n = reg.stealers.len();
    let start = local.map_or(0, |l| l.index + 1);
    for i in 0..n {
        let idx = (start + i) % n;
        if local.is_some_and(|l| l.index == idx) {
            continue;
        }
        if let Steal::Success(job) = reg.stealers[idx].steal() {
            return Some(job);
        }
    }
    None
}

/// Wake sleeping workers after pushing work. Cheap no-op while nobody
/// sleeps.
fn notify_work(reg: &Registry) {
    if reg.sleep.sleepers.load(Ordering::SeqCst) > 0 {
        let mut epoch = reg.sleep.epoch.lock().unwrap();
        *epoch += 1;
        reg.sleep.cv.notify_all();
    }
}

fn worker_main(reg: &'static Registry, index: usize, queue: Worker<JobRef>) {
    let local: &'static WorkerLocal = Box::leak(Box::new(WorkerLocal { index, queue }));
    WORKER.with(|w| w.set(Some(local)));
    loop {
        if let Some(job) = find_work(reg, Some(local)) {
            unsafe { job.execute() };
            continue;
        }
        // Sleep protocol: announce, re-scan (so a push racing with the
        // announcement is never lost), then wait for the epoch to move.
        reg.sleep.sleepers.fetch_add(1, Ordering::SeqCst);
        let epoch0 = *reg.sleep.epoch.lock().unwrap();
        if let Some(job) = find_work(reg, Some(local)) {
            reg.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
            unsafe { job.execute() };
            continue;
        }
        let mut epoch = reg.sleep.epoch.lock().unwrap();
        while *epoch == epoch0 {
            epoch = reg.sleep.cv.wait(epoch).unwrap();
        }
        drop(epoch);
        reg.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Run `a` and `b`, potentially in parallel, returning `(a(), b())`.
///
/// Semantically identical to sequential execution (including panic
/// propagation: `a`'s panic wins if both panic), which is what makes every
/// adapter built on it schedule-independent.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let reg = registry();
    if reg.n_threads <= 1 || is_sequential() {
        return (a(), b());
    }
    if current_worker().is_some() {
        join_worker(reg, a, b)
    } else {
        // Migrate the whole join into the pool; this thread blocks.
        run_in_pool(reg, move || join_worker(reg, a, b))
    }
}

/// Inject `f` as a root job and block until a worker has run it.
fn run_in_pool<R: Send>(reg: &Registry, f: impl FnOnce() -> R + Send) -> R {
    let job = StackJob::new(f, LockLatch::new());
    // SAFETY: we block on the latch below, so `job` outlives execution.
    let job_ref = unsafe { job.as_job_ref() };
    reg.injector.push(job_ref);
    notify_work(reg);
    // Also wake even if the sleeper count is racing from zero: a worker
    // that is mid-scan will find the injector entry on its re-check.
    job.latch.wait();
    match unsafe { job.take_result() } {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

fn join_worker<A, B, RA, RB>(reg: &Registry, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let local = current_worker().expect("join_worker off the pool");
    let job_b = StackJob::new(b, SpinLatch::new());
    // SAFETY: this frame does not return until `job_b` has executed (inline
    // or on a thief) — see the completion handling below.
    let ref_b = unsafe { job_b.as_job_ref() };
    local.queue.push(ref_b);
    notify_work(reg);

    let result_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Reclaim b: by LIFO discipline the top of our deque is `ref_b` unless
    // a thief took it from the FIFO end (possibly leaving an *older* job of
    // ours on top — executing that here is ordinary work-stealing).
    match local.queue.pop() {
        Some(job) if std::ptr::eq(job.data, ref_b.data) => unsafe { job.execute() },
        Some(job) => {
            unsafe { job.execute() };
            steal_until(reg, local, &job_b.latch);
        }
        None => steal_until(reg, local, &job_b.latch),
    }

    let result_b = unsafe { job_b.take_result() };
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) => panic::resume_unwind(p),
        (_, Err(p)) => panic::resume_unwind(p),
    }
}

/// Help execute other tasks until `latch` fires.
fn steal_until(reg: &Registry, local: &WorkerLocal, latch: &SpinLatch) {
    let mut idle_spins = 0u32;
    while !latch.probe() {
        if let Some(job) = find_work(reg, Some(local)) {
            unsafe { job.execute() };
            idle_spins = 0;
        } else if idle_spins < 64 {
            idle_spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// A scope in which tasks spawned via [`Scope::spawn`] may borrow from the
/// enclosing stack frame; [`scope`] does not return until all of them have
/// completed.
pub struct Scope<'scope> {
    pending: AtomicUsize,
    gate: Mutex<()>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` into the pool. The closure receives the scope again so
    /// it can spawn recursively.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let reg = registry();
        if reg.n_threads <= 1 || is_sequential() {
            // Immediate inline execution is a legal schedule.
            self.run_spawned(body);
            return;
        }
        let scope_ptr = SendConst(self as *const Scope<'scope>);
        let erased: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: `scope()` blocks until `pending` drains, so the
            // referent outlives this job.
            let scope = unsafe { &*scope_ptr.get() };
            scope.run_spawned(body);
        });
        // SAFETY: lifetime erasure to 'static is sound for the same reason:
        // the job cannot outlive `scope()`'s completion wait.
        let erased: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(erased) };
        let job = Box::new(HeapJob { body: erased });
        if let Some(local) = current_worker() {
            local.queue.push(job.into_job_ref());
        } else {
            reg.injector.push(job.into_job_ref());
        }
        notify_work(reg);
    }

    fn run_spawned<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(self))) {
            let mut slot = self.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _gate = self.gate.lock().unwrap();
            self.cv.notify_all();
        }
    }

    fn wait_all(&self, reg: &Registry) {
        if let Some(local) = current_worker() {
            let mut idle_spins = 0u32;
            while self.pending.load(Ordering::SeqCst) > 0 {
                if let Some(job) = find_work(reg, Some(local)) {
                    unsafe { job.execute() };
                    idle_spins = 0;
                } else if idle_spins < 64 {
                    idle_spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        } else {
            let mut gate = self.gate.lock().unwrap();
            while self.pending.load(Ordering::SeqCst) > 0 {
                gate = self.cv.wait(gate).unwrap();
            }
        }
    }
}

struct SendConst<T>(*const T);
// SAFETY: only used to smuggle a `&Scope` (which is Sync) into a job.
unsafe impl<T> Send for SendConst<T> {}

impl<T> SendConst<T> {
    // Method (not field) access, so closures capture the Send wrapper
    // rather than the bare pointer under 2021 disjoint-capture rules.
    fn get(&self) -> *const T {
        self.0
    }
}

/// Create a [`Scope`], run `f` in it, and wait for every spawned task.
/// Panics from the body or any task are propagated (body's first).
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let reg = registry();
    let s = Scope {
        pending: AtomicUsize::new(0),
        gate: Mutex::new(()),
        cv: Condvar::new(),
        panic: Mutex::new(None),
        _marker: std::marker::PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    s.wait_all(reg);
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = s.panic.lock().unwrap().take() {
                panic::resume_unwind(payload);
            }
            r
        }
    }
}
