//! Offline shim for the parts of `rayon` this workspace uses.
//!
//! The "parallel" adapters (`par_iter`, `par_chunks`, `into_par_iter`, …)
//! return the corresponding **sequential** std iterators, so every
//! combinator chain (`map`, `zip`, `enumerate`, `for_each`, `collect`,
//! `sum`) compiles and runs unchanged — on one thread. The workspace's
//! "kernels" are rayon loops whose *simulated* duration comes from cost
//! models, so sequential execution changes wall-clock speed only, never
//! results or simulated time.

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.

    /// `into_par_iter()` for owned collections and ranges — sequential.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The (sequential) iterator standing in for a parallel one.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Adapters rayon's `IndexedParallelIterator` has but std's
    /// `Iterator` lacks — here as a blanket extension so chains like
    /// `into_par_iter().chunks(n)` compile against the sequential
    /// stand-ins.
    pub trait IndexedParallelIterator: Iterator + Sized {
        /// Rayon's cheaper per-item `flat_map`; sequentially they are
        /// the same thing.
        fn flat_map_iter<U, F>(self, map_op: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(map_op)
        }

        /// Yield the items in `Vec` chunks of (at most) `chunk_size`.
        fn chunks(self, chunk_size: usize) -> Chunks<Self> {
            assert!(chunk_size > 0, "chunk_size must be positive");
            Chunks {
                inner: self,
                chunk_size,
            }
        }
    }

    impl<I: Iterator + Sized> IndexedParallelIterator for I {}

    /// Iterator returned by [`IndexedParallelIterator::chunks`].
    pub struct Chunks<I: Iterator> {
        inner: I,
        chunk_size: usize,
    }

    impl<I: Iterator> Iterator for Chunks<I> {
        type Item = Vec<I::Item>;

        fn next(&mut self) -> Option<Vec<I::Item>> {
            let chunk: Vec<I::Item> = self.inner.by_ref().take(self.chunk_size).collect();
            if chunk.is_empty() {
                None
            } else {
                Some(chunk)
            }
        }
    }

    /// `par_iter()` / `par_chunks()` on shared slices — sequential.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` on mutable slices — sequential.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sums: Vec<u32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7]);
        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4, 5]);
        w.par_chunks_mut(3)
            .zip([10u32, 20].iter())
            .for_each(|(c, &b)| c[0] += b);
        assert_eq!(w[0], 12);
        assert_eq!(w[3], 25);
        let total: u32 = (0u32..5).into_par_iter().map(|x| x * x).sum();
        assert_eq!(total, 30);
    }
}
