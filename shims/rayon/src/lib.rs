//! Offline shim for the parts of `rayon` this workspace uses — backed by a
//! **real work-stealing thread pool**, not sequential stand-ins.
//!
//! - [`pool`]: N worker threads (default `available_parallelism()`,
//!   overridable via `WG_THREADS` / `RAYON_NUM_THREADS`; first
//!   initialization wins, like rayon's `build_global`), a global injector
//!   plus per-worker LIFO deques from the `crossbeam` shim, and the
//!   [`join`]/[`scope`] fork primitives every adapter reduces to.
//! - [`iter`]: indexed parallel iterators (`par_iter`, `par_iter_mut`,
//!   `par_chunks`, `par_chunks_mut`, `into_par_iter` on ranges) with `map`,
//!   `zip`, `enumerate`, `chunks`, `flat_map_iter`, `with_min_len` and the
//!   `for_each` / `collect` / `sum` / `max` consumers.
//!
//! **Determinism guarantee:** results are bit-identical at every thread
//! count. Work splits into a binary tree whose shape depends only on input
//! length, `collect` is order-preserving, and reductions merge leaf results
//! pairwise in index order — scheduling decides *where* a leaf runs, never
//! *what* is computed or how results combine. [`run_sequential`] executes
//! the same tree inline on the calling thread, which is how the wall-clock
//! harness measures 1-thread baselines inside a multi-threaded process.

pub mod iter;
pub mod pool;

pub use pool::{
    current_num_threads, init_threads, is_sequential, join, run_sequential, scope, Scope,
    RAYON_THREADS_ENV, THREADS_ENV,
};

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.

    /// In rayon, indexed iterators are a sub-trait; here every iterator is
    /// indexed, so the name is an alias.
    pub use crate::iter::ParallelIterator as IndexedParallelIterator;
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sums: Vec<u32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7]);
        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4, 5]);
        let bumps = [10u32, 20];
        w.par_chunks_mut(3)
            .zip(bumps.par_iter())
            .for_each(|(c, &b)| c[0] += b);
        assert_eq!(w[0], 12);
        assert_eq!(w[3], 25);
        let total: u32 = (0u32..5).into_par_iter().map(|x| x * x).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn collect_preserves_order_at_scale() {
        // Large enough to split into many leaves.
        let n = 100_000usize;
        let v: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3).collect();
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn enumerate_indices_are_global() {
        let data = vec![7u64; 10_000];
        let idx: Vec<usize> = data.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(idx, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_mut_writes_land_in_place() {
        let mut data = vec![0u32; 1000];
        data.par_chunks_mut(7)
            .enumerate()
            .for_each(|(c, chunk)| chunk.iter_mut().for_each(|v| *v = c as u32));
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i / 7);
        }
    }

    #[test]
    fn float_sum_is_identical_sequential_and_parallel() {
        crate::init_threads(4);
        let data: Vec<f32> = (0..50_000).map(|i| (i as f32).sin()).collect();
        let par: f32 = data.par_iter().map(|&x| x * 1.000_1).sum();
        let seq: f32 = crate::run_sequential(|| data.par_iter().map(|&x| x * 1.000_1).sum());
        assert_eq!(
            par.to_bits(),
            seq.to_bits(),
            "float reduction depends on schedule"
        );
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let out: Vec<usize> = (0usize..1000)
            .into_par_iter()
            .flat_map_iter(|i| vec![i; i % 3])
            .collect();
        let expect: Vec<usize> = (0usize..1000).flat_map(|i| vec![i; i % 3]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn chunks_adapter_matches_sequential_chunking() {
        let sums: Vec<usize> = (0usize..10_000)
            .into_par_iter()
            .chunks(97)
            .map(|c| c.into_iter().sum())
            .collect();
        let expect: Vec<usize> = (0..10_000)
            .collect::<Vec<usize>>()
            .chunks(97)
            .map(|c| c.iter().sum())
            .collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn join_returns_both_results() {
        crate::init_threads(4);
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_joins_compute_a_fib_tree() {
        crate::init_threads(4);
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = crate::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(20), 6765);
    }

    #[test]
    fn scope_runs_all_spawned_tasks() {
        crate::init_threads(4);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 64);
    }

    #[test]
    fn parallel_ops_keep_working_under_contention() {
        crate::init_threads(4);
        // Many concurrent outer ops from plain threads, each running inner
        // parallel ops — exercises injector, stealing, and nesting.
        std::thread::scope(|ts| {
            for _ in 0..4 {
                ts.spawn(|| {
                    for round in 0..20 {
                        let v: Vec<usize> =
                            (0..1000usize).into_par_iter().map(|i| i + round).collect();
                        assert_eq!(v[999], 999 + round);
                    }
                });
            }
        });
    }

    #[test]
    fn panics_propagate_from_leaves() {
        crate::init_threads(4);
        let caught = std::panic::catch_unwind(|| {
            (0..1000usize).into_par_iter().for_each(|i| {
                assert!(i < 999, "boom");
            });
        });
        assert!(caught.is_err());
        // Pool still usable afterwards.
        let s: usize = (0..100usize).into_par_iter().sum();
        assert_eq!(s, 4950);
    }
}
