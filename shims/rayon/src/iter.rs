//! Deterministic indexed parallel iterators.
//!
//! Every iterator here is **indexed**: it knows its exact length and can
//! produce a sequential iterator over any sub-range (`iter_range`). That is
//! what lets consumers split work into a binary tree of [`crate::join`]
//! calls whose shape depends **only on the input length** (and an optional
//! `with_min_len` hint) — never on the thread count or on scheduling. The
//! consequences:
//!
//! - `collect` writes item `i` to output position `i` (order-preserving);
//! - `sum`/`max` merge leaf results pairwise in index order, so float
//!   reductions are bit-identical at every thread count (including the
//!   `WG_THREADS=1` pool and [`crate::run_sequential`], which execute the
//!   *same* tree inline);
//! - mutable slice parallelism (`par_iter_mut`, `par_chunks_mut`) is sound
//!   because the driver hands every index range to exactly one leaf.
//!
//! The split granule is `max(len / MAX_LEAVES, min_len)`: at most
//! [`MAX_LEAVES`] leaves per op, so scheduling overhead stays bounded while
//! leaving enough slack for work stealing to balance uneven leaves.

use crate::pool;

/// Upper bound on the number of leaf tasks a single parallel op splits
/// into. A constant (never derived from the thread count) so the reduction
/// tree — and therefore every float result — is identical at any pool size.
pub const MAX_LEAVES: usize = 256;

fn grain_for(len: usize, min_len: usize) -> usize {
    len.div_ceil(MAX_LEAVES).max(min_len).max(1)
}

/// Ordered divide-and-conquer over `[start, start + len)`: split at the
/// midpoint down to `grain`, run leaves (possibly on other workers), merge
/// left-before-right. The tree shape is a pure function of `(len, grain)`.
fn map_reduce<T, L, M>(start: usize, len: usize, grain: usize, leaf: &L, merge: &M) -> T
where
    T: Send,
    L: Fn(usize, usize) -> T + Sync,
    M: Fn(T, T) -> T + Sync,
{
    if len <= grain {
        return leaf(start, len);
    }
    let half = len / 2;
    let (a, b) = pool::join(
        || map_reduce(start, half, grain, leaf, merge),
        || map_reduce(start + half, len - half, grain, leaf, merge),
    );
    merge(a, b)
}

/// A raw pointer that may cross threads (each leaf writes a disjoint
/// range).
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    // Method (not field) access, so closures capture the Sync wrapper
    // rather than the bare pointer under 2021 disjoint-capture rules.
    fn get(&self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// The core trait
// ---------------------------------------------------------------------------

/// An indexed parallel iterator (rayon's `IndexedParallelIterator`, fused
/// with `ParallelIterator` — every iterator in this shim knows its length).
pub trait ParallelIterator: Sized + Send + Sync {
    /// The element type.
    type Item: Send;
    /// Sequential iterator over a sub-range of the items.
    type SeqIter<'s>: Iterator<Item = Self::Item>
    where
        Self: 's;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimum items per leaf task (see [`ParallelIterator::with_min_len`]).
    fn min_len_hint(&self) -> usize {
        1
    }

    /// Sequential iterator over items `[start, start + len)`.
    ///
    /// # Safety
    ///
    /// Across all concurrently live iterators from one `self`, every index
    /// must be covered by **at most one** call (ranges disjoint). Mutable
    /// sources hand out `&mut` items on this basis.
    unsafe fn iter_range(&self, start: usize, len: usize) -> Self::SeqIter<'_>;

    // -- adapters ----------------------------------------------------------

    /// Map each item through `f` (applied on the leaf's thread).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f }
    }

    /// Iterate two parallel iterators in lockstep (length = shorter).
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Pair each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Require at least `min` items per leaf task. Raises the split granule
    /// for cheap elementwise kernels; still a pure function of the call
    /// site, so determinism is unaffected.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen {
            base: self,
            min: min.max(1),
        }
    }

    /// Group items into `Vec` chunks of (at most) `chunk_size`, preserving
    /// order; the chunks themselves are the new parallel items.
    fn chunks(self, chunk_size: usize) -> IterChunks<Self> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        IterChunks {
            base: self,
            size: chunk_size,
        }
    }

    /// Map each item to a sequential iterator and concatenate the results
    /// in item order (rayon's cheap per-item `flat_map`).
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        FlatMapIter { base: self, f }
    }

    // -- consumers ---------------------------------------------------------

    /// Run `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let len = self.len();
        if len == 0 {
            return;
        }
        map_reduce(
            0,
            len,
            grain_for(len, self.min_len_hint()),
            &|s, n| {
                // SAFETY: map_reduce hands each index range to one leaf.
                for item in unsafe { self.iter_range(s, n) } {
                    f(item);
                }
            },
            &|(), ()| (),
        );
    }

    /// Collect into `C`, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items with a deterministic pairwise tree reduction:
    /// sequential sums within leaves, leaf results merged in index order.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let len = self.len();
        if len == 0 {
            return std::iter::empty::<Self::Item>().sum();
        }
        map_reduce(
            0,
            len,
            grain_for(len, self.min_len_hint()),
            // SAFETY: disjoint ranges per leaf.
            &|s, n| unsafe { self.iter_range(s, n) }.sum::<S>(),
            &|a, b| [a, b].into_iter().sum(),
        )
    }

    /// Largest item (last one on ties, like `Iterator::max`).
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let len = self.len();
        if len == 0 {
            return None;
        }
        map_reduce(
            0,
            len,
            grain_for(len, self.min_len_hint()),
            // SAFETY: disjoint ranges per leaf.
            &|s, n| unsafe { self.iter_range(s, n) }.max(),
            &|a, b| match (a, b) {
                (Some(x), Some(y)) => Some(if y >= x { y } else { x }),
                (x, None) => x,
                (None, y) => y,
            },
        )
    }

    /// Number of items (exact, from the index).
    fn count(self) -> usize {
        self.len()
    }
}

/// Collections buildable from a parallel iterator (order-preserving).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self`, placing item `i` at position `i`.
    fn from_par_iter<P>(par_iter: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(par_iter: P) -> Self
    where
        P: ParallelIterator<Item = T>,
    {
        let len = par_iter.len();
        let mut out: Vec<T> = Vec::with_capacity(len);
        if len > 0 {
            let base = SendPtr(out.as_mut_ptr());
            map_reduce(
                0,
                len,
                grain_for(len, par_iter.min_len_hint()),
                &|s, n| {
                    // SAFETY: each leaf owns output slots [s, s+n), and the
                    // source yields exactly n items for an n-long range.
                    let mut dst = unsafe { base.get().add(s) };
                    let mut written = 0usize;
                    for item in unsafe { par_iter.iter_range(s, n) } {
                        debug_assert!(written < n, "source yielded too many items");
                        unsafe {
                            dst.write(item);
                            dst = dst.add(1);
                        }
                        written += 1;
                    }
                    debug_assert_eq!(written, n, "source yielded too few items");
                },
                &|(), ()| (),
            );
            // SAFETY: every slot in [0, len) was initialized exactly once.
            unsafe { out.set_len(len) };
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_par_iter {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeParIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeParIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeParIter {
                    start: self.start,
                    len,
                }
            }
        }

        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;
            type SeqIter<'s>
                = std::ops::Range<$t>
            where
                Self: 's;

            fn len(&self) -> usize {
                self.len
            }

            unsafe fn iter_range(&self, start: usize, len: usize) -> std::ops::Range<$t> {
                let lo = self.start + start as $t;
                lo..lo + len as $t
            }
        }
    )*};
}

range_par_iter!(usize, u32, u64, i32, i64);

/// `par_iter()` / `par_chunks()` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` items.
    fn par_iter(&self) -> SliceParIter<'_, T>;
    /// Parallel iterator over `&[T]` chunks of (at most) `chunk_size`.
    fn par_chunks(&self, chunk_size: usize) -> ChunksParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ChunksParIter<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ChunksParIter {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `par_iter_mut()` / `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T` items.
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T>;
    /// Parallel iterator over `&mut [T]` chunks of (at most) `chunk_size`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: std::marker::PhantomData,
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ChunksMutParIter {
            ptr: self.as_mut_ptr(),
            slice_len: self.len(),
            size: chunk_size,
            _marker: std::marker::PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// See [`ParallelSlice::par_iter`].
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type SeqIter<'s>
        = std::slice::Iter<'a, T>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> std::slice::Iter<'a, T> {
        self.slice[start..start + len].iter()
    }
}

/// See [`ParallelSliceMut::par_iter_mut`].
pub struct SliceParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: stands for an exclusive slice borrow; leaves receive disjoint
// sub-slices (the iter_range contract), so sharing the pointer is sound.
unsafe impl<T: Send> Send for SliceParIterMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceParIterMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter<'s>
        = std::slice::IterMut<'a, T>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> std::slice::IterMut<'a, T> {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len).iter_mut()
    }
}

/// See [`ParallelSlice::par_chunks`].
pub struct ChunksParIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksParIter<'a, T> {
    type Item = &'a [T];
    type SeqIter<'s>
        = std::slice::Chunks<'a, T>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> std::slice::Chunks<'a, T> {
        let lo = start * self.size;
        let hi = ((start + len) * self.size).min(self.slice.len());
        self.slice[lo..hi].chunks(self.size)
    }
}

/// See [`ParallelSliceMut::par_chunks_mut`].
pub struct ChunksMutParIter<'a, T> {
    ptr: *mut T,
    slice_len: usize,
    size: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: as for SliceParIterMut — disjoint chunk ranges per leaf.
unsafe impl<T: Send> Send for ChunksMutParIter<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutParIter<'_, T> {}

impl<'a, T: Send> ParallelIterator for ChunksMutParIter<'a, T> {
    type Item = &'a mut [T];
    type SeqIter<'s>
        = std::slice::ChunksMut<'a, T>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.slice_len.div_ceil(self.size)
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> std::slice::ChunksMut<'a, T> {
        let lo = (start * self.size).min(self.slice_len);
        let hi = ((start + len) * self.size).min(self.slice_len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo).chunks_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;
    type SeqIter<'s>
        = std::iter::Map<P::SeqIter<'s>, &'s F>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> Self::SeqIter<'_> {
        self.base.iter_range(start, len).map(&self.f)
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter<'s>
        = std::iter::Zip<A::SeqIter<'s>, B::SeqIter<'s>>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn min_len_hint(&self) -> usize {
        self.a.min_len_hint().max(self.b.min_len_hint())
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> Self::SeqIter<'_> {
        self.a
            .iter_range(start, len)
            .zip(self.b.iter_range(start, len))
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type SeqIter<'s>
        = std::iter::Zip<std::ops::Range<usize>, P::SeqIter<'s>>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> Self::SeqIter<'_> {
        (start..start + len).zip(self.base.iter_range(start, len))
    }
}

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    type SeqIter<'s>
        = P::SeqIter<'s>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint().max(self.min)
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> Self::SeqIter<'_> {
        self.base.iter_range(start, len)
    }
}

/// See [`ParallelIterator::chunks`].
pub struct IterChunks<P> {
    base: P,
    size: usize,
}

impl<P: ParallelIterator> ParallelIterator for IterChunks<P> {
    type Item = Vec<P::Item>;
    type SeqIter<'s>
        = ChunkSeq<'s, P>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.base.len().div_ceil(self.size)
    }

    unsafe fn iter_range(&self, start: usize, len: usize) -> ChunkSeq<'_, P> {
        ChunkSeq {
            base: &self.base,
            size: self.size,
            next: start,
            end: start + len,
        }
    }
}

/// Sequential iterator over the chunks of an [`IterChunks`] range.
pub struct ChunkSeq<'s, P: ParallelIterator> {
    base: &'s P,
    size: usize,
    next: usize,
    end: usize,
}

impl<P: ParallelIterator> Iterator for ChunkSeq<'_, P> {
    type Item = Vec<P::Item>;

    fn next(&mut self) -> Option<Vec<P::Item>> {
        if self.next >= self.end {
            return None;
        }
        let lo = self.next * self.size;
        let hi = ((self.next + 1) * self.size).min(self.base.len());
        self.next += 1;
        // SAFETY: chunk index ranges are disjoint across leaves, so the
        // underlying item ranges are too.
        Some(unsafe { self.base.iter_range(lo, hi - lo) }.collect())
    }
}

/// See [`ParallelIterator::flat_map_iter`]. Not indexed (item counts vary),
/// so it only offers terminal [`FlatMapIter::collect`].
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    /// Collect the concatenation, preserving item order (leaf outputs are
    /// appended left-before-right up the reduction tree).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<U::Item>,
    {
        let len = self.base.len();
        if len == 0 {
            return std::iter::empty().collect();
        }
        let flat: Vec<U::Item> = map_reduce(
            0,
            len,
            grain_for(len, self.base.min_len_hint()),
            &|s, n| {
                let mut out = Vec::new();
                // SAFETY: disjoint ranges per leaf.
                for item in unsafe { self.base.iter_range(s, n) } {
                    out.extend((self.f)(item));
                }
                out
            },
            &|mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        flat.into_iter().collect()
    }
}
