//! Offline shim for the parts of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate keeps the
//! `criterion_group!` / `criterion_main!` / `bench_function` surface but
//! replaces the statistical machinery with a tiny best-of-N wall-clock
//! timer that prints one line per benchmark. Good enough to run the
//! benches and eyeball relative cost; not a measurement instrument.

use std::time::Instant;

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`group/function/param`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Id made of a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    samples: usize,
    best_ns: u128,
}

impl Bencher {
    /// Run `routine` `samples` times and keep the best wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let ns = start.elapsed().as_nanos();
            self.best_ns = self.best_ns.min(ns);
        }
    }
}

fn run_bench(group: &str, name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        best_ns: u128::MAX,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.best_ns == u128::MAX {
        println!("bench {label}: no samples");
    } else {
        println!(
            "bench {label}: best {} ns over {} samples",
            b.best_ns, samples
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark a routine parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.name, &id.label(), self.samples, &mut |b| f(b, input));
        self
    }

    /// Benchmark a plain routine within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, name, self.samples, &mut f);
        self
    }

    /// Finish the group (no-op here; criterion emits summaries).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.default_samples();
        BenchmarkGroup {
            name: name.to_string(),
            samples,
            _criterion: self,
        }
    }

    /// Benchmark a standalone routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_samples();
        run_bench("", name, samples, &mut f);
        self
    }

    fn default_samples(&self) -> usize {
        if self.samples == 0 {
            10
        } else {
            self.samples
        }
    }
}

/// Define a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("square", 7u32), &7u32, |b, &n| {
            b.iter(|| {
                ran += 1;
                black_box(n * n)
            });
        });
        group.finish();
        assert_eq!(ran, 3);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
