//! Offline shim for the parts of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! the same macro surface (`proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `#![proptest_config(...)]`) backed by a plain deterministic loop: each
//! generated `#[test]` samples its strategies `cases` times from a fixed
//! seed. There is no shrinking and no failure persistence — a failing
//! case reports the sampled inputs and panics — which is enough for the
//! property tests here, whose inputs are small and printable.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Runner configuration and the RNG behind strategy sampling.

    use rand::prelude::*;

    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest's default case count.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG used to sample strategies.
    pub struct TestRng {
        pub(crate) rng: SmallRng,
    }

    impl TestRng {
        /// Fixed-seed RNG so every run explores the same cases.
        pub fn deterministic() -> Self {
            TestRng {
                rng: SmallRng::seed_from_u64(0x70726f70_74657374), // "proptest"
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: something that can generate values.

    use super::test_runner::TestRng;

    /// A generator of random values (no shrinking in this shim).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.rng, self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

/// Strategy producing any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy: uniform over all of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_standard(&mut rng.rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::{vec, hash_set}`).

    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for a `Vec` with random length in a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec<S::Value>` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                self.size.clone().sample(rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for a `HashSet` with random cardinality in a range.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `HashSet<S::Value>` whose cardinality is drawn from `size`.
    /// The element strategy's domain must be comfortably larger than
    /// the requested size or sampling may fail.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target {
                set.insert(self.element.sample(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * target + 1000,
                    "hash_set strategy could not reach {target} distinct elements"
                );
            }
            set
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface (`use proptest::prelude::*`).

    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    pub mod prop {
        //! Module alias so `prop::collection::...` resolves after a glob
        //! import, matching real proptest's prelude.
        pub use crate::collection;
    }
}

/// Define property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one looping test per function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __cfg.cases,
                        __msg,
                        __inputs
                    );
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure fails only this case's
/// closure (then the harness panics with the sampled inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            a in 3u64..17,
            b in 0.0f64..1.0,
            pair in (0u32..5, 10usize..=12),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(pair.0 < 5);
            prop_assert!((10..=12).contains(&pair.1));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 1..50),
            s in prop::collection::hash_set(0u64..500, 1..40),
            x in any::<u64>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(!s.is_empty() && s.len() < 40);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            let cfg = crate::test_runner::ProptestConfig::with_cases(4);
            let mut rng = crate::test_runner::TestRng::deterministic();
            for _ in 0..cfg.cases {
                let a = crate::strategy::Strategy::sample(&(0u32..10), &mut rng);
                let check = (|| -> Result<(), String> {
                    prop_assert!(a > 100, "a was {}", a);
                    Ok(())
                })();
                if let Err(msg) = check {
                    panic!("case failed: {msg}");
                }
            }
        });
        let err = result.expect_err("property should have failed");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("a was"), "unexpected message: {msg}");
    }
}
