//! Offline shim for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! an API-compatible subset: [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64, like the real `small_rng` feature), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range` over (inclusive) int
//! and float ranges, and [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//! Everything is deterministic per seed, which is all the simulation
//! relies on — no cryptographic or statistical-test claims.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing sampling interface (`rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (`rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor this workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named RNG implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG — xoshiro256++, seeded through
    /// SplitMix64 exactly like `rand`'s `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling (`rand::seq`).

    use super::Rng;

    /// Slice extensions (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(5usize..=6);
            assert!(i == 5 || i == 6);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_and_gen_bool() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [1, 2, 3];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
