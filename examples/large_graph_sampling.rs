//! Exercise the WholeGraph ops directly on a larger power-law graph:
//! multi-GPU storage, path-doubling neighbor sampling, AppendUnique, and
//! the one-kernel feature gather versus the NCCL-style baseline.
//!
//! ```text
//! cargo run --release --example large_graph_sampling
//! ```

use rand::prelude::*;
use rand::rngs::SmallRng;

use wg_graph::{gen, MultiGpuGraph, NodeId};
use wg_mem::gather::global_gather;
use wg_mem::nccl::nccl_gather;
use wg_sample::{sample_minibatch, GraphAccess, MultiGpuAccess, SamplerConfig};
use wg_sim::{Machine, SimTime};

fn main() {
    let machine = Machine::dgx_a100();
    let model = machine.cost();

    // A Friendster-like power-law graph: 2^17 nodes, heavy-tailed degrees.
    println!("generating R-MAT graph (131k nodes)...");
    let graph = gen::rmat(17, 2_000_000, 1);
    let feat_dim = 128;
    let features = gen::random_features(graph.num_nodes(), feat_dim, 2);
    println!(
        "graph: {} nodes, {} directed edges, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Scatter it across the 8 simulated GPUs.
    let store = MultiGpuGraph::build(
        model,
        machine.num_gpus(),
        &graph,
        &features,
        feat_dim,
        &machine.memory(),
    )
    .expect("fits in GPU memory");
    println!(
        "multi-GPU store built; DSM setup {} (simulated)\n",
        store.setup_time()
    );

    // Sample a 3-hop, fanout-30 mini-batch for 512 random seeds — the
    // paper's training shape.
    let access = MultiGpuAccess::new(&store);
    let mut rng = SmallRng::seed_from_u64(3);
    let batch: Vec<u64> = (0..512)
        .map(|_| access.handle_of(rng.gen_range(0..graph.num_nodes() as NodeId)))
        .collect();
    let cfg = SamplerConfig {
        fanouts: vec![30, 30, 30],
        seed: 9,
    };
    let t0 = std::time::Instant::now();
    let (mb, stats) = sample_minibatch(&access, &batch, &cfg, 0, 0);
    println!(
        "sampled {} edges in {:?} (host wall time); frontiers: {:?}",
        stats.edges_sampled,
        t0.elapsed(),
        mb.frontiers.iter().map(Vec::len).collect::<Vec<_>>()
    );
    for (l, b) in mb.blocks.iter().enumerate() {
        println!(
            "  layer {l}: {} dst <- {} src, {} sampled edges",
            b.num_dst,
            b.num_src,
            b.num_edges()
        );
    }

    // Gather the input features two ways and compare.
    let rows: Vec<usize> = mb
        .input_nodes()
        .iter()
        .map(|&h| store.feature_row_of_global(wg_graph::GlobalId::from_raw(h)))
        .collect();
    let gpu_spec = machine.spec(wg_sim::DeviceId::Gpu(0));
    let mut dsm_out = vec![0.0f32; rows.len() * feat_dim];
    let dsm = global_gather(store.features(), &rows, &mut dsm_out, 0, model, gpu_spec);
    let mut nccl_out = vec![0.0f32; rows.len() * feat_dim];
    let nccl = nccl_gather(store.features(), &rows, &mut nccl_out, 0, model, gpu_spec);
    assert_eq!(
        dsm_out, nccl_out,
        "both gathers must return identical features"
    );

    println!(
        "\ngather of {} feature rows ({} bytes each):",
        rows.len(),
        feat_dim * 4
    );
    println!(
        "  one-kernel DSM gather : {}   ({:.0} GB/s algo bandwidth)",
        dsm.sim_time,
        dsm.algo_bandwidth() / 1e9
    );
    println!(
        "  NCCL-style 5-step     : {}   (bucket {} + ids {} + local {} + alltoallv {} + reorder {})",
        nccl.total_time(),
        nccl.bucket_time,
        nccl.id_exchange_time,
        nccl.local_gather_time,
        nccl.feature_exchange_time,
        nccl.reorder_time
    );
    let speedup = nccl.total_time() / dsm.sim_time;
    println!("  => distributed *shared* memory wins by {speedup:.2}x (paper Fig. 10: >2x)");
    assert!(dsm.sim_time < SimTime::from_secs(1.0));
}
