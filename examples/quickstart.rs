//! Quickstart: train GraphSage on a small learnable graph with WholeGraph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an 8-GPU simulated DGX-A100, loads a stochastic-block-model
//! stand-in for ogbn-products into multi-GPU distributed shared memory,
//! and trains a 2-layer GraphSage for a few epochs, printing loss,
//! validation accuracy, and the simulated epoch time breakdown.

use std::sync::Arc;

use wholegraph::prelude::*;

fn main() {
    // 1. A learnable dataset: SBM graph + class-correlated features,
    //    scaled to 1/800 of ogbn-products.
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        800,
        42,
    ));
    println!(
        "dataset: {} nodes, {} edges, {} features, {} classes, {} train nodes",
        dataset.num_nodes(),
        dataset.num_edges(),
        dataset.feature_dim,
        dataset.num_classes,
        dataset.train.len()
    );

    // 2. The simulated machine: an 8-GPU DGX-A100.
    let machine = Machine::dgx_a100();

    // 3. The WholeGraph pipeline: graph + features go into multi-GPU
    //    distributed shared memory; sampling and gathering run on-device.
    let cfg = PipelineConfig {
        batch_size: 128,
        fanouts: vec![10, 10],
        num_layers: 2,
        hidden: 64,
        ..PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
    }
    .with_seed(42);
    let mut pipe = Pipeline::new(machine, dataset, cfg).expect("store fits in GPU memory");
    println!(
        "DSM setup took {} (simulated, paid once)",
        pipe.setup_time()
    );

    // 4. Train.
    for epoch in 0..5 {
        let r = pipe.train_epoch(epoch);
        let val = pipe.evaluate(&pipe.dataset().val.clone());
        println!(
            "epoch {epoch}: loss {:.4}  val-acc {:5.1}%  epoch time {} \
             (sample {} | gather {} | train {} | allreduce {})",
            r.loss,
            val * 100.0,
            r.epoch_time,
            r.sample_time,
            r.gather_time,
            r.train_time,
            r.comm_time,
        );
    }

    // 5. Final test accuracy.
    let test = pipe.evaluate(&pipe.dataset().test.clone());
    println!("test accuracy: {:.1}%", test * 100.0);
}
