//! Node classification à la the paper's accuracy study (Table III):
//! train GCN, GraphSage and GAT on the same dataset under both WholeGraph
//! and the DGL-style baseline, and show that accuracy matches while epoch
//! times do not.
//!
//! ```text
//! cargo run --release --example node_classification
//! ```

use std::sync::Arc;

use wholegraph::prelude::*;

fn main() {
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        1000,
        7,
    ));
    println!(
        "ogbn-products stand-in (1/1000 scale): {} nodes, {} edges, {} classes\n",
        dataset.num_nodes(),
        dataset.num_edges(),
        dataset.num_classes
    );
    println!(
        "{:<12} {:<12} {:>9} {:>9} {:>14}",
        "model", "framework", "val-acc", "test-acc", "epoch time"
    );

    for model in ModelKind::ALL {
        for fw in [Framework::Dgl, Framework::WholeGraph] {
            let machine = Machine::dgx_a100();
            let cfg = PipelineConfig {
                batch_size: 128,
                fanouts: vec![10, 10],
                num_layers: 2,
                hidden: 64,
                ..PipelineConfig::tiny(fw, model)
            }
            .with_seed(7);
            let mut pipe = Pipeline::new(machine, Arc::clone(&dataset), cfg).unwrap();
            let out = Trainer::new(TrainerConfig {
                epochs: 5,
                eval_every: 0,
                patience: None,
            })
            .run(&mut pipe);
            let mean_epoch = out.total_time / out.epochs.len() as f64;
            println!(
                "{:<12} {:<12} {:>8.1}% {:>8.1}% {:>14}",
                model.name(),
                fw.name(),
                out.val_accuracy * 100.0,
                out.test_accuracy * 100.0,
                format!("{mean_epoch}"),
            );
        }
        println!();
    }
    println!("Same seeds => same sampled sub-graphs => matching accuracy;");
    println!("the frameworks differ only in where sampling/gather run and");
    println!("which interconnect the features cross.");
}
