//! Featureless-graph training with a trainable embedding table in
//! distributed shared memory.
//!
//! Graphs like Friendster ship no node features (the paper randomizes
//! them just to measure performance). The better answer for real tasks is
//! to *learn* the input features: store an embedding row per node in
//! WholeMemory, gather the rows a mini-batch touches with the one-kernel
//! global gather, backprop into them, and scatter sparse Adagrad updates
//! back to each row's home GPU — no AllReduce needed for the table, since
//! every row has exactly one home.
//!
//! ```text
//! cargo run --release --example learnable_embeddings
//! ```

use std::sync::Arc;

use wg_autograd::{Adam, Optimizer, Tape};
use wg_gnn::{GnnConfig, GnnModel, ModelKind};
use wg_graph::{gen, GlobalId, MultiGpuGraph, NodeId};
use wg_mem::EmbeddingTable;
use wg_sample::{sample_minibatch, GraphAccess, MultiGpuAccess, SamplerConfig};
use wg_sim::Machine;
use wg_tensor::ops::{argmax_rows, softmax_cross_entropy};
use wg_tensor::Matrix;
use wholegraph::convert::minibatch_blocks;

fn main() {
    // A community graph with NO input features: only the structure (and
    // sparse labels) carry signal.
    let (graph, labels) = gen::sbm(4000, 8, 40.0, 0.9, 5);
    let machine = Machine::dgx_a100();
    let store = MultiGpuGraph::build(
        machine.cost(),
        machine.num_gpus(),
        &graph,
        &[],
        0,
        &machine.memory(),
    )
    .unwrap();
    println!(
        "featureless SBM graph: {} nodes, {} edges, 8 classes",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Trainable embeddings, one row per padded DSM slot.
    let emb_dim = 32;
    let table = Arc::new(EmbeddingTable::new(
        machine.cost(),
        machine.num_gpus(),
        store.partition().padded_rows(),
        emb_dim,
        7,
    ));

    let cfg = GnnConfig {
        kind: ModelKind::GraphSage,
        in_dim: emb_dim,
        hidden: 32,
        num_classes: 8,
        num_layers: 2,
        heads: 2,
        dropout: 0.0,
    };
    let mut model = GnnModel::new(cfg, 7);
    let mut opt = Adam::new(5e-3);
    let sampler = SamplerConfig {
        fanouts: vec![10, 10],
        seed: 7,
    };
    let access = MultiGpuAccess::new(&store);
    let spec = machine.spec(wg_sim::DeviceId::Gpu(0));
    let train: Vec<NodeId> = (0..320u64).collect();
    let eval: Vec<NodeId> = (320..960u64).collect();

    for epoch in 0..30u64 {
        let mut loss_sum = 0.0f32;
        let mut batches = 0;
        for (bi, batch) in train.chunks(64).enumerate() {
            let handles: Vec<u64> = batch.iter().map(|&v| access.handle_of(v)).collect();
            let (mb, _) = sample_minibatch(&access, &handles, &sampler, epoch, bi as u64);

            // Gather this batch's embedding rows from the DSM.
            let rows: Vec<usize> = mb
                .input_nodes()
                .iter()
                .map(|&h| store.feature_row_of_global(GlobalId::from_raw(h)))
                .collect();
            let mut feats = vec![0.0f32; rows.len() * emb_dim];
            table.gather(&rows, &mut feats, 0, machine.cost(), spec);

            // Forward/backward through the GNN into the embedding rows.
            let blocks = minibatch_blocks(&mb);
            let mut tape = Tape::new();
            let x = Matrix::from_vec(rows.len(), emb_dim, feats);
            let out = model.forward(&mut tape, &blocks, x, true, epoch ^ bi as u64);
            let batch_labels: Vec<u32> = batch.iter().map(|&v| labels[v as usize]).collect();
            let (loss, grad) = softmax_cross_entropy(tape.value(out), &batch_labels);
            model.params.zero_grads();
            tape.backward(out, grad, &mut model.params);
            opt.step(&mut model.params);

            // Sparse update of the touched embedding rows.
            let input_id = wholegraph_example_input_node(&tape);
            let emb_grad = tape
                .grad(input_id)
                .expect("embedding rows received gradient");
            table.apply_sparse_adagrad(&rows, emb_grad.data(), 0.1, 1e-8, machine.cost(), spec);

            loss_sum += loss;
            batches += 1;
        }
        if epoch % 5 == 0 || epoch == 29 {
            let acc = evaluate(
                &model, &table, &store, &sampler, &eval, &labels, emb_dim, &machine,
            );
            println!(
                "epoch {epoch:>2}: loss {:.4}  eval-acc {:.1}%",
                loss_sum / batches as f32,
                acc * 100.0
            );
        }
    }
    println!("\nAll signal came from the learned embeddings — the graph had");
    println!("no input features at all.");
}

/// The embedding input is always the first tape node of a forward pass.
fn wholegraph_example_input_node(_tape: &Tape) -> wg_autograd::NodeId {
    wg_autograd::NodeId::first()
}

#[allow(clippy::too_many_arguments)]
fn evaluate(
    model: &GnnModel,
    table: &EmbeddingTable,
    store: &MultiGpuGraph,
    sampler: &SamplerConfig,
    nodes: &[NodeId],
    labels: &[u32],
    emb_dim: usize,
    machine: &Machine,
) -> f64 {
    let access = MultiGpuAccess::new(store);
    let spec = machine.spec(wg_sim::DeviceId::Gpu(0));
    let mut correct = 0usize;
    for (bi, batch) in nodes.chunks(128).enumerate() {
        let handles: Vec<u64> = batch.iter().map(|&v| access.handle_of(v)).collect();
        let (mb, _) = sample_minibatch(&access, &handles, sampler, u64::MAX, bi as u64);
        let rows: Vec<usize> = mb
            .input_nodes()
            .iter()
            .map(|&h| store.feature_row_of_global(GlobalId::from_raw(h)))
            .collect();
        let mut feats = vec![0.0f32; rows.len() * emb_dim];
        table.gather(&rows, &mut feats, 0, machine.cost(), spec);
        let blocks = minibatch_blocks(&mb);
        let mut tape = Tape::new();
        let x = Matrix::from_vec(rows.len(), emb_dim, feats);
        let out = model.forward(&mut tape, &blocks, x, false, 0);
        let preds = argmax_rows(tape.value(out));
        correct += preds
            .iter()
            .zip(batch)
            .filter(|(p, &v)| **p == labels[v as usize])
            .count();
    }
    correct as f64 / nodes.len() as f64
}
