//! Multi-node data-parallel scaling (paper §III-D / Figure 13): project
//! epoch time from 1 to 8 DGX nodes for GraphSage on a papers100M
//! stand-in.
//!
//! ```text
//! cargo run --release --example multi_node_scaling
//! ```

use std::sync::Arc;

use wholegraph::multinode::scaling_sweep;
use wholegraph::prelude::*;

fn main() {
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnPapers100M,
        2000,
        11,
    ));
    println!(
        "ogbn-papers100M stand-in (1/2000): {} nodes, {} edges, {} train nodes\n",
        dataset.num_nodes(),
        dataset.num_edges(),
        dataset.train.len()
    );

    let machine = Machine::dgx_a100();
    let cfg = PipelineConfig {
        batch_size: 32,
        fanouts: vec![10, 10, 10],
        num_layers: 3,
        hidden: 64,
        ..PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
    }
    .with_seed(11);
    let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();

    println!("measuring per-iteration times (2 real iterations)...");
    let points = scaling_sweep(&mut pipe, &[1, 2, 4, 8], 2);

    println!(
        "\n{:>6} {:>16} {:>10} {:>12}",
        "nodes", "epoch time", "speedup", "efficiency"
    );
    for p in &points {
        println!(
            "{:>6} {:>16} {:>9.2}x {:>11.0}%",
            p.nodes,
            format!("{}", p.epoch_time),
            p.speedup,
            p.speedup / p.nodes as f64 * 100.0
        );
    }
    println!("\nEach node holds a full graph replica; only the gradient");
    println!("AllReduce crosses InfiniBand, so scaling stays near linear");
    println!("(paper Figure 13).");
}
