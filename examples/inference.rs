//! Inference serving: train briefly, then run batched prediction with
//! WholeGraph's sampling + gather ops — no backward pass, no collective
//! communication (paper §I: the ops "also can be used in inference
//! scenarios, since it does not require collective communication").
//!
//! ```text
//! cargo run --release --example inference
//! ```

use std::sync::Arc;

use wholegraph::prelude::*;

fn main() {
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        800,
        77,
    ));
    let machine = Machine::dgx_a100();
    let cfg = PipelineConfig {
        batch_size: 128,
        fanouts: vec![10, 10],
        num_layers: 2,
        hidden: 64,
        ..PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
    }
    .with_seed(77);
    let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();

    // Short training phase.
    for epoch in 0..4 {
        let r = pipe.train_epoch(epoch);
        println!("epoch {epoch}: loss {:.4}", r.loss);
    }

    // Batched inference over 2000 nodes.
    let nodes: Vec<u64> = (0..2000.min(pipe.dataset().num_nodes() as u64)).collect();
    let (preds, report) = pipe.infer(&nodes);
    let correct = preds
        .iter()
        .zip(&nodes)
        .filter(|(p, &v)| **p == pipe.dataset().labels[v as usize])
        .count();
    println!(
        "\ninference over {} nodes in {} batches:",
        report.nodes, report.batches
    );
    println!(
        "  sample {} | gather {} | forward {}",
        report.sample_time, report.gather_time, report.compute_time
    );
    println!(
        "  total {}  ({:.0} nodes/s simulated throughput)",
        report.total_time(),
        report.throughput()
    );
    println!(
        "  accuracy on inferred nodes: {:.1}%",
        correct as f64 / nodes.len() as f64 * 100.0
    );
    println!("\nNo gradient AllReduce appears anywhere above — inference");
    println!("scales embarrassingly across GPUs and nodes.");
}
