//! # wg-serve — online inference over the WholeGraph DSM feature store
//!
//! The ROADMAP's north star is a production system serving predictions to
//! millions of users. This crate is that serving tier: a request-driven
//! inference engine that reuses the training pipeline's stage substrate
//! (scratch arenas, cached gather, per-node-seeded sampling) to answer
//! per-node queries with sample → gather → forward.
//!
//! The headline optimisation is **adaptive micro-batching**
//! ([`engine::BatchMode::Coalesced`]): the engine drains the request
//! queue up to a deadline- and size-bounded window, merges the query
//! nodes of the window into one deduplicated frontier with the paper's
//! AppendUnique op ([`coalesce::Coalescer`]), runs a *single* shared
//! sample + gather + forward over it, and scatters the per-request
//! predictions back. This amortizes per-batch fixed costs and collapses
//! duplicate work on hot (Zipf-favoured) query nodes — the same
//! redundant-access amortization the paper applies to training gathers —
//! while remaining **bit-identical** to serving every request alone:
//!
//! * the sampler's per-node RNG streams are keyed on a node's *stable
//!   id* (never its batch position), and serving pins the sampling
//!   coordinates to `(SERVE_EPOCH, iteration 0)`, so a query node's
//!   sampled ego-graph is a pure function of its id;
//! * the forward pass is per-row-local (dropout off; the only
//!   `dup_count`-dependent kernel is backward-only), so a node's logits
//!   row does not depend on which other rows share the batch.
//!
//! Each completion carries an FNV-1a checksum of the request's logits
//! row as the bit-identity witness; the integration tests (and the
//! `serving_sweep` bench) compare coalesced and sequential executions
//! checksum-by-checksum.
//!
//! Around the coalescer: **admission control** (a bounded queue that
//! sheds load at capacity, with `admitted + shed == offered` accounting),
//! per-request **deadlines** (expired requests are still answered but
//! counted), and an **open-loop traffic generator** ([`traffic`]) with
//! seeded Poisson or bursty arrivals and Zipf-skewed query nodes.
//!
//! Everything is deterministic: arrivals and service are laid out on the
//! simulated clock ([`wg_sim::SimTime`]), so a (seed, config) pair fully
//! determines every latency, shed decision, and batch composition.

pub mod coalesce;
pub mod engine;
pub mod request;
pub mod traffic;

pub use coalesce::Coalescer;
pub use engine::{BatchMode, ServeConfig, ServeEngine, ServeReport};
pub use request::{Completion, Request};
pub use traffic::{ArrivalProcess, TrafficConfig};
