//! The serving engine: bounded admission queue, adaptive micro-batch
//! dispatch, and the discrete-event loop that lays requests onto the
//! simulated clock.
//!
//! # Queueing model
//!
//! One logical server (the inference GPU pool) processes batches one at
//! a time; batches round-robin across the machine's GPUs so each
//! device's feature cache sees its share of the query stream. Arrivals
//! are admitted in arrival order into a bounded queue; an arrival
//! finding the queue full is **shed** immediately (load-shedding beats
//! unbounded queueing collapse under open-loop overload).
//!
//! # Dispatch rule (deterministic)
//!
//! A batch launches at the earliest instant the server is free AND the
//! coalescing window has closed. The window opens when the head request
//! arrived and closes after `max_delay`, or *early* the moment the queue
//! holds `max_batch` requests. Arrivals strictly before the launch
//! instant are admitted first (an arrival exactly at the launch instant
//! misses the batch — the documented tie-break); the batch then takes
//! the first `min(queue, max_batch)` requests. Every quantity involved
//! is simulated time or queue arithmetic, so the schedule — batch
//! compositions, shed decisions, latencies — is a pure function of the
//! request timeline and the configuration.
//!
//! Sequential mode (`BatchMode::Sequential`) is the degenerate window
//! (`max_batch = 1`, `max_delay = 0`): one request per forward pass.
//! Because the pipeline's serving pass is batch-composition-invariant
//! (see [`wholegraph::pipeline::Pipeline::serve_forward`]), coalesced
//! and sequential runs return bit-identical predictions and logits
//! checksums for every request — coalescing changes *when* answers
//! arrive, never *what* they are.

use std::collections::VecDeque;

use wg_sim::SimTime;
use wholegraph::Pipeline;

use crate::coalesce::Coalescer;
use crate::request::{Completion, Request};

/// Batch formation policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchMode {
    /// One request per forward pass (the baseline the coalescer is
    /// measured against).
    Sequential,
    /// Adaptive micro-batching: wait up to `max_delay` past the head
    /// request's arrival (or until `max_batch` requests are queued,
    /// whichever is first), then serve the whole window in one shared
    /// pass.
    Coalesced {
        /// Largest batch one dispatch may take.
        max_batch: usize,
        /// Longest a head-of-line request may wait for company.
        max_delay: SimTime,
    },
}

impl BatchMode {
    fn max_batch(self) -> usize {
        match self {
            BatchMode::Sequential => 1,
            BatchMode::Coalesced { max_batch, .. } => max_batch.max(1),
        }
    }

    fn max_delay(self) -> SimTime {
        match self {
            BatchMode::Sequential => SimTime::ZERO,
            BatchMode::Coalesced { max_delay, .. } => max_delay,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Batch formation policy.
    pub mode: BatchMode,
    /// Admission-queue capacity: an arrival finding this many requests
    /// queued is shed.
    pub queue_capacity: usize,
}

impl ServeConfig {
    /// Sequential serving with a generous queue.
    pub fn sequential() -> Self {
        ServeConfig {
            mode: BatchMode::Sequential,
            queue_capacity: 4096,
        }
    }

    /// Coalesced serving with a generous queue.
    pub fn coalesced(max_batch: usize, max_delay: SimTime) -> Self {
        ServeConfig {
            mode: BatchMode::Coalesced {
                max_batch,
                max_delay,
            },
            queue_capacity: 4096,
        }
    }
}

/// What a serving run did: per-request completions plus the aggregate
/// counters the gates check.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Requests the workload offered.
    pub offered: usize,
    /// Requests admitted and answered.
    pub admitted: usize,
    /// Requests shed at admission (queue full).
    pub shed: usize,
    /// Admitted requests that finished after their deadline.
    pub expired: usize,
    /// Forward passes dispatched.
    pub batches: usize,
    /// Query rows across all dispatched batches, before dedup.
    pub batched_rows: u64,
    /// Deduplicated frontier rows actually served.
    pub unique_rows: u64,
    /// When the last batch finished.
    pub makespan: SimTime,
    /// Summed simulated sampling time.
    pub sample_time: SimTime,
    /// Summed simulated gather time.
    pub gather_time: SimTime,
    /// Summed simulated forward time.
    pub compute_time: SimTime,
    /// Per-request outcomes, in completion order (batch by batch).
    pub completions: Vec<Completion>,
}

impl ServeReport {
    /// Sustained throughput: answered requests per simulated second of
    /// makespan.
    pub fn qps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.admitted as f64 / self.makespan.as_secs()
    }

    /// Exact latency quantile (`0 ≤ q ≤ 1`) over the admitted requests:
    /// sorts a copy of the latencies and indexes the ceil(q·n)-th order
    /// statistic — no bucket interpolation, so the "equal p99" gate
    /// compares true order statistics. `None` if nothing completed.
    pub fn latency_quantile(&self, q: f64) -> Option<SimTime> {
        if self.completions.is_empty() {
            return None;
        }
        let mut lats: Vec<f64> = self
            .completions
            .iter()
            .map(|c| c.latency().as_secs())
            .collect();
        lats.sort_by(f64::total_cmp);
        let rank = ((q.clamp(0.0, 1.0) * lats.len() as f64).ceil() as usize).max(1);
        Some(SimTime::from_secs(lats[rank - 1]))
    }

    /// Median latency.
    pub fn p50(&self) -> Option<SimTime> {
        self.latency_quantile(0.5)
    }

    /// Tail latency.
    pub fn p99(&self) -> Option<SimTime> {
        self.latency_quantile(0.99)
    }

    /// Mean queried-rows-per-frontier-row: > 1 means the coalescer
    /// collapsed duplicate queries.
    pub fn dedup_factor(&self) -> f64 {
        if self.unique_rows == 0 {
            return 1.0;
        }
        self.batched_rows as f64 / self.unique_rows as f64
    }
}

/// Latency histogram bounds (µs): sub-ms serving through batch-queueing
/// tails.
static LATENCY_US_BUCKETS: [f64; 12] = [
    50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0, 25600.0, 51200.0, 102400.0,
];
/// Batch-size histogram bounds (requests per dispatch).
static BATCH_SIZE_BUCKETS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
/// Queue-depth histogram bounds (requests queued at dispatch).
static QUEUE_DEPTH_BUCKETS: [f64; 9] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 256.0];

/// The request-driven inference engine.
pub struct ServeEngine {
    cfg: ServeConfig,
    coalescer: Coalescer,
    /// Pooled per-batch buffers (query nodes, preds, checksums), warm
    /// across dispatches.
    batch_nodes: Vec<u64>,
    preds: Vec<u32>,
    checksums: Vec<u64>,
}

impl ServeEngine {
    /// Build an engine.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        ServeEngine {
            cfg,
            coalescer: Coalescer::default(),
            batch_nodes: Vec::new(),
            preds: Vec::new(),
            checksums: Vec::new(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Serve a request timeline (sorted by arrival) against a trained
    /// pipeline. Deterministic: the same pipeline state, timeline, and
    /// configuration reproduce the identical report.
    pub fn run(&mut self, pipe: &mut Pipeline, requests: &[Request]) -> ServeReport {
        debug_assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "request timeline must be sorted by arrival"
        );
        let _span = wg_trace::span!("serve.run");
        let max_batch = self.cfg.mode.max_batch();
        let max_delay = self.cfg.mode.max_delay();
        let num_gpus = pipe.machine().num_gpus() as u64;

        let mut report = ServeReport {
            offered: requests.len(),
            ..ServeReport::default()
        };
        let mut queue: VecDeque<Request> = VecDeque::new();
        let mut next = 0usize; // next arrival to process
        let mut free = SimTime::ZERO; // when the server frees up
        let mut batch_seq = 0u64;

        // Admit (or shed) every arrival strictly before `t`.
        let capacity = self.cfg.queue_capacity;
        let admit_before = |t: SimTime,
                            next: &mut usize,
                            queue: &mut VecDeque<Request>,
                            report: &mut ServeReport|
         -> Option<SimTime> {
            let mut filled_at = None;
            while *next < requests.len() && requests[*next].arrival < t {
                let r = requests[*next];
                *next += 1;
                if queue.len() >= capacity {
                    report.shed += 1;
                    wg_trace::counter!("serve.shed", 1.0);
                    continue;
                }
                queue.push_back(r);
                if queue.len() == max_batch && filled_at.is_none() {
                    filled_at = Some(r.arrival);
                }
            }
            filled_at
        };

        while next < requests.len() || !queue.is_empty() {
            if queue.is_empty() {
                // Server idle: jump to the next arrival (an empty queue
                // never sheds).
                queue.push_back(requests[next]);
                next += 1;
            }
            let head = queue[0].arrival;
            // The window closes at head + max_delay — or immediately if
            // the batch is already full from the previous round.
            let mut launch = if queue.len() >= max_batch {
                free.max(head)
            } else {
                free.max(head + max_delay)
            };
            // Admit arrivals up to the launch instant; if one of them
            // fills the batch while the server is already free, the
            // window closes early and the launch moves up. Re-admit
            // against the earlier launch until it stabilizes (arrivals
            // are sorted, so this converges).
            loop {
                let filled_at = admit_before(launch, &mut next, &mut queue, &mut report);
                let Some(at) = filled_at else { break };
                let early = free.max(at);
                if early < launch {
                    launch = early;
                } else {
                    break;
                }
            }

            // Dispatch the head window.
            let take = queue.len().min(max_batch);
            wg_trace::histogram!("serve.batch_size", &BATCH_SIZE_BUCKETS, take as f64);
            wg_trace::histogram!(
                "serve.queue_depth",
                &QUEUE_DEPTH_BUCKETS,
                (queue.len() - take) as f64
            );
            self.batch_nodes.clear();
            self.batch_nodes
                .extend(queue.iter().take(take).map(|r| r.node));
            self.coalescer.coalesce(&self.batch_nodes);
            let rank = (batch_seq % num_gpus) as u32;
            self.preds.clear();
            self.checksums.clear();
            let times = {
                let _s = wg_trace::span!("serve.batch");
                pipe.serve_forward(
                    self.coalescer.unique(),
                    rank,
                    &mut self.preds,
                    &mut self.checksums,
                )
            };
            let finish = launch + times.total();
            report.sample_time += times.sample;
            report.gather_time += times.gather;
            report.compute_time += times.compute;
            report.batches += 1;
            report.batched_rows += take as u64;
            report.unique_rows += self.coalescer.unique().len() as u64;
            report.makespan = report.makespan.max(finish);
            for (i, r) in queue.drain(..take).enumerate() {
                let row = self.coalescer.map()[i] as usize;
                let expired = r.deadline.is_some_and(|d| finish > d);
                if expired {
                    report.expired += 1;
                }
                report.admitted += 1;
                let latency = finish - r.arrival;
                wg_trace::histogram!("serve.latency_us", &LATENCY_US_BUCKETS, latency.as_micros());
                report.completions.push(Completion {
                    id: r.id,
                    node: r.node,
                    arrival: r.arrival,
                    start: launch,
                    finish,
                    batch: batch_seq,
                    pred: self.preds[row],
                    logits_checksum: self.checksums[row],
                    expired,
                });
            }
            free = finish;
            batch_seq += 1;
        }
        debug_assert_eq!(report.admitted + report.shed, report.offered);
        report
    }
}
