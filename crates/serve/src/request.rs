//! Request and completion records.

use wg_graph::NodeId;
use wg_sim::SimTime;

/// One inference request: "predict the class of `node`".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Submission-order id (unique per workload).
    pub id: u64,
    /// The query node.
    pub node: NodeId,
    /// Arrival time on the simulated clock.
    pub arrival: SimTime,
    /// Absolute deadline, if the client set one. A request finishing
    /// after its deadline is still answered but counted as expired.
    pub deadline: Option<SimTime>,
}

/// A served request's outcome.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// The query node.
    pub node: NodeId,
    /// When the request arrived.
    pub arrival: SimTime,
    /// When its batch launched on the GPU.
    pub start: SimTime,
    /// When its batch's forward pass finished.
    pub finish: SimTime,
    /// Dispatch sequence number of the batch that served it.
    pub batch: u64,
    /// Predicted class.
    pub pred: u32,
    /// FNV-1a checksum of the request's logits row — the bit-identity
    /// witness comparing coalesced and per-request execution.
    pub logits_checksum: u64,
    /// Whether the batch finished after the request's deadline.
    pub expired: bool,
}

impl Completion {
    /// Queueing delay plus service time.
    pub fn latency(&self) -> SimTime {
        self.finish - self.arrival
    }
}
