//! Synthetic open-loop traffic: seeded arrival processes over
//! Zipf-skewed query nodes.
//!
//! Open-loop means arrivals do not wait for responses — the generator
//! lays the full request timeline out up front, and the engine serves it
//! as fast as admission control allows. That is the honest way to
//! measure a serving system: a closed loop self-throttles and hides
//! queueing collapse.

use rand::prelude::*;
use wg_graph::NodeId;
use wg_sim::SimTime;

use crate::request::Request;

/// How request arrival times are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_qps`.
    Poisson {
        /// Mean offered load, requests per simulated second.
        rate_qps: f64,
    },
    /// Bursty arrivals: bursts of `burst` simultaneous requests, with
    /// exponential gaps between bursts sized so the *mean* offered load
    /// is still `rate_qps`. Stresses admission control and gives the
    /// coalescer full windows.
    Bursty {
        /// Mean offered load, requests per simulated second.
        rate_qps: f64,
        /// Requests per burst.
        burst: usize,
    },
}

/// Traffic generator configuration.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Zipf exponent for query-node popularity (`0.0` = uniform). Rank
    /// `r` (0-based) is drawn with weight `(r+1)^-s`; ranks map to node
    /// ids through a seeded shuffle, so the hot set is not simply the
    /// lowest ids.
    pub zipf_s: f64,
    /// Query nodes are drawn from `0..num_nodes`.
    pub num_nodes: u64,
    /// Master seed: the same (config, seed) pair reproduces the exact
    /// request sequence, bit for bit.
    pub seed: u64,
    /// Relative deadline attached to every request (`None` = no SLO).
    pub deadline: Option<SimTime>,
}

impl TrafficConfig {
    /// Generate the request timeline: arrivals are non-decreasing, ids
    /// follow submission order.
    pub fn generate(&self) -> Vec<Request> {
        assert!(self.num_nodes > 0, "traffic needs a non-empty node set");
        let mut arr_rng = SmallRng::seed_from_u64(self.seed ^ 0xa11e);
        let mut node_rng = SmallRng::seed_from_u64(self.seed ^ 0x21bf);
        let picker = ZipfPicker::new(self.num_nodes, self.zipf_s, self.seed);
        let mut out = Vec::with_capacity(self.requests);
        let mut now = 0.0f64;
        let mut in_burst = 0usize;
        for id in 0..self.requests as u64 {
            match self.process {
                ArrivalProcess::Poisson { rate_qps } => {
                    now += exp_gap(&mut arr_rng, rate_qps);
                }
                ArrivalProcess::Bursty { rate_qps, burst } => {
                    let burst = burst.max(1);
                    if in_burst == 0 {
                        // Gap between bursts: rate_qps/burst bursts/sec.
                        now += exp_gap(&mut arr_rng, rate_qps / burst as f64);
                        in_burst = burst;
                    }
                    in_burst -= 1;
                }
            }
            let arrival = SimTime::from_secs(now);
            out.push(Request {
                id,
                node: picker.pick(&mut node_rng),
                arrival,
                deadline: self.deadline.map(|d| arrival + d),
            });
        }
        out
    }
}

/// One exponential inter-arrival gap at `rate` events per second.
/// `1 - U` keeps the argument in `(0, 1]` (the shim's `gen::<f64>()` is
/// `[0, 1)`), so the log never sees zero.
fn exp_gap(rng: &mut SmallRng, rate: f64) -> f64 {
    assert!(rate > 0.0, "arrival rate must be positive");
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

/// Inverse-CDF Zipf sampler over a seeded permutation of the node ids.
struct ZipfPicker {
    num_nodes: u64,
    /// Rank → node id (seeded shuffle, so the hot set is not id order);
    /// empty when uniform.
    perm: Vec<NodeId>,
    /// Cumulative rank weights; empty when uniform.
    cum: Vec<f64>,
}

impl ZipfPicker {
    fn new(num_nodes: u64, s: f64, seed: u64) -> Self {
        if s == 0.0 {
            return ZipfPicker {
                num_nodes,
                perm: Vec::new(),
                cum: Vec::new(),
            };
        }
        let mut perm: Vec<NodeId> = (0..num_nodes).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x217f));
        let mut cum = Vec::with_capacity(num_nodes as usize);
        let mut total = 0.0;
        for r in 0..num_nodes {
            total += ((r + 1) as f64).powf(-s);
            cum.push(total);
        }
        ZipfPicker {
            num_nodes,
            perm,
            cum,
        }
    }

    fn pick(&self, rng: &mut SmallRng) -> NodeId {
        if self.cum.is_empty() {
            return rng.gen_range(0..self.num_nodes);
        }
        let u = rng.gen::<f64>() * self.cum.last().copied().unwrap_or(1.0);
        let rank = self.cum.partition_point(|&c| c <= u);
        self.perm[rank.min(self.perm.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(process: ArrivalProcess, seed: u64) -> TrafficConfig {
        TrafficConfig {
            requests: 500,
            process,
            zipf_s: 1.1,
            num_nodes: 1000,
            seed,
            deadline: None,
        }
    }

    #[test]
    fn poisson_and_bursty_are_seed_deterministic() {
        for process in [
            ArrivalProcess::Poisson { rate_qps: 200.0 },
            ArrivalProcess::Bursty {
                rate_qps: 200.0,
                burst: 16,
            },
        ] {
            let a = cfg(process, 7).generate();
            let b = cfg(process, 7).generate();
            assert_eq!(a, b, "{process:?} not reproducible");
            let c = cfg(process, 8).generate();
            assert_ne!(a, c, "{process:?} ignores the seed");
        }
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_roughly_honoured() {
        for process in [
            ArrivalProcess::Poisson { rate_qps: 100.0 },
            ArrivalProcess::Bursty {
                rate_qps: 100.0,
                burst: 10,
            },
        ] {
            let reqs = cfg(process, 3).generate();
            assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
            assert!(reqs.iter().all(|r| (r.node) < 1000));
            // 500 requests at 100 qps ≈ 5 s of traffic; allow wide slack.
            let span = reqs.last().unwrap().arrival.as_secs();
            assert!((2.5..10.0).contains(&span), "{process:?}: span {span}");
        }
    }

    #[test]
    fn bursts_share_an_arrival_instant() {
        let reqs = cfg(
            ArrivalProcess::Bursty {
                rate_qps: 100.0,
                burst: 10,
            },
            5,
        )
        .generate();
        // Every burst of 10 shares one arrival time.
        for chunk in reqs.chunks(10) {
            assert!(chunk.iter().all(|r| r.arrival == chunk[0].arrival));
        }
    }

    #[test]
    fn zipf_skews_and_uniform_does_not() {
        let mut skewed = cfg(ArrivalProcess::Poisson { rate_qps: 100.0 }, 11);
        skewed.requests = 4000;
        let hot = top_share(&skewed.generate());
        let mut uniform = skewed.clone();
        uniform.zipf_s = 0.0;
        let flat = top_share(&uniform.generate());
        assert!(
            hot > 3.0 * flat,
            "zipf top-node share {hot} vs uniform {flat}"
        );
    }

    /// Fraction of requests hitting the single most-queried node.
    fn top_share(reqs: &[Request]) -> f64 {
        let mut counts = std::collections::HashMap::new();
        for r in reqs {
            *counts.entry(r.node).or_insert(0usize) += 1;
        }
        *counts.values().max().unwrap() as f64 / reqs.len() as f64
    }

    #[test]
    fn deadlines_are_arrival_relative() {
        let mut c = cfg(ArrivalProcess::Poisson { rate_qps: 50.0 }, 2);
        c.deadline = Some(SimTime::from_millis(20.0));
        for r in c.generate() {
            let d = r.deadline.unwrap();
            assert!((d - r.arrival).as_millis() - 20.0 < 1e-9);
        }
    }
}
