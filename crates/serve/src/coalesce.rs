//! Micro-batch coalescing: merge a window of query nodes into one
//! deduplicated frontier, remembering how to scatter results back.
//!
//! This is the paper's AppendUnique op (§III-C2) applied one level up:
//! instead of deduplicating sampled neighbors inside one mini-batch, it
//! deduplicates *query nodes across requests*, so ten requests for the
//! same hot node cost one ego-graph. The per-input index map AppendUnique
//! already produces is exactly the scatter-back table.

use wg_graph::NodeId;
use wg_sample::append_unique::{append_unique_into, AppendUniqueScratch};

/// Reusable coalescing state: warm buffers make a steady-state coalesce
/// allocation-free, matching the pipeline's scratch-arena discipline.
#[derive(Default)]
pub struct Coalescer {
    scratch: AppendUniqueScratch,
    unique: Vec<NodeId>,
    map: Vec<u32>,
    dup: Vec<u32>,
}

impl Coalescer {
    /// Deduplicate `nodes` (first-occurrence order). After the call,
    /// [`unique`](Self::unique) is the merged frontier to run one shared
    /// forward pass over, and [`map`](Self::map)`[i]` is the frontier row
    /// holding request `i`'s result.
    pub fn coalesce(&mut self, nodes: &[NodeId]) {
        // No targets: every query node goes through the neighbor path,
        // which dedups and emits the per-input index map.
        append_unique_into(
            &[],
            nodes,
            &mut self.scratch,
            &mut self.unique,
            &mut self.map,
            &mut self.dup,
        );
    }

    /// The deduplicated frontier of the last [`coalesce`](Self::coalesce).
    pub fn unique(&self) -> &[NodeId] {
        &self.unique
    }

    /// Per-input scatter map of the last [`coalesce`](Self::coalesce):
    /// input `i`'s result lives at frontier row `map()[i]`.
    pub fn map(&self) -> &[u32] {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_dedups_and_maps_back() {
        let mut c = Coalescer::default();
        c.coalesce(&[7, 3, 7, 9, 3, 7]);
        assert_eq!(c.unique(), &[7, 3, 9]);
        let map = c.map();
        for (i, &node) in [7u64, 3, 7, 9, 3, 7].iter().enumerate() {
            assert_eq!(c.unique()[map[i] as usize], node);
        }
    }

    #[test]
    fn coalesce_reuses_buffers_and_handles_singletons() {
        let mut c = Coalescer::default();
        c.coalesce(&[1, 1, 1]);
        assert_eq!(c.unique(), &[1]);
        assert_eq!(c.map(), &[0, 0, 0]);
        c.coalesce(&[5]);
        assert_eq!(c.unique(), &[5]);
        assert_eq!(c.map(), &[0]);
    }
}
