//! End-to-end serving contracts:
//!
//! * **Bit-identity**: a coalesced micro-batch answers every request
//!   with exactly the bits sequential per-request execution produces —
//!   across cache modes and thread counts. Coalescing moves time, never
//!   values.
//! * **Admission accounting**: `admitted + shed == offered`, always.
//! * **Determinism**: a (pipeline seed, traffic seed, config) triple
//!   reproduces the entire report.
//! * **Throughput**: on a Zipf-skewed open-loop workload the coalesced
//!   engine sustains at least 2x the sequential QPS.

use std::sync::Arc;

use wg_serve::{ArrivalProcess, BatchMode, Request, ServeConfig, ServeEngine, TrafficConfig};
use wg_sim::SimTime;
use wholegraph::prelude::*;

fn dataset() -> Arc<SyntheticDataset> {
    Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        1500,
        5,
    ))
}

/// A serving pipeline with one short training epoch behind it (so the
/// logits are not the init weights) and an explicitly pinned cache
/// config — `None` pins the cache *off* so these tests don't inherit a
/// CI matrix leg's `WG_CACHE_ROWS`.
fn pipeline(cache: Option<(usize, CacheMode)>) -> Pipeline {
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let (rows, mode) = cache.unwrap_or((0, CacheMode::Static));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
        .with_seed(11)
        .with_cache(rows, mode);
    let mut p = Pipeline::new(machine, dataset(), cfg).unwrap();
    p.train_epoch(0);
    p
}

fn zipf_traffic(requests: usize, rate_qps: f64, seed: u64) -> Vec<Request> {
    TrafficConfig {
        requests,
        process: ArrivalProcess::Poisson { rate_qps },
        zipf_s: 1.1,
        num_nodes: 1000,
        seed,
        deadline: None,
    }
    .generate()
}

/// Run the traffic through an engine and return completions sorted by
/// request id (dispatch order differs between modes).
fn run_sorted(pipe: &mut Pipeline, cfg: ServeConfig, traffic: &[Request]) -> wg_serve::ServeReport {
    let mut report = ServeEngine::new(cfg).run(pipe, traffic);
    report.completions.sort_by_key(|c| c.id);
    report
}

#[test]
fn coalesced_is_bit_identical_to_sequential_across_cache_modes() {
    let traffic = zipf_traffic(300, 4000.0, 7);
    let baseline = run_sorted(&mut pipeline(None), ServeConfig::sequential(), &traffic);
    assert_eq!(baseline.admitted, 300);
    for cache in [
        None,
        Some((256, CacheMode::Static)),
        Some((256, CacheMode::Clock)),
    ] {
        let coalesced = run_sorted(
            &mut pipeline(cache),
            ServeConfig::coalesced(64, SimTime::from_millis(5.0)),
            &traffic,
        );
        assert_eq!(coalesced.admitted, baseline.admitted, "{cache:?}");
        assert!(coalesced.batches < baseline.batches, "{cache:?}");
        for (a, b) in baseline.completions.iter().zip(&coalesced.completions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.pred, b.pred, "request {} pred diverged ({cache:?})", a.id);
            assert_eq!(
                a.logits_checksum, b.logits_checksum,
                "request {} logits diverged ({cache:?})",
                a.id
            );
        }
    }
}

#[test]
fn coalesced_results_are_thread_count_invariant() {
    // The work-stealing pool promises bit-identical numerics at any
    // width; `run_sequential` pins one run to a single thread in-process
    // (the CI matrix additionally re-runs the whole suite under
    // `WG_THREADS=1` and the clock-cache leg).
    let traffic = zipf_traffic(120, 4000.0, 17);
    let cfg = ServeConfig::coalesced(32, SimTime::from_millis(2.0));
    let parallel = run_sorted(&mut pipeline(None), cfg, &traffic);
    let sequential = rayon::run_sequential(|| run_sorted(&mut pipeline(None), cfg, &traffic));
    for (a, b) in parallel.completions.iter().zip(&sequential.completions) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.pred, b.pred, "request {} pred thread-variant", a.id);
        assert_eq!(
            a.logits_checksum, b.logits_checksum,
            "request {} logits thread-variant",
            a.id
        );
    }
}

#[test]
fn shed_accounting_balances_under_overload() {
    // A tiny queue under a hard burst must shed; the books must balance.
    let traffic = TrafficConfig {
        requests: 400,
        process: ArrivalProcess::Bursty {
            rate_qps: 100_000.0,
            burst: 50,
        },
        zipf_s: 1.1,
        num_nodes: 1000,
        seed: 3,
        deadline: None,
    }
    .generate();
    let mut pipe = pipeline(None);
    let report = ServeEngine::new(ServeConfig {
        mode: BatchMode::Coalesced {
            max_batch: 8,
            max_delay: SimTime::from_micros(50.0),
        },
        queue_capacity: 16,
    })
    .run(&mut pipe, &traffic);
    assert_eq!(report.offered, 400);
    assert_eq!(report.admitted + report.shed, report.offered);
    assert!(report.shed > 0, "overload with a 16-deep queue must shed");
    assert_eq!(report.completions.len(), report.admitted);
}

#[test]
fn deadlines_mark_late_requests_expired() {
    let traffic = TrafficConfig {
        requests: 200,
        process: ArrivalProcess::Bursty {
            rate_qps: 50_000.0,
            burst: 40,
        },
        zipf_s: 0.0,
        num_nodes: 1000,
        seed: 9,
        deadline: Some(SimTime::from_micros(1.0)),
    }
    .generate();
    let mut pipe = pipeline(None);
    let report = ServeEngine::new(ServeConfig::sequential()).run(&mut pipe, &traffic);
    // A 1 µs SLO under a 40-deep burst is unmeetable for queued requests.
    assert!(report.expired > 0);
    assert_eq!(
        report.expired,
        report.completions.iter().filter(|c| c.expired).count()
    );
    // Expired requests were still answered.
    assert_eq!(report.admitted + report.shed, report.offered);
}

#[test]
fn serving_is_deterministic_end_to_end() {
    let traffic = zipf_traffic(150, 3000.0, 21);
    let cfg = ServeConfig::coalesced(32, SimTime::from_millis(2.0));
    let a = run_sorted(&mut pipeline(None), cfg, &traffic);
    let b = run_sorted(&mut pipeline(None), cfg, &traffic);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.makespan, b.makespan);
    for (x, y) in a.completions.iter().zip(&b.completions) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.pred, y.pred);
        assert_eq!(x.logits_checksum, y.logits_checksum);
        assert_eq!(x.finish, y.finish);
    }
}

#[test]
fn coalescing_doubles_sustained_qps_on_zipf_traffic() {
    // The tentpole claim at test scale: open-loop Zipf traffic hot
    // enough to queue behind sequential serving, where the coalescer's
    // shared passes amortize per-batch fixed costs and dedup hot nodes.
    let traffic = zipf_traffic(400, 50_000.0, 13);
    let seq = run_sorted(&mut pipeline(None), ServeConfig::sequential(), &traffic);
    let coal = run_sorted(
        &mut pipeline(None),
        ServeConfig::coalesced(64, SimTime::from_millis(2.0)),
        &traffic,
    );
    assert_eq!(seq.shed, 0);
    assert_eq!(coal.shed, 0);
    assert!(coal.dedup_factor() > 1.0, "Zipf window must dedup");
    assert!(
        coal.qps() >= 2.0 * seq.qps(),
        "coalesced {:.0} qps !>= 2x sequential {:.0} qps",
        coal.qps(),
        seq.qps()
    );
}
