//! `wg` — command-line front end for the WholeGraph reproduction.
//!
//! ```text
//! wg gen   --dataset products --scale 800 --out data.wgds     generate + save a stand-in
//! wg train --data data.wgds --model sage --framework wholegraph --epochs 5
//! wg train --dataset products --scale 800 --model gat ...      (generate on the fly)
//! wg serve --dataset products --scale 800 --rate 20000 --zipf 1.1  online inference
//! wg info  --data data.wgds                                    dataset summary
//! ```
//!
//! Argument parsing is deliberately dependency-free (flag pairs only).

use std::collections::HashMap;
use std::process::exit;
use std::sync::Arc;

use wg_graph::io::{load_dataset, save_dataset};
use wg_graph::{DatasetKind, SyntheticDataset};
use wholegraph::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  wg gen   --dataset <products|papers100m|friendster|uk> --scale <N> --out <file> [--seed <N>]\n           [--out-of-core <resident-frac>]   (heavy-tailed profile; prints WG_STORAGE_BUDGET_ROWS)\n  wg train [--data <file> | --dataset <kind> --scale <N>] [--model <gcn|sage|gat>]\n           [--framework <wholegraph|dgl|pyg>] [--epochs <N>] [--batch <N>] [--hidden <N>]\n           [--layers <N>] [--fanout <N>] [--gpus <N>] [--seed <N>] [--overlap]\n           [--cache-rows <N>] [--cache-mode <static|clock>] [--storage-rows <N>]\n           [--trace <out.json>]\n  wg multinode --nodes <N> [--compress topk:<frac>] [--delayed-agg [<period>]]\n           [--gpus <per-node>] [--epochs <N>] [--trace <out.json>]\n           [--cache-rows <N>] [--cache-mode <static|clock>] [--storage-rows <N>]\n           [dataset/model/batch/seed flags as in train]\n  wg serve [--data <file> | --dataset <kind> --scale <N>] [--model <gcn|sage|gat>]\n           [--epochs <warmup-epochs>] [--gpus <N>] [--seed <N>]\n           [--requests <N>] [--rate <qps>] [--burst <N>] [--zipf <s>]\n           [--max-batch <N>] [--max-delay-us <f>] [--queue-cap <N>] [--sequential]\n           [--deadline-us <f>] [--cache-rows <N>] [--cache-mode <static|clock>]\n           [--storage-rows <N>] [--trace <out.json>]\n  wg info  --data <file>"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let k = &args[i];
        if !k.starts_with("--") {
            eprintln!("bad argument: {k}");
            usage();
        }
        // A flag with no value (end of args, or followed by another
        // flag) is a boolean switch, e.g. `--overlap`.
        if i + 1 >= args.len() || args[i + 1].starts_with("--") {
            out.insert(k[2..].to_string(), "true".to_string());
            i += 1;
        } else {
            out.insert(k[2..].to_string(), args[i + 1].clone());
            i += 2;
        }
    }
    out
}

fn dataset_kind(name: &str) -> DatasetKind {
    match name.to_ascii_lowercase().as_str() {
        "products" | "ogbn-products" => DatasetKind::OgbnProducts,
        "papers100m" | "papers" | "ogbn-papers100m" => DatasetKind::OgbnPapers100M,
        "friendster" => DatasetKind::Friendster,
        "uk" | "uk_domain" | "ukdomain" => DatasetKind::UkDomain,
        other => {
            eprintln!("unknown dataset {other}");
            usage();
        }
    }
}

fn model_kind(name: &str) -> ModelKind {
    match name.to_ascii_lowercase().as_str() {
        "gcn" => ModelKind::Gcn,
        "sage" | "graphsage" => ModelKind::GraphSage,
        "gat" => ModelKind::Gat,
        other => {
            eprintln!("unknown model {other}");
            usage();
        }
    }
}

fn framework(name: &str) -> Framework {
    match name.to_ascii_lowercase().as_str() {
        "wholegraph" | "wg" => Framework::WholeGraph,
        "dgl" => Framework::Dgl,
        "pyg" => Framework::Pyg,
        other => {
            eprintln!("unknown framework {other}");
            usage();
        }
    }
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{key} expects a number, got {v}");
            usage();
        }),
    }
}

/// Parse `--cache-rows <N>` / `--cache-mode <static|clock>` into a
/// [`CacheConfig`]. Absent flags return `None`, leaving the pipeline on
/// its environment default (`WG_CACHE_ROWS`/`WG_CACHE_MODE`);
/// `--cache-rows 0` pins the cache off regardless of the environment.
fn cache_config(flags: &HashMap<String, String>) -> Option<CacheConfig> {
    let rows = flags.get("cache-rows")?;
    let rows: usize = rows.parse().unwrap_or_else(|_| {
        eprintln!("--cache-rows expects a row count, got {rows}");
        usage();
    });
    let mode = match flags.get("cache-mode").map(String::as_str) {
        None => CacheMode::Static,
        Some(m) => CacheMode::parse(m).unwrap_or_else(|| {
            eprintln!("--cache-mode expects static|clock, got {m}");
            usage();
        }),
    };
    Some(CacheConfig { rows, mode })
}

/// Parse `--storage-rows <N>` into a [`StorageConfig`]. An absent flag
/// returns `None`, leaving the pipeline on its environment default
/// (`WG_STORAGE_BUDGET_ROWS`); `--storage-rows 0` pins the out-of-core
/// tier off regardless of the environment.
fn storage_config(flags: &HashMap<String, String>) -> Option<StorageConfig> {
    let rows = flags.get("storage-rows")?;
    let budget_rows: usize = rows.parse().unwrap_or_else(|_| {
        eprintln!("--storage-rows expects a row count, got {rows}");
        usage();
    });
    Some(StorageConfig { budget_rows })
}

fn load_or_generate(flags: &HashMap<String, String>) -> Arc<SyntheticDataset> {
    if let Some(path) = flags.get("data") {
        match load_dataset(path) {
            Ok(d) => Arc::new(d),
            Err(e) => {
                eprintln!("failed to load {path}: {e}");
                exit(1);
            }
        }
    } else if let Some(name) = flags.get("dataset") {
        let kind = dataset_kind(name);
        let scale = num(flags, "scale", 800u64);
        let seed = num(flags, "seed", 0u64);
        Arc::new(SyntheticDataset::generate(kind, scale, seed))
    } else {
        eprintln!("need --data <file> or --dataset <kind>");
        usage();
    }
}

fn cmd_gen(flags: HashMap<String, String>) {
    let kind = dataset_kind(
        flags
            .get("dataset")
            .map(String::as_str)
            .unwrap_or_else(|| usage()),
    );
    let scale = num(&flags, "scale", 800u64);
    let seed = num(&flags, "seed", 0u64);
    let out = flags.get("out").cloned().unwrap_or_else(|| usage());
    // `--out-of-core <frac>` generates a larger-than-memory configuration:
    // heavy-tailed degree profile plus a suggested DSM residency budget
    // covering only <frac> of the feature rows.
    let ooc_budget = flags.get("out-of-core").map(|v| {
        let frac: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("--out-of-core expects a resident fraction in (0, 1], got {v}");
            usage();
        });
        if !(frac > 0.0 && frac <= 1.0) {
            eprintln!("--out-of-core expects a resident fraction in (0, 1], got {v}");
            usage();
        }
        frac
    });
    let (d, budget) = match ooc_budget {
        Some(frac) => {
            let (d, budget) = SyntheticDataset::generate_out_of_core(kind, scale, seed, frac);
            (d, Some(budget))
        }
        None => (SyntheticDataset::generate(kind, scale, seed), None),
    };
    if let Err(e) = save_dataset(&d, &out) {
        eprintln!("failed to save {out}: {e}");
        exit(1);
    }
    println!(
        "wrote {out}: {} stand-in at 1/{scale} — {} nodes, {} edges, {} features, {} classes",
        kind.name(),
        d.num_nodes(),
        d.num_edges(),
        d.feature_dim,
        d.num_classes
    );
    if let Some(budget) = budget {
        println!(
            "out-of-core: keep {budget} of {} feature rows DSM-resident — train with \
             `--storage-rows {budget}` or `WG_STORAGE_BUDGET_ROWS={budget}`",
            d.num_nodes()
        );
    }
}

fn cmd_info(flags: HashMap<String, String>) {
    let d = load_or_generate(&flags);
    println!("dataset: {} (scale 1/{})", d.kind.name(), d.scale);
    println!("  nodes: {}", d.num_nodes());
    println!("  edges: {} (stored, symmetrized)", d.num_edges());
    println!("  avg degree: {:.1}", d.graph.avg_degree());
    println!("  max degree: {}", d.graph.max_degree());
    println!("  features: {} (f32)", d.feature_dim);
    println!("  classes: {}", d.num_classes);
    println!(
        "  splits: {} train / {} val / {} test",
        d.train.len(),
        d.val.len(),
        d.test.len()
    );
    println!("  structure bytes: {}", d.graph.structure_bytes());
}

fn cmd_train(flags: HashMap<String, String>) {
    let dataset = load_or_generate(&flags);
    let fw = framework(
        flags
            .get("framework")
            .map(String::as_str)
            .unwrap_or("wholegraph"),
    );
    let model = model_kind(flags.get("model").map(String::as_str).unwrap_or("sage"));
    let epochs: u64 = num(&flags, "epochs", 5);
    let gpus: u32 = num(&flags, "gpus", 8);
    let layers: usize = num(&flags, "layers", 2);
    let fanout: usize = num(&flags, "fanout", 10);
    let exec = if flags.contains_key("overlap") {
        ExecMode::Overlapped
    } else {
        ExecMode::Serial
    };
    let mut cfg = PipelineConfig {
        batch_size: num(&flags, "batch", 128),
        hidden: num(&flags, "hidden", 64),
        num_layers: layers,
        fanouts: vec![fanout; layers],
        ..PipelineConfig::tiny(fw, model)
    }
    .with_seed(num(&flags, "seed", 0))
    .with_exec(exec);
    if let Some(cc) = cache_config(&flags) {
        cfg.cache = Some(cc);
    }
    if let Some(sc) = storage_config(&flags) {
        cfg.storage = Some(sc);
    }

    let machine = Machine::new(MachineConfig::dgx_like(gpus));
    let cache_desc = match cfg.resolved_cache() {
        Some(cc) => format!(", {} cache of {} rows/device", cc.mode.as_str(), cc.rows),
        None => String::new(),
    };
    let storage_desc = match cfg.resolved_storage() {
        Some(sc) => format!(", out-of-core tier with {} resident rows", sc.budget_rows),
        None => String::new(),
    };
    println!(
        "training {} with {} on {} ({} GPUs simulated, {} executor{cache_desc}{storage_desc})",
        model.name(),
        fw.name(),
        dataset.kind.name(),
        gpus,
        exec.name()
    );
    let trace_path = flags.get("trace").cloned();
    if trace_path.is_some() {
        wg_trace::enable_all();
    }
    let mut pipe = match Pipeline::new(machine, dataset, cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pipeline setup failed: {e}");
            exit(1);
        }
    };
    for epoch in 0..epochs {
        let r = pipe.train_epoch(epoch);
        let val = pipe.evaluate(&pipe.dataset().val.clone());
        println!(
            "epoch {epoch}: loss {:.4}  val-acc {:5.1}%  epoch {}  (sample {} | gather {} | train {} | comm {})",
            r.loss,
            val * 100.0,
            r.epoch_time,
            r.sample_time,
            r.gather_time,
            r.train_time,
            r.comm_time
        );
        if r.storage_time > SimTime::ZERO {
            println!(
                "  storage tier: {} of NVMe reads inside gather; {} exposed after prefetch overlap",
                r.storage_time, r.storage_exposed_time
            );
        }
        let occ = r.occupancy;
        println!(
            "  gpu0 occupancy: {:.1}% busy ({} busy / {} idle; sampling {}+{} | gather {}+{} | train {}+{} | comm {}+{})",
            occ.utilization() * 100.0,
            occ.busy,
            occ.idle,
            occ.sampling.busy,
            occ.sampling.idle,
            occ.gather.busy,
            occ.gather.idle,
            occ.training.busy,
            occ.training.idle,
            occ.comm.busy,
            occ.comm.idle
        );
    }
    let test = pipe.evaluate(&pipe.dataset().test.clone());
    println!("test accuracy: {:.1}%", test * 100.0);
    if let Some(path) = trace_path {
        wg_trace::disable_all();
        if let Err(e) = wholegraph::observability::write_chrome_trace(&path, pipe.machine()) {
            eprintln!("failed to write trace {path}: {e}");
            exit(1);
        }
        let snap = wg_trace::metrics::snapshot();
        println!(
            "chrome trace written to {path} ({} metric series; load in chrome://tracing or ui.perfetto.dev)",
            snap.counters.len() + snap.gauges.len() + snap.histograms.len()
        );
    }
}

/// Parse `--compress topk:<frac>` / `--delayed-agg [<period>]` into a
/// [`SyncConfig`].
fn sync_config(flags: &HashMap<String, String>) -> SyncConfig {
    let mut sync = SyncConfig::default();
    if let Some(spec) = flags.get("compress") {
        match spec.strip_prefix("topk:").map(str::parse::<f64>) {
            Some(Ok(frac)) if frac > 0.0 && frac <= 1.0 => sync.compress_topk = Some(frac),
            _ => {
                eprintln!("--compress expects topk:<frac in (0,1]>, got {spec}");
                usage();
            }
        }
    }
    if let Some(v) = flags.get("delayed-agg") {
        // Bare `--delayed-agg` defaults to syncing every 4th wave.
        sync.delayed_agg_period = if v == "true" {
            4
        } else {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--delayed-agg expects a wave period, got {v}");
                usage();
            })
        };
    }
    sync
}

fn cmd_multinode(flags: HashMap<String, String>) {
    let dataset = load_or_generate(&flags);
    let fw = framework(
        flags
            .get("framework")
            .map(String::as_str)
            .unwrap_or("wholegraph"),
    );
    let model = model_kind(flags.get("model").map(String::as_str).unwrap_or("sage"));
    let nodes: u32 = num(&flags, "nodes", 4);
    let gpus: u32 = num(&flags, "gpus", 8);
    let epochs: u64 = num(&flags, "epochs", 3);
    let layers: usize = num(&flags, "layers", 2);
    let fanout: usize = num(&flags, "fanout", 10);
    let mut pipe_cfg = PipelineConfig {
        batch_size: num(&flags, "batch", 128),
        hidden: num(&flags, "hidden", 64),
        num_layers: layers,
        fanouts: vec![fanout; layers],
        ..PipelineConfig::tiny(fw, model)
    }
    .with_seed(num(&flags, "seed", 0));
    if let Some(cc) = cache_config(&flags) {
        pipe_cfg.cache = Some(cc);
    }
    if let Some(sc) = storage_config(&flags) {
        pipe_cfg.storage = Some(sc);
    }
    let sync = sync_config(&flags);
    let mode = if let Some(f) = sync.compress_topk {
        format!("top-k {:.0}% compressed sync", f * 100.0)
    } else if sync.delayed_agg_period > 1 {
        format!(
            "delayed aggregation every {} waves",
            sync.delayed_agg_period
        )
    } else {
        "full per-wave sync".to_string()
    };
    let cfg = MultiNodeConfig::new(nodes).with_gpus(gpus).with_sync(sync);
    let trace_path = flags.get("trace").cloned();
    if trace_path.is_some() {
        wg_trace::enable_all();
    }
    let mut mn = match MultiNode::new(dataset, pipe_cfg, cfg) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cluster setup failed: {e}");
            exit(1);
        }
    };
    let q = mn.plan().quality();
    println!(
        "multi-node {} x {} GPUs on {} ({} with {}; edge cut {:.1}%, {} boundary nodes)",
        nodes,
        gpus,
        mn.pipeline(0).dataset().kind.name(),
        model.name(),
        mode,
        q.cut_fraction * 100.0,
        q.boundary_nodes
    );
    for epoch in 0..epochs {
        let r = mn.train_epoch(epoch);
        let val = mn.evaluate(&mn.pipeline(0).dataset().val.clone());
        let halo_bytes: u64 = r.per_node.iter().map(|n| n.halo_bytes).sum();
        println!(
            "epoch {epoch}: loss {:.4}  val-acc {:5.1}%  epoch {}  ({} iters / {} waves; sync {} over {} B; halo {} B)",
            r.loss,
            val * 100.0,
            r.epoch_time,
            r.executed_iterations,
            r.waves,
            r.sync_time,
            r.sync_bytes,
            halo_bytes
        );
        for n in &r.per_node {
            let Some(rep) = n.report else { continue };
            println!(
                "  node {}: epoch {}  ({} iters; sample {} | gather {} | train {} | comm {}; halo {} rows)",
                n.node,
                rep.epoch_time,
                n.iterations,
                rep.sample_time,
                rep.gather_time,
                rep.train_time,
                rep.comm_time,
                n.halo_rows
            );
        }
    }
    let test = mn.evaluate(&mn.pipeline(0).dataset().test.clone());
    println!("test accuracy: {:.1}%", test * 100.0);
    if let Some(path) = trace_path {
        wg_trace::disable_all();
        let machines = mn.machines();
        if let Err(e) = wholegraph::observability::write_cluster_chrome_trace(&path, &machines) {
            eprintln!("failed to write trace {path}: {e}");
            exit(1);
        }
        println!(
            "cluster chrome trace written to {path} (one process per node; load in chrome://tracing or ui.perfetto.dev)"
        );
    }
}

fn cmd_serve(flags: HashMap<String, String>) {
    use wg_serve::{ArrivalProcess, ServeConfig, ServeEngine, TrafficConfig};

    let dataset = load_or_generate(&flags);
    let model = model_kind(flags.get("model").map(String::as_str).unwrap_or("sage"));
    let warmup: u64 = num(&flags, "epochs", 1);
    let gpus: u32 = num(&flags, "gpus", 8);
    let layers: usize = num(&flags, "layers", 2);
    let fanout: usize = num(&flags, "fanout", 10);
    let seed: u64 = num(&flags, "seed", 0);
    let mut cfg = PipelineConfig {
        batch_size: num(&flags, "batch", 128),
        hidden: num(&flags, "hidden", 64),
        num_layers: layers,
        fanouts: vec![fanout; layers],
        ..PipelineConfig::tiny(Framework::WholeGraph, model)
    }
    .with_seed(seed);
    if let Some(cc) = cache_config(&flags) {
        cfg.cache = Some(cc);
    }
    if let Some(sc) = storage_config(&flags) {
        cfg.storage = Some(sc);
    }

    let rate_qps: f64 = num(&flags, "rate", 10_000.0);
    let burst: usize = num(&flags, "burst", 0);
    let process = if burst > 1 {
        ArrivalProcess::Bursty { rate_qps, burst }
    } else {
        ArrivalProcess::Poisson { rate_qps }
    };
    let traffic_cfg = TrafficConfig {
        requests: num(&flags, "requests", 2000),
        process,
        zipf_s: num(&flags, "zipf", 1.1),
        num_nodes: dataset.num_nodes() as u64,
        seed: seed ^ 0x5e21,
        deadline: flags.get("deadline-us").map(|v| match v.parse::<f64>() {
            Ok(us) => SimTime::from_micros(us),
            Err(_) => {
                eprintln!("--deadline-us expects microseconds, got {v}");
                usage();
            }
        }),
    };
    let serve_cfg = if flags.contains_key("sequential") {
        ServeConfig {
            queue_capacity: num(&flags, "queue-cap", 4096),
            ..ServeConfig::sequential()
        }
    } else {
        ServeConfig {
            queue_capacity: num(&flags, "queue-cap", 4096),
            ..ServeConfig::coalesced(
                num(&flags, "max-batch", 64),
                SimTime::from_micros(num(&flags, "max-delay-us", 1000.0)),
            )
        }
    };

    let machine = Machine::new(MachineConfig::dgx_like(gpus));
    let cache_desc = match cfg.resolved_cache() {
        Some(cc) => format!(", {} cache of {} rows/device", cc.mode.as_str(), cc.rows),
        None => String::new(),
    };
    println!(
        "serving {} on {} ({} GPUs simulated{cache_desc}); {} requests at {} qps, zipf {}",
        model.name(),
        dataset.kind.name(),
        gpus,
        traffic_cfg.requests,
        rate_qps,
        traffic_cfg.zipf_s,
    );
    let trace_path = flags.get("trace").cloned();
    if trace_path.is_some() {
        wg_trace::enable_all();
    }
    let mut pipe = match Pipeline::new(machine, dataset, cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pipeline setup failed: {e}");
            exit(1);
        }
    };
    for epoch in 0..warmup {
        let r = pipe.train_epoch(epoch);
        println!("warmup epoch {epoch}: loss {:.4}", r.loss);
    }
    let traffic = traffic_cfg.generate();
    let report = ServeEngine::new(serve_cfg).run(&mut pipe, &traffic);
    let fmt_lat = |t: Option<SimTime>| match t {
        Some(t) => format!("{:.0} us", t.as_micros()),
        None => "n/a".to_string(),
    };
    println!(
        "served {}/{} requests ({} shed, {} expired) in {} batches: {:.0} qps sustained",
        report.admitted,
        report.offered,
        report.shed,
        report.expired,
        report.batches,
        report.qps()
    );
    println!(
        "  latency p50 {} | p99 {}  (dedup factor {:.2}; sample {} | gather {} | forward {})",
        fmt_lat(report.p50()),
        fmt_lat(report.p99()),
        report.dedup_factor(),
        report.sample_time,
        report.gather_time,
        report.compute_time
    );
    if let Some(path) = trace_path {
        wg_trace::disable_all();
        if let Err(e) = wholegraph::observability::write_chrome_trace(&path, pipe.machine()) {
            eprintln!("failed to write trace {path}: {e}");
            exit(1);
        }
        let snap = wg_trace::metrics::snapshot();
        // The serve.latency_us histogram's interpolated quantiles sanity-
        // check the exact ones above (satellite: HistogramSnapshot::quantile).
        if let Some(h) = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve.latency_us")
        {
            println!(
                "  histogram-estimated p50 {:.0} us | p99 {:.0} us (from {} observations)",
                h.p50().unwrap_or(0.0),
                h.p99().unwrap_or(0.0),
                h.count
            );
        }
        println!(
            "chrome trace written to {path} ({} metric series; load in chrome://tracing or ui.perfetto.dev)",
            snap.counters.len() + snap.gauges.len() + snap.histograms.len()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "gen" => cmd_gen(flags),
        "info" => cmd_info(flags),
        "train" => cmd_train(flags),
        "multinode" => cmd_multinode(flags),
        "serve" => cmd_serve(flags),
        _ => usage(),
    }
}
