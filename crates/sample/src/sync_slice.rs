//! Shared-slice positional writes for the two-pass sampling scheme.
//!
//! The flatten pass writes each frontier node's sampled neighbors into a
//! *variable-length* CSR range of one flat buffer. `par_chunks_mut` can
//! only split at uniform boundaries, so the parallel loop instead shares
//! the whole buffer and every task writes only its own `[offsets[i],
//! offsets[i+1])` range — the same disjointness argument the positional
//! `collect` in the rayon shim relies on.

use std::marker::PhantomData;

/// A mutable slice shareable across rayon tasks for disjoint positional
/// writes.
pub(crate) struct SyncSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: tasks only write through `write`, and every caller guarantees
// distinct tasks touch distinct indices (CSR ranges / exclusive-scan ranks
// are disjoint by construction).
unsafe impl<T: Send> Send for SyncSliceMut<'_, T> {}
unsafe impl<T: Send> Sync for SyncSliceMut<'_, T> {}

impl<'a, T> SyncSliceMut<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        SyncSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// `index` must be in bounds and no other task may read or write it
    /// concurrently.
    #[inline]
    pub(crate) unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        *self.ptr.add(index) = value;
    }
}
