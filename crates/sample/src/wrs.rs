//! Algorithm 1 — fully parallel random sampling **without replacement**.
//!
//! Sampling M of N neighbors without duplicates is hard to parallelize
//! because "each thread has to know neighbors sampled by other threads".
//! WholeGraph adopts the path-doubling construction of Rajan, Ghosh & Gupta
//! (IPL '89): draw `r[i] ∈ [0, N-1-i]` independently, then repair the
//! collisions that a *sequential* Fisher–Yates would have resolved through
//! its swap chain, using a sort + pointer-jumping pass. The result is
//! exactly what sequential Fisher–Yates would output for the same draws —
//! a fact the property tests below verify — so uniformity follows from
//! Fisher–Yates' correctness.
//!
//! On the GPU the M threads handling one target node cooperate inside one
//! block; here each target node's sample is an independent unit of rayon
//! work and the path-doubling structure is preserved faithfully.

use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::radix::sort_with_indices;

/// Reusable scratch buffers for the path-doubling sampler (one per worker
/// thread; avoids per-node allocation in the sampling hot loop).
#[derive(Default)]
pub struct PathDoublingSampler {
    r: Vec<u32>,
    chain: Vec<u32>,
    chain_next: Vec<u32>,
    q: Vec<u32>,
    last: Vec<u32>,
}

impl PathDoublingSampler {
    /// Fresh sampler with empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample `m` distinct indices from `0..n` without replacement,
    /// appending them to `out`. Requires `m <= n`.
    ///
    /// This is Algorithm 1 verbatim: lines are annotated with the paper's
    /// line numbers.
    pub fn sample(&mut self, m: usize, n: usize, rng: &mut SmallRng, out: &mut Vec<u32>) {
        assert!(m <= n, "cannot sample {m} of {n} without replacement");
        if m == 0 {
            return;
        }
        if m == n {
            // Degenerate case the kernel special-cases: "all of N neighbors
            // are sampled, and each thread can simply output its id".
            out.extend(0..n as u32);
            return;
        }
        let (r, chain, chain_next, q, last) = (
            &mut self.r,
            &mut self.chain,
            &mut self.chain_next,
            &mut self.q,
            &mut self.last,
        );
        r.clear();
        chain.clear();
        q.resize(m, 0);
        last.resize(m, 0);

        // Lines 1–4: r[i] ← random(N-1-i); chain[i] ← i.
        for i in 0..m {
            r.push(rng.gen_range(0..(n - i) as u32));
            chain.push(i as u32);
        }

        // Line 5: s, p ← parallel_sort(r) (stable: ties by original index).
        let (s, p) = sort_with_indices(r);

        // Lines 6–11: q[p[i]] ← i; the *last* occurrence of each drawn
        // value v ≥ N-M becomes the chain target of the step that retires
        // position v (step N-v-1).
        for i in 0..m {
            q[p[i] as usize] = i as u32;
            let is_last_of_group = i == m - 1 || s[i] != s[i + 1];
            if is_last_of_group && s[i] as usize >= n - m {
                chain[n - s[i] as usize - 1] = p[i];
            }
        }

        // Line 12: chain ← path_doubling(chain). Pointer jumping converges
        // in ⌈log2 M⌉ rounds because chains are strictly decreasing.
        let rounds = usize::BITS - m.leading_zeros();
        chain_next.resize(m, 0);
        for _ in 0..rounds {
            for i in 0..m {
                chain_next[i] = chain[chain[i] as usize];
            }
            std::mem::swap(chain, chain_next);
        }

        // Lines 13–15: last[i] ← N - chain[i] - 1.
        for i in 0..m {
            last[i] = (n - chain[i] as usize - 1) as u32;
        }

        // Lines 16–22: first occurrence of a value keeps its draw; later
        // occurrences read the value their predecessor's retirement step
        // exposed.
        for i in 0..m {
            let qi = q[i] as usize;
            let first_of_group = qi == 0 || s[qi] != s[qi - 1];
            if first_of_group {
                out.push(r[i]);
            } else {
                out.push(last[p[qi - 1] as usize]);
            }
        }
    }
}

/// Largest `m` the allocation-free [`sample_small`] handles. Covers the
/// paper's fanouts (30) with headroom; larger fanouts fall back to
/// [`PathDoublingSampler`].
pub const STACK_FANOUT_MAX: usize = 64;

/// Allocation-free Algorithm 1 for `m ≤ STACK_FANOUT_MAX`: identical
/// structure to [`PathDoublingSampler::sample`], but every intermediate
/// lives in a fixed stack array, and the parallel sort of line 5 becomes an
/// insertion sort over `pack(value, index)` keys. Packed keys are distinct
/// (the index bits break ties), so *any* comparison sort produces the same
/// total order as the radix sort — outputs are bit-identical to the heap
/// sampler for the same draws. Writes the `m` sampled indices into `out`.
pub fn sample_small(m: usize, n: usize, rng: &mut SmallRng, out: &mut [u32]) {
    assert!(m <= n, "cannot sample {m} of {n} without replacement");
    assert!(m <= STACK_FANOUT_MAX);
    assert_eq!(out.len(), m);
    if m == 0 {
        return;
    }
    if m == n {
        for (i, o) in out.iter_mut().enumerate() {
            *o = i as u32;
        }
        return;
    }
    let mut r = [0u32; STACK_FANOUT_MAX];
    let mut chain = [0u32; STACK_FANOUT_MAX];
    let mut chain_next = [0u32; STACK_FANOUT_MAX];
    let mut q = [0u32; STACK_FANOUT_MAX];
    let mut last = [0u32; STACK_FANOUT_MAX];
    let mut keys = [0u64; STACK_FANOUT_MAX];

    // Lines 1–4: r[i] ← random(N-1-i); chain[i] ← i. Same draw order as the
    // heap sampler, so the same RNG state yields the same sample.
    for i in 0..m {
        r[i] = rng.gen_range(0..(n - i) as u32);
        chain[i] = i as u32;
        keys[i] = crate::radix::pack(r[i], i as u32);
    }

    // Line 5: stable sort by value (stability via the packed index bits).
    for i in 1..m {
        let k = keys[i];
        let mut j = i;
        while j > 0 && keys[j - 1] > k {
            keys[j] = keys[j - 1];
            j -= 1;
        }
        keys[j] = k;
    }
    let s = |i: usize| (keys[i] >> 32) as u32;
    let p = |i: usize| keys[i] as u32;

    // Lines 6–11.
    for i in 0..m {
        q[p(i) as usize] = i as u32;
        let is_last_of_group = i == m - 1 || s(i) != s(i + 1);
        if is_last_of_group && s(i) as usize >= n - m {
            chain[n - s(i) as usize - 1] = p(i);
        }
    }

    // Line 12: pointer jumping.
    let rounds = usize::BITS - m.leading_zeros();
    for _ in 0..rounds {
        for i in 0..m {
            chain_next[i] = chain[chain[i] as usize];
        }
        chain[..m].copy_from_slice(&chain_next[..m]);
    }

    // Lines 13–15.
    for i in 0..m {
        last[i] = (n - chain[i] as usize - 1) as u32;
    }

    // Lines 16–22.
    for (i, o) in out.iter_mut().enumerate() {
        let qi = q[i] as usize;
        let first_of_group = qi == 0 || s(qi) != s(qi - 1);
        *o = if first_of_group {
            r[i]
        } else {
            last[p(qi - 1) as usize]
        };
    }
}

/// One-shot convenience wrapper around [`PathDoublingSampler::sample`].
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let sample = wg_sample::sample_without_replacement(30, 1000, &mut rng);
/// assert_eq!(sample.len(), 30);
/// let mut dedup = sample.clone();
/// dedup.sort_unstable();
/// dedup.dedup();
/// assert_eq!(dedup.len(), 30); // no duplicates, ever
/// ```
pub fn sample_without_replacement(m: usize, n: usize, rng: &mut SmallRng) -> Vec<u32> {
    let mut s = PathDoublingSampler::new();
    let mut out = Vec::with_capacity(m);
    s.sample(m, n, rng, &mut out);
    out
}

/// Sequential Fisher–Yates reference with *explicit draws*: consumes the
/// same `r[i] ∈ [0, N-1-i]` sequence Algorithm 1 uses, so the two can be
/// compared result-for-result.
pub fn fisher_yates_reference(r: &[u32], n: usize) -> Vec<u32> {
    use std::collections::HashMap;
    let m = r.len();
    let mut overlay: HashMap<u32, u32> = HashMap::new(); // position -> value
    let mut out = Vec::with_capacity(m);
    for (i, &pos) in r.iter().enumerate() {
        let value = overlay.get(&pos).copied().unwrap_or(pos);
        out.push(value);
        let back = (n - 1 - i) as u32;
        let back_value = overlay.get(&back).copied().unwrap_or(back);
        overlay.insert(pos, back_value);
    }
    out
}

/// Rejection-sampling baseline (used in ablation benchmarks): draw with
/// replacement into a set until `m` distinct values are collected. Cheap
/// for `m ≪ n`, degenerate as `m → n`.
pub fn rejection_sample(m: usize, n: usize, rng: &mut SmallRng) -> Vec<u32> {
    assert!(m <= n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut out = Vec::with_capacity(m);
    while out.len() < m {
        let v = rng.gen_range(0..n as u32);
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_valid_sample(sample: &[u32], m: usize, n: usize) {
        assert_eq!(sample.len(), m);
        let mut sorted = sample.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), m, "sample contains duplicates: {sample:?}");
        assert!(
            sample.iter().all(|&v| (v as usize) < n),
            "out of range: {sample:?}"
        );
    }

    #[test]
    fn small_cases_are_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in 1..20 {
            for m in 0..=n {
                let s = sample_without_replacement(m, n, &mut rng);
                assert_valid_sample(&s, m, n);
            }
        }
    }

    #[test]
    fn m_equals_n_returns_identity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = sample_without_replacement(5, 5, &mut rng);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn matches_fisher_yates_on_pathological_draws() {
        // All draws equal — the worst collision chain.
        for n in [10usize, 16, 33] {
            for m in [3usize, 5, 8] {
                let r = vec![0u32; m];
                let expect = fisher_yates_reference(&r, n);
                // Drive Algorithm 1 with the same draws by replaying them.
                let got = run_algorithm1_with_draws(&r, n);
                assert_eq!(got, expect, "m={m} n={n} all-zero draws");
                assert_valid_sample(&got, m, n);
            }
        }
    }

    /// Run the path-doubling sampler on a fixed draw sequence (test hook:
    /// re-implements the entry point with injected r).
    fn run_algorithm1_with_draws(r: &[u32], n: usize) -> Vec<u32> {
        struct FixedDraws;
        // Reuse the sampler internals by constructing them inline.
        let m = r.len();
        let _ = FixedDraws;
        let mut s = PathDoublingSampler::new();
        s.r = r.to_vec();
        s.chain = (0..m as u32).collect();
        s.q.resize(m, 0);
        s.last.resize(m, 0);
        let (sorted, p) = sort_with_indices(&s.r);
        for i in 0..m {
            s.q[p[i] as usize] = i as u32;
            let is_last = i == m - 1 || sorted[i] != sorted[i + 1];
            if is_last && sorted[i] as usize >= n - m {
                s.chain[n - sorted[i] as usize - 1] = p[i];
            }
        }
        let rounds = usize::BITS - m.leading_zeros();
        s.chain_next.resize(m, 0);
        for _ in 0..rounds {
            for i in 0..m {
                s.chain_next[i] = s.chain[s.chain[i] as usize];
            }
            std::mem::swap(&mut s.chain, &mut s.chain_next);
        }
        for i in 0..m {
            s.last[i] = (n - s.chain[i] as usize - 1) as u32;
        }
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let qi = s.q[i] as usize;
            if qi == 0 || sorted[qi] != sorted[qi - 1] {
                out.push(s.r[i]);
            } else {
                out.push(s.last[p[qi - 1] as usize]);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn always_distinct_and_in_range(n in 1usize..200, frac in 0.0f64..1.0, seed in any::<u64>()) {
            let m = ((n as f64) * frac) as usize;
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = sample_without_replacement(m, n, &mut rng);
            assert_valid_sample(&s, m, n);
        }

        #[test]
        fn equals_sequential_fisher_yates(n in 2usize..120, frac in 0.0f64..1.0, seed in any::<u64>()) {
            // Same draws → identical output: the parallel algorithm *is*
            // Fisher–Yates.
            let m = (((n - 1) as f64) * frac) as usize + 1; // 1..=n-1 (m<n path)
            let mut rng = SmallRng::seed_from_u64(seed);
            let r: Vec<u32> = (0..m).map(|i| rng.gen_range(0..(n - i) as u32)).collect();
            let expect = fisher_yates_reference(&r, n);
            let got = run_algorithm1_with_draws(&r, n);
            prop_assert_eq!(got, expect);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn stack_sampler_is_bit_identical_to_heap_sampler(
            n in 1usize..500,
            frac in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let m = (((n.min(STACK_FANOUT_MAX)) as f64) * frac) as usize;
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let heap = sample_without_replacement(m, n, &mut rng_a);
            let mut stack = [0u32; STACK_FANOUT_MAX];
            sample_small(m, n, &mut rng_b, &mut stack[..m]);
            prop_assert_eq!(&heap[..], &stack[..m]);
        }
    }

    #[test]
    fn marginals_are_uniform() {
        // Sampling 3 of 10, each index should be chosen ~30% of the time.
        let trials = 40_000;
        let mut counts = [0u32; 10];
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..trials {
            for v in sample_without_replacement(3, 10, &mut rng) {
                counts[v as usize] += 1;
            }
        }
        let expect = trials as f64 * 0.3;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.06, "index {v} frequency off by {dev:.3}");
        }
    }

    #[test]
    fn rejection_baseline_is_valid() {
        let mut rng = SmallRng::seed_from_u64(5);
        let s = rejection_sample(30, 100, &mut rng);
        assert_valid_sample(&s, 30, 100);
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn m_greater_than_n_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        sample_without_replacement(5, 3, &mut rng);
    }
}
