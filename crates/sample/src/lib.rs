//! # wg-sample — WholeGraph's sampling ops (§III-C)
//!
//! Mini-batch GNN training needs, per iteration: random neighbor sampling
//! without replacement for every target node, deduplication of the sampled
//! node set, and construction of the computation sub-graph. WholeGraph
//! moves all three onto the GPU; this crate reproduces them:
//!
//! * [`wrs`] — **Algorithm 1**: fully parallel random sampling without
//!   replacement using the path-doubling method, plus sequential reference
//!   samplers it is property-tested against;
//! * [`radix`] — the packed 64-bit radix sort the paper uses inside
//!   Algorithm 1 ("we pack 32-bit array r[M] and its index array to one
//!   64-bit array ... then use radix-sort");
//! * [`hashtable`] — a GPU-style (Warpcore-like) open-addressing hash
//!   table with atomic CAS insertion;
//! * [`prefix`] — exclusive prefix sums (used for sub-graph ID
//!   assignment);
//! * [`append_unique`] — the **AppendUnique** op of §III-C2 / Figure 5:
//!   targets first, hash-based dedup, bucket-count + prefix-sum ID
//!   assignment, duplicate counts (consumed by the g-SpMM backward
//!   optimization), plus the sort-based baseline other frameworks use;
//! * [`neighbor`] — multi-layer neighbor sampling over either the
//!   multi-GPU store or the host store (the same algorithm parameterized by
//!   a [`neighbor::GraphAccess`], so WholeGraph and the DGL/PyG-style
//!   baselines provably sample identical sub-graphs), with per-backend
//!   simulated cost accounting.

pub mod append_unique;
pub mod hashtable;
pub mod neighbor;
pub mod prefix;
pub mod radix;
mod sync_slice;
pub mod weighted;
pub mod wrs;

pub use append_unique::{
    append_unique, append_unique_into, append_unique_sorted, AppendUniqueResult,
    AppendUniqueScratch,
};
pub use neighbor::{
    sample_minibatch, sample_minibatch_into, sample_minibatch_reference, GraphAccess,
    HostGraphAccess, MiniBatch, MultiGpuAccess, SampleBlock, SampleScratch, SampleStats,
    SamplerBackend, SamplerConfig,
};
pub use weighted::weighted_sample_without_replacement;
pub use wrs::{sample_small, sample_without_replacement, PathDoublingSampler, STACK_FANOUT_MAX};
