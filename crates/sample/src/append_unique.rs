//! The AppendUnique op (§III-C2, Figure 5).
//!
//! After neighbor sampling, "the same nodes may be sampled from different
//! target nodes", and every duplicate gathered feature row is wasted NVLink
//! bandwidth. AppendUnique fuses three jobs into one pass:
//!
//! 1. put all **target nodes first** in the output node list (so the next
//!    layer can reuse the already-gathered target features — the targets of
//!    layer *l* are a prefix of the node list of layer *l+1*);
//! 2. deduplicate the sampled neighbors with a **hash table** (not the
//!    sort other frameworks use) — targets are inserted with their list
//!    index as value, neighbors with value −1;
//! 3. assign the unique new neighbors **contiguous sub-graph IDs** after
//!    the targets via an exclusive prefix sum, exactly as in Figure 5 —
//!    but keyed on each node's **first occurrence position** in the input
//!    neighbor list rather than on its hash-table slot. Which slot a key
//!    claims depends on CAS races under linear probing, so slot order
//!    would make the unique list depend on thread scheduling; the smallest
//!    input index that inserted a key (a `fetch_min` watermark per slot)
//!    is schedule-free, so IDs are bit-identical at any thread count.
//!
//! The op also emits the per-node **duplicate count** that the g-SpMM
//! backward of §III-C4 uses to replace atomic adds with plain stores for
//! nodes sampled exactly once.

use rayon::prelude::*;

use crate::hashtable::{GpuHashTable, Insert, UNASSIGNED};
use crate::prefix::parallel_exclusive_scan_with;
use crate::sync_slice::SyncSliceMut;

/// Slots per counting bucket (a warp-sized granule in the CUDA kernel).
const BUCKET_SLOTS: usize = 128;

/// Reusable working storage for [`append_unique_into`]: the hash table and
/// the first-occurrence mark buffer survive across invocations, so a warm
/// scratch makes the whole op allocation-free. Results are independent of
/// scratch history (the table may stay oversized — see
/// [`GpuHashTable::reset`]).
#[derive(Default)]
pub struct AppendUniqueScratch {
    table: GpuHashTable,
    first_marks: Vec<u32>,
    scan_totals: Vec<u32>,
}

/// Output of [`append_unique`].
#[derive(Clone, Debug)]
pub struct AppendUniqueResult {
    /// Unique node keys: the targets (in input order) followed by the
    /// unique new neighbors.
    pub unique: Vec<u64>,
    /// Number of target nodes (prefix length of `unique`).
    pub num_targets: usize,
    /// For every input neighbor, its sub-graph ID (index into `unique`).
    pub neighbor_ids: Vec<u32>,
    /// Per unique node: how many times it appeared in `neighbors`.
    pub dup_count: Vec<u32>,
}

impl AppendUniqueResult {
    /// Number of unique nodes (targets + new neighbors).
    pub fn num_unique(&self) -> usize {
        self.unique.len()
    }
}

/// Run AppendUnique over a target list (assumed duplicate-free) and the
/// concatenated sampled-neighbor list.
///
/// ```
/// let targets = [10u64, 20];
/// let neighbors = [30u64, 20, 30, 40];
/// let r = wg_sample::append_unique(&targets, &neighbors);
/// // Targets stay first, in order; {30, 40} are appended deduplicated.
/// assert_eq!(&r.unique[..2], &targets);
/// assert_eq!(r.num_unique(), 4);
/// // Every sampled neighbor maps back to its own key.
/// for (&n, &id) in neighbors.iter().zip(&r.neighbor_ids) {
///     assert_eq!(r.unique[id as usize], n);
/// }
/// // Duplicate counts drive the SpMM backward fast path.
/// assert_eq!(r.dup_count.iter().sum::<u32>(), 4);
/// ```
pub fn append_unique(targets: &[u64], neighbors: &[u64]) -> AppendUniqueResult {
    let mut scratch = AppendUniqueScratch::default();
    let mut unique = Vec::new();
    let mut neighbor_ids = Vec::new();
    let mut dup_count = Vec::new();
    append_unique_into(
        targets,
        neighbors,
        &mut scratch,
        &mut unique,
        &mut neighbor_ids,
        &mut dup_count,
    );
    AppendUniqueResult {
        unique,
        num_targets: targets.len(),
        neighbor_ids,
        dup_count,
    }
}

/// [`append_unique`] writing into caller-provided output buffers with a
/// reusable [`AppendUniqueScratch`]: with warm buffers the op performs no
/// heap allocation. `unique`, `neighbor_ids` and `dup_count` are cleared
/// and refilled; output is bit-identical to [`append_unique`] regardless of
/// the scratch's previous use.
pub fn append_unique_into(
    targets: &[u64],
    neighbors: &[u64],
    scratch: &mut AppendUniqueScratch,
    unique: &mut Vec<u64>,
    neighbor_ids: &mut Vec<u32>,
    dup_count: &mut Vec<u32>,
) {
    let num_targets = targets.len();
    scratch.table.reset(num_targets + neighbors.len());
    let table = &scratch.table;

    // Phase 1: insert targets with their list index as value.
    targets
        .par_iter()
        .enumerate()
        .for_each(|(idx, &key)| match table.insert(key) {
            Insert::New(slot) => table.set_value(slot, idx as i64),
            Insert::Existing(_) => panic!("duplicate target node {key} passed to AppendUnique"),
        });

    // Phase 2: insert neighbors; new ones keep value −1, duplicates only
    // bump the slot's duplicate counter. Each insertion also lowers the
    // slot's first-occurrence watermark — `fetch_min` is commutative, so
    // the watermark is independent of scheduling even though slot choice
    // under concurrent CAS probing is not.
    neighbors
        .par_iter()
        .enumerate()
        .for_each(|(idx, &key)| match table.insert_counted(key) {
            Insert::New(slot) | Insert::Existing(slot) => {
                table.note_min_index(slot, idx as u64);
            }
        });

    // Phase 3: walk the −1 slots (bucketed, as the CUDA kernel cuts the
    // table into warp-sized granules), mark each one's first-occurrence
    // position in the input, and prefix-sum the marks: the exclusive sum
    // at a node's first occurrence is its dense rank among new neighbors.
    let slots = table.num_slots();
    let is_new = |s: usize| {
        table.key_at(s) != crate::hashtable::EMPTY_KEY && table.value_at(s) == UNASSIGNED
    };
    scratch.first_marks.clear();
    scratch.first_marks.resize(neighbors.len(), 0);
    {
        // Distinct new slots hold distinct keys, and each key's watermark
        // is an input position that inserted that key — so the marked
        // positions are pairwise distinct and the writes are disjoint.
        let marks = SyncSliceMut::new(&mut scratch.first_marks);
        (0..slots)
            .into_par_iter()
            .with_min_len(BUCKET_SLOTS)
            .for_each(|s| {
                if is_new(s) {
                    unsafe { marks.write(table.min_index_at(s) as usize, 1) };
                }
            });
    }
    let new_neighbors =
        parallel_exclusive_scan_with(&mut scratch.first_marks, &mut scratch.scan_totals) as usize;
    let first_marks = &scratch.first_marks;

    // Phase 4: assign sub-graph IDs (target count + first-occurrence rank)
    // and write the unique list + duplicate counts positionally (ranks are
    // distinct by construction of the exclusive scan).
    let total_unique = num_targets + new_neighbors;
    unique.clear();
    unique.resize(total_unique, 0);
    dup_count.clear();
    dup_count.resize(total_unique, 0);
    unique[..num_targets].copy_from_slice(targets);
    // Targets' duplicate counts come from their slots.
    for (idx, &key) in targets.iter().enumerate() {
        let (slot, _) = table.get(key).expect("target vanished from table");
        dup_count[idx] = table.count_at(slot) as u32;
    }
    {
        let unique_new = SyncSliceMut::new(&mut unique[num_targets..]);
        let dup_new = SyncSliceMut::new(&mut dup_count[num_targets..]);
        (0..slots)
            .into_par_iter()
            .with_min_len(BUCKET_SLOTS)
            .for_each(|s| {
                if is_new(s) {
                    let rank = first_marks[table.min_index_at(s) as usize] as usize;
                    table.set_value(s, (num_targets + rank) as i64);
                    unsafe {
                        unique_new.write(rank, table.key_at(s));
                        dup_new.write(rank, table.count_at(s) as u32);
                    }
                }
            });
    }

    // Phase 5: remap every input neighbor through the table.
    neighbor_ids.clear();
    neighbor_ids.resize(neighbors.len(), 0);
    neighbor_ids
        .par_iter_mut()
        .zip(neighbors.par_iter())
        .for_each(|(out, &key)| {
            let (_, v) = table.get(key).expect("sampled neighbor missing from table");
            debug_assert!(v >= 0, "neighbor {key} was never assigned a sub-graph ID");
            *out = v as u32;
        });
}

/// Sort-based reference implementation ("the sort method used in other
/// frameworks"): sort + dedup the neighbor list, subtract the target set,
/// then binary-search remap. Produces the same unique *set* with the same
/// targets-first property, but orders new neighbors by key. Used for
/// cross-checking and the ablation benchmark.
pub fn append_unique_sorted(targets: &[u64], neighbors: &[u64]) -> AppendUniqueResult {
    use std::collections::HashMap;
    let num_targets = targets.len();
    let target_index: HashMap<u64, u32> = targets
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u32))
        .collect();
    assert_eq!(target_index.len(), num_targets, "duplicate target nodes");

    let mut sorted: Vec<u64> = neighbors
        .iter()
        .copied()
        .filter(|k| !target_index.contains_key(k))
        .collect();
    sorted.sort_unstable();
    sorted.dedup();

    let mut unique = Vec::with_capacity(num_targets + sorted.len());
    unique.extend_from_slice(targets);
    unique.extend_from_slice(&sorted);

    let id_of = |key: u64| -> u32 {
        if let Some(&i) = target_index.get(&key) {
            i
        } else {
            num_targets as u32 + sorted.binary_search(&key).expect("missing neighbor") as u32
        }
    };
    let neighbor_ids: Vec<u32> = neighbors.iter().map(|&k| id_of(k)).collect();
    let mut dup_count = vec![0u32; unique.len()];
    for &id in &neighbor_ids {
        dup_count[id as usize] += 1;
    }
    AppendUniqueResult {
        unique,
        num_targets,
        neighbor_ids,
        dup_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};

    /// Shared invariants both implementations must satisfy.
    fn check_invariants(targets: &[u64], neighbors: &[u64], r: &AppendUniqueResult) {
        // Targets first, in order.
        assert_eq!(&r.unique[..targets.len()], targets);
        assert_eq!(r.num_targets, targets.len());
        // Unique list has no duplicates and covers targets ∪ neighbors.
        let set: HashSet<u64> = r.unique.iter().copied().collect();
        assert_eq!(set.len(), r.unique.len(), "unique list has duplicates");
        let expect: HashSet<u64> = targets.iter().chain(neighbors).copied().collect();
        assert_eq!(set, expect, "unique set mismatch");
        // Every neighbor remaps to its own key.
        assert_eq!(r.neighbor_ids.len(), neighbors.len());
        for (&n, &id) in neighbors.iter().zip(&r.neighbor_ids) {
            assert_eq!(r.unique[id as usize], n, "bad remap for {n}");
        }
        // Duplicate counts total the neighbor list length and match a
        // scalar count.
        let total: u32 = r.dup_count.iter().sum();
        assert_eq!(total as usize, neighbors.len());
        let mut hist: HashMap<u64, u32> = HashMap::new();
        for &n in neighbors {
            *hist.entry(n).or_insert(0) += 1;
        }
        for (i, &key) in r.unique.iter().enumerate() {
            assert_eq!(
                r.dup_count[i],
                hist.get(&key).copied().unwrap_or(0),
                "dup count of {key}"
            );
        }
    }

    #[test]
    fn figure5_example() {
        // Four targets T0..T3, neighbors with duplicates and overlap with
        // the target set.
        let targets = [100u64, 200, 300, 400];
        let neighbors = [500u64, 200, 500, 600, 100, 700, 700, 700];
        let r = append_unique(&targets, &neighbors);
        check_invariants(&targets, &neighbors, &r);
        // 4 targets + {500, 600, 700} new neighbors.
        assert_eq!(r.num_unique(), 7);
        // Targets sampled as neighbors keep their target IDs.
        assert_eq!(r.neighbor_ids[1], 1); // 200 -> T1
        assert_eq!(r.neighbor_ids[4], 0); // 100 -> T0
                                          // 700 was sampled three times.
        let id700 = r.neighbor_ids[5] as usize;
        assert_eq!(r.dup_count[id700], 3);
    }

    #[test]
    fn no_neighbors() {
        let targets = [1u64, 2, 3];
        let r = append_unique(&targets, &[]);
        check_invariants(&targets, &[], &r);
        assert_eq!(r.num_unique(), 3);
        assert_eq!(r.dup_count, vec![0, 0, 0]);
    }

    #[test]
    fn all_neighbors_are_targets() {
        let targets = [10u64, 20];
        let neighbors = [20u64, 10, 20];
        let r = append_unique(&targets, &neighbors);
        check_invariants(&targets, &neighbors, &r);
        assert_eq!(r.num_unique(), 2);
        assert_eq!(r.dup_count, vec![1, 2]);
    }

    #[test]
    fn sorted_baseline_agrees_on_set_and_counts() {
        let targets = [7u64, 3, 11];
        let neighbors = [5u64, 5, 3, 9, 11, 9, 9];
        let a = append_unique(&targets, &neighbors);
        let b = append_unique_sorted(&targets, &neighbors);
        check_invariants(&targets, &neighbors, &a);
        check_invariants(&targets, &neighbors, &b);
        let sa: HashSet<u64> = a.unique.iter().copied().collect();
        let sb: HashSet<u64> = b.unique.iter().copied().collect();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_targets_rejected() {
        append_unique(&[1, 1], &[]);
    }

    /// The unique list, IDs, and counts must not depend on scheduling:
    /// parallel runs must equal the forced-sequential run bit-for-bit, and
    /// new neighbors must come out in first-occurrence order.
    #[test]
    fn parallel_output_is_deterministic_and_first_occurrence_ordered() {
        rayon::init_threads(4);
        let targets: Vec<u64> = (1000..1040).collect();
        // Dense duplicates + overlap with the target range, scrambled.
        let neighbors: Vec<u64> = (0..5000u64)
            .map(|i| i.wrapping_mul(2654435761) % 97 + 990)
            .collect();
        let seq = rayon::run_sequential(|| append_unique(&targets, &neighbors));
        check_invariants(&targets, &neighbors, &seq);
        for _ in 0..3 {
            let par = append_unique(&targets, &neighbors);
            assert_eq!(par.unique, seq.unique, "unique order depends on schedule");
            assert_eq!(par.neighbor_ids, seq.neighbor_ids);
            assert_eq!(par.dup_count, seq.dup_count);
        }
        // New neighbors appear in input first-occurrence order.
        let target_set: HashSet<u64> = targets.iter().copied().collect();
        let mut expect = Vec::new();
        let mut seen = HashSet::new();
        for &n in &neighbors {
            if !target_set.contains(&n) && seen.insert(n) {
                expect.push(n);
            }
        }
        assert_eq!(&seq.unique[targets.len()..], &expect[..]);
    }

    /// A reused (oversized, dirty) scratch must produce bit-identical
    /// output to a fresh one: IDs are keyed on first-occurrence watermarks,
    /// never on slot positions, so table size cannot leak into results.
    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        let mut scratch = AppendUniqueScratch::default();
        let (mut unique, mut ids, mut dups) = (Vec::new(), Vec::new(), Vec::new());
        // Warm the scratch with a *large* input first so later runs see an
        // oversized table.
        let big_targets: Vec<u64> = (5000..5400).collect();
        let big_neighbors: Vec<u64> = (0..20_000u64).map(|i| i % 1777).collect();
        append_unique_into(
            &big_targets,
            &big_neighbors,
            &mut scratch,
            &mut unique,
            &mut ids,
            &mut dups,
        );
        for round in 0..3u64 {
            let targets: Vec<u64> = (100 + round..140 + round).collect();
            let neighbors: Vec<u64> = (0..3000u64)
                .map(|i| (i * 2654435761 + round) % 211 + 90)
                .collect();
            let fresh = append_unique(&targets, &neighbors);
            append_unique_into(
                &targets,
                &neighbors,
                &mut scratch,
                &mut unique,
                &mut ids,
                &mut dups,
            );
            assert_eq!(unique, fresh.unique, "round {round}");
            assert_eq!(ids, fresh.neighbor_ids, "round {round}");
            assert_eq!(dups, fresh.dup_count, "round {round}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn invariants_hold_for_random_inputs(
            raw_targets in prop::collection::hash_set(0u64..500, 1..40),
            neighbors in prop::collection::vec(0u64..500, 0..400),
        ) {
            let targets: Vec<u64> = raw_targets.into_iter().collect();
            let r = append_unique(&targets, &neighbors);
            check_invariants(&targets, &neighbors, &r);
            let s = append_unique_sorted(&targets, &neighbors);
            check_invariants(&targets, &neighbors, &s);
            prop_assert_eq!(r.num_unique(), s.num_unique());
        }
    }
}
