//! Multi-layer neighbor sampling and sub-graph construction.
//!
//! One GNN mini-batch needs, per layer, a random `fanout`-neighbor sample
//! for every frontier node, deduplicated with [`append_unique`], and a CSR
//! sub-graph whose column space is the next frontier. "Multi-layer
//! sub-graph sampling can be done by simply stacking multiple single-layer
//! sub-graph sampling" (§III-C2).
//!
//! The algorithm is written once against the [`GraphAccess`] trait and runs
//! over either store:
//!
//! * [`MultiGpuAccess`] — WholeGraph's distributed store (handles are
//!   packed GlobalIds; neighbor reads hit peer GPU memory);
//! * [`HostGraphAccess`] — the DGL/PyG host-memory CSR (handles are plain
//!   node ids).
//!
//! Per-node RNG streams are seeded from the node's *stable* (original) id,
//! so both stores sample exactly the same sub-graph for the same seed —
//! the property the equivalence tests (and the paper's Table III accuracy
//! parity) rest on.
//!
//! Simulated cost is charged per backend through [`SamplerBackend`]:
//! WholeGraph samples on the GPU with the fused Algorithm-1 kernel; DGL
//! uses a parallel C++ CPU sampler; PyG's sampler carries Python-loop
//! overhead (§IV-C2 observes PyG epochs are several times DGL's).

use rayon::prelude::*;

use wg_graph::{AdjacencyView, GlobalId, HostGraph, MultiGpuGraph, NodeId};
use wg_sim::device::DeviceSpec;
use wg_sim::{CostModel, SimTime};

use crate::append_unique::{
    append_unique, append_unique_into, AppendUniqueResult, AppendUniqueScratch,
};
use crate::sync_slice::SyncSliceMut;
use crate::wrs::{sample_small, PathDoublingSampler, STACK_FANOUT_MAX};

/// Uniform view of a graph store for the sampler.
pub trait GraphAccess: Sync {
    /// Out-degree of the node behind `handle`.
    fn degree(&self, handle: u64) -> usize;
    /// Borrowed neighbor handles of the node (in storage order). Zero-copy:
    /// the slice aliases the store's CSR, so sampling `m` of `deg`
    /// neighbors never materializes the `deg`-entry list.
    fn neighbors(&self, handle: u64) -> &[u64];
    /// Append the node's neighbor handles to `out` (copying convenience).
    fn neighbors_into(&self, handle: u64, out: &mut Vec<u64>) {
        out.extend_from_slice(self.neighbors(handle));
    }
    /// A store-independent id (the original dataset node id) used to seed
    /// per-node RNG streams identically across stores.
    fn stable_id(&self, handle: u64) -> u64;
    /// Handle of a dataset node id.
    fn handle_of(&self, v: NodeId) -> u64;
    /// Edge slot of the node's first adjacency entry: sampled neighbor
    /// position `k` corresponds to edge slot `base + k`, which indexes
    /// the store's edge-feature array (DSM slots for the multi-GPU store,
    /// CSR positions for the host store).
    fn edge_slot_base(&self, handle: u64) -> u64;
}

/// Sampler view of [`MultiGpuGraph`]: handles are raw GlobalIds. Holds a
/// pinned [`AdjacencyView`], so degree/neighbor/edge-slot lookups are plain
/// indexed loads with no locking or copying.
pub struct MultiGpuAccess<'a> {
    graph: &'a MultiGpuGraph,
    adj: AdjacencyView<'a>,
}

impl<'a> MultiGpuAccess<'a> {
    /// Pin the store's structure allocations and build the access view.
    pub fn new(graph: &'a MultiGpuGraph) -> Self {
        MultiGpuAccess {
            graph,
            adj: graph.adjacency(),
        }
    }
}

impl GraphAccess for MultiGpuAccess<'_> {
    fn degree(&self, handle: u64) -> usize {
        self.adj.degree(GlobalId::from_raw(handle))
    }
    fn neighbors(&self, handle: u64) -> &[u64] {
        self.adj.neighbors(GlobalId::from_raw(handle))
    }
    fn stable_id(&self, handle: u64) -> u64 {
        self.graph.partition().node_of(GlobalId::from_raw(handle))
    }
    fn handle_of(&self, v: NodeId) -> u64 {
        self.graph.partition().global_id(v).raw()
    }
    fn edge_slot_base(&self, handle: u64) -> u64 {
        self.adj.edge_slot_base(GlobalId::from_raw(handle))
    }
}

/// Sampler view of [`HostGraph`]: handles are the node ids themselves.
pub struct HostGraphAccess<'a>(pub &'a HostGraph);

impl GraphAccess for HostGraphAccess<'_> {
    fn degree(&self, handle: u64) -> usize {
        self.0.csr().degree(handle)
    }
    fn neighbors(&self, handle: u64) -> &[u64] {
        self.0.csr().neighbors(handle)
    }
    fn stable_id(&self, handle: u64) -> u64 {
        handle
    }
    fn handle_of(&self, v: NodeId) -> u64 {
        v
    }
    fn edge_slot_base(&self, handle: u64) -> u64 {
        self.0.csr().offsets()[handle as usize]
    }
}

/// One sampled layer: a bipartite block mapping `num_src` source nodes to
/// `num_dst` destination nodes (the dst nodes are the first `num_dst`
/// entries of the source space — AppendUnique's targets-first property).
#[derive(Clone, Debug)]
pub struct SampleBlock {
    /// Destination (target) node count.
    pub num_dst: usize,
    /// Source node count (targets + unique sampled neighbors).
    pub num_src: usize,
    /// CSR offsets over dst nodes (`num_dst + 1` entries).
    pub offsets: Vec<u32>,
    /// CSR column indices into the source space.
    pub indices: Vec<u32>,
    /// Per-edge store slot (parallel to `indices`): where each sampled
    /// edge's features live, for edge-featured graphs.
    pub edge_ids: Vec<u64>,
    /// Per-source-node duplicate count from AppendUnique (how many times
    /// the node was sampled as a neighbor in this layer).
    pub dup_count: Vec<u32>,
}

impl SampleBlock {
    /// Number of sampled edges in the block.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }
}

/// A fully sampled mini-batch.
#[derive(Clone, Debug)]
pub struct MiniBatch {
    /// Per hop, outermost (dst = the training batch) first. The model
    /// consumes them in reverse: the **last** block feeds the first GNN
    /// layer.
    pub blocks: Vec<SampleBlock>,
    /// Node frontiers: `frontiers[0]` is the training batch;
    /// `frontiers[l+1]` is the source space of `blocks[l]` (targets first —
    /// `frontiers[l]` is always a prefix of `frontiers[l+1]`).
    pub frontiers: Vec<Vec<u64>>,
    /// Batch target count.
    pub batch_size: usize,
}

impl MiniBatch {
    /// An empty mini-batch shell for [`sample_minibatch_into`] to fill
    /// (and refill: recycled shells keep their buffer capacities).
    pub fn empty() -> Self {
        MiniBatch {
            blocks: Vec::new(),
            frontiers: Vec::new(),
            batch_size: 0,
        }
    }

    /// Node handles whose features must be gathered: the source space of
    /// the deepest block.
    pub fn input_nodes(&self) -> &[u64] {
        self.frontiers.last().expect("mini-batch has no frontiers")
    }
}

/// Work counters for one sampling invocation (feed the cost model).
#[derive(Clone, Copy, Debug, Default)]
pub struct SampleStats {
    /// Total neighbors sampled across all layers (pre-dedup).
    pub edges_sampled: u64,
    /// Total keys inserted into AppendUnique tables.
    pub keys_inserted: u64,
    /// Kernel launches (sampling + unique per layer on the GPU path).
    pub kernels: u32,
}

/// Sampler configuration.
#[derive(Clone, Debug)]
pub struct SamplerConfig {
    /// Per-layer fanout, outermost hop first (the paper uses 30,30,30).
    pub fanouts: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
}

impl SamplerConfig {
    /// The paper's 3-layer, fanout-30 configuration.
    pub fn paper_default() -> Self {
        SamplerConfig {
            fanouts: vec![30, 30, 30],
            seed: 0,
        }
    }
}

/// Which system executes sampling — decides the simulated cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SamplerBackend {
    /// WholeGraph's fused GPU sampler (Algorithm 1 + hash AppendUnique).
    WholeGraphGpu,
    /// DGL-0.7-class parallel C++ CPU sampler.
    DglCpu,
    /// PyG-2.0-class sampler with Python-side overhead.
    PygCpu,
}

impl SamplerBackend {
    /// Simulated duration of a sampling invocation with the given work
    /// counters.
    pub fn sample_time(self, model: &CostModel, gpu: &DeviceSpec, stats: SampleStats) -> SimTime {
        match self {
            SamplerBackend::WholeGraphGpu => SimTime::from_secs(
                gpu.kernel_launch_overhead_s * stats.kernels as f64
                    + stats.edges_sampled as f64 / model.gpu_sample_edges_per_s
                    + stats.keys_inserted as f64 / model.gpu_unique_keys_per_s,
            ),
            SamplerBackend::DglCpu => {
                SimTime::from_secs(stats.edges_sampled as f64 / model.cpu_sample_edges_per_s)
            }
            SamplerBackend::PygCpu => {
                SimTime::from_secs(stats.edges_sampled as f64 / model.pyg_sample_edges_per_s)
            }
        }
    }
}

/// Mix a per-node RNG seed from the global seed and sampling coordinates.
#[inline]
fn node_seed(base: u64, epoch: u64, batch: u64, layer: usize, stable: u64) -> u64 {
    wg_graph::partition::mix64(
        base ^ epoch.rotate_left(17)
            ^ batch.rotate_left(31)
            ^ (layer as u64).rotate_left(47)
            ^ stable,
    )
}

/// Reusable working storage for [`sample_minibatch_into`]: the flat
/// pre-dedup neighbor buffer plus the AppendUnique scratch. With warm
/// buffers (and fanouts within [`STACK_FANOUT_MAX`]) a whole mini-batch
/// samples without a single heap allocation.
#[derive(Default)]
pub struct SampleScratch {
    /// Concatenated sampled neighbor handles, pre-dedup (CSR over the
    /// frontier via the block's offsets).
    flat: Vec<u64>,
    au: AppendUniqueScratch,
}

/// Per-node grain for the cheap degree/count pass.
const COUNT_GRAIN: usize = 64;
/// Per-node grain for the sampling pass (~`fanout` RNG draws + writes per
/// node; a handful of nodes amortizes the fork overhead without starving
/// the pool on kilonode frontiers).
const SAMPLE_GRAIN: usize = 8;

/// Sample a mini-batch: one [`SampleBlock`] per fanout, each built by
/// parallel per-node Algorithm-1 sampling plus AppendUnique.
///
/// Convenience wrapper over [`sample_minibatch_into`] with fresh buffers;
/// hot paths should hold a [`SampleScratch`] + recycled [`MiniBatch`] and
/// call the `_into` form directly.
pub fn sample_minibatch<G: GraphAccess>(
    graph: &G,
    batch_handles: &[u64],
    cfg: &SamplerConfig,
    epoch: u64,
    batch_idx: u64,
) -> (MiniBatch, SampleStats) {
    let mut scratch = SampleScratch::default();
    let mut mb = MiniBatch::empty();
    let stats = sample_minibatch_into(
        graph,
        batch_handles,
        cfg,
        epoch,
        batch_idx,
        &mut scratch,
        &mut mb,
    );
    (mb, stats)
}

/// Allocation-free mini-batch sampling into recycled buffers.
///
/// Two passes per layer replace the old collect-and-flatten scheme: a
/// parallel count pass computes exact CSR offsets from per-node degrees,
/// then a parallel pass samples each node straight into the flat
/// neighbor/edge-id buffers through disjoint `[offsets[i], offsets[i+1])`
/// ranges. Neighbor lists are borrowed from the store ([`GraphAccess::
/// neighbors`]), per-node index sets come from the stack sampler, and
/// dedup runs through [`append_unique_into`] — so once `scratch` and `out`
/// are warm (steady state: batch shapes repeat), no heap allocation occurs.
/// Output is bit-identical to [`sample_minibatch_reference`]: RNG streams
/// are seeded per node from stable ids, and every write is positional.
pub fn sample_minibatch_into<G: GraphAccess>(
    graph: &G,
    batch_handles: &[u64],
    cfg: &SamplerConfig,
    epoch: u64,
    batch_idx: u64,
    scratch: &mut SampleScratch,
    out: &mut MiniBatch,
) -> SampleStats {
    use rand::SeedableRng;
    let _span = wg_trace::span!("sample.minibatch");
    let mut stats = SampleStats::default();
    let num_layers = cfg.fanouts.len();
    out.batch_size = batch_handles.len();
    out.blocks.truncate(num_layers);
    out.blocks.resize_with(num_layers, || SampleBlock {
        num_dst: 0,
        num_src: 0,
        offsets: Vec::new(),
        indices: Vec::new(),
        edge_ids: Vec::new(),
        dup_count: Vec::new(),
    });
    out.frontiers.truncate(num_layers + 1);
    out.frontiers.resize_with(num_layers + 1, Vec::new);
    out.frontiers[0].clear();
    out.frontiers[0].extend_from_slice(batch_handles);

    for (layer, &fanout) in cfg.fanouts.iter().enumerate() {
        // Split so the current frontier stays readable while the next one
        // is written (the layer's AppendUnique output).
        let (done, rest) = out.frontiers.split_at_mut(layer + 1);
        let frontier: &[u64] = &done[layer];
        let next = &mut rest[0];
        let block = &mut out.blocks[layer];
        let n = frontier.len();

        // Pass 1: exact per-node sample counts, scanned into CSR offsets.
        block.offsets.clear();
        block.offsets.resize(n + 1, 0);
        block.offsets[1..]
            .par_iter_mut()
            .zip(frontier.par_iter())
            .with_min_len(COUNT_GRAIN)
            .for_each(|(c, &t)| *c = fanout.min(graph.degree(t)) as u32);
        let mut acc = 0u32;
        for c in block.offsets[1..].iter_mut() {
            acc += *c;
            *c = acc;
        }
        let total = acc as usize;

        // Pass 2: per-node sampling ("M threads in the thread block ...
        // grouped together to generate the sampled neighbors for one
        // target node"), writing straight into the flat buffers.
        scratch.flat.clear();
        scratch.flat.resize(total, 0);
        block.edge_ids.clear();
        block.edge_ids.resize(total, 0);
        {
            let offsets = &block.offsets;
            let flat_out = SyncSliceMut::new(&mut scratch.flat);
            let eid_out = SyncSliceMut::new(&mut block.edge_ids);
            frontier
                .par_iter()
                .enumerate()
                .with_min_len(SAMPLE_GRAIN)
                .for_each(|(i, &t)| {
                    let lo = offsets[i] as usize;
                    let m = offsets[i + 1] as usize - lo;
                    if m == 0 {
                        return;
                    }
                    let nbrs = graph.neighbors(t);
                    let deg = nbrs.len();
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(node_seed(
                        cfg.seed,
                        epoch,
                        batch_idx,
                        layer,
                        graph.stable_id(t),
                    ));
                    let base = graph.edge_slot_base(t);
                    let write_at = |k: usize, j: u32| {
                        // SAFETY: this node owns [lo, offsets[i+1]) and
                        // k < m; CSR ranges of distinct nodes are disjoint.
                        unsafe {
                            flat_out.write(lo + k, nbrs[j as usize]);
                            eid_out.write(lo + k, base + j as u64);
                        }
                    };
                    if m <= STACK_FANOUT_MAX {
                        let mut idx = [0u32; STACK_FANOUT_MAX];
                        sample_small(m, deg, &mut rng, &mut idx[..m]);
                        for (k, &j) in idx[..m].iter().enumerate() {
                            write_at(k, j);
                        }
                    } else {
                        // Fanouts beyond the stack bound fall back to the
                        // heap sampler (allocates; off the paper's
                        // fanout-30 hot path). Same draws, same output.
                        let mut idx = Vec::with_capacity(m);
                        PathDoublingSampler::new().sample(m, deg, &mut rng, &mut idx);
                        for (k, &j) in idx.iter().enumerate() {
                            write_at(k, j);
                        }
                    }
                });
        }
        stats.edges_sampled += total as u64;
        stats.keys_inserted += (n + total) as u64;
        stats.kernels += 2; // sample kernel + append-unique kernel

        append_unique_into(
            frontier,
            &scratch.flat,
            &mut scratch.au,
            next,
            &mut block.indices,
            &mut block.dup_count,
        );
        block.num_dst = n;
        block.num_src = next.len();
    }
    record_sample_metrics(&stats, out);
    stats
}

/// Edges-per-minibatch histogram bounds (toy batches sample thousands of
/// edges; paper-shaped fanout-30×3 batches sample hundreds of thousands).
const EDGES_BUCKETS: [f64; 7] = [1e3, 4e3, 16e3, 64e3, 256e3, 1e6, 4e6];

/// Accrue one mini-batch's sampling work into the `sample.*` metrics.
/// One atomic-load probe when metrics are disabled.
fn record_sample_metrics(stats: &SampleStats, out: &MiniBatch) {
    if !wg_trace::metrics_enabled() {
        return;
    }
    wg_trace::counter!("sample.minibatches", 1.0);
    wg_trace::counter!("sample.edges_sampled", stats.edges_sampled as f64);
    wg_trace::counter!("sample.keys_inserted", stats.keys_inserted as f64);
    wg_trace::counter!("sample.kernels", stats.kernels as f64);
    wg_trace::counter!("sample.input_nodes", out.input_nodes().len() as f64);
    wg_trace::histogram!(
        "sample.edges_per_minibatch",
        &EDGES_BUCKETS,
        stats.edges_sampled as f64
    );
}

/// The pre-refactor sampling path, kept as the equivalence oracle for
/// [`sample_minibatch_into`] (and as the old-API shape — per-node neighbor
/// copies, Vec-of-Vecs, serial flatten — that the benches compare against).
pub fn sample_minibatch_reference<G: GraphAccess>(
    graph: &G,
    batch_handles: &[u64],
    cfg: &SamplerConfig,
    epoch: u64,
    batch_idx: u64,
) -> (MiniBatch, SampleStats) {
    use rand::SeedableRng;
    let mut stats = SampleStats::default();
    let mut frontiers = vec![batch_handles.to_vec()];
    let mut blocks = Vec::with_capacity(cfg.fanouts.len());

    for (layer, &fanout) in cfg.fanouts.iter().enumerate() {
        let frontier = frontiers.last().expect("frontier exists");
        let sampled: Vec<Vec<(u64, u64)>> = frontier
            .par_iter()
            .map(|&t| {
                let deg = graph.degree(t);
                if deg == 0 {
                    return Vec::new();
                }
                let m = fanout.min(deg);
                let mut nbrs = Vec::with_capacity(deg);
                graph.neighbors_into(t, &mut nbrs);
                let mut rng = rand::rngs::SmallRng::seed_from_u64(node_seed(
                    cfg.seed,
                    epoch,
                    batch_idx,
                    layer,
                    graph.stable_id(t),
                ));
                let mut idx = Vec::with_capacity(m);
                PathDoublingSampler::new().sample(m, deg, &mut rng, &mut idx);
                let base = graph.edge_slot_base(t);
                idx.into_iter()
                    .map(|i| (nbrs[i as usize], base + i as u64))
                    .collect()
            })
            .collect();

        // Flatten with CSR offsets over the frontier.
        let mut offsets = Vec::with_capacity(frontier.len() + 1);
        offsets.push(0u32);
        let mut flat: Vec<u64> = Vec::new();
        let mut edge_ids: Vec<u64> = Vec::new();
        for s in &sampled {
            for &(nbr, eid) in s {
                flat.push(nbr);
                edge_ids.push(eid);
            }
            offsets.push(flat.len() as u32);
        }
        stats.edges_sampled += flat.len() as u64;
        stats.keys_inserted += (frontier.len() + flat.len()) as u64;
        stats.kernels += 2; // sample kernel + append-unique kernel

        let au = append_unique(frontier, &flat);
        let AppendUniqueResult {
            unique,
            num_targets: _,
            neighbor_ids,
            dup_count,
        } = au;
        blocks.push(SampleBlock {
            num_dst: frontier.len(),
            num_src: unique.len(),
            offsets,
            indices: neighbor_ids,
            edge_ids,
            dup_count,
        });
        frontiers.push(unique);
    }

    (
        MiniBatch {
            batch_size: batch_handles.len(),
            frontiers,
            blocks,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use wg_graph::gen;
    use wg_sim::memory::MemoryAccounting;
    use wg_sim::DeviceId;

    fn stores() -> (MultiGpuGraph, HostGraph) {
        let g = gen::erdos_renyi(400, 12.0, 21);
        let features = vec![0.0f32; 400 * 4];
        let model = CostModel::dgx_a100();
        let mut devs: Vec<(DeviceId, u64)> = (0..8).map(|r| (DeviceId::Gpu(r), 1 << 30)).collect();
        devs.push((DeviceId::Cpu, 1 << 33));
        let acct = MemoryAccounting::new(devs);
        let mg = MultiGpuGraph::build(&model, 8, &g, &features, 4, &acct).unwrap();
        let host = HostGraph::build(g, features, 4, &acct).unwrap();
        (mg, host)
    }

    #[test]
    fn blocks_have_consistent_shapes() {
        let (mg, _) = stores();
        let access = MultiGpuAccess::new(&mg);
        let cfg = SamplerConfig {
            fanouts: vec![5, 3],
            seed: 7,
        };
        let batch: Vec<u64> = (0..32u64).map(|v| access.handle_of(v)).collect();
        let (mb, stats) = sample_minibatch(&access, &batch, &cfg, 0, 0);
        assert_eq!(mb.blocks.len(), 2);
        assert_eq!(mb.batch_size, 32);
        let mut dst = 32;
        for (i, b) in mb.blocks.iter().enumerate() {
            assert_eq!(b.num_dst, dst, "layer {i}");
            assert!(b.num_src >= b.num_dst, "src space includes targets");
            assert_eq!(b.offsets.len(), b.num_dst + 1);
            assert_eq!(*b.offsets.last().unwrap() as usize, b.indices.len());
            assert!(b.indices.iter().all(|&c| (c as usize) < b.num_src));
            assert_eq!(b.dup_count.len(), b.num_src);
            dst = b.num_src;
        }
        assert_eq!(mb.input_nodes().len(), dst);
        // Frontier l is a prefix of frontier l+1 (targets-first reuse).
        for w in mb.frontiers.windows(2) {
            assert_eq!(&w[1][..w[0].len()], &w[0][..]);
        }
        assert!(stats.edges_sampled > 0);
        assert_eq!(stats.kernels, 4);
    }

    #[test]
    fn fanout_caps_neighbor_count() {
        let (mg, _) = stores();
        let access = MultiGpuAccess::new(&mg);
        let cfg = SamplerConfig {
            fanouts: vec![4],
            seed: 3,
        };
        let batch: Vec<u64> = (0..64u64).map(|v| access.handle_of(v)).collect();
        let (mb, _) = sample_minibatch(&access, &batch, &cfg, 0, 0);
        let b = &mb.blocks[0];
        for i in 0..b.num_dst {
            let deg = b.offsets[i + 1] - b.offsets[i];
            assert!(deg <= 4, "dst {i} has {deg} sampled neighbors");
            // Sampling is without replacement over adjacency *positions*;
            // parallel edges may still map two positions to one node, so
            // columns need not be distinct — but they can never exceed the
            // fanout.
            let cols: HashSet<u32> = b.indices[b.offsets[i] as usize..b.offsets[i + 1] as usize]
                .iter()
                .copied()
                .collect();
            assert!(!cols.is_empty() || deg == 0);
        }
    }

    #[test]
    fn sampled_neighbors_are_real_neighbors() {
        let (mg, _) = stores();
        let access = MultiGpuAccess::new(&mg);
        let cfg = SamplerConfig {
            fanouts: vec![6],
            seed: 11,
        };
        let batch: Vec<u64> = (100..130u64).map(|v| access.handle_of(v)).collect();
        let (mb, _) = sample_minibatch(&access, &batch, &cfg, 1, 2);
        let b = &mb.blocks[0];
        for (i, &t) in batch.iter().enumerate() {
            let mut true_nbrs = Vec::new();
            access.neighbors_into(t, &mut true_nbrs);
            let true_set: HashSet<u64> = true_nbrs.into_iter().collect();
            for &c in &b.indices[b.offsets[i] as usize..b.offsets[i + 1] as usize] {
                let handle = mb.frontiers[1][c as usize];
                assert!(
                    true_set.contains(&handle),
                    "dst {i}: {handle} not a neighbor"
                );
            }
        }
    }

    /// Canonical edge multiset of one block in stable-id space:
    /// sorted (dst_stable, src_stable) pairs.
    #[allow(clippy::needless_range_loop)]
    fn canonical_edges<G: GraphAccess>(mb: &MiniBatch, layer: usize, g: &G) -> Vec<(u64, u64)> {
        let b = &mb.blocks[layer];
        let dsts = &mb.frontiers[layer];
        let srcs = &mb.frontiers[layer + 1];
        let mut out = Vec::with_capacity(b.num_edges());
        for i in 0..b.num_dst {
            for &c in &b.indices[b.offsets[i] as usize..b.offsets[i + 1] as usize] {
                out.push((g.stable_id(dsts[i]), g.stable_id(srcs[c as usize])));
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn both_stores_sample_identical_subgraphs() {
        let (mg, host) = stores();
        let a = MultiGpuAccess::new(&mg);
        let h = HostGraphAccess(&host);
        let cfg = SamplerConfig {
            fanouts: vec![5, 4],
            seed: 77,
        };
        let nodes: Vec<NodeId> = (0..40u64).collect();
        let batch_a: Vec<u64> = nodes.iter().map(|&v| a.handle_of(v)).collect();
        let batch_h: Vec<u64> = nodes.iter().map(|&v| h.handle_of(v)).collect();
        let (mba, sa) = sample_minibatch(&a, &batch_a, &cfg, 3, 9);
        let (mbh, sh) = sample_minibatch(&h, &batch_h, &cfg, 3, 9);
        assert_eq!(sa.edges_sampled, sh.edges_sampled);
        // Input node sets agree in stable-id space.
        let set_a: HashSet<u64> = mba.input_nodes().iter().map(|&x| a.stable_id(x)).collect();
        let set_h: HashSet<u64> = mbh.input_nodes().iter().map(|&x| h.stable_id(x)).collect();
        assert_eq!(set_a, set_h);
        // Per-layer edge multisets agree exactly.
        for layer in 0..2 {
            assert_eq!(
                canonical_edges(&mba, layer, &a),
                canonical_edges(&mbh, layer, &h),
                "layer {layer} subgraphs differ"
            );
        }
    }

    #[test]
    fn backend_costs_are_ordered_gpu_fastest() {
        let model = CostModel::dgx_a100();
        let gpu = DeviceSpec::a100_40gb();
        let stats = SampleStats {
            edges_sampled: 10_000_000,
            keys_inserted: 11_000_000,
            kernels: 6,
        };
        let wg = SamplerBackend::WholeGraphGpu.sample_time(&model, &gpu, stats);
        let dgl = SamplerBackend::DglCpu.sample_time(&model, &gpu, stats);
        let pyg = SamplerBackend::PygCpu.sample_time(&model, &gpu, stats);
        assert!(wg < dgl, "WholeGraph GPU sampler must beat DGL CPU sampler");
        assert!(dgl < pyg, "DGL sampler must beat PyG sampler");
        // PyG/DGL ratio ~ 9x (Table V shows PyG epochs 7–9× DGL's on
        // sampling-dominated datasets).
        let ratio = pyg / dgl;
        assert!(ratio > 5.0 && ratio < 15.0, "PyG/DGL ratio {ratio}");
    }

    #[test]
    fn zero_degree_targets_produce_no_edges() {
        // A graph with isolated nodes must not break the sampler.
        let g = wg_graph::Csr::from_edges(10, &[(0, 1)], true);
        let features = vec![0.0f32; 10 * 2];
        let acct = MemoryAccounting::new([(DeviceId::Cpu, 1 << 20)]);
        let host = HostGraph::build(g, features, 2, &acct).unwrap();
        let h = HostGraphAccess(&host);
        let cfg = SamplerConfig {
            fanouts: vec![3],
            seed: 1,
        };
        let (mb, stats) = sample_minibatch(&h, &[5, 6, 7], &cfg, 0, 0);
        assert_eq!(stats.edges_sampled, 0);
        assert_eq!(mb.blocks[0].num_src, 3); // just the targets
    }
}
