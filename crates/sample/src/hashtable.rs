//! GPU-style open-addressing hash table.
//!
//! §III-C2 adopts "the hash table method instead of the sort method used in
//! other frameworks" and borrows the insertion scheme of **Warpcore**
//! (Jünger et al., HiPC '20): a flat open-addressing table whose slots are
//! claimed with atomic compare-and-swap, probed linearly — the access
//! pattern that coalesces well on GPUs. Our slots are `AtomicU64` keys and
//! `AtomicI64` values, inserted concurrently from rayon worker threads with
//! exactly the CAS discipline of the CUDA kernel.

use rayon::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Sentinel for an unoccupied slot. Keys equal to this value cannot be
/// stored (node GlobalIds never collide with it: rank 65535 + max local).
pub const EMPTY_KEY: u64 = u64::MAX;

/// Value meaning "inserted as a neighbor, sub-graph ID not yet assigned"
/// (§III-C2: "we assign the value of the hash table of the neighbor node
/// for -1 in the beginning").
pub const UNASSIGNED: i64 = -1;

/// A fixed-capacity concurrent hash table with linear probing.
///
/// `Default` builds a minimal (2-slot) table; grow it with
/// [`reset`](Self::reset) before use.
#[derive(Default)]
pub struct GpuHashTable {
    keys: Vec<AtomicU64>,
    values: Vec<AtomicI64>,
    /// Per-slot duplicate counters ("duplicate count for each sub-graph
    /// node indicating how many times the node is sampled as a neighbor" —
    /// §III-C4).
    counts: Vec<AtomicU64>,
    /// Per-slot minimum input index (`fetch_min`-maintained). Which *slot*
    /// a key lands in depends on CAS races under linear probing, but the
    /// smallest input position that inserted the key does not — AppendUnique
    /// orders its unique list by it so sub-graph IDs are schedule-free.
    min_idx: Vec<AtomicU64>,
    mask: usize,
}

/// Outcome of an insert.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insert {
    /// The key was absent; this call claimed slot `.0`.
    New(usize),
    /// The key already existed in slot `.0`.
    Existing(usize),
}

impl GpuHashTable {
    /// A table able to hold at least `capacity` keys at ≤50% load factor.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        GpuHashTable {
            keys: (0..slots).map(|_| AtomicU64::new(EMPTY_KEY)).collect(),
            values: (0..slots).map(|_| AtomicI64::new(UNASSIGNED)).collect(),
            counts: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            min_idx: (0..slots).map(|_| AtomicU64::new(u64::MAX)).collect(),
            mask: slots - 1,
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.keys.len()
    }

    /// Clear the table for reuse with at least `capacity` keys at ≤50% load
    /// factor: grow (reallocate) only when the current storage is too
    /// small, otherwise wipe the slot arrays in place. An oversized table
    /// changes which slots keys probe to, but AppendUnique's outputs are
    /// keyed on first-occurrence watermarks rather than slot order, so
    /// results are identical at any table size.
    pub fn reset(&mut self, capacity: usize) {
        let needed = (capacity.max(1) * 2).next_power_of_two();
        if needed > self.keys.len() {
            *self = Self::with_capacity(capacity);
            return;
        }
        const GRAIN: usize = 4096;
        self.keys
            .par_iter_mut()
            .with_min_len(GRAIN)
            .for_each(|k| *k.get_mut() = EMPTY_KEY);
        self.values
            .par_iter_mut()
            .with_min_len(GRAIN)
            .for_each(|v| *v.get_mut() = UNASSIGNED);
        self.counts
            .par_iter_mut()
            .with_min_len(GRAIN)
            .for_each(|c| *c.get_mut() = 0);
        self.min_idx
            .par_iter_mut()
            .with_min_len(GRAIN)
            .for_each(|m| *m.get_mut() = u64::MAX);
    }

    #[inline]
    fn hash(&self, key: u64) -> usize {
        // splitmix64 finalizer — same mixer the partitioner uses.
        let mut x = key.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        (x ^ (x >> 31)) as usize & self.mask
    }

    /// Insert `key`, claiming a slot with CAS if absent. Thread-safe.
    pub fn insert(&self, key: u64) -> Insert {
        debug_assert_ne!(key, EMPTY_KEY, "sentinel key is not storable");
        let mut slot = self.hash(key);
        loop {
            let cur = self.keys[slot].load(Ordering::Acquire);
            if cur == key {
                return Insert::Existing(slot);
            }
            if cur == EMPTY_KEY {
                match self.keys[slot].compare_exchange(
                    EMPTY_KEY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Insert::New(slot),
                    Err(winner) if winner == key => return Insert::Existing(slot),
                    Err(_) => { /* someone else claimed it with a different key: probe on */ }
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Insert and bump the slot's duplicate counter (neighbor insertion).
    pub fn insert_counted(&self, key: u64) -> Insert {
        let r = self.insert(key);
        let slot = match r {
            Insert::New(s) | Insert::Existing(s) => s,
        };
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Set the value of a slot.
    pub fn set_value(&self, slot: usize, value: i64) {
        self.values[slot].store(value, Ordering::Release);
    }

    /// Look up a key; returns `(slot, value)` if present.
    pub fn get(&self, key: u64) -> Option<(usize, i64)> {
        let mut slot = self.hash(key);
        loop {
            let cur = self.keys[slot].load(Ordering::Acquire);
            if cur == key {
                return Some((slot, self.values[slot].load(Ordering::Acquire)));
            }
            if cur == EMPTY_KEY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Key stored in a slot (or `EMPTY_KEY`).
    pub fn key_at(&self, slot: usize) -> u64 {
        self.keys[slot].load(Ordering::Acquire)
    }

    /// Value stored in a slot.
    pub fn value_at(&self, slot: usize) -> i64 {
        self.values[slot].load(Ordering::Acquire)
    }

    /// Duplicate counter of a slot.
    pub fn count_at(&self, slot: usize) -> u64 {
        self.counts[slot].load(Ordering::Relaxed)
    }

    /// Lower a slot's minimum-input-index watermark to `idx` (no-op if a
    /// smaller index was already noted). Thread-safe and commutative, so
    /// the final value is independent of insertion interleaving.
    pub fn note_min_index(&self, slot: usize, idx: u64) {
        self.min_idx[slot].fetch_min(idx, Ordering::AcqRel);
    }

    /// Smallest index noted for a slot (`u64::MAX` if none).
    pub fn min_index_at(&self, slot: usize) -> u64 {
        self.min_idx[slot].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let t = GpuHashTable::with_capacity(16);
        let slot = match t.insert(42) {
            Insert::New(s) => s,
            Insert::Existing(_) => panic!("fresh key reported existing"),
        };
        assert_eq!(t.insert(42), Insert::Existing(slot));
        t.set_value(slot, 7);
        assert_eq!(t.get(42), Some((slot, 7)));
        assert_eq!(t.get(43), None);
    }

    #[test]
    fn colliding_keys_probe_to_distinct_slots() {
        let t = GpuHashTable::with_capacity(4); // 8 slots
        let mut slots = std::collections::HashSet::new();
        for key in 0..6u64 {
            let s = match t.insert(key) {
                Insert::New(s) => s,
                Insert::Existing(_) => panic!("duplicate for fresh key"),
            };
            assert!(slots.insert(s), "slot reused");
        }
        for key in 0..6u64 {
            assert!(t.get(key).is_some());
        }
    }

    #[test]
    fn concurrent_inserts_claim_each_key_once() {
        let t = GpuHashTable::with_capacity(10_000);
        // 16 threads insert an overlapping key range; every key must be
        // claimed as New exactly once.
        let news: usize = (0..16u32)
            .into_par_iter()
            .map(|_| {
                (0..5000u64)
                    .filter(|&k| matches!(t.insert(k), Insert::New(_)))
                    .count()
            })
            .sum();
        assert_eq!(news, 5000);
        for k in 0..5000u64 {
            assert!(t.get(k).is_some());
        }
    }

    #[test]
    fn duplicate_counts_accumulate() {
        let t = GpuHashTable::with_capacity(8);
        t.insert_counted(5);
        t.insert_counted(5);
        t.insert_counted(5);
        t.insert_counted(6);
        let (slot5, _) = t.get(5).unwrap();
        let (slot6, _) = t.get(6).unwrap();
        assert_eq!(t.count_at(slot5), 3);
        assert_eq!(t.count_at(slot6), 1);
    }

    #[test]
    fn concurrent_counts_are_exact() {
        let t = GpuHashTable::with_capacity(64);
        (0..8u32).into_par_iter().for_each(|_| {
            for _ in 0..1000 {
                t.insert_counted(1);
            }
        });
        let (slot, _) = t.get(1).unwrap();
        assert_eq!(t.count_at(slot), 8000);
    }

    /// Fill *every* slot (100% occupancy — twice the nominal capacity)
    /// from 8 OS threads with overlapping, differently-ordered key ranges.
    /// Every key must be claimed `New` exactly once and land in its own
    /// slot; uses `std::thread::scope` directly so the contention is real
    /// even when the rayon pool runs single-threaded.
    #[test]
    fn concurrent_inserts_fill_every_slot() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let t = GpuHashTable::with_capacity(2048); // 4096 slots
        let slots = t.num_slots() as u64;
        let news = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                let news = &news;
                s.spawn(move || {
                    for k in 0..slots {
                        // Stride the range differently per thread so CAS
                        // collisions happen all over the table.
                        let key = (k * (2 * tid + 1)) % slots;
                        if matches!(t.insert(key), Insert::New(_)) {
                            news.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(news.load(Ordering::SeqCst), slots as usize);
        let mut seen = std::collections::HashSet::new();
        for s in 0..t.num_slots() {
            let k = t.key_at(s);
            assert_ne!(k, EMPTY_KEY, "slot {s} left empty at full occupancy");
            assert!(seen.insert(k), "key {k} stored twice");
        }
        for k in 0..slots {
            assert!(t.get(k).is_some(), "key {k} unfindable");
        }
    }

    /// Hammer four keys from 8 OS threads: duplicate counts must be exact
    /// and the min-input-index watermark must settle on the global minimum
    /// regardless of interleaving.
    #[test]
    fn contended_duplicates_count_exactly_and_min_index_is_stable() {
        let t = GpuHashTable::with_capacity(64);
        const PER_THREAD: usize = 10_000;
        std::thread::scope(|s| {
            for tid in 0..8usize {
                let t = &t;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let key = (i % 4) as u64;
                        match t.insert_counted(key) {
                            Insert::New(slot) | Insert::Existing(slot) => {
                                t.note_min_index(slot, (tid * PER_THREAD + i) as u64);
                            }
                        }
                    }
                });
            }
        });
        for key in 0..4u64 {
            let (slot, _) = t.get(key).unwrap();
            assert_eq!(t.count_at(slot), (8 * PER_THREAD / 4) as u64);
            // Smallest index ever noted for `key` is thread 0's `i == key`.
            assert_eq!(t.min_index_at(slot), key);
        }
    }

    #[test]
    fn reset_clears_all_slot_state_in_place() {
        let mut t = GpuHashTable::default();
        t.reset(100); // grows from the minimal default table
        let slots = t.num_slots();
        for k in 0..50u64 {
            t.insert_counted(k);
            let (slot, _) = t.get(k).unwrap();
            t.set_value(slot, k as i64);
            t.note_min_index(slot, k);
        }
        t.reset(40); // smaller request: storage must be kept, not shrunk
        assert_eq!(t.num_slots(), slots);
        for s in 0..t.num_slots() {
            assert_eq!(t.key_at(s), EMPTY_KEY);
            assert_eq!(t.value_at(s), UNASSIGNED);
            assert_eq!(t.count_at(s), 0);
            assert_eq!(t.min_index_at(s), u64::MAX);
        }
        for k in 0..20u64 {
            assert!(matches!(t.insert(k), Insert::New(_)));
        }
    }

    #[test]
    fn values_default_to_unassigned() {
        let t = GpuHashTable::with_capacity(4);
        if let Insert::New(s) = t.insert(9) {
            assert_eq!(t.value_at(s), UNASSIGNED);
        } else {
            panic!();
        }
    }
}
