//! Weighted random sampling without replacement.
//!
//! The paper's Algorithm 1 is uniform; production GNN pipelines (and the
//! open-source WholeGraph) also need **weighted** neighbor sampling, e.g.
//! sampling proportionally to edge weights. The standard GPU-friendly
//! construction is A-Res (Efraimidis & Spirakis): draw an independent
//! exponential-race key `k_i = -ln(u_i) / w_i` per item and keep the `m`
//! smallest keys — every key is computed in parallel and the selection is
//! one top-k pass, the same shape as Algorithm 1's sort.

use rand::prelude::*;
use rand::rngs::SmallRng;

/// Sample `m` distinct indices from `0..weights.len()` without
/// replacement, with inclusion probability increasing in `weights[i]`.
/// Zero-weight items are only chosen once every positive-weight item has
/// been taken. Requires `m <= weights.len()` and non-negative weights.
pub fn weighted_sample_without_replacement(
    weights: &[f32],
    m: usize,
    rng: &mut SmallRng,
) -> Vec<u32> {
    let n = weights.len();
    assert!(m <= n, "cannot sample {m} of {n} without replacement");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    if m == 0 {
        return Vec::new();
    }
    if m == n {
        return (0..n as u32).collect();
    }
    // Exponential-race keys; zero weights race at +inf (picked last).
    let mut keyed: Vec<(f32, u32)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let key = if w > 0.0 {
                (-(u.ln()) / w as f64) as f32
            } else {
                f32::INFINITY
            };
            (key, i as u32)
        })
        .collect();
    // Top-k selection: partition the m smallest keys to the front (the
    // GPU kernel uses a radix-select; the complexity shape matches).
    keyed.select_nth_unstable_by(m - 1, |a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<u32> = keyed[..m].iter().map(|&(_, i)| i).collect();
    out.sort_unstable(); // deterministic output order for callers
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn valid(sample: &[u32], m: usize, n: usize) {
        assert_eq!(sample.len(), m);
        let mut s = sample.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), m, "duplicates in {sample:?}");
        assert!(sample.iter().all(|&v| (v as usize) < n));
    }

    #[test]
    fn basic_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = vec![1.0f32; 10];
        valid(&weighted_sample_without_replacement(&w, 0, &mut rng), 0, 10);
        valid(&weighted_sample_without_replacement(&w, 3, &mut rng), 3, 10);
        valid(
            &weighted_sample_without_replacement(&w, 10, &mut rng),
            10,
            10,
        );
    }

    #[test]
    fn inclusion_tracks_weight() {
        // Weights 1:2:8 — the heavy item must be included in 1-of-3
        // samples far more often than the light one.
        let w = vec![1.0f32, 2.0, 8.0];
        let mut counts = [0u32; 3];
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..30_000 {
            for v in weighted_sample_without_replacement(&w, 1, &mut rng) {
                counts[v as usize] += 1;
            }
        }
        // Exact single-draw probabilities: w_i / Σw = 1/11, 2/11, 8/11.
        let total = 30_000.0;
        for (i, expect) in [(0usize, 1.0 / 11.0), (1, 2.0 / 11.0), (2, 8.0 / 11.0)] {
            let got = counts[i] as f64 / total;
            assert!(
                (got - expect).abs() < 0.02,
                "item {i}: {got:.3} vs {expect:.3}"
            );
        }
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let w = vec![1.0f32; 8];
        let mut counts = [0u32; 8];
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 20_000;
        for _ in 0..trials {
            for v in weighted_sample_without_replacement(&w, 2, &mut rng) {
                counts[v as usize] += 1;
            }
        }
        let expect = trials as f64 * 2.0 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.07, "item {i} off by {dev:.3}");
        }
    }

    #[test]
    fn zero_weights_are_picked_last() {
        let w = vec![0.0f32, 1.0, 0.0, 1.0];
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            let s = weighted_sample_without_replacement(&w, 2, &mut rng);
            assert_eq!(
                s,
                vec![1, 3],
                "zero-weight item sampled before positive ones"
            );
        }
        // When m forces their inclusion they do appear.
        let s = weighted_sample_without_replacement(&w, 4, &mut rng);
        valid(&s, 4, 4);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut rng = SmallRng::seed_from_u64(5);
        weighted_sample_without_replacement(&[1.0, -2.0], 1, &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn always_valid(
            weights in prop::collection::vec(0.0f32..10.0, 1..100),
            frac in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let m = (weights.len() as f64 * frac) as usize;
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = weighted_sample_without_replacement(&weights, m, &mut rng);
            valid(&s, m, weights.len());
        }
    }
}
