//! Exclusive prefix sums.
//!
//! The AppendUnique op assigns contiguous sub-graph IDs to unique neighbor
//! nodes by counting new insertions per hash-table bucket and running "an
//! exclusive prefix sum operation for the data in the bucket table"
//! (§III-C2). A chunked two-pass parallel scan stands in for the GPU scan.

use rayon::prelude::*;

/// Sequential exclusive prefix sum; returns the total.
pub fn exclusive_scan(values: &mut [u32]) -> u32 {
    let mut acc = 0u32;
    for v in values.iter_mut() {
        let x = *v;
        *v = acc;
        acc += x;
    }
    acc
}

/// Parallel exclusive prefix sum (two-pass, chunked); returns the total.
/// Produces exactly the same output as [`exclusive_scan`].
pub fn parallel_exclusive_scan(values: &mut [u32]) -> u32 {
    parallel_exclusive_scan_with(values, &mut Vec::new())
}

/// [`parallel_exclusive_scan`] with a caller-provided buffer for the
/// per-chunk totals, so repeated scans over same-shaped inputs allocate
/// nothing. Output is identical to both other scans (same chunking, same
/// combine order).
pub fn parallel_exclusive_scan_with(values: &mut [u32], totals: &mut Vec<u32>) -> u32 {
    const CHUNK: usize = 4096;
    if values.len() <= CHUNK {
        return exclusive_scan(values);
    }
    // Pass 1: per-chunk totals.
    totals.clear();
    totals.resize(values.len().div_ceil(CHUNK), 0);
    totals
        .par_iter_mut()
        .zip(values.par_chunks(CHUNK))
        .for_each(|(t, c)| *t = c.iter().sum());
    // Scan of totals (small, sequential).
    let grand = exclusive_scan(totals);
    // Pass 2: scan each chunk seeded with its offset.
    values
        .par_chunks_mut(CHUNK)
        .zip(totals.par_iter())
        .for_each(|(chunk, &seed)| {
            let mut acc = seed;
            for v in chunk.iter_mut() {
                let x = *v;
                *v = acc;
                acc += x;
            }
        });
    grand
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_scan() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_scan(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn empty_scan() {
        let mut v: Vec<u32> = vec![];
        assert_eq!(exclusive_scan(&mut v), 0);
        assert_eq!(parallel_exclusive_scan(&mut v), 0);
    }

    #[test]
    fn reused_scratch_matches_fresh() {
        let base: Vec<u32> = (0..30_000u32).map(|i| i % 7).collect();
        let mut scratch = Vec::new();
        for len in [30_000usize, 9_000, 17_000] {
            let mut a = base[..len].to_vec();
            let mut b = base[..len].to_vec();
            let ta = exclusive_scan(&mut a);
            let tb = parallel_exclusive_scan_with(&mut b, &mut scratch);
            assert_eq!(ta, tb);
            assert_eq!(a, b);
        }
    }

    proptest! {
        #[test]
        fn parallel_matches_sequential(values in prop::collection::vec(0u32..100, 0..20_000)) {
            let mut a = values.clone();
            let mut b = values;
            let ta = exclusive_scan(&mut a);
            let tb = parallel_exclusive_scan(&mut b);
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(a, b);
        }
    }
}
