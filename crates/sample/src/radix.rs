//! Radix sort on packed 64-bit keys.
//!
//! §III-C1: "the function parallel_sort() ... needs to return two arrays.
//! One is for the sorted array, and the other is for the original index. We
//! pack 32-bit array r[M] and its index array to one 64-bit array, high
//! 32-bit of which stores array r[M] and low 32-bit stores the index. Then
//! we use radix-sort method to sort the new 64-bit array."
//!
//! Because the index occupies the low bits, the sort is automatically
//! stable over equal values — Algorithm 1's duplicate-group logic relies on
//! ties being ordered by original index.

/// Pack `(value, index)` into one key, value-major.
#[inline]
pub fn pack(value: u32, index: u32) -> u64 {
    ((value as u64) << 32) | index as u64
}

/// Unpack a key into `(value, index)`.
#[inline]
pub fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// LSD radix sort (8-bit digits) of packed keys, in place.
pub fn radix_sort_u64(keys: &mut Vec<u64>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let mut scratch = vec![0u64; n];
    for pass in 0..8 {
        let shift = pass * 8;
        // Skip passes whose digit is constant (common: small values).
        let first = (keys[0] >> shift) & 0xff;
        if keys.iter().all(|&k| (k >> shift) & 0xff == first) {
            continue;
        }
        let mut counts = [0usize; 256];
        for &k in keys.iter() {
            counts[((k >> shift) & 0xff) as usize] += 1;
        }
        let mut pos = [0usize; 256];
        let mut acc = 0;
        for d in 0..256 {
            pos[d] = acc;
            acc += counts[d];
        }
        for &k in keys.iter() {
            let d = ((k >> shift) & 0xff) as usize;
            scratch[pos[d]] = k;
            pos[d] += 1;
        }
        std::mem::swap(keys, &mut scratch);
    }
}

/// The `parallel_sort(r)` of Algorithm 1: returns `(s, p)` where `s` is
/// `r` sorted ascending and `p[i]` is the original index of `s[i]`.
/// Ties in `r` keep their original relative order (stability via the
/// packed index).
pub fn sort_with_indices(r: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut keys: Vec<u64> = r
        .iter()
        .enumerate()
        .map(|(i, &v)| pack(v, i as u32))
        .collect();
    radix_sort_u64(&mut keys);
    let mut s = Vec::with_capacity(r.len());
    let mut p = Vec::with_capacity(r.len());
    for k in keys {
        let (v, i) = unpack(k);
        s.push(v);
        p.push(i);
    }
    (s, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let k = pack(0xdead_beef, 0x1234_5678);
        assert_eq!(unpack(k), (0xdead_beef, 0x1234_5678));
    }

    #[test]
    fn sorts_simple_case() {
        let (s, p) = sort_with_indices(&[5, 1, 4, 1, 3]);
        assert_eq!(s, vec![1, 1, 3, 4, 5]);
        // Stable: the first 1 (index 1) precedes the second (index 3).
        assert_eq!(p, vec![1, 3, 4, 2, 0]);
    }

    #[test]
    fn empty_and_singleton() {
        let (s, p) = sort_with_indices(&[]);
        assert!(s.is_empty() && p.is_empty());
        let (s, p) = sort_with_indices(&[42]);
        assert_eq!((s, p), (vec![42], vec![0]));
    }

    proptest! {
        #[test]
        fn matches_std_stable_sort(values in prop::collection::vec(0u32..1000, 0..300)) {
            let (s, p) = sort_with_indices(&values);
            let mut expect: Vec<(u32, u32)> =
                values.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
            expect.sort(); // (value, index) order == stable sort by value
            let got: Vec<(u32, u32)> = s.into_iter().zip(p).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn full_range_keys_sort(keys in prop::collection::vec(any::<u64>(), 0..200)) {
            let mut k = keys.clone();
            radix_sort_u64(&mut k);
            let mut expect = keys;
            expect.sort_unstable();
            prop_assert_eq!(k, expect);
        }
    }
}
