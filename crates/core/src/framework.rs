//! The systems under comparison.

use wg_gnn::LayerProvider;
use wg_sample::SamplerBackend;

/// A GNN training system, as compared in the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Framework {
    /// WholeGraph: graph + features in multi-GPU distributed shared
    /// memory; GPU sampling; one-kernel P2P gather; native layers.
    WholeGraph,
    /// DGL v0.7-style: graph + features in host DRAM; parallel C++ CPU
    /// sampler; CPU gather + PCIe transfer; DGL layers.
    Dgl,
    /// PyG v2.0-style: graph + features in host DRAM; slower CPU sampler;
    /// CPU gather + PCIe transfer; PyG layers.
    Pyg,
}

impl Framework {
    /// All three, in the paper's table order (PyG, DGL, WholeGraph).
    pub const ALL: [Framework; 3] = [Framework::Pyg, Framework::Dgl, Framework::WholeGraph];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Framework::WholeGraph => "WholeGraph",
            Framework::Dgl => "DGL",
            Framework::Pyg => "PyG",
        }
    }

    /// Whether the graph and features live in multi-GPU shared memory
    /// (versus host DRAM).
    pub fn uses_dsm(self) -> bool {
        matches!(self, Framework::WholeGraph)
    }

    /// Which sampler executes (and at what cost).
    pub fn sampler_backend(self) -> SamplerBackend {
        match self {
            Framework::WholeGraph => SamplerBackend::WholeGraphGpu,
            Framework::Dgl => SamplerBackend::DglCpu,
            Framework::Pyg => SamplerBackend::PygCpu,
        }
    }

    /// Which layer implementation the framework trains with by default.
    pub fn default_provider(self) -> LayerProvider {
        match self {
            Framework::WholeGraph => LayerProvider::WholeGraphNative,
            Framework::Dgl => LayerProvider::DglLayers,
            Framework::Pyg => LayerProvider::PygLayers,
        }
    }

    /// Whether the GPU is busy during the sampling/gather phases (it is
    /// for WholeGraph, which runs both on-device; the host pipelines leave
    /// the GPU starving — the Figure 12 dips).
    pub fn gpu_busy_in_input_phases(self) -> bool {
        self.uses_dsm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_properties() {
        assert!(Framework::WholeGraph.uses_dsm());
        assert!(!Framework::Dgl.uses_dsm());
        assert!(!Framework::Pyg.uses_dsm());
        assert_eq!(
            Framework::WholeGraph.sampler_backend(),
            SamplerBackend::WholeGraphGpu
        );
        assert_eq!(Framework::Dgl.default_provider(), LayerProvider::DglLayers);
        assert_eq!(Framework::ALL.len(), 3);
        assert_eq!(Framework::Pyg.name(), "PyG");
    }
}
