//! # WholeGraph — a fast GNN training framework on a multi-GPU distributed
//! # shared memory architecture (Rust reproduction)
//!
//! This crate is the user-facing façade of the reproduction of *WholeGraph*
//! (Yang, Liu, Qi & Lai — SC '22). The paper's system stores the graph
//! structure and node features across the device memories of all GPUs in a
//! node, accessed directly through GPUDirect P2P mappings, and runs
//! sampling, feature gathering and GNN layer compute entirely on the GPUs —
//! eliminating the CPU↔GPU pipeline that bottlenecks DGL/PyG.
//!
//! Everything executes for real on a **simulated machine** (see
//! [`wg_sim`]): kernels are rayon loops, device time comes from cost models
//! calibrated against the paper's own microbenchmarks. See `DESIGN.md` at
//! the repository root for the full substitution table.
//!
//! ## Quick start
//!
//! ```
//! use wholegraph::prelude::*;
//!
//! // A small learnable stand-in for ogbn-products on an 8-GPU "DGX".
//! let dataset = std::sync::Arc::new(SyntheticDataset::generate(
//!     DatasetKind::OgbnProducts, 2000, 42));
//! let machine = Machine::dgx_a100();
//! let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
//!     .with_seed(42);
//! let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();
//! let report = pipe.train_epoch(0);
//! assert!(report.loss.is_finite());
//! ```
//!
//! ## Modules
//!
//! * [`framework`] — the three systems under comparison: WholeGraph and
//!   the DGL/PyG-style host-memory baselines;
//! * [`convert`] — sampled-block → sparse-kernel format conversion;
//! * [`pipeline`] — the stage-graph engine (sample → gather → train
//!   stages, scheduled by a serial or stream-overlapped executor) with
//!   per-phase simulated timing and utilization traces;
//! * [`trainer`] — multi-epoch training and evaluation (accuracy
//!   experiments: Table III, Figure 7);
//! * [`multinode`] — data-parallel multi-node scaling (§III-D,
//!   Figure 13);
//! * [`observability`] — merged host-span / simulated-device Chrome
//!   trace export (pairs with the `wg-trace` crate);
//! * [`memstats`] — per-GPU memory accounting by phase (Table IV);
//! * [`fullbatch`] — whole-graph training for graphs that fit (§II-A's
//!   contrast case);
//! * [`metrics`] — confusion matrix / precision / recall / macro-F1.
//!
//! The `wg` binary (the `wg-cli` crate) exposes dataset generation, IO,
//! training, and online serving from the command line.

pub mod convert;
pub mod framework;
pub mod fullbatch;
pub mod memstats;
pub mod metrics;
pub mod multinode;
pub mod observability;
pub mod pipeline;
pub mod trainer;

pub use framework::Framework;
pub use pipeline::{
    CacheConfig, EpochOccupancy, EpochReport, ExecMode, FeaturePlacement, InferenceReport,
    Pipeline, PipelineConfig, ServeTimes, StorageConfig, SERVE_EPOCH,
};
pub use trainer::{TrainOutcome, Trainer, TrainerConfig};

/// Convenient re-exports for applications.
pub mod prelude {
    pub use crate::framework::Framework;
    pub use crate::multinode::{MultiNode, MultiNodeConfig, MultiNodeEpochReport, SyncConfig};
    pub use crate::pipeline::{
        CacheConfig, EpochOccupancy, EpochReport, ExecMode, FeaturePlacement, Pipeline,
        PipelineConfig, ServeTimes, StorageConfig, SERVE_EPOCH,
    };
    pub use crate::trainer::{TrainOutcome, Trainer, TrainerConfig};
    pub use wg_gnn::{GnnConfig, GnnModel, LayerProvider, ModelKind};
    pub use wg_graph::{DatasetKind, DegreeProfile, SyntheticDataset};
    pub use wg_mem::CacheMode;
    pub use wg_sample::SamplerConfig;
    pub use wg_sim::{Machine, MachineConfig, SimTime};
}
