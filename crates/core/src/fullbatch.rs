//! Full-batch (whole-graph) training.
//!
//! §II-A contrasts mini-batch training against training "all of the nodes
//! in one graph simultaneously": full batch needs memory for every node's
//! activations at every layer and updates parameters once per epoch —
//! which is why sampled mini-batches win on large graphs (and why
//! full-graph systems like ROC, §V, "are limited by the graph size").
//! WholeGraph's distributed feature storage still helps here: the full
//! feature matrix is gathered once from the DSM instead of crossing PCIe.
//!
//! This module provides the full-batch path for graphs that fit, both as
//! a usable API and as the substrate for the mini-batch-vs-full-batch
//! comparison the background section argues from.

use std::sync::Arc;

use wg_autograd::{Adam, Optimizer, Tape};
use wg_gnn::cost::{train_step_time, BlockShape};
use wg_gnn::{GnnConfig, GnnModel, LayerProvider, ModelKind};
use wg_graph::{Csr, SyntheticDataset};
use wg_sim::trace::Phase;
use wg_sim::{Machine, SimTime};
use wg_tensor::ops::{argmax_rows, softmax_cross_entropy};
use wg_tensor::sparse::BlockCsr;
use wg_tensor::Matrix;

/// Build the self-inclusive whole-graph block: every node is both a
/// destination and a source; edges are the graph's edges. `dup_count` is
/// the true in-degree (no node qualifies for the sampled-once store
/// optimization, as expected without sampling).
pub fn full_graph_block(graph: &Csr) -> BlockCsr {
    let n = graph.num_nodes();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut indices = Vec::with_capacity(graph.num_edges());
    for v in 0..n as u64 {
        for &t in graph.neighbors(v) {
            indices.push(t as u32);
        }
        offsets.push(indices.len() as u32);
    }
    let mut dup = vec![0u32; n];
    for &c in &indices {
        dup[c as usize] += 1;
    }
    BlockCsr {
        num_dst: n,
        num_src: n,
        offsets,
        indices,
        dup_count: dup,
    }
}

/// Per-epoch record of a full-batch run.
#[derive(Clone, Copy, Debug)]
pub struct FullBatchEpoch {
    /// Training loss over the train mask.
    pub loss: f32,
    /// Accuracy on the train mask.
    pub train_accuracy: f64,
}

/// A full-batch trainer over a dataset that fits in memory.
pub struct FullBatchTrainer {
    model: GnnModel,
    opt: Adam,
    dataset: Arc<SyntheticDataset>,
    block: Arc<BlockCsr>,
}

impl FullBatchTrainer {
    /// Build a full-batch trainer with the given model shape.
    pub fn new(
        dataset: Arc<SyntheticDataset>,
        kind: ModelKind,
        hidden: usize,
        num_layers: usize,
        lr: f32,
        seed: u64,
    ) -> Self {
        let cfg = GnnConfig {
            kind,
            in_dim: dataset.feature_dim,
            hidden,
            num_classes: dataset.num_classes,
            num_layers,
            heads: 2,
            dropout: 0.0,
        };
        let model = GnnModel::new(cfg, seed);
        let block = Arc::new(full_graph_block(&dataset.graph));
        FullBatchTrainer {
            model,
            opt: Adam::new(lr),
            dataset,
            block,
        }
    }

    /// The model (for inspection).
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// One full-batch epoch: a single forward/backward over the entire
    /// graph, loss masked to the training nodes. This is the §II-A
    /// drawback made concrete — "the parameter is updated only once for
    /// one epoch training".
    pub fn train_epoch(&mut self) -> FullBatchEpoch {
        let n = self.dataset.num_nodes();
        let features = Matrix::from_vec(n, self.dataset.feature_dim, self.dataset.features.clone());
        let blocks: Vec<Arc<BlockCsr>> = (0..self.model.cfg.num_layers)
            .map(|_| Arc::clone(&self.block))
            .collect();
        let mut tape = Tape::new();
        let out = self.model.forward(&mut tape, &blocks, features, true, 0);
        // Mask the loss to the training nodes by building the gradient
        // only over those rows.
        let logits = tape.value(out);
        let train = &self.dataset.train;
        let sub = Matrix::from_fn(train.len(), logits.cols(), |i, j| {
            logits.get(train[i] as usize, j)
        });
        let labels: Vec<u32> = train
            .iter()
            .map(|&v| self.dataset.labels[v as usize])
            .collect();
        let (loss, sub_grad) = softmax_cross_entropy(&sub, &labels);
        let preds = argmax_rows(&sub);
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        let mut grad = Matrix::zeros(logits.rows(), logits.cols());
        for (i, &v) in train.iter().enumerate() {
            grad.row_mut(v as usize).copy_from_slice(sub_grad.row(i));
        }
        self.model.params.zero_grads();
        tape.backward(out, grad, &mut self.model.params);
        self.opt.step(&mut self.model.params);
        FullBatchEpoch {
            loss,
            train_accuracy: correct as f64 / train.len().max(1) as f64,
        }
    }

    /// One full-batch epoch with its simulated training time charged to
    /// `machine`'s GPUs. The whole graph is one giant block per layer —
    /// there is no sampling or gather phase to overlap, which is §II-A's
    /// contrast with the staged mini-batch pipeline: the epoch is a
    /// single `Training` span, and no executor choice can shorten it.
    pub fn timed_epoch(
        &mut self,
        machine: &mut Machine,
        provider: LayerProvider,
    ) -> (FullBatchEpoch, SimTime) {
        let report = self.train_epoch();
        let n = self.dataset.num_nodes();
        let shape = BlockShape {
            num_dst: n,
            num_src: n,
            num_edges: self.dataset.num_edges(),
        };
        let shapes = vec![shape; self.model.cfg.num_layers];
        let t = train_step_time(
            &self.model.cfg,
            &shapes,
            provider,
            machine.cost(),
            machine.spec(wg_sim::DeviceId::Gpu(0)),
            self.model.params.num_scalars(),
        );
        machine.run_all_gpus(Phase::Training, true, t);
        (report, t)
    }

    /// Accuracy over an arbitrary node list (full forward, no sampling).
    pub fn evaluate(&self, nodes: &[wg_graph::NodeId]) -> f64 {
        let n = self.dataset.num_nodes();
        let features = Matrix::from_vec(n, self.dataset.feature_dim, self.dataset.features.clone());
        let blocks: Vec<Arc<BlockCsr>> = (0..self.model.cfg.num_layers)
            .map(|_| Arc::clone(&self.block))
            .collect();
        let mut tape = Tape::new();
        let out = self.model.forward(&mut tape, &blocks, features, false, 0);
        let logits = tape.value(out);
        let correct = nodes
            .iter()
            .filter(|&&v| {
                let row = logits.row(v as usize);
                let mut best = 0usize;
                for j in 1..row.len() {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best as u32 == self.dataset.labels[v as usize]
            })
            .count();
        correct as f64 / nodes.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_graph::DatasetKind;

    fn dataset() -> Arc<SyntheticDataset> {
        Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            2000,
            13,
        ))
    }

    #[test]
    fn full_graph_block_is_the_whole_graph() {
        let d = dataset();
        let b = full_graph_block(&d.graph);
        b.validate();
        assert_eq!(b.num_dst, d.num_nodes());
        assert_eq!(b.num_src, d.num_nodes());
        assert_eq!(b.num_edges(), d.num_edges());
        // dup_count is the in-degree.
        let total: u32 = b.dup_count.iter().sum();
        assert_eq!(total as usize, d.num_edges());
    }

    #[test]
    fn full_batch_gcn_learns() {
        let d = dataset();
        let mut t = FullBatchTrainer::new(Arc::clone(&d), ModelKind::Gcn, 32, 2, 2e-2, 3);
        let first = t.train_epoch();
        for _ in 0..30 {
            t.train_epoch();
        }
        let last = t.train_epoch();
        assert!(
            last.loss < first.loss,
            "loss {} -> {}",
            first.loss,
            last.loss
        );
        let val = t.evaluate(&d.val);
        assert!(val > 0.4, "full-batch val accuracy {val}");
    }

    #[test]
    fn full_batch_updates_once_per_epoch() {
        // §II-A: one parameter update per epoch — two epochs change the
        // parameters exactly twice, measurable via the Adam step count's
        // effect on weights.
        let d = dataset();
        let mut t = FullBatchTrainer::new(d, ModelKind::GraphSage, 16, 2, 1e-2, 4);
        let w0 = t
            .model()
            .params
            .value(t.model().params.ids().next().unwrap())
            .clone();
        t.train_epoch();
        let w1 = t
            .model()
            .params
            .value(t.model().params.ids().next().unwrap())
            .clone();
        assert!(w0.max_abs_diff(&w1) > 0.0, "an epoch must move parameters");
    }

    #[test]
    fn timed_epoch_charges_the_machine() {
        use wg_sim::{DeviceId, MachineConfig};
        let d = dataset();
        let mut t = FullBatchTrainer::new(d, ModelKind::Gcn, 16, 2, 1e-2, 7);
        let mut machine = Machine::new(MachineConfig::dgx_like(4));
        let (report, dt) = t.timed_epoch(&mut machine, LayerProvider::WholeGraphNative);
        assert!(report.loss.is_finite());
        assert!(dt > SimTime::ZERO);
        // All GPUs advance together by exactly the epoch's training time.
        for g in machine.gpus() {
            assert_eq!(machine.now(g), dt);
        }
        assert_eq!(
            machine.trace(DeviceId::Gpu(0)).phase_total(Phase::Training),
            dt
        );
    }
}
