//! Node-count sweeps: the executed multi-node sweep (Figure 13, run for
//! real through [`MultiNode`]) and the legacy mean-based projection it
//! replaced as the headline path.
//!
//! [`projected_sweep`] divides the per-epoch iteration count across
//! `nodes × gpus` ranks while the per-iteration time is unchanged; only
//! the AllReduce grows an inter-node (InfiniBand) term. With
//! per-iteration work in the tens of milliseconds and gradients of a few
//! MB over 200 GB/s of node IB bandwidth, projected speedup stays near
//! linear — the Figure 13 shape. [`executed_sweep`] builds a real
//! [`MultiNode`] cluster per point and trains an epoch, so partition
//! imbalance, halo traffic, and gradient-sync time all show up in the
//! measured epoch time instead of being assumed away.

use wg_sim::collective::allreduce_multi_node;
use wg_sim::SimTime;

use crate::multinode::exec::{MultiNode, MultiNodeConfig, MultiNodeEpochReport};
use crate::pipeline::{IterTimes, Pipeline, PipelineConfig};
use std::sync::Arc;
use wg_graph::SyntheticDataset;
use wg_sim::memory::OutOfMemory;

/// One point of the projected scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Machine nodes used.
    pub nodes: u32,
    /// Simulated epoch time.
    pub epoch_time: SimTime,
    /// Speedup relative to one node.
    pub speedup: f64,
}

/// One point of the executed scaling sweep.
#[derive(Clone, Debug)]
pub struct ExecutedPoint {
    /// Machine nodes used.
    pub nodes: u32,
    /// Measured cluster epoch time (slowest node sets it).
    pub epoch_time: SimTime,
    /// Speedup relative to the first point.
    pub speedup: f64,
    /// Parallel efficiency: speedup over the node-count ratio.
    pub efficiency: f64,
    /// The full cluster epoch report.
    pub report: MultiNodeEpochReport,
    /// Fraction of edges the machine-level partition cuts.
    pub cut_fraction: f64,
}

/// Measure per-iteration times on `pipe` (executing `real_iters`
/// iterations) and project the epoch time across `node_counts` machine
/// nodes. Kept as the cheap estimator; [`executed_sweep`] actually runs
/// the cluster.
pub fn projected_sweep(
    pipe: &mut Pipeline,
    node_counts: &[u32],
    real_iters: usize,
) -> Vec<ScalingPoint> {
    assert!(!node_counts.is_empty());
    let batches = pipe.epoch_batches(0);
    let n = real_iters.clamp(1, batches.len());
    let mut times: Vec<IterTimes> = Vec::with_capacity(n);
    for (i, batch) in batches.iter().take(n).enumerate() {
        times.push(pipe.run_iteration(0, i as u64, batch, true).times);
    }
    let mean = |f: fn(&IterTimes) -> SimTime| -> SimTime {
        times.iter().map(f).sum::<SimTime>() / times.len() as f64
    };
    let mean_times = IterTimes {
        sample: mean(|t| t.sample),
        gather: mean(|t| t.gather),
        train: mean(|t| t.train),
        comm: SimTime::ZERO, // replaced per node count below
        storage: mean(|t| t.storage),
    };

    let total_iters = batches.len();
    let gpus = pipe.machine().num_gpus();
    let param_bytes = pipe.model.params.param_bytes();
    let cost = pipe.machine().cost().clone();
    // Project with the pipeline's configured executor: serial waves cost
    // the phase sum, overlapped waves the max of the input and compute
    // streams (steady state of the double-buffered schedule).
    let exec = pipe.executor();

    let epoch_time = |nodes: u32| -> SimTime {
        let ranks = (nodes * gpus) as usize;
        let waves = total_iters.div_ceil(ranks).max(1);
        let comm = allreduce_multi_node(&cost, param_bytes, nodes, gpus);
        exec.wave_time(&IterTimes { comm, ..mean_times }) * waves as f64
    };

    let base = epoch_time(node_counts[0]);
    node_counts
        .iter()
        .map(|&nodes| {
            let t = epoch_time(nodes);
            ScalingPoint {
                nodes,
                epoch_time: t,
                speedup: base / t,
            }
        })
        .collect()
}

/// Backwards-compatible name for [`projected_sweep`] (the original
/// multi-node API projected instead of executing).
pub fn scaling_sweep(
    pipe: &mut Pipeline,
    node_counts: &[u32],
    real_iters: usize,
) -> Vec<ScalingPoint> {
    projected_sweep(pipe, node_counts, real_iters)
}

/// Execute one training epoch on a real [`MultiNode`] cluster per node
/// count and report measured times. Speedup/efficiency are relative to
/// the first point, normalized by the node-count ratio.
pub fn executed_sweep(
    dataset: Arc<SyntheticDataset>,
    pipe_cfg: PipelineConfig,
    base_cfg: MultiNodeConfig,
    node_counts: &[u32],
) -> Result<Vec<ExecutedPoint>, OutOfMemory> {
    assert!(!node_counts.is_empty());
    let mut out = Vec::with_capacity(node_counts.len());
    let mut base: Option<(u32, SimTime)> = None;
    for &nodes in node_counts {
        let mut cfg = base_cfg.clone();
        cfg.nodes = nodes;
        let mut mn = MultiNode::new(Arc::clone(&dataset), pipe_cfg.clone(), cfg)?;
        let report = mn.train_epoch(0);
        let cut_fraction = mn.plan().quality().cut_fraction;
        let t = report.epoch_time;
        let (n0, t0) = *base.get_or_insert((nodes, t));
        let speedup = t0 / t;
        out.push(ExecutedPoint {
            nodes,
            epoch_time: t,
            speedup,
            efficiency: speedup / (nodes as f64 / n0 as f64),
            report,
            cut_fraction,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use crate::pipeline::PipelineConfig;
    use std::sync::Arc;
    use wg_gnn::ModelKind;
    use wg_graph::{DatasetKind, SyntheticDataset};
    use wg_sim::{Machine, MachineConfig};

    fn pipeline() -> Pipeline {
        // Enough training nodes that an epoch has many waves even on
        // 8 nodes × 8 GPUs (scaling needs iterations to distribute).
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnPapers100M,
            2000,
            9,
        ));
        let machine = Machine::new(MachineConfig::dgx_like(8));
        let mut cfg =
            PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(1);
        cfg.batch_size = 16;
        Pipeline::new(machine, dataset, cfg).unwrap()
    }

    #[test]
    fn scaling_is_near_linear_up_to_8_nodes() {
        let mut pipe = pipeline();
        let pts = projected_sweep(&mut pipe, &[1, 2, 4, 8], 2);
        assert_eq!(pts.len(), 4);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        // Monotone speedups…
        for w in pts.windows(2) {
            assert!(w[1].speedup > w[0].speedup, "{pts:?}");
        }
        // …and near-linear at 8 nodes (Figure 13 shows "close to linear").
        // Wave quantization on the scaled dataset costs some efficiency;
        // require ≥55% parallel efficiency at 8 nodes.
        assert!(
            pts[3].speedup > 8.0 * 0.55,
            "8-node speedup only {:.2}",
            pts[3].speedup
        );
    }

    #[test]
    fn epoch_time_decreases_with_nodes() {
        let mut pipe = pipeline();
        let pts = projected_sweep(&mut pipe, &[1, 8], 1);
        assert!(pts[1].epoch_time < pts[0].epoch_time);
    }

    #[test]
    fn speedup_is_relative_to_first_point_and_iters_clamp() {
        let mut pipe = pipeline();
        // real_iters far beyond the epoch's batch count must clamp, and
        // the speedup baseline is the *first requested* node count (the
        // sweep need not start at 1).
        let pts = scaling_sweep(&mut pipe, &[2, 4], 100_000);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        assert_eq!(pts[0].nodes, 2);
        assert!(pts[1].speedup > 1.0);
        assert!(pts[1].epoch_time < pts[0].epoch_time);
    }

    #[test]
    fn single_point_sweep_is_identity() {
        let mut pipe = pipeline();
        let pts = projected_sweep(&mut pipe, &[3], 1);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].nodes, 3);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        assert!(pts[0].epoch_time > SimTime::ZERO);
    }

    #[test]
    fn sweep_iterations_feed_observability_counters() {
        // The sweep executes real iterations through the full stage
        // graph, so with metrics enabled the pipeline probes must accrue.
        wg_trace::enable_metrics();
        let mut pipe = pipeline();
        projected_sweep(&mut pipe, &[1], 2);
        wg_trace::disable_all();
        let snap = wg_trace::metrics::snapshot();
        for name in ["pipeline.gather.feature_bytes", "pipeline.allreduce.bytes"] {
            let c = snap.counters.iter().find(|(n, _)| n == name);
            assert!(
                c.is_some_and(|(_, v)| *v > 0.0),
                "{name} not accrued: {c:?}"
            );
        }
    }

    #[test]
    fn overlapped_projection_is_not_slower_than_serial() {
        use crate::pipeline::ExecMode;
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnPapers100M,
            2000,
            9,
        ));
        let project = |exec: ExecMode| {
            let machine = Machine::new(MachineConfig::dgx_like(8));
            let mut cfg = PipelineConfig::tiny(Framework::Dgl, ModelKind::GraphSage)
                .with_seed(1)
                .with_exec(exec);
            cfg.batch_size = 16;
            let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
            projected_sweep(&mut pipe, &[1, 4], 1)
        };
        let serial = project(ExecMode::Serial);
        let overlapped = project(ExecMode::Overlapped);
        for (s, o) in serial.iter().zip(&overlapped) {
            assert!(
                o.epoch_time < s.epoch_time,
                "{} nodes: overlapped {} !< serial {}",
                s.nodes,
                o.epoch_time,
                s.epoch_time
            );
        }
    }

    #[test]
    fn executed_n1_time_tracks_the_projected_n1_baseline() {
        // Satellite 1: the executed single-node epoch and the mean-based
        // projection measure the same machine — times must land within
        // wave-quantization noise of each other (the projection uses a
        // 2-iteration mean; execution runs every batch).
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnPapers100M,
            2000,
            9,
        ));
        let mut cfg =
            PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(1);
        cfg.batch_size = 16;
        let machine = Machine::new(MachineConfig::dgx_like(8));
        let mut pipe = Pipeline::new(machine, dataset.clone(), cfg.clone()).unwrap();
        let projected = projected_sweep(&mut pipe, &[1], usize::MAX);
        let executed =
            executed_sweep(dataset, cfg, MultiNodeConfig::new(1).with_gpus(8), &[1]).unwrap();
        let p = projected[0].epoch_time.as_secs();
        let e = executed[0].epoch_time.as_secs();
        // With real_iters = all batches the projection's mean equals the
        // true mean; only div_ceil wave quantization separates the two.
        let rel = (p - e).abs() / e;
        assert!(rel < 0.20, "projected {p} vs executed {e} (rel {rel})");
        assert!((executed[0].speedup - 1.0).abs() < 1e-9);
        assert_eq!(executed[0].cut_fraction, 0.0);
    }

    #[test]
    fn executed_sweep_speedups_are_relative_and_efficiency_bounded() {
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            1500,
            5,
        ));
        // One GPU per node and a small batch give the epoch enough waves
        // (~8 on one node) that adding nodes genuinely shortens the
        // critical path despite ceil-quantization and comm overhead.
        let mut cfg =
            PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(11);
        cfg.batch_size = 16;
        let pts = executed_sweep(
            dataset,
            cfg,
            MultiNodeConfig::new(1).with_gpus(1),
            &[1, 2, 4],
        )
        .unwrap();
        assert_eq!(pts.len(), 3);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-9);
        for w in pts.windows(2) {
            assert!(
                w[1].epoch_time < w[0].epoch_time,
                "epoch time must shrink: {} -> {}",
                w[0].epoch_time,
                w[1].epoch_time
            );
        }
        for p in &pts[1..] {
            assert!(p.speedup > 1.0);
            assert!(p.efficiency <= 1.05, "efficiency {} > 1", p.efficiency);
            assert!(p.cut_fraction > 0.0);
        }
    }
}
