//! The machine-level partition behind a multi-node run.
//!
//! One [`wg_graph::HashPartition`] over the dataset's stable node ids
//! assigns every vertex an owning *machine* (a level above the per-GPU
//! partition inside each node's DSM store). The plan derives each node's
//! training shard — the train vertices it owns, in dataset order — and
//! the partition's quality statistics (edge cut, boundary set, balance),
//! which bound the halo traffic the executed pipelines will pay.

use std::sync::Arc;

use wg_graph::{HashPartition, NodeId, PartitionQuality, SyntheticDataset};

/// The machine-level partition plus derived per-node training shards.
pub struct PartitionPlan {
    partition: Arc<HashPartition>,
    quality: PartitionQuality,
    local_train: Vec<Vec<NodeId>>,
}

impl PartitionPlan {
    /// Partition `dataset` over `nodes` machines by node-ID hash.
    ///
    /// The per-node training shards preserve the dataset's train-split
    /// order, so at `nodes == 1` the single shard *is* `dataset.train` —
    /// the first link in the N=1 bit-identity chain.
    pub fn new(dataset: &SyntheticDataset, nodes: u32) -> Self {
        assert!(nodes >= 1, "a plan needs at least one machine");
        let partition = Arc::new(HashPartition::new(dataset.graph.num_nodes(), nodes));
        let quality = partition.quality(&dataset.graph);
        let mut local_train: Vec<Vec<NodeId>> = vec![Vec::new(); nodes as usize];
        for &v in &dataset.train {
            local_train[partition.rank_of(v) as usize].push(v);
        }
        PartitionPlan {
            partition,
            quality,
            local_train,
        }
    }

    /// Number of machines.
    pub fn nodes(&self) -> u32 {
        self.partition.ranks()
    }

    /// The underlying machine-level partition (shared with each replica's
    /// halo accounting).
    pub fn partition(&self) -> &Arc<HashPartition> {
        &self.partition
    }

    /// Partition quality against the dataset's graph.
    pub fn quality(&self) -> &PartitionQuality {
        &self.quality
    }

    /// Owning machine of a vertex.
    pub fn owner(&self, v: NodeId) -> u32 {
        self.partition.rank_of(v)
    }

    /// Training vertices owned by `node`, in dataset train-split order.
    pub fn local_train(&self, node: u32) -> &[NodeId] {
        &self.local_train[node as usize]
    }

    /// Total training vertices across all shards (= the train split).
    pub fn total_train(&self) -> usize {
        self.local_train.iter().map(Vec::len).sum()
    }

    /// Largest shard over ideal shard size (1.0 = perfectly balanced).
    pub fn train_imbalance(&self) -> f64 {
        let ideal = self.total_train() as f64 / self.nodes() as f64;
        if ideal == 0.0 {
            return 1.0;
        }
        self.local_train.iter().map(Vec::len).max().unwrap_or(0) as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_graph::DatasetKind;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetKind::OgbnProducts, 1500, 5)
    }

    #[test]
    fn single_node_shard_is_the_whole_train_split_in_order() {
        let ds = dataset();
        let plan = PartitionPlan::new(&ds, 1);
        assert_eq!(plan.local_train(0), &ds.train[..]);
        assert_eq!(plan.quality().edge_cut, 0);
        assert_eq!(plan.train_imbalance(), 1.0);
    }

    #[test]
    fn shards_are_a_disjoint_cover_of_the_train_split() {
        let ds = dataset();
        let plan = PartitionPlan::new(&ds, 4);
        assert_eq!(plan.total_train(), ds.train.len());
        let mut seen = std::collections::HashSet::new();
        for k in 0..4 {
            for &v in plan.local_train(k) {
                assert_eq!(plan.owner(v), k);
                assert!(seen.insert(v), "vertex {v} in two shards");
            }
        }
        // Hash sharding of a sizeable train split stays roughly balanced.
        assert!(
            plan.train_imbalance() < 1.5,
            "train imbalance {}",
            plan.train_imbalance()
        );
    }

    #[test]
    fn shards_preserve_dataset_order() {
        let ds = dataset();
        let plan = PartitionPlan::new(&ds, 3);
        for k in 0..3 {
            let shard = plan.local_train(k);
            let filtered: Vec<_> = ds
                .train
                .iter()
                .copied()
                .filter(|&v| plan.owner(v) == k)
                .collect();
            assert_eq!(shard, &filtered[..]);
        }
    }
}
