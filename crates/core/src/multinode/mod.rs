//! Multi-node data-parallel **execution** (§III-D, Figure 13).
//!
//! "Each machine node holds one replica of the graph structure and graph
//! features ... Sampling and gathering feature ops are proceeded using
//! graph and feature stored in local machine node. ... all GPUs
//! synchronize the computed gradients with each other using the Allreduce
//! communication."
//!
//! Earlier revisions *projected* multi-node scaling from single-node
//! means (that projection survives as [`projected_sweep`]); this module
//! **executes** it: N simulated machines, each running its own stage-graph
//! [`Pipeline`](crate::pipeline::Pipeline) over a machine-level
//! [`wg_graph::HashPartition`] of the training set, with halo
//! (boundary-node) feature fetches priced through [`wg_mem::halo`] and
//! gradients synchronized through the inter-node ring AllReduce of
//! [`wg_sim::collective`]. The pieces:
//!
//! * [`partition_plan`] — the machine-level graph partition: per-node
//!   training shards plus [`wg_graph::PartitionQuality`] (edge cut,
//!   boundary set, balance).
//! * [`exec`] — [`MultiNode`], the cluster executor: the per-wave loop
//!   (every node runs one deferred-step iteration, gradients sync, all
//!   replicas step in lockstep), per-node epoch reports from the PR 1/4
//!   executors, and the trailing [`wg_sim::cluster_barrier`].
//! * [`sync`] — [`GradSync`]: full gradient averaging, optional top-k
//!   gradient compression with error feedback, and a DistGNN-style
//!   delayed partial-aggregation mode (local steps, periodic parameter
//!   averaging).
//! * [`sweep`] — [`executed_sweep`] (run one epoch per node count) and
//!   the legacy mean-based [`projected_sweep`].
//!
//! Correctness bar: at N=1 the executed epoch is **bit-identical** to
//! [`Pipeline::train_epoch`](crate::pipeline::Pipeline::train_epoch) —
//! same losses, same simulated times — because the local batch shard is
//! the whole training set in the same shuffle order, the halo and
//! inter-node AllReduce terms are exactly zero, and the gradient sync is
//! a complete no-op. At N>1 the numerics follow synchronized
//! data-parallel SGD over partitioned shards (loss parity within
//! tolerance, not bit equality — batch compositions differ).

pub mod exec;
pub mod partition_plan;
pub mod sweep;
pub mod sync;

pub use exec::{MultiNode, MultiNodeConfig, MultiNodeEpochReport, NodeEpochReport};
pub use partition_plan::PartitionPlan;
pub use sweep::{executed_sweep, projected_sweep, scaling_sweep, ExecutedPoint, ScalingPoint};
pub use sync::{GradSync, SyncConfig, WaveSync};
