//! Gradient synchronization across machine nodes.
//!
//! Three modes, all deterministic:
//!
//! * **Full** (default): per wave, the active replicas' gradients are
//!   averaged and written into *every* replica, and every replica steps —
//!   synchronized DDP. Because all replicas always see identical
//!   gradients, their parameters (and Adam moments) stay bitwise in
//!   lockstep.
//! * **Top-k compression with error feedback**: each replica sends only
//!   the k largest-magnitude entries of `gradient + residual` per
//!   parameter; unsent mass accumulates in the residual and is retried
//!   next wave (the standard sparsification recipe). The inter-node
//!   payload shrinks from 4 bytes/element to `frac · 8` bytes/element
//!   (value + index).
//! * **Delayed partial aggregation** (DistGNN-style): replicas take
//!   *local* optimizer steps and only every `delayed_agg_period`-th wave
//!   average their parameters. Comm becomes bursty and cheaper; the
//!   replicas drift between syncs.
//!
//! With a single replica every mode is a complete no-op — gradients are
//!   not even read — which preserves the N=1 bit identity (summing one
//!   value can still flip `-0.0` to `+0.0`).

use wg_autograd::{ParamId, Params};
use wg_sim::collective::allreduce_inter_node;
use wg_sim::{CostModel, SimTime};

/// How gradients are synchronized across nodes.
#[derive(Clone, Debug)]
pub struct SyncConfig {
    /// `Some(f)`: per parameter, send only the top `ceil(f · len)`
    /// entries of gradient + residual (error feedback). `0 < f <= 1`.
    pub compress_topk: Option<f64>,
    /// Sync every `period` waves with local steps in between; `1` =
    /// synchronized DDP every wave.
    pub delayed_agg_period: u32,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            compress_topk: None,
            delayed_agg_period: 1,
        }
    }
}

impl SyncConfig {
    /// Whether replicas step locally between periodic parameter syncs.
    pub fn is_delayed(&self) -> bool {
        self.delayed_agg_period > 1
    }
}

/// What one wave's sync did.
#[derive(Clone, Copy, Debug)]
pub struct WaveSync {
    /// Inter-node time charged to the participating replicas' comm.
    pub time: SimTime,
    /// Inter-node bytes each node moved this wave (ring volume).
    pub bytes: u64,
    /// Whether a sync actually happened (false on skipped delayed waves).
    pub synced: bool,
}

impl WaveSync {
    fn skipped() -> Self {
        WaveSync {
            time: SimTime::ZERO,
            bytes: 0,
            synced: false,
        }
    }

    fn noop() -> Self {
        WaveSync {
            time: SimTime::ZERO,
            bytes: 0,
            synced: true,
        }
    }
}

/// The cross-node gradient synchronizer, with its compression residuals
/// and reusable scratch (steady-state waves reuse warm capacity).
pub struct GradSync {
    cfg: SyncConfig,
    cost: CostModel,
    nodes: u32,
    /// `residuals[node][param]` — error-feedback state, compression only.
    residuals: Vec<Vec<Vec<f32>>>,
    sum: Vec<f32>,
    eff: Vec<f32>,
    order: Vec<u32>,
}

/// Bytes a ring collective moves per node for `payload` bytes of data.
fn ring_bytes(payload: u64, nodes: u32) -> u64 {
    if nodes <= 1 {
        return 0;
    }
    let n = nodes as f64;
    (2.0 * (n - 1.0) / n * payload as f64) as u64
}

impl GradSync {
    /// A synchronizer for `nodes` replicas under `cfg`.
    pub fn new(cfg: SyncConfig, cost: CostModel, nodes: u32) -> Self {
        if let Some(f) = cfg.compress_topk {
            assert!(
                f > 0.0 && f <= 1.0,
                "top-k fraction must be in (0, 1], got {f}"
            );
        }
        assert!(cfg.delayed_agg_period >= 1, "sync period must be >= 1");
        GradSync {
            cfg,
            cost,
            nodes,
            residuals: Vec::new(),
            sum: Vec::new(),
            eff: Vec::new(),
            order: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SyncConfig {
        &self.cfg
    }

    /// Synchronize after wave `wave`. `active` lists the replica indices
    /// that ran an iteration this wave (trailing waves may have fewer).
    ///
    /// In full/compressed mode this averages **gradients** over the
    /// active replicas into every replica (callers then step all
    /// replicas in lockstep). In delayed mode it averages **parameters**
    /// across all replicas on period waves (callers step locally before
    /// calling this).
    pub fn sync_wave(
        &mut self,
        wave: u64,
        replicas: &mut [&mut Params],
        active: &[usize],
    ) -> WaveSync {
        if replicas.len() <= 1 || active.is_empty() {
            return WaveSync::noop();
        }
        if self.cfg.is_delayed() {
            if !(wave + 1).is_multiple_of(self.cfg.delayed_agg_period as u64) {
                return WaveSync::skipped();
            }
            return self.sync_params(replicas);
        }
        match self.cfg.compress_topk {
            None => self.sync_full(replicas, active),
            Some(frac) => self.sync_topk(replicas, active, frac),
        }
    }

    /// End-of-epoch flush: in delayed mode, force a final parameter
    /// average so the replicas agree before evaluation. Returns `None`
    /// when no flush is needed (full mode keeps replicas in lockstep).
    pub fn finish_epoch(&mut self, replicas: &mut [&mut Params]) -> Option<WaveSync> {
        if replicas.len() <= 1 || !self.cfg.is_delayed() {
            return None;
        }
        Some(self.sync_params(replicas))
    }

    fn sync_full(&mut self, replicas: &mut [&mut Params], active: &[usize]) -> WaveSync {
        let ids: Vec<ParamId> = replicas[0].ids().collect();
        if active.len() == 1 {
            // Single participant: its gradients are broadcast verbatim
            // (copy, not sum/divide — `0.0 + (-0.0)` would flip sign
            // bits and break the lockstep bit-equality invariant).
            let src = active[0];
            for &id in &ids {
                self.sum.clear();
                self.sum.extend_from_slice(replicas[src].grad(id).data());
                for (k, r) in replicas.iter_mut().enumerate() {
                    if k != src {
                        r.grad_mut(id).data_mut().copy_from_slice(&self.sum);
                    }
                }
            }
        } else {
            let inv = 1.0 / active.len() as f32;
            for &id in &ids {
                let len = replicas[0].grad(id).data().len();
                self.sum.clear();
                self.sum.resize(len, 0.0);
                for &k in active {
                    for (s, g) in self.sum.iter_mut().zip(replicas[k].grad(id).data()) {
                        *s += g;
                    }
                }
                for s in self.sum.iter_mut() {
                    *s *= inv;
                }
                for r in replicas.iter_mut() {
                    r.grad_mut(id).data_mut().copy_from_slice(&self.sum);
                }
            }
        }
        let payload = replicas[0].param_bytes();
        WaveSync {
            time: allreduce_inter_node(&self.cost, payload, self.nodes),
            bytes: ring_bytes(payload, self.nodes),
            synced: true,
        }
    }

    fn sync_topk(&mut self, replicas: &mut [&mut Params], active: &[usize], frac: f64) -> WaveSync {
        let n = replicas.len();
        if self.residuals.len() != n {
            self.residuals = vec![Vec::new(); n];
        }
        let ids: Vec<ParamId> = replicas[0].ids().collect();
        for r in &mut self.residuals {
            if r.len() != ids.len() {
                *r = vec![Vec::new(); ids.len()];
            }
        }
        let inv = 1.0 / active.len() as f32;
        let mut payload: u64 = 0;
        for (pi, &id) in ids.iter().enumerate() {
            let len = replicas[0].grad(id).data().len();
            let k = ((frac * len as f64).ceil() as usize).clamp(1, len);
            // Value + index per sent element.
            payload += (k * 8) as u64;
            self.sum.clear();
            self.sum.resize(len, 0.0);
            for &node in active {
                let res = &mut self.residuals[node][pi];
                if res.len() != len {
                    res.clear();
                    res.resize(len, 0.0);
                }
                // Error feedback: compress gradient + carried residual.
                self.eff.clear();
                self.eff.extend(
                    replicas[node]
                        .grad(id)
                        .data()
                        .iter()
                        .zip(res.iter())
                        .map(|(g, r)| g + r),
                );
                // Deterministic top-k: |value| descending, index
                // ascending as the tie-break (total order — replay-safe).
                self.order.clear();
                self.order.extend(0..len as u32);
                let eff = &self.eff;
                if k < len {
                    self.order.select_nth_unstable_by(k - 1, |&a, &b| {
                        eff[b as usize]
                            .abs()
                            .total_cmp(&eff[a as usize].abs())
                            .then(a.cmp(&b))
                    });
                }
                // Selected entries ship (and sum toward the mean);
                // everything else stays behind as the new residual.
                res.copy_from_slice(&self.eff);
                for &i in &self.order[..k] {
                    let i = i as usize;
                    self.sum[i] += self.eff[i];
                    res[i] = 0.0;
                }
            }
            for s in self.sum.iter_mut() {
                *s *= inv;
            }
            for r in replicas.iter_mut() {
                r.grad_mut(id).data_mut().copy_from_slice(&self.sum);
            }
        }
        WaveSync {
            time: allreduce_inter_node(&self.cost, payload, self.nodes),
            bytes: ring_bytes(payload, self.nodes),
            synced: true,
        }
    }

    fn sync_params(&mut self, replicas: &mut [&mut Params]) -> WaveSync {
        let ids: Vec<ParamId> = replicas[0].ids().collect();
        let inv = 1.0 / replicas.len() as f32;
        for &id in &ids {
            let len = replicas[0].value(id).data().len();
            self.sum.clear();
            self.sum.resize(len, 0.0);
            for r in replicas.iter() {
                for (s, v) in self.sum.iter_mut().zip(r.value(id).data()) {
                    *s += v;
                }
            }
            for s in self.sum.iter_mut() {
                *s *= inv;
            }
            for r in replicas.iter_mut() {
                r.value_mut(id).data_mut().copy_from_slice(&self.sum);
            }
        }
        let payload = replicas[0].param_bytes();
        WaveSync {
            time: allreduce_inter_node(&self.cost, payload, self.nodes),
            bytes: ring_bytes(payload, self.nodes),
            synced: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_tensor::Matrix;

    fn params_with_grad(g: &[f32]) -> Params {
        let mut p = Params::new();
        let id = p.add("w", Matrix::zeros(1, g.len()));
        // Write the gradient bits directly (accumulating into the zeroed
        // gradient would turn -0.0 into +0.0 before the test even runs).
        p.grad_mut(id).data_mut().copy_from_slice(g);
        p
    }

    fn grad(p: &Params) -> Vec<f32> {
        let id = p.ids().next().unwrap();
        p.grad(id).data().to_vec()
    }

    fn sync() -> GradSync {
        GradSync::new(SyncConfig::default(), CostModel::dgx_a100(), 2)
    }

    #[test]
    fn single_replica_sync_is_a_complete_noop() {
        let mut p = params_with_grad(&[1.0, -0.0, 3.0]);
        let before = grad(&p);
        let before_bits: Vec<u32> = before.iter().map(|v| v.to_bits()).collect();
        let mut s = GradSync::new(SyncConfig::default(), CostModel::dgx_a100(), 1);
        let ws = s.sync_wave(0, &mut [&mut p], &[0]);
        assert!(ws.time.is_zero());
        assert_eq!(ws.bytes, 0);
        let after_bits: Vec<u32> = grad(&p).iter().map(|v| v.to_bits()).collect();
        // Bitwise untouched, including the negative zero.
        assert_eq!(before_bits, after_bits);
    }

    #[test]
    fn full_sync_averages_into_every_replica() {
        let mut a = params_with_grad(&[1.0, 2.0, 3.0]);
        let mut b = params_with_grad(&[3.0, 2.0, 1.0]);
        let ws = sync().sync_wave(0, &mut [&mut a, &mut b], &[0, 1]);
        assert!(ws.synced);
        assert!(ws.time > SimTime::ZERO);
        assert!(ws.bytes > 0);
        assert_eq!(grad(&a), vec![2.0, 2.0, 2.0]);
        assert_eq!(grad(&a), grad(&b));
    }

    #[test]
    fn single_active_participant_broadcasts_verbatim() {
        let mut a = params_with_grad(&[1.0, -0.0, 3.0]);
        let mut b = params_with_grad(&[9.0, 9.0, 9.0]);
        sync().sync_wave(0, &mut [&mut a, &mut b], &[0]);
        let ab: Vec<u32> = grad(&a).iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = grad(&b).iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
        assert_eq!(grad(&b)[0], 1.0);
        // The -0.0 survived the broadcast bit-exactly.
        assert_eq!(grad(&b)[1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn topk_keeps_largest_and_carries_residual() {
        let cfg = SyncConfig {
            compress_topk: Some(0.5),
            delayed_agg_period: 1,
        };
        let mut s = GradSync::new(cfg, CostModel::dgx_a100(), 2);
        let mut a = params_with_grad(&[4.0, 0.1, -3.0, 0.2]);
        let mut b = params_with_grad(&[4.0, 0.1, -3.0, 0.2]);
        let ws = s.sync_wave(0, &mut [&mut a, &mut b], &[0, 1]);
        assert!(ws.synced);
        // k = 2 of 4: the two largest |values| (4.0, -3.0) ship; the
        // small entries stay as residual.
        assert_eq!(grad(&a), vec![4.0, 0.0, -3.0, 0.0]);
        assert_eq!(grad(&a), grad(&b));
        // Next wave with zero fresh gradient: the residual alone is now
        // the largest mass and finally ships.
        a.zero_grads();
        b.zero_grads();
        let _ = s.sync_wave(1, &mut [&mut a, &mut b], &[0, 1]);
        assert_eq!(grad(&a), vec![0.0, 0.1, 0.0, 0.2]);
    }

    #[test]
    fn topk_moves_fewer_bytes_than_full() {
        let cfg = SyncConfig {
            compress_topk: Some(0.1),
            delayed_agg_period: 1,
        };
        let g: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut a = params_with_grad(&g);
        let mut b = params_with_grad(&g);
        let full = sync().sync_wave(0, &mut [&mut a, &mut b], &[0, 1]);
        let mut s = GradSync::new(cfg, CostModel::dgx_a100(), 2);
        let mut a = params_with_grad(&g);
        let mut b = params_with_grad(&g);
        let topk = s.sync_wave(0, &mut [&mut a, &mut b], &[0, 1]);
        assert!(
            topk.bytes < full.bytes / 2,
            "top-k {} !<< full {}",
            topk.bytes,
            full.bytes
        );
        assert!(topk.time < full.time);
    }

    #[test]
    fn delayed_mode_skips_off_period_waves_and_averages_params() {
        let cfg = SyncConfig {
            compress_topk: None,
            delayed_agg_period: 2,
        };
        let mut s = GradSync::new(cfg, CostModel::dgx_a100(), 2);
        let mut a = Params::new();
        let ia = a.add("w", Matrix::from_vec(1, 2, vec![1.0, 3.0]));
        let mut b = Params::new();
        let ib = b.add("w", Matrix::from_vec(1, 2, vec![3.0, 5.0]));
        // Wave 0: off-period — nothing happens.
        let ws = s.sync_wave(0, &mut [&mut a, &mut b], &[0, 1]);
        assert!(!ws.synced);
        assert_eq!(a.value(ia).data(), &[1.0, 3.0]);
        // Wave 1: period hit — parameters average.
        let ws = s.sync_wave(1, &mut [&mut a, &mut b], &[0, 1]);
        assert!(ws.synced);
        assert_eq!(a.value(ia).data(), &[2.0, 4.0]);
        assert_eq!(b.value(ib).data(), &[2.0, 4.0]);
        // finish_epoch forces a flush in delayed mode.
        assert!(s.finish_epoch(&mut [&mut a, &mut b]).is_some());
    }

    #[test]
    #[should_panic(expected = "top-k fraction")]
    fn zero_topk_fraction_rejected() {
        GradSync::new(
            SyncConfig {
                compress_topk: Some(0.0),
                delayed_agg_period: 1,
            },
            CostModel::dgx_a100(),
            2,
        );
    }
}
