//! The multi-node cluster executor: N machines, N pipeline replicas, one
//! synchronized training stream per wave.
//!
//! Execution model (paper §III-D): every machine holds a replica of the
//! graph and features, trains on its own shard of the training split, and
//! synchronizes gradients with the other machines after each wave.
//! Structurally:
//!
//! 1. [`PartitionPlan`] splits the training split by the machine-level
//!    hash partition; each node shuffles and batches its shard with the
//!    same seed schedule as
//!    [`Pipeline::train_epoch`](crate::pipeline::Pipeline::train_epoch).
//! 2. Per wave, every node with batches left runs one deferred-step
//!    iteration on its own simulated [`wg_sim::Machine`] (sample → halo
//!    fetch → gather → train); halo rows — input rows owned by another
//!    machine — are priced over IB by [`wg_mem::halo`].
//! 3. [`GradSync`] averages gradients across replicas (optionally top-k
//!    compressed, or replaced by delayed parameter averaging), the
//!    inter-node ring AllReduce time is charged to the wave's comm
//!    phase, and replicas step.
//! 4. At epoch end each node's iteration results go through the
//!    configured PR 1/4 executor ([`Pipeline::finish_epoch`] →
//!    per-node [`EpochReport`]), and [`wg_sim::cluster_barrier`] aligns
//!    the machines: the epoch takes as long as the slowest node.
//!
//! At `nodes == 1` every multi-node term is exactly zero and the run is
//! bit-identical to the single pipeline (see the module docs of
//! [`crate::multinode`]).

use std::sync::Arc;

use rand::prelude::*;
use rand::rngs::SmallRng;

use wg_graph::{NodeId, SyntheticDataset};
use wg_sim::memory::OutOfMemory;
use wg_sim::{cluster_barrier, Machine, MachineConfig, SimTime};

use crate::multinode::partition_plan::PartitionPlan;
use crate::multinode::sync::{GradSync, SyncConfig};
use crate::pipeline::{DistContext, EpochReport, IterationResult, Pipeline, PipelineConfig};

/// Shape of the simulated cluster.
#[derive(Clone, Debug)]
pub struct MultiNodeConfig {
    /// Number of machine nodes.
    pub nodes: u32,
    /// GPUs per machine (each node is a dgx-like box).
    pub gpus_per_node: u32,
    /// Gradient synchronization mode.
    pub sync: SyncConfig,
}

impl MultiNodeConfig {
    /// `nodes` dgx-like 8-GPU machines with full per-wave gradient sync.
    pub fn new(nodes: u32) -> Self {
        MultiNodeConfig {
            nodes,
            gpus_per_node: 8,
            sync: SyncConfig::default(),
        }
    }

    /// Override GPUs per node.
    pub fn with_gpus(mut self, gpus: u32) -> Self {
        self.gpus_per_node = gpus;
        self
    }

    /// Override the gradient sync mode.
    pub fn with_sync(mut self, sync: SyncConfig) -> Self {
        self.sync = sync;
        self
    }
}

/// One node's view of an executed epoch.
#[derive(Clone, Debug)]
pub struct NodeEpochReport {
    /// Machine rank.
    pub node: u32,
    /// The node's pipeline epoch report (`None` if its shard was empty).
    pub report: Option<EpochReport>,
    /// Input feature rows this node fetched from other machines.
    pub halo_rows: u64,
    /// Bytes those halo rows moved over IB.
    pub halo_bytes: u64,
    /// Iterations the node executed.
    pub iterations: usize,
}

/// Cluster-level report of one executed epoch.
#[derive(Clone, Debug)]
pub struct MultiNodeEpochReport {
    /// Machines in the run.
    pub nodes: u32,
    /// Cluster epoch time: the slowest node's epoch (all machines
    /// rendezvous at the trailing barrier, so the cluster advances at
    /// the pace of its slowest member). At N=1 this is bitwise the
    /// single pipeline's `epoch_time`.
    pub epoch_time: SimTime,
    /// Mean training loss over all executed iterations (node-major, the
    /// same reduction [`EpochReport`] uses — bitwise identical at N=1).
    pub loss: f32,
    /// Training accuracy over all executed iterations.
    pub train_accuracy: f64,
    /// Iterations executed across all nodes.
    pub executed_iterations: usize,
    /// Synchronization waves the epoch ran.
    pub waves: usize,
    /// Inter-node bytes each node moved for gradient sync over the epoch.
    pub sync_bytes: u64,
    /// Inter-node time spent in gradient sync over the epoch.
    pub sync_time: SimTime,
    /// Per-iteration losses, node-major (node 0's iterations first).
    pub losses: Vec<f32>,
    /// Per-node reports.
    pub per_node: Vec<NodeEpochReport>,
}

/// The multi-node executor: one [`Pipeline`] replica per machine plus the
/// cross-node gradient synchronizer.
pub struct MultiNode {
    cfg: MultiNodeConfig,
    plan: PartitionPlan,
    pipes: Vec<Pipeline>,
    sync: GradSync,
}

impl MultiNode {
    /// Build `cfg.nodes` machines, each with its own pipeline replica
    /// over (a full local copy of) `dataset`, sharded by a machine-level
    /// hash partition.
    pub fn new(
        dataset: Arc<SyntheticDataset>,
        pipe_cfg: PipelineConfig,
        cfg: MultiNodeConfig,
    ) -> Result<Self, OutOfMemory> {
        assert!(cfg.nodes >= 1, "a cluster needs at least one node");
        let plan = PartitionPlan::new(&dataset, cfg.nodes);
        let mut pipes = Vec::with_capacity(cfg.nodes as usize);
        for k in 0..cfg.nodes {
            let machine = Machine::new(MachineConfig::dgx_like(cfg.gpus_per_node));
            let mut pipe = Pipeline::new(machine, Arc::clone(&dataset), pipe_cfg.clone())?;
            pipe.set_dist(DistContext::new(k, Arc::clone(plan.partition())));
            pipes.push(pipe);
        }
        let cost = pipes[0].machine().cost().clone();
        let sync = GradSync::new(cfg.sync.clone(), cost, cfg.nodes);
        Ok(MultiNode {
            cfg,
            plan,
            pipes,
            sync,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MultiNodeConfig {
        &self.cfg
    }

    /// The machine-level partition plan.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Node `k`'s pipeline replica.
    pub fn pipeline(&self, k: u32) -> &Pipeline {
        &self.pipes[k as usize]
    }

    /// Mutable access to node `k`'s pipeline replica.
    pub fn pipeline_mut(&mut self, k: u32) -> &mut Pipeline {
        &mut self.pipes[k as usize]
    }

    /// Every node's simulated machine (for cluster trace export).
    pub fn machines(&self) -> Vec<&Machine> {
        self.pipes.iter().map(|p| p.machine()).collect()
    }

    /// Node `k`'s shuffled batches for `epoch` — the same shuffle-seed
    /// schedule as [`Pipeline::epoch_batches`], applied to the node's
    /// shard. At `nodes == 1` the shard is the whole train split in
    /// dataset order, so the batches are identical to the single-node
    /// epoch's.
    pub fn local_batches(&self, k: u32, epoch: u64) -> Vec<Vec<NodeId>> {
        let mut order = self.plan.local_train(k).to_vec();
        let seed = self.pipes[k as usize].config().seed;
        order.shuffle(&mut SmallRng::seed_from_u64(
            seed ^ epoch.wrapping_mul(0x9e37),
        ));
        let bs = self.pipes[k as usize].config().batch_size;
        order.chunks(bs).map(<[NodeId]>::to_vec).collect()
    }

    /// Execute one data-parallel epoch across all nodes.
    pub fn train_epoch(&mut self, epoch: u64) -> MultiNodeEpochReport {
        let _span = wg_trace::span!("multinode.epoch");
        let nodes = self.cfg.nodes as usize;
        let batches: Vec<Vec<Vec<NodeId>>> = (0..self.cfg.nodes)
            .map(|k| self.local_batches(k, epoch))
            .collect();
        let waves = batches.iter().map(Vec::len).max().unwrap_or(0);
        let mut results: Vec<Vec<IterationResult>> = vec![Vec::new(); nodes];
        let mut active: Vec<usize> = Vec::with_capacity(nodes);
        let mut sync_time = SimTime::ZERO;
        let mut sync_bytes: u64 = 0;
        let delayed = self.sync.config().is_delayed();
        for wave in 0..waves {
            active.clear();
            for k in 0..nodes {
                if let Some(batch) = batches[k].get(wave) {
                    let r = self.pipes[k].run_iteration_deferred(epoch, wave as u64, batch);
                    results[k].push(r);
                    active.push(k);
                }
            }
            if delayed {
                // Delayed partial aggregation: local step first, periodic
                // parameter averaging after (DistGNN-style).
                for &k in &active {
                    self.pipes[k].apply_step();
                }
            }
            let ws = {
                let mut replicas: Vec<&mut wg_autograd::Params> =
                    self.pipes.iter_mut().map(|p| &mut p.model.params).collect();
                self.sync.sync_wave(wave as u64, &mut replicas, &active)
            };
            if !delayed {
                // Synchronized DDP: every replica received the same
                // averaged gradients, so every replica steps — parameters
                // (and optimizer moments) stay bitwise in lockstep.
                for p in &mut self.pipes {
                    p.apply_step();
                }
            }
            if ws.time > SimTime::ZERO {
                for &k in &active {
                    results[k]
                        .last_mut()
                        .expect("active node ran this wave")
                        .times
                        .comm += ws.time;
                }
            }
            sync_time += ws.time;
            sync_bytes += ws.bytes;
        }
        {
            // Delayed mode drifts between periodic syncs; flush so the
            // replicas agree before evaluation.
            let mut replicas: Vec<&mut wg_autograd::Params> =
                self.pipes.iter_mut().map(|p| &mut p.model.params).collect();
            if let Some(ws) = self.sync.finish_epoch(&mut replicas) {
                sync_time += ws.time;
                sync_bytes += ws.bytes;
            }
        }
        // Per-node accounting: hand each node's iterations to its
        // configured executor (charges machine clocks and traces).
        let mut per_node = Vec::with_capacity(nodes);
        for (k, node_results) in results.iter().enumerate() {
            let report = if node_results.is_empty() {
                None
            } else {
                Some(self.pipes[k].finish_epoch(node_results, node_results.len()))
            };
            let (halo_rows, halo_bytes) = self.pipes[k].take_halo_stats();
            per_node.push(NodeEpochReport {
                node: k as u32,
                report,
                halo_rows,
                halo_bytes,
                iterations: node_results.len(),
            });
        }
        // The slowest node sets the cluster epoch time. Each per-node
        // report measures its own epoch with the node's configured
        // executor (phase-sum for serial, schedule length for
        // overlapped), so the max — not a clock subtraction, which
        // accumulates float error in a different order — is the honest
        // cluster figure, and bitwise the pipeline's at N=1.
        let epoch_time = per_node
            .iter()
            .filter_map(|n| n.report.map(|r| r.epoch_time))
            .fold(SimTime::ZERO, SimTime::max);
        // Rendezvous: idle the faster machines up to the slowest so the
        // next epoch (and the exported traces) start aligned.
        {
            let mut machines: Vec<&mut Machine> =
                self.pipes.iter_mut().map(|p| p.machine_mut()).collect();
            cluster_barrier(&mut machines);
        }
        // Cluster numerics, node-major — the same reductions the
        // single-node executor applies, so N=1 is bitwise identical.
        let losses: Vec<f32> = results.iter().flatten().map(|r| r.loss).collect();
        let loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        let correct: usize = results.iter().flatten().map(|r| r.correct).sum();
        let seen: usize = results.iter().flatten().map(|r| r.batch).sum();
        let executed_iterations = losses.len();
        MultiNodeEpochReport {
            nodes: self.cfg.nodes,
            epoch_time,
            loss,
            train_accuracy: correct as f64 / seen.max(1) as f64,
            executed_iterations,
            waves,
            sync_bytes,
            sync_time,
            losses,
            per_node,
        }
    }

    /// Evaluate accuracy on a node set via node 0's replica (after a
    /// synchronized epoch all replicas hold the same parameters).
    pub fn evaluate(&mut self, nodes: &[NodeId]) -> f64 {
        self.pipes[0].evaluate(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use crate::pipeline::ExecMode;
    use wg_gnn::ModelKind;
    use wg_graph::DatasetKind;

    fn dataset() -> Arc<SyntheticDataset> {
        Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            1500,
            5,
        ))
    }

    fn pipe_cfg() -> PipelineConfig {
        let mut cfg =
            PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(11);
        cfg.batch_size = 32;
        cfg
    }

    fn cluster(nodes: u32) -> MultiNode {
        MultiNode::new(
            dataset(),
            pipe_cfg(),
            MultiNodeConfig::new(nodes).with_gpus(2),
        )
        .unwrap()
    }

    #[test]
    fn single_node_execution_is_bit_identical_to_the_pipeline() {
        let mut mn = cluster(1);
        let r = mn.train_epoch(0);
        let machine = Machine::new(MachineConfig::dgx_like(2));
        let mut single = Pipeline::new(machine, dataset(), pipe_cfg()).unwrap();
        let s = single.train_epoch(0);
        // Same losses bit for bit, same accuracy, same simulated times.
        assert_eq!(r.loss.to_bits(), s.loss.to_bits());
        assert_eq!(r.train_accuracy, s.train_accuracy);
        assert_eq!(r.executed_iterations, s.executed_iterations);
        assert_eq!(r.epoch_time, s.epoch_time);
        let nr = r.per_node[0].report.expect("node 0 trained");
        assert_eq!(nr.loss.to_bits(), s.loss.to_bits());
        assert_eq!(nr.epoch_time, s.epoch_time);
        assert_eq!(nr.sample_time, s.sample_time);
        assert_eq!(nr.gather_time, s.gather_time);
        assert_eq!(nr.comm_time, s.comm_time);
        // No multi-node terms at N=1.
        assert_eq!(r.sync_bytes, 0);
        assert!(r.sync_time.is_zero());
        assert_eq!(r.per_node[0].halo_rows, 0);
        // ... and the model parameters end up bitwise identical too.
        let a = &mn.pipeline(0).model.params;
        let b = &single.model.params;
        for id in a.ids() {
            let ab: Vec<u32> = a.value(id).data().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.value(id).data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
    }

    #[test]
    fn two_node_losses_stay_close_to_single_node() {
        // Partitioned shards change batch composition, so the epoch-mean
        // loss differs from single-node — but synchronized data-parallel
        // SGD over the same data must land in the same neighborhood.
        // Tolerance documented in DESIGN.md §9: 15% relative on the
        // epoch-mean loss at test scale.
        let machine = Machine::new(MachineConfig::dgx_like(2));
        let mut single = Pipeline::new(machine, dataset(), pipe_cfg()).unwrap();
        let s = single.train_epoch(0);
        for nodes in [2u32, 4] {
            let mut mn = cluster(nodes);
            let r = mn.train_epoch(0);
            // Per-shard ceil batching can add a trailing partial batch
            // per node, so the cluster executes at least as many
            // iterations as the single pipeline, never fewer.
            assert!(r.executed_iterations >= s.executed_iterations);
            let rel = (r.loss - s.loss).abs() / s.loss.abs();
            assert!(
                rel < 0.15,
                "{nodes}-node loss {} vs single {} (rel {rel})",
                r.loss,
                s.loss
            );
            assert!(r.sync_bytes > 0);
            assert!(r.sync_time > SimTime::ZERO);
        }
    }

    #[test]
    fn replicas_stay_in_bitwise_lockstep_under_full_sync() {
        let mut mn = cluster(3);
        mn.train_epoch(0);
        let p0 = &mn.pipeline(0).model.params;
        for k in 1..3 {
            let pk = &mn.pipeline(k).model.params;
            for id in p0.ids() {
                let a: Vec<u32> = p0.value(id).data().iter().map(|v| v.to_bits()).collect();
                let b: Vec<u32> = pk.value(id).data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "replica {k} diverged on {id:?}");
            }
        }
    }

    #[test]
    fn halo_traffic_appears_only_with_multiple_nodes() {
        let mut mn = cluster(2);
        let r = mn.train_epoch(0);
        // Hash partitioning cuts most edges, so two-node sampling pulls
        // remote input rows on essentially every batch.
        for n in &r.per_node {
            assert!(n.halo_rows > 0, "node {} saw no halo rows", n.node);
            assert!(n.halo_bytes > 0);
            let rep = n.report.unwrap();
            assert!(rep.gather_time > SimTime::ZERO);
        }
        // Epoch time covers the slowest node.
        for n in &r.per_node {
            assert!(r.epoch_time >= n.report.unwrap().epoch_time);
        }
    }

    #[test]
    fn compression_reduces_sync_traffic_and_still_trains() {
        let mut full = cluster(2);
        let rf = full.train_epoch(0);
        let mut mn = MultiNode::new(
            dataset(),
            pipe_cfg(),
            MultiNodeConfig::new(2).with_gpus(2).with_sync(SyncConfig {
                compress_topk: Some(0.1),
                delayed_agg_period: 1,
            }),
        )
        .unwrap();
        let rc = mn.train_epoch(0);
        assert!(rc.loss.is_finite() && rc.loss > 0.0);
        assert!(
            rc.sync_bytes < rf.sync_bytes / 2,
            "top-k {} !<< full {}",
            rc.sync_bytes,
            rf.sync_bytes
        );
        assert!(rc.sync_time < rf.sync_time);
    }

    #[test]
    fn delayed_aggregation_syncs_fewer_waves() {
        let mut mn = MultiNode::new(
            dataset(),
            pipe_cfg(),
            MultiNodeConfig::new(2).with_gpus(2).with_sync(SyncConfig {
                compress_topk: None,
                delayed_agg_period: 4,
            }),
        )
        .unwrap();
        let r = mn.train_epoch(0);
        assert!(r.loss.is_finite() && r.loss > 0.0);
        let mut full = cluster(2);
        let rf = full.train_epoch(0);
        assert!(
            r.sync_bytes < rf.sync_bytes,
            "delayed {} !< full {}",
            r.sync_bytes,
            rf.sync_bytes
        );
        // After the end-of-epoch flush the replicas agree again.
        let p0 = &mn.pipeline(0).model.params;
        let p1 = &mn.pipeline(1).model.params;
        for id in p0.ids() {
            let a: Vec<u32> = p0.value(id).data().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = p1.value(id).data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn overlapped_executor_carries_through_per_node() {
        // DGL's big input phases and a 1-GPU node (several waves per
        // shard) make the overlap win strict on every node.
        let mut cfg = PipelineConfig::tiny(Framework::Dgl, ModelKind::GraphSage).with_seed(11);
        cfg.batch_size = 16;
        cfg.exec = ExecMode::Overlapped;
        let mut mn = MultiNode::new(dataset(), cfg, MultiNodeConfig::new(2).with_gpus(1)).unwrap();
        let r = mn.train_epoch(0);
        assert!(r.loss.is_finite());
        for n in &r.per_node {
            let rep = n.report.unwrap();
            assert!(
                rep.iterations >= 2,
                "node {} needs waves to overlap",
                n.node
            );
            // Overlap: schedule shorter than the phase-time sum.
            assert!(
                rep.epoch_time < rep.sample_time + rep.gather_time + rep.train_time + rep.comm_time
            );
        }
    }
}
