//! Multi-node data-parallel scaling (§III-D, Figure 13).
//!
//! "Each machine node holds one replica of the graph structure and graph
//! features ... Sampling and gathering feature ops are proceeded using
//! graph and feature stored in local machine node. ... all GPUs
//! synchronize the computed gradients with each other using the Allreduce
//! communication."
//!
//! Scaling therefore divides the per-epoch iteration count across
//! `nodes × gpus` ranks while the per-iteration time is unchanged; only
//! the AllReduce grows an inter-node (InfiniBand) term. With per-iteration
//! work in the tens of milliseconds and gradients of a few MB over
//! 200 GB/s of node IB bandwidth, speedup stays near linear — the
//! Figure 13 result.

use wg_sim::collective::allreduce_multi_node;
use wg_sim::SimTime;

use crate::pipeline::{IterTimes, Pipeline};

/// One point of the scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Machine nodes used.
    pub nodes: u32,
    /// Simulated epoch time.
    pub epoch_time: SimTime,
    /// Speedup relative to one node.
    pub speedup: f64,
}

/// Measure per-iteration times on `pipe` (executing `real_iters`
/// iterations) and project the epoch time across `node_counts` machine
/// nodes.
pub fn scaling_sweep(
    pipe: &mut Pipeline,
    node_counts: &[u32],
    real_iters: usize,
) -> Vec<ScalingPoint> {
    assert!(!node_counts.is_empty());
    let batches = pipe.epoch_batches(0);
    let n = real_iters.clamp(1, batches.len());
    let mut times: Vec<IterTimes> = Vec::with_capacity(n);
    for (i, batch) in batches.iter().take(n).enumerate() {
        times.push(pipe.run_iteration(0, i as u64, batch, true).times);
    }
    let mean = |f: fn(&IterTimes) -> SimTime| -> SimTime {
        times.iter().map(f).sum::<SimTime>() / times.len() as f64
    };
    let mean_times = IterTimes {
        sample: mean(|t| t.sample),
        gather: mean(|t| t.gather),
        train: mean(|t| t.train),
        comm: SimTime::ZERO, // replaced per node count below
    };

    let total_iters = batches.len();
    let gpus = pipe.machine().num_gpus();
    let param_bytes = pipe.model.params.param_bytes();
    let cost = pipe.machine().cost().clone();
    // Project with the pipeline's configured executor: serial waves cost
    // the phase sum, overlapped waves the max of the input and compute
    // streams (steady state of the double-buffered schedule).
    let exec = pipe.executor();

    let epoch_time = |nodes: u32| -> SimTime {
        let ranks = (nodes * gpus) as usize;
        let waves = total_iters.div_ceil(ranks).max(1);
        let comm = allreduce_multi_node(&cost, param_bytes, nodes, gpus);
        exec.wave_time(&IterTimes { comm, ..mean_times }) * waves as f64
    };

    let base = epoch_time(node_counts[0]);
    node_counts
        .iter()
        .map(|&nodes| {
            let t = epoch_time(nodes);
            ScalingPoint {
                nodes,
                epoch_time: t,
                speedup: base / t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use crate::pipeline::PipelineConfig;
    use std::sync::Arc;
    use wg_gnn::ModelKind;
    use wg_graph::{DatasetKind, SyntheticDataset};
    use wg_sim::{Machine, MachineConfig};

    fn pipeline() -> Pipeline {
        // Enough training nodes that an epoch has many waves even on
        // 8 nodes × 8 GPUs (scaling needs iterations to distribute).
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnPapers100M,
            2000,
            9,
        ));
        let machine = Machine::new(MachineConfig::dgx_like(8));
        let mut cfg =
            PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(1);
        cfg.batch_size = 16;
        Pipeline::new(machine, dataset, cfg).unwrap()
    }

    #[test]
    fn scaling_is_near_linear_up_to_8_nodes() {
        let mut pipe = pipeline();
        let pts = scaling_sweep(&mut pipe, &[1, 2, 4, 8], 2);
        assert_eq!(pts.len(), 4);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        // Monotone speedups…
        for w in pts.windows(2) {
            assert!(w[1].speedup > w[0].speedup, "{pts:?}");
        }
        // …and near-linear at 8 nodes (Figure 13 shows "close to linear").
        // Wave quantization on the scaled dataset costs some efficiency;
        // require ≥55% parallel efficiency at 8 nodes.
        assert!(
            pts[3].speedup > 8.0 * 0.55,
            "8-node speedup only {:.2}",
            pts[3].speedup
        );
    }

    #[test]
    fn epoch_time_decreases_with_nodes() {
        let mut pipe = pipeline();
        let pts = scaling_sweep(&mut pipe, &[1, 8], 1);
        assert!(pts[1].epoch_time < pts[0].epoch_time);
    }

    #[test]
    fn speedup_is_relative_to_first_point_and_iters_clamp() {
        let mut pipe = pipeline();
        // real_iters far beyond the epoch's batch count must clamp, and
        // the speedup baseline is the *first requested* node count (the
        // sweep need not start at 1).
        let pts = scaling_sweep(&mut pipe, &[2, 4], 100_000);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        assert_eq!(pts[0].nodes, 2);
        assert!(pts[1].speedup > 1.0);
        assert!(pts[1].epoch_time < pts[0].epoch_time);
    }

    #[test]
    fn single_point_sweep_is_identity() {
        let mut pipe = pipeline();
        let pts = scaling_sweep(&mut pipe, &[3], 1);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].nodes, 3);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        assert!(pts[0].epoch_time > SimTime::ZERO);
    }

    #[test]
    fn sweep_iterations_feed_observability_counters() {
        // The sweep executes real iterations through the full stage
        // graph, so with metrics enabled the pipeline probes must accrue.
        wg_trace::enable_metrics();
        let mut pipe = pipeline();
        scaling_sweep(&mut pipe, &[1], 2);
        wg_trace::disable_all();
        let snap = wg_trace::metrics::snapshot();
        for name in ["pipeline.gather.feature_bytes", "pipeline.allreduce.bytes"] {
            let c = snap.counters.iter().find(|(n, _)| n == name);
            assert!(
                c.is_some_and(|(_, v)| *v > 0.0),
                "{name} not accrued: {c:?}"
            );
        }
    }

    #[test]
    fn overlapped_projection_is_not_slower_than_serial() {
        use crate::pipeline::ExecMode;
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnPapers100M,
            2000,
            9,
        ));
        let project = |exec: ExecMode| {
            let machine = Machine::new(MachineConfig::dgx_like(8));
            let mut cfg = PipelineConfig::tiny(Framework::Dgl, ModelKind::GraphSage)
                .with_seed(1)
                .with_exec(exec);
            cfg.batch_size = 16;
            let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
            scaling_sweep(&mut pipe, &[1, 4], 1)
        };
        let serial = project(ExecMode::Serial);
        let overlapped = project(ExecMode::Overlapped);
        for (s, o) in serial.iter().zip(&overlapped) {
            assert!(
                o.epoch_time < s.epoch_time,
                "{} nodes: overlapped {} !< serial {}",
                s.nodes,
                o.epoch_time,
                s.epoch_time
            );
        }
    }
}
