//! Conversions between the sampler's output and the sparse kernels' input.

use std::sync::Arc;

use wg_gnn::cost::BlockShape;
use wg_sample::{MiniBatch, SampleBlock};
use wg_tensor::BlockCsr;

/// Convert one sampled block into the sparse-kernel CSR format.
pub fn to_block_csr(b: &SampleBlock) -> BlockCsr {
    let csr = BlockCsr {
        num_dst: b.num_dst,
        num_src: b.num_src,
        offsets: b.offsets.clone(),
        indices: b.indices.clone(),
        dup_count: b.dup_count.clone(),
    };
    debug_assert!({
        csr.validate();
        true
    });
    csr
}

/// Convert a whole mini-batch (outermost-first order preserved).
pub fn minibatch_blocks(mb: &MiniBatch) -> Vec<Arc<BlockCsr>> {
    mb.blocks
        .iter()
        .map(|b| Arc::new(to_block_csr(b)))
        .collect()
}

/// Shape summaries for the compute cost model.
pub fn minibatch_shapes(mb: &MiniBatch) -> Vec<BlockShape> {
    mb.blocks
        .iter()
        .map(|b| BlockShape {
            num_dst: b.num_dst,
            num_src: b.num_src,
            num_edges: b.num_edges(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> SampleBlock {
        SampleBlock {
            num_dst: 2,
            num_src: 4,
            offsets: vec![0, 1, 3],
            indices: vec![2, 3, 1],
            edge_ids: vec![10, 20, 30],
            dup_count: vec![0, 1, 1, 1],
        }
    }

    #[test]
    fn block_roundtrip_preserves_structure() {
        let sb = sample_block();
        let csr = to_block_csr(&sb);
        csr.validate();
        assert_eq!(csr.num_dst, 2);
        assert_eq!(csr.num_src, 4);
        assert_eq!(csr.indices, vec![2, 3, 1]);
        assert_eq!(csr.num_edges(), 3);
    }

    #[test]
    fn shapes_summarize_blocks() {
        let mb = MiniBatch {
            blocks: vec![sample_block()],
            frontiers: vec![vec![10, 11], vec![10, 11, 12, 13]],
            batch_size: 2,
        };
        let shapes = minibatch_shapes(&mb);
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].num_dst, 2);
        assert_eq!(shapes[0].num_edges, 3);
        let blocks = minibatch_blocks(&mb);
        assert_eq!(blocks[0].num_src, 4);
    }
}
