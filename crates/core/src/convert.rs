//! Conversions between the sampler's output and the sparse kernels' input.

use std::sync::Arc;

use wg_gnn::cost::BlockShape;
use wg_sample::{MiniBatch, SampleBlock};
use wg_tensor::BlockCsr;

/// Convert one sampled block into the sparse-kernel CSR format.
pub fn to_block_csr(b: &SampleBlock) -> BlockCsr {
    let csr = BlockCsr {
        num_dst: b.num_dst,
        num_src: b.num_src,
        offsets: b.offsets.clone(),
        indices: b.indices.clone(),
        dup_count: b.dup_count.clone(),
    };
    debug_assert!({
        csr.validate();
        true
    });
    csr
}

/// [`to_block_csr`] into an existing CSR, reusing its buffer capacity.
pub fn to_block_csr_into(b: &SampleBlock, csr: &mut BlockCsr) {
    csr.num_dst = b.num_dst;
    csr.num_src = b.num_src;
    csr.offsets.clone_from(&b.offsets);
    csr.indices.clone_from(&b.indices);
    csr.dup_count.clone_from(&b.dup_count);
    debug_assert!({
        csr.validate();
        true
    });
}

/// Convert a whole mini-batch (outermost-first order preserved).
pub fn minibatch_blocks(mb: &MiniBatch) -> Vec<Arc<BlockCsr>> {
    mb.blocks
        .iter()
        .map(|b| Arc::new(to_block_csr(b)))
        .collect()
}

/// [`minibatch_blocks`] into a pooled block list. When a slot's `Arc` is
/// unshared (the tape's op-held clones were dropped by `Tape::reset`),
/// the CSR is rebuilt in place via `clone_from` — steady-state iterations
/// convert without heap allocation. Shared or missing slots fall back to
/// a fresh `Arc`.
pub fn minibatch_blocks_into(mb: &MiniBatch, out: &mut Vec<Arc<BlockCsr>>) {
    out.truncate(mb.blocks.len());
    for (i, b) in mb.blocks.iter().enumerate() {
        if i < out.len() {
            let slot = &mut out[i];
            if let Some(csr) = Arc::get_mut(slot) {
                to_block_csr_into(b, csr);
            } else {
                *slot = Arc::new(to_block_csr(b));
            }
        } else {
            out.push(Arc::new(to_block_csr(b)));
        }
    }
}

/// Shape summaries for the compute cost model.
pub fn minibatch_shapes(mb: &MiniBatch) -> Vec<BlockShape> {
    mb.blocks
        .iter()
        .map(|b| BlockShape {
            num_dst: b.num_dst,
            num_src: b.num_src,
            num_edges: b.num_edges(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> SampleBlock {
        SampleBlock {
            num_dst: 2,
            num_src: 4,
            offsets: vec![0, 1, 3],
            indices: vec![2, 3, 1],
            edge_ids: vec![10, 20, 30],
            dup_count: vec![0, 1, 1, 1],
        }
    }

    #[test]
    fn block_roundtrip_preserves_structure() {
        let sb = sample_block();
        let csr = to_block_csr(&sb);
        csr.validate();
        assert_eq!(csr.num_dst, 2);
        assert_eq!(csr.num_src, 4);
        assert_eq!(csr.indices, vec![2, 3, 1]);
        assert_eq!(csr.num_edges(), 3);
    }

    #[test]
    fn shapes_summarize_blocks() {
        let mb = MiniBatch {
            blocks: vec![sample_block()],
            frontiers: vec![vec![10, 11], vec![10, 11, 12, 13]],
            batch_size: 2,
        };
        let shapes = minibatch_shapes(&mb);
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].num_dst, 2);
        assert_eq!(shapes[0].num_edges, 3);
        let blocks = minibatch_blocks(&mb);
        assert_eq!(blocks[0].num_src, 4);
    }
}
