//! The three iteration stages (sample → gather → train) behind the
//! [`Stage`] trait.
//!
//! Each stage performs its *real* computation (sampling, feature
//! movement, forward/backward/optimizer math) against the pipeline's
//! store and model, and returns the *simulated* time that phase costs on
//! the machine under the configured framework. Stages never touch the
//! machine's clocks or traces — that is the executor's job — which is
//! what lets the serial and overlapped executors schedule the same
//! stages differently while producing bit-identical numerics.

use wg_autograd::Optimizer;
use wg_gnn::cost::train_step_time;
use wg_sample::SampleStats;
use wg_sim::collective::allreduce_intra_node;
use wg_sim::trace::Phase;
use wg_sim::SimTime;
use wg_tensor::ops::{argmax_rows_into, softmax_cross_entropy_into};
use wg_tensor::Matrix;

use crate::convert::{minibatch_blocks_into, minibatch_shapes};
use crate::pipeline::report::{IterTimes, IterationResult};
use crate::pipeline::Pipeline;
use wg_graph::NodeId;
use wg_sample::MiniBatch;

/// Mutable state threaded through one iteration's stages.
pub struct IterContext<'p> {
    pub(crate) pipeline: &'p mut Pipeline,
    /// Epoch index (seeds shuffling and dropout).
    pub epoch: u64,
    /// Iteration index within the epoch.
    pub iter: u64,
    /// Whether the optimizer applies updates (false = timing-only run).
    pub update: bool,
    /// Leave the optimizer step to [`Pipeline::apply_step`] — the
    /// multi-node executor averages gradients across replicas between
    /// backward and step.
    pub(crate) defer_step: bool,
    pub(crate) batch_nodes: &'p [NodeId],
    pub(crate) handles: Vec<u64>,
    pub(crate) minibatch: Option<MiniBatch>,
    pub(crate) sample_stats: SampleStats,
    pub(crate) features: Option<Matrix>,
    pub(crate) loss: f32,
    pub(crate) correct: usize,
    pub(crate) shapes: Vec<wg_gnn::cost::BlockShape>,
    pub(crate) comm: SimTime,
}

impl<'p> IterContext<'p> {
    /// A fresh context for one iteration over `batch_nodes`.
    pub(crate) fn new(
        pipeline: &'p mut Pipeline,
        epoch: u64,
        iter: u64,
        batch_nodes: &'p [NodeId],
        update: bool,
    ) -> Self {
        IterContext {
            pipeline,
            epoch,
            iter,
            update,
            defer_step: false,
            batch_nodes,
            handles: Vec::new(),
            minibatch: None,
            sample_stats: SampleStats::default(),
            features: None,
            loss: 0.0,
            correct: 0,
            shapes: Vec::new(),
            comm: SimTime::ZERO,
        }
    }

    /// Assemble the iteration result from the completed stages' output,
    /// returning the iteration's transient buffers to the pipeline's
    /// recycle pools on the way out.
    pub(crate) fn into_result(mut self, times: IterTimes) -> IterationResult {
        let mb = self.minibatch.take();
        let handles = std::mem::take(&mut self.handles);
        self.pipeline.recycle_iter_buffers(mb, handles);
        IterationResult {
            times,
            loss: self.loss,
            correct: self.correct,
            batch: self.batch_nodes.len(),
            shapes: self.shapes,
            sample_stats: self.sample_stats,
        }
    }
}

/// One stage of the iteration: runs its real computation and returns the
/// simulated time the phase costs. Implementations are framework-aware —
/// they consult the pipeline's [`crate::framework::Framework`] for where
/// the work runs (GPU kernels vs. contended host cores) and price it
/// accordingly.
pub trait Stage {
    /// The trace label executors record this stage's spans under.
    fn phase(&self) -> Phase;

    /// Execute the stage against `ctx`, returning its simulated duration.
    fn run(&self, ctx: &mut IterContext<'_>) -> SimTime;
}

/// Sampling: build the multi-layer sub-graph. GPU-side fused kernels for
/// WholeGraph; a contended host-side sampler for the DGL/PyG baselines.
pub struct SampleStage;

impl Stage for SampleStage {
    fn phase(&self) -> Phase {
        Phase::Sampling
    }

    fn run(&self, ctx: &mut IterContext<'_>) -> SimTime {
        let p = &mut *ctx.pipeline;
        ctx.handles = p.handles_for(ctx.batch_nodes);
        let (mb, sample_stats) = p.sample(&ctx.handles, ctx.epoch, ctx.iter);
        let gpu_spec = p.machine.spec(wg_sim::DeviceId::Gpu(0));
        let mut t_sample =
            p.cfg
                .framework
                .sampler_backend()
                .sample_time(p.machine.cost(), gpu_spec, sample_stats);
        if !p.cfg.framework.uses_dsm() {
            // Host pipelines also run the CPU-side sub-graph construction
            // (unique etc.) inside the sampling phase:
            t_sample += SimTime::from_secs(
                sample_stats.keys_inserted as f64 / p.machine.cost().cpu_sample_edges_per_s,
            );
            // ... and, crucially, all G trainer processes contend for the
            // same host cores: the sampler rates are *aggregate* CPU
            // rates, so when G GPUs each demand a mini-batch per wave,
            // each wave pays G iterations' worth of CPU sampling. This is
            // why DGL/PyG epochs do not shrink 8x on an 8-GPU node while
            // WholeGraph's GPU sampling does.
            t_sample = t_sample * p.machine.num_gpus() as f64;
        }
        ctx.minibatch = Some(mb);
        ctx.sample_stats = sample_stats;
        t_sample
    }
}

/// Gather: materialize the mini-batch's input features. A one-kernel
/// P2P/zero-copy gather for WholeGraph; CPU gather + PCIe copy for the
/// host baselines.
pub struct GatherStage;

impl Stage for GatherStage {
    fn phase(&self) -> Phase {
        Phase::Gather
    }

    fn run(&self, ctx: &mut IterContext<'_>) -> SimTime {
        // Take the batch out so the pipeline can be borrowed mutably (its
        // gather scratch buffers live behind the same `&mut`).
        let mb = ctx
            .minibatch
            .take()
            .expect("gather requires a sampled mini-batch");
        let (features, t_gather) = ctx.pipeline.gather(&mb, ctx.iter);
        ctx.minibatch = Some(mb);
        ctx.features = Some(features);
        t_gather
    }
}

/// Train: forward, loss, backward, optimizer step — plus the gradient
/// AllReduce, whose cost the stage leaves in [`IterContext`] for the
/// executor to schedule as its own `Communication` span.
pub struct TrainStage;

impl Stage for TrainStage {
    fn phase(&self) -> Phase {
        Phase::Training
    }

    fn run(&self, ctx: &mut IterContext<'_>) -> SimTime {
        let p = &mut *ctx.pipeline;
        let mb = ctx
            .minibatch
            .as_ref()
            .expect("train requires a sampled mini-batch");
        let features = ctx
            .features
            .take()
            .expect("train requires gathered features");
        // Everything transient below comes out of the iteration scratch:
        // the persistent tape (whose workspace pool recycles all forward
        // activations and backward gradients), the CSR block list, and the
        // label/prediction/loss buffers. Taken out so the pipeline can
        // still be borrowed while they are in use, and put back at the
        // end — steady-state iterations allocate nothing here.
        let mut tape = std::mem::take(&mut p.scratch.tape);
        tape.reset();
        let mut blocks = std::mem::take(&mut p.scratch.blocks);
        minibatch_blocks_into(mb, &mut blocks);
        let shapes = minibatch_shapes(mb);
        let out = p.model.forward(
            &mut tape,
            &blocks,
            features,
            ctx.update,
            p.cfg.seed ^ ctx.epoch.rotate_left(13) ^ ctx.iter,
        );
        let mut batch_ids = std::mem::take(&mut p.scratch.batch_ids);
        p.stable_ids_into(&ctx.handles, &mut batch_ids);
        let mut labels = std::mem::take(&mut p.scratch.labels);
        labels.clear();
        labels.extend(batch_ids.iter().map(|&v| p.dataset.labels[v as usize]));
        let (rows, cols) = {
            let logits = tape.value(out);
            (logits.rows(), logits.cols())
        };
        let mut grad = tape.alloc(rows, cols);
        let mut ce_losses = std::mem::take(&mut p.scratch.ce_losses);
        let loss = softmax_cross_entropy_into(tape.value(out), &labels, &mut grad, &mut ce_losses);
        let mut preds = std::mem::take(&mut p.scratch.preds);
        argmax_rows_into(tape.value(out), &mut preds);
        ctx.correct = preds.iter().zip(&labels).filter(|(pr, l)| pr == l).count();
        ctx.loss = loss;
        if ctx.update {
            p.model.params.zero_grads();
            tape.backward(out, grad, &mut p.model.params);
            if !ctx.defer_step {
                p.opt.step(&mut p.model.params);
            }
        } else {
            tape.recycle(grad);
        }
        // The tape is done with the gathered-input matrix; reclaim its
        // buffer for the next iteration's gather.
        p.reclaim_feature_buf(tape.take_value(wg_autograd::NodeId::first()).into_vec());
        p.scratch.tape = tape;
        p.scratch.blocks = blocks;
        p.scratch.batch_ids = batch_ids;
        p.scratch.labels = labels;
        p.scratch.ce_losses = ce_losses;
        p.scratch.preds = preds;
        let gpu_spec = p.machine.spec(wg_sim::DeviceId::Gpu(0));
        let t_train = train_step_time(
            &p.cfg
                .gnn_config(p.dataset.feature_dim, p.dataset.num_classes),
            &shapes,
            p.provider,
            p.machine.cost(),
            gpu_spec,
            p.model.params.num_scalars(),
        );
        ctx.comm = if ctx.update {
            // Ring allreduce moves 2*(G-1)/G of the gradient bytes per rank.
            let g = p.machine.num_gpus() as f64;
            let allreduce_bytes = p.model.params.param_bytes() as f64 * 2.0 * (g - 1.0) / g;
            wg_trace::counter!("pipeline.allreduce.bytes", allreduce_bytes);
            if let Some(dist) = &p.dist {
                // Per-node attribution: the global counter sums over all
                // replicas; this one lets the sweep split comm by node.
                wg_trace::metrics::add_dyn(&dist.allreduce_bytes_metric, allreduce_bytes);
            }
            allreduce_intra_node(
                p.machine.cost(),
                p.model.params.param_bytes(),
                p.machine.num_gpus(),
            )
        } else {
            SimTime::ZERO
        };
        ctx.shapes = shapes;
        t_train
    }
}
