//! Pipeline configuration: framework/model/hyper-parameters, feature
//! placement, and the executor mode.

use wg_gnn::{GnnConfig, LayerProvider, ModelKind};
use wg_mem::CacheMode;

use crate::framework::Framework;

/// Per-device feature-cache configuration (ROADMAP item 2): `rows` row
/// slots per device, filled by static top-K replication or dynamic CLOCK
/// eviction. Caching changes gather *cost only, never values* — every
/// checksum is bit-identical with the cache on or off.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Cache row slots per device. Zero disables the cache.
    pub rows: usize,
    /// Replacement policy.
    pub mode: CacheMode,
}

impl CacheConfig {
    /// Read the cache configuration from `WG_CACHE_ROWS` /
    /// `WG_CACHE_MODE` (the CI matrix's cache-enabled leg runs the whole
    /// suite this way). Absent or empty `WG_CACHE_ROWS` → `None` (CI
    /// matrices export unset legs as `""`); a present but malformed value
    /// panics at startup, same convention as `WG_SIMD` — a typo must not
    /// silently run the uncached path.
    pub fn from_env() -> Option<CacheConfig> {
        let rows = std::env::var("WG_CACHE_ROWS")
            .ok()
            .filter(|v| !v.is_empty())?;
        let rows: usize = rows
            .parse()
            .unwrap_or_else(|_| panic!("WG_CACHE_ROWS: expected a row count, got {rows:?}"));
        let mode = match std::env::var("WG_CACHE_MODE") {
            Ok(m) if !m.is_empty() => CacheMode::parse(&m)
                .unwrap_or_else(|| panic!("WG_CACHE_MODE: expected static|clock, got {m:?}")),
            _ => CacheMode::Static,
        };
        Some(CacheConfig { rows, mode })
    }
}

/// Out-of-core storage-tier configuration (ROADMAP item 1): cap the
/// DSM-resident feature rows at `budget_rows` and serve everything else
/// from the file-backed tier below ([`wg_mem::OocTier`]), priced by the
/// NVMe storage cost model. Like the cache above it, the tier changes
/// gather *cost only, never values* — training through the disk tier is
/// bit-identical to in-memory, at any residency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StorageConfig {
    /// DSM-resident feature-row budget. Zero disables the tier (pure
    /// in-memory DSM, the default).
    pub budget_rows: usize,
}

impl StorageConfig {
    /// Read the storage configuration from `WG_STORAGE_BUDGET_ROWS` (the
    /// CI matrix's storage leg runs the whole suite at ~25% residency
    /// this way). Absent or empty → `None` (CI matrices export unset
    /// legs as `""`); a present but malformed value panics at startup,
    /// same convention as `WG_CACHE_ROWS` — a typo must not silently run
    /// the in-memory path.
    pub fn from_env() -> Option<StorageConfig> {
        Self::parse(std::env::var("WG_STORAGE_BUDGET_ROWS").ok().as_deref())
    }

    /// The parsing seam behind [`from_env`](Self::from_env), separated so
    /// the empty-string / malformed / absent conventions are testable
    /// without mutating process-global environment in a parallel test
    /// harness.
    pub fn parse(rows: Option<&str>) -> Option<StorageConfig> {
        let rows = rows.filter(|v| !v.is_empty())?;
        let budget_rows: usize = rows.parse().unwrap_or_else(|_| {
            panic!("WG_STORAGE_BUDGET_ROWS: expected a row count, got {rows:?}")
        });
        Some(StorageConfig { budget_rows })
    }
}

/// Where the node features physically live and how the training GPU
/// reaches them — the design space the paper's introduction lays out
/// ("Either collecting sparse features on CPU before sending them to GPU
/// or directly accessing these sparse features of CPU from GPU leads to
/// high pressure on PCIe"), plus the §II-B UM alternative.
///
/// Applies to the WholeGraph framework only; the DGL/PyG baselines always
/// gather on the CPU.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum FeaturePlacement {
    /// Distributed across GPU memories, mapped with GPUDirect P2P — the
    /// WholeGraph design.
    #[default]
    DeviceP2p,
    /// Distributed across GPU memories, mapped with CUDA Unified Memory —
    /// every remote row is a page fault (Table I's slow column).
    DeviceUnifiedMemory,
    /// Features stay in host-pinned memory; the gather kernel reads them
    /// over PCIe zero-copy (the Seung et al. style referenced in §V).
    HostMapped,
}

impl FeaturePlacement {
    /// Display name for ablation tables.
    pub fn name(self) -> &'static str {
        match self {
            FeaturePlacement::DeviceP2p => "GPU+P2P",
            FeaturePlacement::DeviceUnifiedMemory => "GPU+UM",
            FeaturePlacement::HostMapped => "host zero-copy",
        }
    }
}

/// How the executor schedules each wave's stages onto the machine.
///
/// Both modes run the *same* iterations with the *same* numerics (same
/// seeds → same sub-graphs → same losses and parameter updates); they
/// differ only in how the simulated phase times are laid onto the device
/// timelines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum ExecMode {
    /// Sample → gather → train → AllReduce back-to-back on one timeline
    /// per wave (synchronous DataLoader semantics).
    #[default]
    Serial,
    /// Double-buffered software pipeline: wave `i+1`'s sampling and
    /// gathering run on an input stream while wave `i` trains on the
    /// compute stream — the overlap a prefetching DataLoader achieves.
    Overlapped,
}

impl ExecMode {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Serial => "serial",
            ExecMode::Overlapped => "overlapped",
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// System under test.
    pub framework: Framework,
    /// GNN architecture.
    pub model: ModelKind,
    /// Hidden width (paper: 256).
    pub hidden: usize,
    /// Layer count (paper: 3).
    pub num_layers: usize,
    /// GAT heads (paper: 4).
    pub heads: usize,
    /// Per-layer fanout (paper: 30,30,30).
    pub fanouts: Vec<usize>,
    /// Mini-batch size per iteration (paper: 512).
    pub batch_size: usize,
    /// Dropout on layer inputs.
    pub dropout: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Master seed (model init, shuffling, sampling).
    pub seed: u64,
    /// Override the layer provider (Figure 11's WholeGraph+DGL /
    /// WholeGraph+PyG variants). `None` uses the framework's default.
    pub provider_override: Option<LayerProvider>,
    /// Feature placement for the WholeGraph framework (storage-mode
    /// ablation; ignored by the host baselines).
    pub feature_placement: FeaturePlacement,
    /// How epochs are scheduled onto the machine (timing only — the
    /// numerics are identical across modes).
    pub exec: ExecMode,
    /// Per-device feature cache (WholeGraph DSM placements only).
    /// `None` defers to the `WG_CACHE_ROWS`/`WG_CACHE_MODE` environment;
    /// `Some` pins it programmatically (use `rows: 0` to force-disable).
    pub cache: Option<CacheConfig>,
    /// Out-of-core storage tier below the DSM (WholeGraph DSM placements
    /// only). `None` defers to the `WG_STORAGE_BUDGET_ROWS` environment;
    /// `Some` pins it programmatically (use `budget_rows: 0` to
    /// force-disable).
    pub storage: Option<StorageConfig>,
}

impl PipelineConfig {
    /// The paper's evaluation configuration.
    pub fn paper(framework: Framework, model: ModelKind) -> Self {
        PipelineConfig {
            framework,
            model,
            hidden: 256,
            num_layers: 3,
            heads: 4,
            fanouts: vec![30, 30, 30],
            batch_size: 512,
            dropout: 0.5,
            lr: 3e-3,
            seed: 0,
            provider_override: None,
            feature_placement: FeaturePlacement::DeviceP2p,
            exec: ExecMode::Serial,
            cache: None,
            storage: None,
        }
    }

    /// A small configuration for tests and examples.
    pub fn tiny(framework: Framework, model: ModelKind) -> Self {
        PipelineConfig {
            framework,
            model,
            hidden: 32,
            num_layers: 2,
            heads: 2,
            fanouts: vec![5, 5],
            batch_size: 64,
            dropout: 0.0,
            lr: 1e-2,
            seed: 0,
            provider_override: None,
            feature_placement: FeaturePlacement::DeviceP2p,
            exec: ExecMode::Serial,
            cache: None,
            storage: None,
        }
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set an explicit layer provider.
    pub fn with_provider(mut self, p: LayerProvider) -> Self {
        self.provider_override = Some(p);
        self
    }

    /// Set the feature placement (storage-mode ablation).
    pub fn with_feature_placement(mut self, p: FeaturePlacement) -> Self {
        self.feature_placement = p;
        self
    }

    /// Set the executor mode.
    pub fn with_exec(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    /// Pin the feature-cache configuration (overrides the environment).
    pub fn with_cache(mut self, rows: usize, mode: CacheMode) -> Self {
        self.cache = Some(CacheConfig { rows, mode });
        self
    }

    /// The effective cache configuration: the explicit setting if
    /// present, else the `WG_CACHE_*` environment, normalized so a
    /// zero-row cache reads as disabled.
    pub fn resolved_cache(&self) -> Option<CacheConfig> {
        self.cache
            .or_else(CacheConfig::from_env)
            .filter(|c| c.rows > 0)
    }

    /// Pin the storage-tier configuration (overrides the environment).
    pub fn with_storage(mut self, budget_rows: usize) -> Self {
        self.storage = Some(StorageConfig { budget_rows });
        self
    }

    /// The effective storage configuration: the explicit setting if
    /// present, else the `WG_STORAGE_BUDGET_ROWS` environment, normalized
    /// so a zero-row budget reads as disabled.
    pub fn resolved_storage(&self) -> Option<StorageConfig> {
        self.storage
            .or_else(StorageConfig::from_env)
            .filter(|s| s.budget_rows > 0)
    }

    pub(crate) fn gnn_config(&self, in_dim: usize, num_classes: usize) -> GnnConfig {
        GnnConfig {
            kind: self.model,
            in_dim,
            hidden: self.hidden,
            num_classes,
            num_layers: self.num_layers,
            heads: self.heads,
            dropout: self.dropout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use wg_gnn::ModelKind;

    #[test]
    fn storage_env_absent_or_empty_is_none() {
        // CI matrices export unset legs as "" — both shapes read as off.
        assert_eq!(StorageConfig::parse(None), None);
        assert_eq!(StorageConfig::parse(Some("")), None);
    }

    #[test]
    fn storage_env_parses_a_row_count() {
        assert_eq!(
            StorageConfig::parse(Some("400")),
            Some(StorageConfig { budget_rows: 400 })
        );
        // "0" parses (it is not malformed) but resolves to disabled below.
        assert_eq!(
            StorageConfig::parse(Some("0")),
            Some(StorageConfig { budget_rows: 0 })
        );
    }

    #[test]
    #[should_panic(expected = "WG_STORAGE_BUDGET_ROWS")]
    fn storage_env_malformed_panics_at_startup() {
        StorageConfig::parse(Some("lots"));
    }

    #[test]
    fn explicit_storage_config_wins_over_env() {
        // `resolved_storage` short-circuits on the explicit setting, so
        // these hold regardless of the ambient WG_STORAGE_BUDGET_ROWS —
        // including under the CI leg that forces ~25% residency.
        let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn);
        assert_eq!(
            cfg.clone().with_storage(123).resolved_storage(),
            Some(StorageConfig { budget_rows: 123 })
        );
        // Zero pins the tier off even when the environment enables it.
        assert_eq!(cfg.with_storage(0).resolved_storage(), None);
    }

    #[test]
    fn zero_row_cache_resolves_to_disabled() {
        let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn);
        assert_eq!(
            cfg.with_cache(0, wg_mem::CacheMode::Static)
                .resolved_cache(),
            None
        );
    }
}
