//! Pipeline configuration: framework/model/hyper-parameters, feature
//! placement, and the executor mode.

use wg_gnn::{GnnConfig, LayerProvider, ModelKind};

use crate::framework::Framework;

/// Where the node features physically live and how the training GPU
/// reaches them — the design space the paper's introduction lays out
/// ("Either collecting sparse features on CPU before sending them to GPU
/// or directly accessing these sparse features of CPU from GPU leads to
/// high pressure on PCIe"), plus the §II-B UM alternative.
///
/// Applies to the WholeGraph framework only; the DGL/PyG baselines always
/// gather on the CPU.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum FeaturePlacement {
    /// Distributed across GPU memories, mapped with GPUDirect P2P — the
    /// WholeGraph design.
    #[default]
    DeviceP2p,
    /// Distributed across GPU memories, mapped with CUDA Unified Memory —
    /// every remote row is a page fault (Table I's slow column).
    DeviceUnifiedMemory,
    /// Features stay in host-pinned memory; the gather kernel reads them
    /// over PCIe zero-copy (the Seung et al. style referenced in §V).
    HostMapped,
}

impl FeaturePlacement {
    /// Display name for ablation tables.
    pub fn name(self) -> &'static str {
        match self {
            FeaturePlacement::DeviceP2p => "GPU+P2P",
            FeaturePlacement::DeviceUnifiedMemory => "GPU+UM",
            FeaturePlacement::HostMapped => "host zero-copy",
        }
    }
}

/// How the executor schedules each wave's stages onto the machine.
///
/// Both modes run the *same* iterations with the *same* numerics (same
/// seeds → same sub-graphs → same losses and parameter updates); they
/// differ only in how the simulated phase times are laid onto the device
/// timelines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum ExecMode {
    /// Sample → gather → train → AllReduce back-to-back on one timeline
    /// per wave (synchronous DataLoader semantics).
    #[default]
    Serial,
    /// Double-buffered software pipeline: wave `i+1`'s sampling and
    /// gathering run on an input stream while wave `i` trains on the
    /// compute stream — the overlap a prefetching DataLoader achieves.
    Overlapped,
}

impl ExecMode {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Serial => "serial",
            ExecMode::Overlapped => "overlapped",
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// System under test.
    pub framework: Framework,
    /// GNN architecture.
    pub model: ModelKind,
    /// Hidden width (paper: 256).
    pub hidden: usize,
    /// Layer count (paper: 3).
    pub num_layers: usize,
    /// GAT heads (paper: 4).
    pub heads: usize,
    /// Per-layer fanout (paper: 30,30,30).
    pub fanouts: Vec<usize>,
    /// Mini-batch size per iteration (paper: 512).
    pub batch_size: usize,
    /// Dropout on layer inputs.
    pub dropout: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Master seed (model init, shuffling, sampling).
    pub seed: u64,
    /// Override the layer provider (Figure 11's WholeGraph+DGL /
    /// WholeGraph+PyG variants). `None` uses the framework's default.
    pub provider_override: Option<LayerProvider>,
    /// Feature placement for the WholeGraph framework (storage-mode
    /// ablation; ignored by the host baselines).
    pub feature_placement: FeaturePlacement,
    /// How epochs are scheduled onto the machine (timing only — the
    /// numerics are identical across modes).
    pub exec: ExecMode,
}

impl PipelineConfig {
    /// The paper's evaluation configuration.
    pub fn paper(framework: Framework, model: ModelKind) -> Self {
        PipelineConfig {
            framework,
            model,
            hidden: 256,
            num_layers: 3,
            heads: 4,
            fanouts: vec![30, 30, 30],
            batch_size: 512,
            dropout: 0.5,
            lr: 3e-3,
            seed: 0,
            provider_override: None,
            feature_placement: FeaturePlacement::DeviceP2p,
            exec: ExecMode::Serial,
        }
    }

    /// A small configuration for tests and examples.
    pub fn tiny(framework: Framework, model: ModelKind) -> Self {
        PipelineConfig {
            framework,
            model,
            hidden: 32,
            num_layers: 2,
            heads: 2,
            fanouts: vec![5, 5],
            batch_size: 64,
            dropout: 0.0,
            lr: 1e-2,
            seed: 0,
            provider_override: None,
            feature_placement: FeaturePlacement::DeviceP2p,
            exec: ExecMode::Serial,
        }
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set an explicit layer provider.
    pub fn with_provider(mut self, p: LayerProvider) -> Self {
        self.provider_override = Some(p);
        self
    }

    /// Set the feature placement (storage-mode ablation).
    pub fn with_feature_placement(mut self, p: FeaturePlacement) -> Self {
        self.feature_placement = p;
        self
    }

    /// Set the executor mode.
    pub fn with_exec(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    pub(crate) fn gnn_config(&self, in_dim: usize, num_classes: usize) -> GnnConfig {
        GnnConfig {
            kind: self.model,
            in_dim,
            hidden: self.hidden,
            num_classes,
            num_layers: self.num_layers,
            heads: self.heads,
            dropout: self.dropout,
        }
    }
}
