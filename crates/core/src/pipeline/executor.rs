//! Epoch executors: how stage times are scheduled onto the machine.
//!
//! Both executors consume the same per-iteration [`IterationResult`]s —
//! all numerics are fixed before scheduling starts — and differ only in
//! the simulated timeline they lay the phases onto:
//!
//! * [`SerialExecutor`] charges sample → gather → train → AllReduce
//!   back-to-back per wave, the synchronous-DataLoader behavior every
//!   result in the paper's evaluation is measured under.
//! * [`OverlappedExecutor`] is a double-buffered software pipeline built
//!   on [`wg_sim::stream`]: wave `i+1`'s sampling and gathering run on an
//!   *input stream* while wave `i` trains on the *compute stream*. With
//!   two mini-batch buffers, wave `w`'s input may start once wave `w-2`'s
//!   training has consumed its buffer. The epoch time is the schedule
//!   length, which is strictly shorter than the serial sum whenever there
//!   are ≥ 2 waves with nonzero input and compute phases — the largest
//!   win going to the host pipelines, whose input phases dominate.

use wg_sim::stream::{self, Event};
use wg_sim::trace::Phase;
use wg_sim::{DeviceId, Machine, SimTime};

use crate::framework::Framework;
use crate::pipeline::config::ExecMode;
use crate::pipeline::report::{occupancy_from_trace, EpochReport, IterTimes, IterationResult};

/// An epoch-scheduling strategy.
pub trait Executor {
    /// The mode this executor implements.
    fn mode(&self) -> ExecMode;

    /// Display name.
    fn name(&self) -> &'static str {
        self.mode().name()
    }

    /// Steady-state simulated time one wave occupies under this schedule
    /// (used by throughput projections, e.g. multi-node scaling).
    fn wave_time(&self, times: &IterTimes) -> SimTime;

    /// Charge the executed iterations' phase times onto the machine's
    /// clocks and traces, wave by wave, and build the epoch report.
    /// `results` is cycled when the epoch extrapolates beyond the
    /// executed iterations.
    fn finish_epoch(
        &self,
        machine: &mut Machine,
        framework: Framework,
        results: &[IterationResult],
        total_iters: usize,
    ) -> EpochReport;
}

/// The executor implementing `mode`.
pub fn executor_for(mode: ExecMode) -> &'static dyn Executor {
    match mode {
        ExecMode::Serial => &SerialExecutor,
        ExecMode::Overlapped => &OverlappedExecutor,
    }
}

/// Phase-time totals, exposed storage time, mean loss and accuracy over
/// the (cycled) waves — identical for every executor. The exposed sum
/// prices the storage tier's async prefetch: wave `w`'s NVMe reads are
/// double-buffered against wave `w-1`'s compute, so only the part of
/// each wave's storage time exceeding its compute time surfaces as
/// added wall clock.
fn aggregate(results: &[IterationResult], waves: usize) -> (IterTimes, SimTime, f32, f64) {
    let mut totals = IterTimes::default();
    let mut exposed = SimTime::ZERO;
    for w in 0..waves {
        let t = results[w % results.len()].times;
        totals.sample += t.sample;
        totals.gather += t.gather;
        totals.train += t.train;
        totals.comm += t.comm;
        totals.storage += t.storage;
        let compute = t.compute();
        if t.storage > compute {
            exposed += t.storage - compute;
        }
    }
    let loss = results.iter().map(|r| r.loss).sum::<f32>() / results.len() as f32;
    let correct: usize = results.iter().map(|r| r.correct).sum();
    let seen: usize = results.iter().map(|r| r.batch).sum();
    (totals, exposed, loss, correct as f64 / seen.max(1) as f64)
}

/// Sample → gather → train → AllReduce back-to-back per wave.
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn mode(&self) -> ExecMode {
        ExecMode::Serial
    }

    fn wave_time(&self, times: &IterTimes) -> SimTime {
        times.total()
    }

    fn finish_epoch(
        &self,
        machine: &mut Machine,
        framework: Framework,
        results: &[IterationResult],
        total_iters: usize,
    ) -> EpochReport {
        assert!(!results.is_empty());
        let g = machine.num_gpus() as usize;
        let waves = total_iters.div_ceil(g);
        let busy_input = framework.gpu_busy_in_input_phases();
        let gpu0 = DeviceId::Gpu(0);
        let epoch_start = machine.now(gpu0);
        for w in 0..waves {
            let t = results[w % results.len()].times;
            machine.run_all_gpus(Phase::Sampling, busy_input, t.sample);
            machine.run_all_gpus(Phase::Gather, busy_input, t.gather);
            machine.run_all_gpus(Phase::Training, true, t.train);
            machine.run_all_gpus(Phase::Communication, true, t.comm);
        }
        let epoch_end = machine.now(gpu0);
        let (totals, exposed, loss, train_accuracy) = aggregate(results, waves);
        EpochReport {
            epoch_time: totals.total(),
            sample_time: totals.sample,
            gather_time: totals.gather,
            train_time: totals.train,
            comm_time: totals.comm,
            storage_time: totals.storage,
            storage_exposed_time: exposed,
            loss,
            train_accuracy,
            iterations: total_iters,
            executed_iterations: results.len(),
            occupancy: occupancy_from_trace(machine.trace(gpu0), epoch_start, epoch_end),
        }
    }
}

/// Double-buffered sample/gather/train overlap on two streams per GPU.
pub struct OverlappedExecutor;

/// Mini-batch buffer slots: wave `w`'s input phases may run while wave
/// `w-1` trains, but must wait for wave `w-2`'s training to have
/// consumed its buffer (classic double buffering).
const BUFFER_SLOTS: usize = 2;

impl Executor for OverlappedExecutor {
    fn mode(&self) -> ExecMode {
        ExecMode::Overlapped
    }

    fn wave_time(&self, times: &IterTimes) -> SimTime {
        // Steady state: input and compute proceed concurrently; the wave
        // rate is set by whichever stream is longer.
        times.input().max(times.compute())
    }

    fn finish_epoch(
        &self,
        machine: &mut Machine,
        framework: Framework,
        results: &[IterationResult],
        total_iters: usize,
    ) -> EpochReport {
        assert!(!results.is_empty());
        let g = machine.num_gpus() as usize;
        let waves = total_iters.div_ceil(g);
        let busy_input = framework.gpu_busy_in_input_phases();
        let gpu0 = DeviceId::Gpu(0);
        let epoch_start = machine.now(gpu0);

        // Schedule once on a representative GPU's streams (data-parallel
        // ranks execute identical schedules), then record the spans on
        // every GPU.
        let mut input = machine.stream(gpu0);
        let mut train = machine.stream(gpu0);
        let mut train_done: Vec<Event> = Vec::with_capacity(waves);
        let mut spans: Vec<(Phase, bool, SimTime, SimTime)> = Vec::with_capacity(4 * waves);
        for w in 0..waves {
            let t = results[w % results.len()].times;
            if w >= BUFFER_SLOTS {
                input.wait(train_done[w - BUFFER_SLOTS]);
            }
            let (s0, s1) = input.run(t.sample);
            let (g0, g1) = input.run(t.gather);
            let ready = input.record();
            train.wait(ready);
            let (t0, t1) = train.run(t.train);
            let (c0, c1) = train.run(t.comm);
            train_done.push(train.record());
            spans.push((Phase::Sampling, busy_input, s0, s1));
            spans.push((Phase::Gather, busy_input, g0, g1));
            spans.push((Phase::Training, true, t0, t1));
            spans.push((Phase::Communication, true, c0, c1));
        }
        let epoch_end = stream::sync(&mut [&mut input, &mut train]);
        for gpu in machine.gpus() {
            for &(phase, busy, start, end) in &spans {
                machine.record_span(gpu, phase, busy, start, end);
            }
        }

        let (totals, exposed, loss, train_accuracy) = aggregate(results, waves);
        EpochReport {
            epoch_time: epoch_end - epoch_start,
            sample_time: totals.sample,
            gather_time: totals.gather,
            train_time: totals.train,
            comm_time: totals.comm,
            storage_time: totals.storage,
            storage_exposed_time: exposed,
            loss,
            train_accuracy,
            iterations: total_iters,
            executed_iterations: results.len(),
            occupancy: occupancy_from_trace(machine.trace(gpu0), epoch_start, epoch_end),
        }
    }
}

/// Wall time of a pipelined batched *inference* run: each batch's input
/// phases overlap the previous batch's forward pass (single-buffer
/// prefetch — there is no optimizer dependency between batches).
/// `batch_times` is `(input, compute)` per batch. Serial wall time is the
/// plain sum.
pub fn pipelined_wall_time(batch_times: &[(SimTime, SimTime)]) -> SimTime {
    let mut input_end = SimTime::ZERO;
    let mut compute_end = SimTime::ZERO;
    for &(input, compute) in batch_times {
        input_end += input;
        compute_end = compute_end.max(input_end) + compute;
    }
    compute_end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(sample: f64, gather: f64, train: f64, comm: f64) -> IterTimes {
        IterTimes {
            sample: SimTime::from_secs(sample),
            gather: SimTime::from_secs(gather),
            train: SimTime::from_secs(train),
            comm: SimTime::from_secs(comm),
            storage: SimTime::ZERO,
        }
    }

    #[test]
    fn exposed_storage_is_the_over_compute_excess() {
        use crate::pipeline::report::IterationResult;
        use wg_sample::SampleStats;
        // Wave A: storage 1s hides under 3.5s of compute; wave B: 5s of
        // storage against 2s of compute leaves 3s exposed.
        let mk = |storage: f64, train: f64| IterationResult {
            times: IterTimes {
                storage: SimTime::from_secs(storage),
                ..times(0.5, storage + 0.5, train, 0.5)
            },
            loss: 1.0,
            correct: 1,
            batch: 2,
            shapes: Vec::new(),
            sample_stats: SampleStats::default(),
        };
        let results = [mk(1.0, 3.0), mk(5.0, 1.5)];
        let (totals, exposed, _, _) = aggregate(&results, 2);
        assert_eq!(totals.storage.as_secs(), 6.0);
        assert_eq!(exposed.as_secs(), 3.0);
        assert!(exposed < totals.storage);
    }

    #[test]
    fn wave_time_serial_vs_overlapped() {
        let t = times(3.0, 1.0, 2.0, 0.5);
        assert_eq!(SerialExecutor.wave_time(&t).as_secs(), 6.5);
        assert_eq!(OverlappedExecutor.wave_time(&t).as_secs(), 4.0);
        assert_eq!(executor_for(ExecMode::Serial).mode(), ExecMode::Serial);
        assert_eq!(executor_for(ExecMode::Overlapped).name(), "overlapped");
    }

    #[test]
    fn pipelined_wall_time_overlaps_input_with_compute() {
        // Two batches: input 2s, compute 3s. Serial = 10s; pipelined
        // saves the second batch's input: 2 + 3 + 3 = 8s.
        let batches = vec![
            (SimTime::from_secs(2.0), SimTime::from_secs(3.0)),
            (SimTime::from_secs(2.0), SimTime::from_secs(3.0)),
        ];
        assert_eq!(pipelined_wall_time(&batches).as_secs(), 8.0);
        // Input-bound: compute hides inside input time.
        let batches = vec![
            (SimTime::from_secs(4.0), SimTime::from_secs(1.0)),
            (SimTime::from_secs(4.0), SimTime::from_secs(1.0)),
        ];
        assert_eq!(pipelined_wall_time(&batches).as_secs(), 9.0);
        assert_eq!(pipelined_wall_time(&[]), SimTime::ZERO);
    }
}
