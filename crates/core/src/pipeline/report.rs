//! Iteration and epoch reports: phase times, numerics, and the busy/idle
//! occupancy accounting derived from stream traces.

use wg_gnn::cost::BlockShape;
use wg_sample::SampleStats;
use wg_sim::trace::Phase;
use wg_sim::{SimTime, UtilizationTrace};

/// Per-iteration simulated phase times.
#[derive(Clone, Copy, Debug, Default)]
pub struct IterTimes {
    /// Sub-graph sampling (+ sub-graph transfer for host pipelines).
    pub sample: SimTime,
    /// Feature gathering (+ PCIe copy for host pipelines).
    pub gather: SimTime,
    /// Forward + backward + optimizer.
    pub train: SimTime,
    /// Gradient AllReduce.
    pub comm: SimTime,
    /// Out-of-core storage-tier prefetch time of this iteration's gather.
    /// Informational sub-component: already included in `gather`, so
    /// [`total`](Self::total) does not add it again. Zero whenever the
    /// tier is off or every row was cache- or DSM-resident.
    pub storage: SimTime,
}

impl IterTimes {
    /// Sum of all phases (`storage` is part of `gather`, not re-added).
    pub fn total(&self) -> SimTime {
        self.sample + self.gather + self.train + self.comm
    }

    /// The input-pipeline half (sampling + gather) — what an overlapped
    /// executor runs on the input stream.
    pub fn input(&self) -> SimTime {
        self.sample + self.gather
    }

    /// The compute half (training + AllReduce) — what runs on the train
    /// stream.
    pub fn compute(&self) -> SimTime {
        self.train + self.comm
    }
}

/// Result of one executed iteration.
#[derive(Clone, Debug)]
pub struct IterationResult {
    /// Phase times of this iteration.
    pub times: IterTimes,
    /// Mini-batch training loss.
    pub loss: f32,
    /// Correct predictions on the batch.
    pub correct: usize,
    /// Batch size actually processed.
    pub batch: usize,
    /// Shapes of the sampled blocks (for memory estimates).
    pub shapes: Vec<BlockShape>,
    /// Sampling work counters.
    pub sample_stats: SampleStats,
}

/// Busy/idle split of the simulated time one phase occupied on a GPU.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseOccupancy {
    /// Time the GPU actively computed in this phase.
    pub busy: SimTime,
    /// Time the phase occupied while the GPU waited (host-side work).
    pub idle: SimTime,
}

impl PhaseOccupancy {
    /// Total time the phase occupied.
    pub fn total(&self) -> SimTime {
        self.busy + self.idle
    }
}

/// Per-phase busy/idle accounting of one epoch on one GPU, derived from
/// the trace intervals the executor recorded. Under the overlapped
/// executor, phase spans on different streams cover the same simulated
/// time, so the per-phase totals can *sum* to more than the epoch span —
/// that is the overlap. `busy`/`idle` are union measures over the epoch
/// window and always add up to exactly the epoch span.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochOccupancy {
    /// Sampling-phase occupancy.
    pub sampling: PhaseOccupancy,
    /// Gather-phase occupancy.
    pub gather: PhaseOccupancy,
    /// Training-phase occupancy.
    pub training: PhaseOccupancy,
    /// AllReduce-phase occupancy.
    pub comm: PhaseOccupancy,
    /// Union busy time of the GPU over the epoch window (overlapping
    /// busy spans counted once).
    pub busy: SimTime,
    /// Epoch span minus union busy time.
    pub idle: SimTime,
}

impl EpochOccupancy {
    /// GPU utilization over the epoch: union busy / epoch span.
    pub fn utilization(&self) -> f64 {
        let span = self.busy + self.idle;
        if span.as_secs() <= 0.0 {
            return 0.0;
        }
        self.busy / span
    }

    /// Occupancy of one phase by trace label.
    pub fn phase(&self, phase: Phase) -> PhaseOccupancy {
        match phase {
            Phase::Sampling => self.sampling,
            Phase::Gather => self.gather,
            Phase::Training => self.training,
            Phase::Communication => self.comm,
            Phase::Setup | Phase::Idle => PhaseOccupancy::default(),
        }
    }
}

/// Derive the epoch occupancy from a device's trace over `[from, to)`.
/// Executors call this on GPU 0 after recording the epoch's spans.
pub(crate) fn occupancy_from_trace(
    trace: &UtilizationTrace,
    from: SimTime,
    to: SimTime,
) -> EpochOccupancy {
    let mut occ = EpochOccupancy::default();
    for e in trace.events() {
        let lo = e.start.max(from);
        let hi = e.end.min(to);
        if hi <= lo {
            continue;
        }
        let d = hi - lo;
        let slot = match e.phase {
            Phase::Sampling => &mut occ.sampling,
            Phase::Gather => &mut occ.gather,
            Phase::Training => &mut occ.training,
            Phase::Communication => &mut occ.comm,
            Phase::Setup | Phase::Idle => continue,
        };
        if e.busy {
            slot.busy += d;
        } else {
            slot.idle += d;
        }
    }
    occ.busy = trace.busy_time(from, to);
    occ.idle = (to - from) - occ.busy;
    occ
}

/// Aggregated report of one (possibly extrapolated) epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochReport {
    /// Wall-clock epoch time (per-GPU, data-parallel waves). Under the
    /// overlapped executor this is the schedule length, which is shorter
    /// than the phase-time sum whenever input and compute overlap.
    pub epoch_time: SimTime,
    /// Total sampling time across the epoch.
    pub sample_time: SimTime,
    /// Total gather time.
    pub gather_time: SimTime,
    /// Total training time.
    pub train_time: SimTime,
    /// Total AllReduce time.
    pub comm_time: SimTime,
    /// Total out-of-core storage-tier time, summed as if every NVMe
    /// prefetch blocked the gather (it is part of `gather_time`).
    pub storage_time: SimTime,
    /// Storage time left *exposed* when each wave's prefetch is
    /// double-buffered against the previous wave's compute:
    /// Σ max(0, storage_w − (train_w + comm_w)). Strictly below
    /// `storage_time` whenever storage and compute are both nonzero —
    /// the overlap win the `storage_sweep` bench gates on.
    pub storage_exposed_time: SimTime,
    /// Mean training loss over executed iterations.
    pub loss: f32,
    /// Training accuracy over executed iterations.
    pub train_accuracy: f64,
    /// Iterations the epoch comprises (across all GPUs).
    pub iterations: usize,
    /// Iterations actually executed (≤ `iterations` when extrapolating).
    pub executed_iterations: usize,
    /// Per-phase busy/idle accounting on GPU 0, from the recorded trace.
    pub occupancy: EpochOccupancy,
}

/// Timing summary of an inference run (no backward, no AllReduce).
#[derive(Clone, Copy, Debug, Default)]
pub struct InferenceReport {
    /// Nodes predicted.
    pub nodes: usize,
    /// Batches executed.
    pub batches: usize,
    /// Total sampling time.
    pub sample_time: SimTime,
    /// Total gather time.
    pub gather_time: SimTime,
    /// Total forward compute time.
    pub compute_time: SimTime,
    /// End-to-end wall time: equals [`InferenceReport::total_time`] when
    /// batches run serially, less when the executor overlaps each batch's
    /// input phases with the previous batch's forward pass.
    pub wall_time: SimTime,
}

impl InferenceReport {
    /// Sum of all phase times (the serial end-to-end time).
    pub fn total_time(&self) -> SimTime {
        self.sample_time + self.gather_time + self.compute_time
    }

    /// Predicted nodes per simulated second of wall time.
    pub fn throughput(&self) -> f64 {
        let t = if self.wall_time.is_zero() {
            self.total_time()
        } else {
            self.wall_time
        };
        self.nodes as f64 / t.as_secs().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_sim::{DeviceId, TraceEvent};

    fn ev(start: f64, end: f64, phase: Phase, busy: bool) -> TraceEvent {
        TraceEvent {
            device: DeviceId::Gpu(0),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            phase,
            busy,
        }
    }

    #[test]
    fn occupancy_splits_phases_and_unions_busy() {
        let mut t = UtilizationTrace::new();
        // Overlapped-style wave: input phases idle-overlapping training.
        t.record(ev(0.0, 1.0, Phase::Sampling, false));
        t.record(ev(1.0, 2.0, Phase::Gather, false));
        t.record(ev(0.5, 2.5, Phase::Training, true));
        t.record(ev(2.5, 3.0, Phase::Communication, true));
        let occ = occupancy_from_trace(&t, SimTime::ZERO, SimTime::from_secs(3.0));
        assert_eq!(occ.sampling.idle.as_secs(), 1.0);
        assert_eq!(occ.gather.idle.as_secs(), 1.0);
        assert_eq!(occ.training.busy.as_secs(), 2.0);
        assert_eq!(occ.comm.busy.as_secs(), 0.5);
        assert_eq!(occ.busy.as_secs(), 2.5);
        assert_eq!(occ.idle.as_secs(), 0.5);
        assert!((occ.utilization() - 2.5 / 3.0).abs() < 1e-12);
        assert_eq!(occ.phase(Phase::Gather), occ.gather);
    }

    #[test]
    fn occupancy_clips_to_window() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 10.0, Phase::Training, true));
        let occ = occupancy_from_trace(&t, SimTime::from_secs(4.0), SimTime::from_secs(6.0));
        assert_eq!(occ.training.busy.as_secs(), 2.0);
        assert!((occ.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_times_halves() {
        let t = IterTimes {
            sample: SimTime::from_secs(1.0),
            gather: SimTime::from_secs(2.0),
            train: SimTime::from_secs(3.0),
            comm: SimTime::from_secs(4.0),
            storage: SimTime::from_secs(0.5),
        };
        assert_eq!(t.input().as_secs(), 3.0);
        assert_eq!(t.compute().as_secs(), 7.0);
        assert_eq!(t.total().as_secs(), 10.0);
    }

    #[test]
    fn inference_throughput_prefers_wall_time() {
        let mut r = InferenceReport {
            nodes: 100,
            batches: 2,
            sample_time: SimTime::from_secs(1.0),
            gather_time: SimTime::from_secs(1.0),
            compute_time: SimTime::from_secs(2.0),
            wall_time: SimTime::ZERO,
        };
        let serial = r.throughput();
        r.wall_time = SimTime::from_secs(2.0);
        assert!((serial - 25.0).abs() < 1e-9);
        assert!((r.throughput() - 50.0).abs() < 1e-9);
    }
}
