//! The per-iteration training engine.
//!
//! Every framework executes the same four-step iteration the paper
//! describes (Figure 1): **sample** the multi-layer sub-graph, **gather**
//! the input features, move them to the training GPU, and **train**. What
//! differs — and what produces every performance figure in the paper — is
//! *where* each step runs and *which link* the data crosses:
//!
//! | step | WholeGraph | DGL / PyG |
//! |---|---|---|
//! | sampling | fused GPU kernels over DSM | CPU sampler over host CSR |
//! | gather | one-kernel P2P gather over NVLink | CPU gather + PCIe copy |
//! | training | native fused layers | DGL/PyG layer implementations |
//!
//! The *numerics* are identical across frameworks (same seeds → same
//! sub-graphs → same math), which is how the paper's Table III accuracy
//! parity falls out; only the simulated time accounting differs.
//!
//! # Structure
//!
//! The engine is a small stage graph:
//!
//! * [`config`] — [`PipelineConfig`], [`FeaturePlacement`], [`ExecMode`].
//! * [`stages`] — the [`Stage`] trait and the Sample/Gather/Train stage
//!   implementations. Stages do the real math and price their phase, but
//!   never touch the machine's clocks.
//! * [`executor`] — [`SerialExecutor`] and [`OverlappedExecutor`]
//!   schedule the priced stages onto the machine: serially (synchronous
//!   DataLoader), or double-buffered on [`wg_sim::stream`]s so wave
//!   `i+1`'s input phases hide under wave `i`'s training.
//! * [`report`] — iteration/epoch/inference reports, including the
//!   per-phase busy/idle occupancy derived from the recorded traces.
//!
//! Timing model: with `G` GPUs training data-parallel, iterations are
//! processed in **waves** of `G` (one batch per GPU). We execute
//! iterations one after another (mathematically a single training stream
//! — what synchronized DDP computes), then hand the per-iteration phase
//! times to the configured executor, which charges simulated wave time to
//! all GPU clocks and records the busy/idle trace intervals that
//! Figure 12 plots. Because the numerics complete before scheduling
//! starts, both executors produce bit-identical losses, parameters and
//! predictions — only `epoch_time` and the traces differ.

pub mod config;
pub mod executor;
pub mod report;
pub mod stages;

pub use config::{CacheConfig, ExecMode, FeaturePlacement, PipelineConfig, StorageConfig};
pub use executor::{executor_for, Executor, OverlappedExecutor, SerialExecutor};
pub use report::{
    EpochOccupancy, EpochReport, InferenceReport, IterTimes, IterationResult, PhaseOccupancy,
};
pub use stages::{GatherStage, IterContext, SampleStage, Stage, TrainStage};

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::prelude::*;
use rand::rngs::SmallRng;

use wg_autograd::{Adam, Optimizer, Tape};
use wg_gnn::{GnnModel, LayerProvider};
use wg_graph::{GlobalId, HostGraph, MultiGpuGraph, NodeId, SyntheticDataset};
use wg_mem::gather::{
    global_gather_planned, global_gather_planned_cached, global_gather_planned_tiered, plan_gather,
    plan_gather_cached, plan_gather_tiered, RowPlan,
};
use wg_mem::{CacheMode, FeatureCache, OocTier};
use wg_sample::{
    sample_minibatch_into, GraphAccess, HostGraphAccess, MiniBatch, MultiGpuAccess, SampleScratch,
    SampleStats, SamplerConfig,
};
use wg_sim::memory::OutOfMemory;
use wg_sim::{Machine, SimTime};
use wg_tensor::ops::argmax_rows_into;
use wg_tensor::{BlockCsr, Matrix};

use crate::convert::minibatch_blocks_into;

#[allow(clippy::large_enum_variant)] // one store per pipeline; boxing buys nothing
enum StoreImpl {
    Dsm(MultiGpuGraph),
    Host(HostGraph),
}

/// Recycled per-iteration buffers (DESIGN.md, "Hot-path memory
/// discipline"): the sampler's scratch arena plus small pools of
/// mini-batch, handle and feature buffers, so steady-state iterations
/// reuse warm capacity instead of reallocating it every batch.
#[derive(Default)]
struct IterScratch {
    sample: SampleScratch,
    minibatches: Vec<MiniBatch>,
    handles: Vec<Vec<u64>>,
    gather_rows: Vec<usize>,
    feature_buf: Vec<f32>,
    /// The persistent autograd tape. Its [`wg_autograd::Workspace`] pool
    /// recycles every activation, gradient, and kernel scratch buffer
    /// across batches — `Tape::reset` between iterations returns all node
    /// matrices to the pool instead of freeing them.
    tape: Tape,
    /// Pooled CSR block list: `Arc::get_mut` succeeds in steady state
    /// (the tape's op-held clones are dropped by the reset above), so the
    /// conversion rebuilds the CSRs in place.
    blocks: Vec<Arc<BlockCsr>>,
    labels: Vec<u32>,
    preds: Vec<u32>,
    batch_ids: Vec<NodeId>,
    ce_losses: Vec<f32>,
    /// Reused gather plan: row locations and per-rank counts, with the
    /// division-free [`wg_mem::ChunkLocator`] rebuilt only when the
    /// feature partition changes.
    plan: RowPlan,
    /// Pooled epoch shuffle order and per-iteration result list.
    epoch_order: Vec<NodeId>,
    results: Vec<IterationResult>,
}

/// Pool size for recycled mini-batch / handle buffers. Serial iteration
/// holds at most one of each in flight; a little slack covers inference
/// and evaluation interleaving with training.
const ITER_POOL_CAP: usize = 4;

/// The fixed sampling epoch for [`Pipeline::serve_forward`]. Evaluation
/// samples at `u64::MAX` and batched inference at `u64::MAX - 1`;
/// serving takes the next slot down so its per-node RNG streams collide
/// with neither. Every serving pass also pins the iteration index to 0,
/// making a query node's sampled ego-graph a pure function of its stable
/// id — the property `wg-serve`'s coalescer relies on for bit-identity.
pub const SERVE_EPOCH: u64 = u64::MAX - 2;

/// Simulated phase times of one [`Pipeline::serve_forward`] pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeTimes {
    /// Neighbor-sampling kernel time.
    pub sample: SimTime,
    /// Feature-gather time (cache hits priced at local-HBM cost).
    pub gather: SimTime,
    /// Forward-pass compute time.
    pub compute: SimTime,
}

impl ServeTimes {
    /// Sum of the three phases — the batch's service time on its GPU.
    pub fn total(&self) -> SimTime {
        self.sample + self.gather + self.compute
    }
}

/// Multi-node execution context attached to a pipeline replica by the
/// [`crate::multinode`] executor: which machine this replica is, the
/// machine-level feature partition, pre-built per-node counter names
/// (no per-call `format!` on the hot path), and accumulated halo
/// traffic.
pub(crate) struct DistContext {
    /// This replica's machine rank.
    pub node: u32,
    /// Machine-level feature partition over stable dataset node ids —
    /// input rows owned by another machine are halo rows, charged an IB
    /// fetch.
    pub partition: Arc<wg_graph::HashPartition>,
    /// Per-node `multinode.node<k>.gather.feature_bytes` counter name.
    pub gather_bytes_metric: String,
    /// Per-node `multinode.node<k>.allreduce.bytes` counter name.
    pub allreduce_bytes_metric: String,
    /// Per-node `multinode.node<k>.halo.bytes` counter name.
    pub halo_bytes_metric: String,
    /// Halo rows accumulated since the last [`Pipeline::take_halo_stats`].
    pub halo_rows: u64,
    /// Halo bytes accumulated since the last take.
    pub halo_bytes: u64,
}

impl DistContext {
    pub(crate) fn new(node: u32, partition: Arc<wg_graph::HashPartition>) -> Self {
        DistContext {
            node,
            partition,
            gather_bytes_metric: format!("multinode.node{node}.gather.feature_bytes"),
            allreduce_bytes_metric: format!("multinode.node{node}.allreduce.bytes"),
            halo_bytes_metric: format!("multinode.node{node}.halo.bytes"),
            halo_rows: 0,
            halo_bytes: 0,
        }
    }
}

/// An end-to-end training pipeline for one framework on one dataset.
pub struct Pipeline {
    cfg: PipelineConfig,
    machine: Machine,
    dataset: Arc<SyntheticDataset>,
    store: StoreImpl,
    /// The model under training (exposed for inspection).
    pub model: GnnModel,
    opt: Adam,
    provider: LayerProvider,
    setup_time: SimTime,
    sampler_cfg: SamplerConfig,
    scratch: IterScratch,
    /// The per-device feature cache over the DSM store (ROADMAP item 2).
    /// Present only for WholeGraph device placements with a non-zero
    /// [`CacheConfig`]; cost-only — numerics are identical with or
    /// without it.
    cache: Option<FeatureCache<f32>>,
    /// The file-backed out-of-core tier below the DSM (ROADMAP item 1).
    /// Present only for WholeGraph device placements with a non-zero
    /// [`StorageConfig`] budget; cost-only — numerics are identical with
    /// or without it, at any residency.
    ooc: Option<OocTier<f32>>,
    /// Storage-tier time of the most recent [`gather`](Self::gather)
    /// call (zero when the tier is off or fully resident) — read by
    /// `run_iteration_inner` to report the gather's storage
    /// sub-component without changing the stage-graph signatures.
    last_storage_time: SimTime,
    /// Present when this pipeline is one replica of a multi-node run.
    pub(crate) dist: Option<DistContext>,
    /// Snapshot of the freshly initialized parameters, so
    /// [`reset_training_state`](Self::reset_training_state) can replay
    /// training from the same starting point without rebuilding the
    /// pipeline (and losing its warm buffer pools).
    init_params: Vec<Matrix>,
}

impl Pipeline {
    /// Build the pipeline: loads the dataset into the framework's store
    /// (DSM for WholeGraph, host DRAM for DGL/PyG) and initializes the
    /// model.
    pub fn new(
        machine: Machine,
        dataset: Arc<SyntheticDataset>,
        cfg: PipelineConfig,
    ) -> Result<Self, OutOfMemory> {
        let acct = machine.memory();
        let (store, setup_time) = if cfg.framework.uses_dsm() {
            use wg_sim::cost::AccessMode;
            // Under HostMapped the features never leave host memory; the
            // DSM store only carries the structure (empty feature matrix).
            let (feats, dim, mode) = match cfg.feature_placement {
                FeaturePlacement::DeviceP2p => (
                    &dataset.features[..],
                    dataset.feature_dim,
                    AccessMode::PeerAccess,
                ),
                FeaturePlacement::DeviceUnifiedMemory => (
                    &dataset.features[..],
                    dataset.feature_dim,
                    AccessMode::UnifiedMemory,
                ),
                FeaturePlacement::HostMapped => (&[][..], 0, AccessMode::PeerAccess),
            };
            let store = MultiGpuGraph::build_with_mode(
                machine.cost(),
                machine.num_gpus(),
                &dataset.graph,
                feats,
                dim,
                &acct,
                mode,
            )?;
            if cfg.feature_placement == FeaturePlacement::HostMapped {
                acct.alloc(
                    wg_sim::DeviceId::Cpu,
                    wg_sim::memory::AllocKind::Features,
                    (dataset.features.len() * 4) as u64,
                )?;
            }
            let t = store.setup_time();
            (StoreImpl::Dsm(store), t)
        } else {
            let host = HostGraph::build(
                dataset.graph.clone(),
                dataset.features.clone(),
                dataset.feature_dim,
                &acct,
            )?;
            (StoreImpl::Host(host), SimTime::ZERO)
        };
        let gnn_cfg = cfg.gnn_config(dataset.feature_dim, dataset.num_classes);
        let model = GnnModel::new(gnn_cfg, cfg.seed);
        let opt = Adam::new(cfg.lr);
        let provider = cfg
            .provider_override
            .unwrap_or(cfg.framework.default_provider());
        let sampler_cfg = SamplerConfig {
            fanouts: cfg.fanouts.clone(),
            seed: cfg.seed,
        };
        let init_params = model
            .params
            .ids()
            .map(|id| model.params.value(id).clone())
            .collect();
        // The feature cache sits over the DSM store only: host pipelines
        // gather on the CPU, and HostMapped keeps no device features to
        // cache.
        let cache = match (&store, cfg.resolved_cache()) {
            (StoreImpl::Dsm(s), Some(cc))
                if cfg.feature_placement != FeaturePlacement::HostMapped =>
            {
                Some(Self::build_cache(s, cc, machine.num_gpus()))
            }
            _ => None,
        };
        // The out-of-core tier sits below the DSM feature store:
        // everything beyond the residency budget is served from the
        // spill file (which also carries the CSR adjacency), priced by
        // the NVMe storage cost model. Host pipelines and HostMapped
        // placements keep their features in DRAM already — no tier.
        let ooc = match (&store, cfg.resolved_storage()) {
            (StoreImpl::Dsm(s), Some(sc))
                if cfg.feature_placement != FeaturePlacement::HostMapped =>
            {
                Some(Self::build_ooc(s, sc.budget_rows))
            }
            _ => None,
        };
        Ok(Pipeline {
            cfg,
            machine,
            dataset,
            store,
            model,
            opt,
            provider,
            setup_time,
            sampler_cfg,
            scratch: IterScratch::default(),
            cache,
            ooc,
            last_storage_time: SimTime::ZERO,
            dist: None,
            init_params,
        })
    }

    /// Build the configured feature cache over the DSM feature store.
    /// Static mode ranks rows by vertex degree — the load-time hotness
    /// signal: neighbor sampling revisits high-degree vertices far more
    /// often than the tail. The `+1` keeps isolated real vertices ahead
    /// of the DSM padding rows (which stay at hotness 0 and are never
    /// pinned).
    fn build_cache(store: &MultiGpuGraph, cc: CacheConfig, gpus: u32) -> FeatureCache<f32> {
        match cc.mode {
            CacheMode::Static => {
                let mut hotness = vec![0u64; store.features().rows()];
                for v in 0..store.num_nodes() as NodeId {
                    hotness[store.feature_row(v)] = store.degree(v) as u64 + 1;
                }
                FeatureCache::new_static(store.features(), &hotness, cc.rows)
            }
            CacheMode::Clock => FeatureCache::new_clock(store.features(), gpus, cc.rows),
        }
    }

    /// Build the out-of-core tier: spill every feature row plus the CSR
    /// adjacency to the tier's file, then keep the `budget_rows` hottest
    /// rows DSM-resident. The hotness signal is the same degree-based one
    /// the static cache uses (the `+1` keeps real vertices ahead of DSM
    /// padding rows, which stay at hotness 0 and spill first).
    fn build_ooc(store: &MultiGpuGraph, budget_rows: usize) -> OocTier<f32> {
        let mut hotness = vec![0u64; store.features().rows()];
        for v in 0..store.num_nodes() as NodeId {
            hotness[store.feature_row(v)] = store.degree(v) as u64 + 1;
        }
        let mut tier = OocTier::build(store.features(), &hotness, budget_rows)
            .expect("ooc: failed to build the storage-tier spill file");
        tier.write_adjacency(store.node_meta(), store.edges())
            .expect("ooc: failed to spill the CSR adjacency");
        tier
    }

    /// Attach the multi-node execution context (machine rank, feature
    /// partition, per-node counters).
    pub(crate) fn set_dist(&mut self, dist: DistContext) {
        self.dist = Some(dist);
    }

    /// Drain the halo rows/bytes accumulated since the last call (zero
    /// for single-node pipelines).
    pub(crate) fn take_halo_stats(&mut self) -> (u64, u64) {
        match &mut self.dist {
            Some(d) => {
                let out = (d.halo_rows, d.halo_bytes);
                d.halo_rows = 0;
                d.halo_bytes = 0;
                out
            }
            None => (0, 0),
        }
    }

    /// Restore parameters, optimizer moments, and the machine's clocks and
    /// traces to their just-constructed state — *without* dropping any
    /// pooled scratch buffers. Benches use this to replay bit-identical
    /// epochs against warm pools instead of rebuilding the pipeline.
    pub fn reset_training_state(&mut self) {
        let ids: Vec<_> = self.model.params.ids().collect();
        for (id, init) in ids.into_iter().zip(&self.init_params) {
            self.model
                .params
                .value_mut(id)
                .data_mut()
                .copy_from_slice(init.data());
        }
        self.model.params.zero_grads();
        self.opt.reset();
        self.machine.reset_time();
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The simulated machine (clocks, traces, memory accounting).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (trace reset between experiments).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// One-time distributed-shared-memory setup time (zero for host
    /// pipelines).
    pub fn setup_time(&self) -> SimTime {
        self.setup_time
    }

    /// The layer provider training runs with.
    pub fn provider(&self) -> LayerProvider {
        self.provider
    }

    /// The executor the configured [`ExecMode`] selects.
    pub fn executor(&self) -> &'static dyn Executor {
        executor_for(self.cfg.exec)
    }

    /// Iterations per epoch (ceil of train split / batch size).
    pub fn iters_per_epoch(&self) -> usize {
        self.dataset.train.len().div_ceil(self.cfg.batch_size)
    }

    /// The dataset under training.
    pub fn dataset(&self) -> &SyntheticDataset {
        &self.dataset
    }

    fn handles_for(&mut self, nodes: &[NodeId]) -> Vec<u64> {
        let mut out = self.scratch.handles.pop().unwrap_or_default();
        out.clear();
        match &self.store {
            StoreImpl::Dsm(s) => {
                let a = MultiGpuAccess::new(s);
                out.extend(nodes.iter().map(|&v| a.handle_of(v)));
            }
            StoreImpl::Host(h) => {
                let a = HostGraphAccess(h);
                out.extend(nodes.iter().map(|&v| a.handle_of(v)));
            }
        }
        out
    }

    fn sample(&mut self, handles: &[u64], epoch: u64, iter: u64) -> (MiniBatch, SampleStats) {
        let mut mb = self
            .scratch
            .minibatches
            .pop()
            .unwrap_or_else(MiniBatch::empty);
        let stats = match &self.store {
            StoreImpl::Dsm(s) => sample_minibatch_into(
                &MultiGpuAccess::new(s),
                handles,
                &self.sampler_cfg,
                epoch,
                iter,
                &mut self.scratch.sample,
                &mut mb,
            ),
            StoreImpl::Host(h) => sample_minibatch_into(
                &HostGraphAccess(h),
                handles,
                &self.sampler_cfg,
                epoch,
                iter,
                &mut self.scratch.sample,
                &mut mb,
            ),
        };
        (mb, stats)
    }

    /// Return an iteration's transient buffers to the recycle pools so the
    /// next iteration starts with warm capacity.
    pub(crate) fn recycle_iter_buffers(&mut self, mb: Option<MiniBatch>, handles: Vec<u64>) {
        if let Some(mb) = mb {
            if self.scratch.minibatches.len() < ITER_POOL_CAP {
                self.scratch.minibatches.push(mb);
            }
        }
        if handles.capacity() > 0 && self.scratch.handles.len() < ITER_POOL_CAP {
            self.scratch.handles.push(handles);
        }
    }

    /// Hand a spent feature buffer (e.g. the gathered-input matrix the
    /// train stage reclaims from the tape) back to the gather pool.
    pub(crate) fn reclaim_feature_buf(&mut self, buf: Vec<f32>) {
        if buf.capacity() > self.scratch.feature_buf.capacity() {
            self.scratch.feature_buf = buf;
        }
    }

    /// Charge the machine-level halo exchange of a minibatch: input rows
    /// whose features another machine owns are fetched over IB before
    /// the local gather. Exactly [`SimTime::ZERO`] for single-node runs
    /// (no `dist` context, one rank, or no halo rows) — the numerics are
    /// untouched either way (the values come from the local replica; the
    /// exchange only costs time, per the repo's caching convention).
    ///
    /// `rank` is the GPU executing this iteration's gather: halo rows
    /// already resident in that device's feature cache skip the IB fetch
    /// (the cached copy serves them locally). Membership is tested
    /// *before* this iteration's gather runs, so CLOCK inserts from the
    /// current batch never retroactively discount its own halo cost —
    /// the check stays deterministic.
    fn halo_time(&mut self, input: &[u64], rank: u32) -> SimTime {
        let (nodes, home) = match &self.dist {
            Some(d) => (d.partition.ranks(), d.node),
            None => return SimTime::ZERO,
        };
        if nodes <= 1 {
            return SimTime::ZERO;
        }
        let dist = self.dist.as_ref().unwrap();
        let cache = self.cache.as_ref();
        let halo = match &self.store {
            StoreImpl::Dsm(s) => input
                .iter()
                .filter(|&&h| {
                    let g = GlobalId::from_raw(h);
                    let v = s.partition().node_of(g);
                    if dist.partition.rank_of(v) == home {
                        return false;
                    }
                    !cache.is_some_and(|c| c.contains(rank, s.feature_row_of_global(g)))
                })
                .count() as u64,
            StoreImpl::Host(_) => input
                .iter()
                .filter(|&&h| dist.partition.rank_of(h) != home)
                .count() as u64,
        };
        let ex = wg_mem::halo::halo_exchange(
            self.machine.cost(),
            input.len() as u64,
            halo,
            self.dataset.feature_dim * 4,
            nodes,
        );
        let dist = self.dist.as_mut().unwrap();
        dist.halo_rows += ex.halo_rows;
        dist.halo_bytes += ex.halo_bytes;
        if ex.halo_bytes > 0 {
            wg_trace::metrics::add_dyn(&dist.halo_bytes_metric, ex.halo_bytes as f64);
        }
        ex.time
    }

    /// Gather the input features of a mini-batch. Returns the dense
    /// feature matrix (rows follow `mb.input_nodes()` order) and the
    /// simulated phase time (including any machine-level halo fetch).
    fn gather(&mut self, mb: &MiniBatch, iter: u64) -> (Matrix, SimTime) {
        let feat_dim = self.dataset.feature_dim;
        // The GPU executing this iteration's gather (iterations round-robin
        // across the data-parallel ranks) — also the device whose feature
        // cache the halo accounting consults.
        let rank = (iter % self.machine.num_gpus() as u64) as u32;
        self.last_storage_time = SimTime::ZERO;
        let t_halo = self.halo_time(mb.input_nodes(), rank);
        let input = mb.input_nodes();
        wg_trace::counter!(
            "pipeline.gather.feature_bytes",
            (input.len() * feat_dim * 4) as f64
        );
        if let Some(dist) = &self.dist {
            wg_trace::metrics::add_dyn(
                &dist.gather_bytes_metric,
                (input.len() * feat_dim * 4) as f64,
            );
        }
        let (features, t) = match &self.store {
            StoreImpl::Dsm(s) if self.cfg.feature_placement == FeaturePlacement::HostMapped => {
                // Zero-copy: the gather kernel reads host-pinned rows over
                // PCIe directly (no CPU gather step, no staging buffer).
                let mut out = std::mem::take(&mut self.scratch.feature_buf);
                out.clear();
                out.reserve(input.len() * feat_dim);
                for &h in input {
                    let v = s.partition().node_of(GlobalId::from_raw(h)) as usize;
                    out.extend_from_slice(&self.dataset.features[v * feat_dim..(v + 1) * feat_dim]);
                }
                let t = self.machine.cost().pcie_zero_copy_gather_time(
                    input.len() as u64,
                    feat_dim * 4,
                    self.machine.num_gpus(),
                    self.machine.spec(wg_sim::DeviceId::Gpu(0)),
                );
                (Matrix::from_vec(input.len(), feat_dim, out), t)
            }
            StoreImpl::Dsm(s) => {
                let mut rows = std::mem::take(&mut self.scratch.gather_rows);
                rows.clear();
                rows.extend(
                    input
                        .iter()
                        .map(|&h| s.feature_row_of_global(GlobalId::from_raw(h))),
                );
                let mut out = std::mem::take(&mut self.scratch.feature_buf);
                out.clear();
                out.resize(rows.len() * feat_dim, 0.0);
                // Planned gather: row locations are resolved once into the
                // pooled plan (division-free locator, guards hoisted out of
                // the copy loop), then the copy kernel runs straight off
                // the plan's slots. With a feature cache attached, planning
                // consults it first: hits are priced at local-HBM cost and
                // skip the bus; misses fall through to the DSM path.
                let mut plan = std::mem::take(&mut self.scratch.plan);
                let stats = if let Some(tier) = self.ooc.as_mut() {
                    // Tiered resolution: cache → DSM → disk. The tier's
                    // batched prefetch stages the disk-planned rows, and
                    // its priced time lands in `stats.storage_time`.
                    plan_gather_tiered(
                        s.features(),
                        &rows,
                        &mut plan,
                        tier,
                        self.cache.as_mut(),
                        rank,
                    );
                    global_gather_planned_tiered(
                        s.features(),
                        &plan,
                        &mut out,
                        rank,
                        self.machine.cost(),
                        self.machine.spec(wg_sim::DeviceId::Gpu(rank)),
                        self.cache.as_mut(),
                        tier,
                    )
                } else if let Some(cache) = self.cache.as_mut() {
                    plan_gather_cached(s.features(), &rows, &mut plan, cache, rank);
                    global_gather_planned_cached(
                        s.features(),
                        &plan,
                        &mut out,
                        rank,
                        self.machine.cost(),
                        self.machine.spec(wg_sim::DeviceId::Gpu(rank)),
                        cache,
                    )
                } else {
                    plan_gather(s.features(), &rows, &mut plan);
                    global_gather_planned(
                        s.features(),
                        &plan,
                        &mut out,
                        rank,
                        self.machine.cost(),
                        self.machine.spec(wg_sim::DeviceId::Gpu(rank)),
                    )
                };
                let num_rows = rows.len();
                self.scratch.plan = plan;
                self.scratch.gather_rows = rows;
                self.last_storage_time = stats.storage_time;
                (Matrix::from_vec(num_rows, feat_dim, out), stats.sim_time)
            }
            StoreImpl::Host(h) => {
                // CPU-side gather, then the mini-batch (features +
                // sub-graph structure) crosses PCIe; with all GPUs loading
                // concurrently each gets a shared uplink (§III-B).
                let mut out = std::mem::take(&mut self.scratch.feature_buf);
                h.gather_features(input, &mut out);
                let feat_bytes = (out.len() * 4) as u64;
                let struct_bytes: u64 = mb
                    .blocks
                    .iter()
                    .map(|b| {
                        (b.indices.len() * 4 + b.offsets.len() * 4 + b.dup_count.len() * 4) as u64
                    })
                    .sum();
                let model = self.machine.cost();
                // The CPU gather bandwidth is an aggregate host resource:
                // G concurrent trainer processes each see 1/G of it (same
                // contention argument as sampling).
                let cpu = model.host_gather_time(input.len() as u64, feat_dim * 4)
                    * self.machine.num_gpus() as f64;
                let path = model.topology.path(
                    wg_sim::DeviceId::Cpu,
                    wg_sim::DeviceId::Gpu(0),
                    self.machine.num_gpus(),
                );
                let pcie = model.transfer_time(feat_bytes + struct_bytes, path);
                (Matrix::from_vec(input.len(), feat_dim, out), cpu + pcie)
            }
        };
        (features, t + t_halo)
    }

    /// Map mini-batch handles back to dataset node ids (for labels),
    /// writing into a caller-provided (pooled) buffer.
    pub(crate) fn stable_ids_into(&self, handles: &[u64], out: &mut Vec<NodeId>) {
        out.clear();
        match &self.store {
            StoreImpl::Dsm(s) => {
                let a = MultiGpuAccess::new(s);
                out.extend(handles.iter().map(|&h| a.stable_id(h)));
            }
            StoreImpl::Host(_) => out.extend_from_slice(handles),
        }
    }

    /// Execute one full iteration through the stage graph (sample →
    /// gather → train). `update` applies the optimizer; pass `false` for
    /// timing-only runs.
    pub fn run_iteration(
        &mut self,
        epoch: u64,
        iter: u64,
        batch_nodes: &[NodeId],
        update: bool,
    ) -> IterationResult {
        let mut wall = [Duration::ZERO; 3];
        self.run_iteration_timed(epoch, iter, batch_nodes, update, &mut wall)
    }

    /// [`run_iteration`](Self::run_iteration), additionally accumulating
    /// the *host* wall-clock time each stage spends into `wall` (sample,
    /// gather, train) — the wallclock bench uses this to report where the
    /// real time goes. Numerics are identical.
    pub fn run_iteration_timed(
        &mut self,
        epoch: u64,
        iter: u64,
        batch_nodes: &[NodeId],
        update: bool,
        wall: &mut [Duration; 3],
    ) -> IterationResult {
        self.run_iteration_inner(epoch, iter, batch_nodes, update, false, wall)
    }

    /// Like [`run_iteration`](Self::run_iteration) with `update = true`,
    /// but stops after backward: gradients are left in the parameters for
    /// the multi-node executor to average across replicas, after which
    /// [`apply_step`](Self::apply_step) finishes the update. With an
    /// immediate `apply_step` the sequence zero-grads → backward → step
    /// is exactly what [`run_iteration`](Self::run_iteration) executes,
    /// which is what makes N=1 multi-node runs bit-identical.
    pub fn run_iteration_deferred(
        &mut self,
        epoch: u64,
        iter: u64,
        batch_nodes: &[NodeId],
    ) -> IterationResult {
        let mut wall = [Duration::ZERO; 3];
        self.run_iteration_inner(epoch, iter, batch_nodes, true, true, &mut wall)
    }

    /// Apply the optimizer step deferred by
    /// [`run_iteration_deferred`](Self::run_iteration_deferred).
    pub fn apply_step(&mut self) {
        self.opt.step(&mut self.model.params);
    }

    fn run_iteration_inner(
        &mut self,
        epoch: u64,
        iter: u64,
        batch_nodes: &[NodeId],
        update: bool,
        defer_step: bool,
        wall: &mut [Duration; 3],
    ) -> IterationResult {
        let mut ctx = IterContext::new(self, epoch, iter, batch_nodes, update);
        ctx.defer_step = defer_step;
        let t0 = Instant::now();
        let sample = {
            let _s = wg_trace::span!("pipeline.sample");
            SampleStage.run(&mut ctx)
        };
        let t1 = Instant::now();
        let gather = {
            let _s = wg_trace::span!("pipeline.gather");
            GatherStage.run(&mut ctx)
        };
        let t2 = Instant::now();
        let train = {
            let _s = wg_trace::span!("pipeline.train");
            TrainStage.run(&mut ctx)
        };
        let t3 = Instant::now();
        wall[0] += t1 - t0;
        wall[1] += t2 - t1;
        wall[2] += t3 - t2;
        let comm = ctx.comm;
        let storage = ctx.pipeline.last_storage_time;
        ctx.into_result(IterTimes {
            sample,
            gather,
            train,
            comm,
            storage,
        })
    }

    /// The epoch's shuffled batches.
    pub fn epoch_batches(&self, epoch: u64) -> Vec<Vec<NodeId>> {
        let mut order = self.dataset.train.clone();
        order.shuffle(&mut SmallRng::seed_from_u64(
            self.cfg.seed ^ epoch.wrapping_mul(0x9e37),
        ));
        order
            .chunks(self.cfg.batch_size)
            .map(<[NodeId]>::to_vec)
            .collect()
    }

    /// Train a full epoch, executing every iteration.
    pub fn train_epoch(&mut self, epoch: u64) -> EpochReport {
        self.train_epoch_timed(epoch).0
    }

    /// [`train_epoch`](Self::train_epoch) plus the host wall-clock split
    /// across the three stages. The shuffle order and result list come
    /// from the iteration scratch, so steady-state epochs reuse warm
    /// capacity; batch order is identical to [`epoch_batches`].
    ///
    /// [`epoch_batches`]: Self::epoch_batches
    pub fn train_epoch_timed(&mut self, epoch: u64) -> (EpochReport, [Duration; 3]) {
        let _epoch_span = wg_trace::span!("pipeline.epoch");
        let mut order = std::mem::take(&mut self.scratch.epoch_order);
        order.clear();
        order.extend_from_slice(&self.dataset.train);
        order.shuffle(&mut SmallRng::seed_from_u64(
            self.cfg.seed ^ epoch.wrapping_mul(0x9e37),
        ));
        let mut results = std::mem::take(&mut self.scratch.results);
        results.clear();
        let bs = self.cfg.batch_size;
        let iters = order.len().div_ceil(bs);
        let mut wall = [Duration::ZERO; 3];
        for i in 0..iters {
            let batch = &order[i * bs..((i + 1) * bs).min(order.len())];
            let r = self.run_iteration_timed(epoch, i as u64, batch, true, &mut wall);
            results.push(r);
        }
        let report = self.finish_epoch(&results, iters);
        self.scratch.epoch_order = order;
        self.scratch.results = results;
        (report, wall)
    }

    /// Measure an epoch by executing only `real_iters` iterations and
    /// extrapolating the rest (performance experiments on large stand-ins;
    /// iterations are statistically identical, so a few representatives
    /// pin the per-wave time).
    pub fn measure_epoch(&mut self, epoch: u64, real_iters: usize) -> EpochReport {
        let batches = self.epoch_batches(epoch);
        let n = real_iters.clamp(1, batches.len());
        let mut results = Vec::with_capacity(n);
        for (i, batch) in batches.iter().take(n).enumerate() {
            results.push(self.run_iteration(epoch, i as u64, batch, true));
        }
        self.finish_epoch(&results, batches.len())
    }

    /// Hand the executed iterations to the configured executor, which
    /// charges the machine's clocks/traces wave by wave and builds the
    /// epoch report.
    pub(crate) fn finish_epoch(
        &mut self,
        results: &[IterationResult],
        total_iters: usize,
    ) -> EpochReport {
        executor_for(self.cfg.exec).finish_epoch(
            &mut self.machine,
            self.cfg.framework,
            results,
            total_iters,
        )
    }

    /// Batched inference: predict classes for `nodes` without any
    /// backward pass or gradient AllReduce (§I: WholeGraph's ops "also
    /// can be used in inference scenarios, since it does not require
    /// collective communication"). Returns per-node predictions in input
    /// order plus a timing report. Under [`ExecMode::Overlapped`] each
    /// batch's input phases prefetch under the previous batch's forward
    /// pass, shrinking `wall_time` below the phase-time sum.
    pub fn infer(&mut self, nodes: &[NodeId]) -> (Vec<u32>, InferenceReport) {
        let gpu_spec = self.machine.spec(wg_sim::DeviceId::Gpu(0)).clone();
        let mut preds = Vec::with_capacity(nodes.len());
        let mut report = InferenceReport::default();
        let mut batch_times = Vec::new();
        for (i, batch) in nodes.chunks(self.cfg.batch_size).enumerate() {
            let handles = self.handles_for(batch);
            let (mb, stats) = self.sample(&handles, u64::MAX - 1, i as u64);
            let t_sample = self.cfg.framework.sampler_backend().sample_time(
                self.machine.cost(),
                &gpu_spec,
                stats,
            );
            report.sample_time += t_sample;
            let (features, t_gather) = self.gather(&mb, i as u64);
            report.gather_time += t_gather;
            let mut blocks = std::mem::take(&mut self.scratch.blocks);
            minibatch_blocks_into(&mb, &mut blocks);
            let shapes = crate::convert::minibatch_shapes(&mb);
            let mut tape = std::mem::take(&mut self.scratch.tape);
            tape.reset();
            let out = self.model.forward(&mut tape, &blocks, features, false, 0);
            let mut batch_preds = std::mem::take(&mut self.scratch.preds);
            argmax_rows_into(tape.value(out), &mut batch_preds);
            preds.extend_from_slice(&batch_preds);
            self.scratch.preds = batch_preds;
            let t_eval = wg_gnn::cost::eval_step_time(
                &self
                    .cfg
                    .gnn_config(self.dataset.feature_dim, self.dataset.num_classes),
                &shapes,
                self.provider,
                self.machine.cost(),
                &gpu_spec,
            );
            report.compute_time += t_eval;
            report.batches += 1;
            batch_times.push((t_sample + t_gather, t_eval));
            self.reclaim_feature_buf(tape.take_value(wg_autograd::NodeId::first()).into_vec());
            self.scratch.tape = tape;
            self.scratch.blocks = blocks;
            self.recycle_iter_buffers(Some(mb), handles);
        }
        report.nodes = nodes.len();
        report.wall_time = match self.cfg.exec {
            ExecMode::Serial => report.total_time(),
            ExecMode::Overlapped => executor::pipelined_wall_time(&batch_times),
        };
        (preds, report)
    }

    /// One serving forward pass over a (possibly coalesced) set of query
    /// nodes: sample → cached gather → forward, no backward, no
    /// collective communication. Appends one prediction and one per-row
    /// logits checksum (FNV-1a over the output row's bit patterns) per
    /// query node, in input order, and returns the simulated phase times.
    ///
    /// Sampling runs at the **fixed** coordinates (`SERVE_EPOCH`,
    /// iteration 0), so each node's per-node RNG stream — keyed on its
    /// stable id, never its batch position — draws the same neighbors no
    /// matter which other nodes share the batch. Combined with the
    /// per-row-local forward pass (dropout off; `dup_count` is consumed
    /// only by backward), this makes a coalesced batch bit-identical to
    /// running each request alone, which is the correctness contract of
    /// `wg-serve`'s micro-batching coalescer. The per-row checksums are
    /// the witness: row-position-invariant, so the serve layer can
    /// compare coalesced and sequential executions request by request.
    ///
    /// `rank` is the GPU whose timeline (and feature cache) this pass
    /// uses. `nodes` must be duplicate-free (the sampler's frontier
    /// contract); `wg-serve`'s coalescer dedups via `append_unique`.
    pub fn serve_forward(
        &mut self,
        nodes: &[NodeId],
        rank: u32,
        out_preds: &mut Vec<u32>,
        out_checksums: &mut Vec<u64>,
    ) -> ServeTimes {
        use wg_tensor::simd::{fnv1a_f32, FNV_OFFSET};
        debug_assert!(rank < self.machine.num_gpus());
        let gpu_spec = self.machine.spec(wg_sim::DeviceId::Gpu(rank)).clone();
        let handles = self.handles_for(nodes);
        let (mb, stats) = {
            let _s = wg_trace::span!("serve.sample");
            self.sample(&handles, SERVE_EPOCH, 0)
        };
        let sample_time =
            self.cfg
                .framework
                .sampler_backend()
                .sample_time(self.machine.cost(), &gpu_spec, stats);
        let (features, gather_time) = {
            let _s = wg_trace::span!("serve.gather");
            // `gather` derives its executing rank as `iter % num_gpus`;
            // passing the rank itself pins it (rank < num_gpus).
            self.gather(&mb, rank as u64)
        };
        let compute_time;
        {
            let _s = wg_trace::span!("serve.forward");
            let mut blocks = std::mem::take(&mut self.scratch.blocks);
            minibatch_blocks_into(&mb, &mut blocks);
            let shapes = crate::convert::minibatch_shapes(&mb);
            let mut tape = std::mem::take(&mut self.scratch.tape);
            tape.reset();
            let out = self.model.forward(&mut tape, &blocks, features, false, 0);
            let logits = tape.value(out);
            let mut batch_preds = std::mem::take(&mut self.scratch.preds);
            argmax_rows_into(logits, &mut batch_preds);
            out_preds.extend_from_slice(&batch_preds);
            out_checksums.extend((0..nodes.len()).map(|i| fnv1a_f32(FNV_OFFSET, logits.row(i))));
            self.scratch.preds = batch_preds;
            compute_time = wg_gnn::cost::eval_step_time(
                &self
                    .cfg
                    .gnn_config(self.dataset.feature_dim, self.dataset.num_classes),
                &shapes,
                self.provider,
                self.machine.cost(),
                &gpu_spec,
            );
            self.reclaim_feature_buf(tape.take_value(wg_autograd::NodeId::first()).into_vec());
            self.scratch.tape = tape;
            self.scratch.blocks = blocks;
        }
        self.recycle_iter_buffers(Some(mb), handles);
        ServeTimes {
            sample: sample_time,
            gather: gather_time,
            compute: compute_time,
        }
    }

    /// Evaluate accuracy on a node set (validation or test split) with
    /// sampled inference.
    pub fn evaluate(&mut self, nodes: &[NodeId]) -> f64 {
        self.evaluate_detailed(nodes).accuracy()
    }

    /// Evaluate with a full confusion matrix (accuracy, per-class
    /// precision/recall/F1, macro-F1).
    pub fn evaluate_detailed(&mut self, nodes: &[NodeId]) -> crate::metrics::ConfusionMatrix {
        let mut cm = crate::metrics::ConfusionMatrix::new(self.dataset.num_classes);
        for (i, batch) in nodes.chunks(self.cfg.batch_size).enumerate() {
            let handles = self.handles_for(batch);
            let (mb, _) = self.sample(&handles, u64::MAX, i as u64);
            let (features, _) = self.gather(&mb, i as u64);
            let mut blocks = std::mem::take(&mut self.scratch.blocks);
            minibatch_blocks_into(&mb, &mut blocks);
            let mut tape = std::mem::take(&mut self.scratch.tape);
            tape.reset();
            let out = self.model.forward(&mut tape, &blocks, features, false, 0);
            let mut preds = std::mem::take(&mut self.scratch.preds);
            argmax_rows_into(tape.value(out), &mut preds);
            let mut ids = std::mem::take(&mut self.scratch.batch_ids);
            self.stable_ids_into(&handles, &mut ids);
            for (p, v) in preds.iter().zip(ids.iter()) {
                cm.record(self.dataset.labels[*v as usize], *p);
            }
            self.reclaim_feature_buf(tape.take_value(wg_autograd::NodeId::first()).into_vec());
            self.scratch.tape = tape;
            self.scratch.blocks = blocks;
            self.scratch.preds = preds;
            self.scratch.batch_ids = ids;
            self.recycle_iter_buffers(Some(mb), handles);
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use wg_gnn::ModelKind;
    use wg_graph::DatasetKind;
    use wg_sim::MachineConfig;

    fn dataset() -> Arc<SyntheticDataset> {
        Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            1500,
            5,
        ))
    }

    fn pipeline(fw: Framework, model: ModelKind) -> Pipeline {
        let machine = Machine::new(MachineConfig::dgx_like(4));
        let cfg = PipelineConfig::tiny(fw, model).with_seed(11);
        Pipeline::new(machine, dataset(), cfg).unwrap()
    }

    #[test]
    fn wholegraph_epoch_runs_and_reports() {
        let mut p = pipeline(Framework::WholeGraph, ModelKind::GraphSage);
        let r = p.train_epoch(0);
        assert!(r.loss.is_finite() && r.loss > 0.0);
        assert_eq!(r.iterations, p.iters_per_epoch());
        assert_eq!(r.executed_iterations, r.iterations);
        assert!(r.epoch_time > SimTime::ZERO);
        assert!(r.sample_time > SimTime::ZERO);
        assert!(r.gather_time > SimTime::ZERO);
        assert!(r.train_time > SimTime::ZERO);
        // Serial occupancy: the busy/idle union covers the epoch exactly.
        let span = r.occupancy.busy + r.occupancy.idle;
        assert!((span.as_secs() - r.epoch_time.as_secs()).abs() < 1e-9);
        // WholeGraph keeps the GPU busy in every phase.
        assert!(
            r.occupancy.utilization() > 0.99,
            "{}",
            r.occupancy.utilization()
        );
    }

    #[test]
    fn all_frameworks_train_all_models_one_iteration() {
        for fw in Framework::ALL {
            for model in ModelKind::ALL {
                let mut p = pipeline(fw, model);
                let batch: Vec<NodeId> = p.dataset().train[..32].to_vec();
                let r = p.run_iteration(0, 0, &batch, true);
                assert!(r.loss.is_finite(), "{fw:?}/{model:?}");
                assert!(r.times.total() > SimTime::ZERO);
            }
        }
    }

    #[test]
    fn wholegraph_is_faster_than_dgl_than_pyg() {
        // The headline result at test scale: epoch time ordering. Pins
        // the storage tier off — the ordering is about DSM vs host
        // gathers, and must not inherit a CI matrix leg's
        // `WG_STORAGE_BUDGET_ROWS` (NVMe reads would slow WholeGraph
        // only; the host baselines never build the tier).
        let mut times = Vec::new();
        for fw in [Framework::WholeGraph, Framework::Dgl, Framework::Pyg] {
            let machine = Machine::new(MachineConfig::dgx_like(4));
            let cfg = PipelineConfig::tiny(fw, ModelKind::GraphSage)
                .with_seed(11)
                .with_storage(0);
            let mut p = Pipeline::new(machine, dataset(), cfg).unwrap();
            let r = p.measure_epoch(0, 2);
            times.push((fw, r.epoch_time));
        }
        assert!(
            times[0].1 < times[1].1,
            "WG {} !< DGL {}",
            times[0].1,
            times[1].1
        );
        assert!(
            times[1].1 < times[2].1,
            "DGL {} !< PyG {}",
            times[1].1,
            times[2].1
        );
    }

    /// A paper-shaped (but test-sized) pipeline: 8 GPUs, realistic batch
    /// and fanout so the bottleneck asymmetries of Figures 9/12 are
    /// visible (at toy scale, kernel-launch overheads dominate instead).
    /// Storage is pinned off: these tests assert the in-memory phase
    /// shapes and must not inherit a CI leg's `WG_STORAGE_BUDGET_ROWS`.
    fn paper_ish_pipeline(fw: Framework, model: ModelKind) -> Pipeline {
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            300,
            7,
        ));
        let machine = Machine::new(MachineConfig::dgx_like(8));
        let cfg = PipelineConfig {
            framework: fw,
            model,
            hidden: 64,
            num_layers: 2,
            heads: 2,
            fanouts: vec![15, 15],
            batch_size: 256,
            dropout: 0.0,
            lr: 1e-2,
            seed: 5,
            provider_override: None,
            feature_placement: FeaturePlacement::DeviceP2p,
            exec: ExecMode::Serial,
            cache: None,
            storage: Some(StorageConfig { budget_rows: 0 }),
        };
        Pipeline::new(machine, dataset, cfg).unwrap()
    }

    #[test]
    fn dgl_bottleneck_is_sampling_and_gather() {
        // Figure 9: "for PyG and DGL, the sampling and gathering features
        // take most part of the time".
        let mut p = paper_ish_pipeline(Framework::Dgl, ModelKind::GraphSage);
        let r = p.measure_epoch(0, 2);
        assert!(
            r.sample_time + r.gather_time > r.train_time,
            "sample {} + gather {} vs train {}",
            r.sample_time,
            r.gather_time,
            r.train_time
        );
        // For WholeGraph the input phases are *much smaller* than training.
        let mut p = paper_ish_pipeline(Framework::WholeGraph, ModelKind::GraphSage);
        let r = p.measure_epoch(0, 2);
        assert!(
            r.sample_time + r.gather_time < r.train_time,
            "WG: sample {} + gather {} vs train {}",
            r.sample_time,
            r.gather_time,
            r.train_time
        );
    }

    #[test]
    fn gpu_utilization_high_for_wholegraph_low_for_host_pipelines() {
        // Figure 12's shape.
        let mut wg = paper_ish_pipeline(Framework::WholeGraph, ModelKind::GraphSage);
        wg.measure_epoch(0, 2);
        let end = wg.machine().now(wg_sim::DeviceId::Gpu(0));
        let u_wg = wg
            .machine()
            .trace(wg_sim::DeviceId::Gpu(0))
            .utilization(SimTime::ZERO, end);
        let mut dgl = paper_ish_pipeline(Framework::Dgl, ModelKind::GraphSage);
        dgl.measure_epoch(0, 2);
        let end = dgl.machine().now(wg_sim::DeviceId::Gpu(0));
        let u_dgl = dgl
            .machine()
            .trace(wg_sim::DeviceId::Gpu(0))
            .utilization(SimTime::ZERO, end);
        assert!(u_wg > 0.95, "WholeGraph utilization {u_wg}");
        assert!(u_dgl < 0.5, "DGL utilization {u_dgl}");
    }

    #[test]
    fn overlapped_executor_matches_serial_numerics_and_is_not_slower() {
        // The executor contract: same iterations, same numerics, shorter
        // (or equal) schedule. The host pipeline has big input phases and
        // the small batch gives the epoch several waves, so the overlap
        // win must be strict.
        let run = |exec: ExecMode| {
            let machine = Machine::new(MachineConfig::dgx_like(2));
            let mut cfg = PipelineConfig::tiny(Framework::Dgl, ModelKind::GraphSage)
                .with_seed(11)
                .with_exec(exec);
            cfg.batch_size = 32;
            let mut p = Pipeline::new(machine, dataset(), cfg).unwrap();
            let waves = p
                .iters_per_epoch()
                .div_ceil(p.machine().num_gpus() as usize);
            assert!(
                waves >= 2,
                "need >= 2 waves for a strict overlap win, got {waves}"
            );
            p.measure_epoch(0, 2)
        };
        let serial = run(ExecMode::Serial);
        let overlapped = run(ExecMode::Overlapped);
        assert_eq!(serial.loss.to_bits(), overlapped.loss.to_bits());
        assert_eq!(serial.train_accuracy, overlapped.train_accuracy);
        assert_eq!(serial.sample_time, overlapped.sample_time);
        assert!(
            overlapped.epoch_time < serial.epoch_time,
            "overlapped {} !< serial {}",
            overlapped.epoch_time,
            serial.epoch_time
        );
        // The occupancy accounting still covers the (shorter) epoch span.
        let span = overlapped.occupancy.busy + overlapped.occupancy.idle;
        assert!((span.as_secs() - overlapped.epoch_time.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn losses_match_across_frameworks_with_same_seed() {
        // Table III / Figure 7: same seeds → same sub-graphs → (numerically
        // near-)identical training. Dropout is 0 in the tiny config, so
        // only unique-order float summation differences remain.
        let mut wg = pipeline(Framework::WholeGraph, ModelKind::Gcn);
        let mut dgl = pipeline(Framework::Dgl, ModelKind::Gcn);
        let batch: Vec<NodeId> = wg.dataset().train[..64].to_vec();
        let a = wg.run_iteration(0, 0, &batch, true);
        let b = dgl.run_iteration(0, 0, &batch, true);
        assert!(
            (a.loss - b.loss).abs() < 1e-3 * (1.0 + a.loss.abs()),
            "losses diverge: {} vs {}",
            a.loss,
            b.loss
        );
        assert_eq!(a.sample_stats.edges_sampled, b.sample_stats.edges_sampled);
    }

    #[test]
    fn measure_epoch_extrapolates() {
        let mut p = pipeline(Framework::WholeGraph, ModelKind::Gcn);
        let r = p.measure_epoch(0, 1);
        assert_eq!(r.executed_iterations, 1);
        assert!(r.iterations >= 1);
    }

    #[test]
    fn evaluate_returns_sane_accuracy() {
        let mut p = pipeline(Framework::WholeGraph, ModelKind::GraphSage);
        let val = p.dataset().val.clone();
        let acc = p.evaluate(&val);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn inference_predicts_every_node_without_comm() {
        let mut p = pipeline(Framework::WholeGraph, ModelKind::GraphSage);
        let nodes: Vec<NodeId> = (0..150u64).collect();
        let (preds, report) = p.infer(&nodes);
        assert_eq!(preds.len(), 150);
        assert!(preds
            .iter()
            .all(|&c| (c as usize) < p.dataset().num_classes));
        assert_eq!(report.nodes, 150);
        assert_eq!(report.batches, 150usize.div_ceil(p.config().batch_size));
        assert!(report.total_time() > SimTime::ZERO);
        // Serial inference wall time is the plain phase sum.
        assert_eq!(report.wall_time, report.total_time());
        assert!(report.throughput() > 0.0);
        // Inference is cheaper per node than training (no backward, no
        // AllReduce).
        let batch: Vec<NodeId> = nodes[..64].to_vec();
        let it = p.run_iteration(0, 0, &batch, true);
        let train_total = it.times.total();
        let per_batch_infer = report.total_time() / report.batches as f64;
        assert!(
            per_batch_infer < train_total,
            "infer {per_batch_infer} !< train {train_total}"
        );
    }

    #[test]
    fn inference_is_deterministic() {
        let mut p = pipeline(Framework::WholeGraph, ModelKind::Gcn);
        let nodes: Vec<NodeId> = (0..80u64).collect();
        let (a, _) = p.infer(&nodes);
        let (b, _) = p.infer(&nodes);
        assert_eq!(a, b);
    }

    #[test]
    fn overlapped_inference_same_predictions_shorter_wall_time() {
        let nodes: Vec<NodeId> = (0..200u64).collect();
        let mut serial = pipeline(Framework::Dgl, ModelKind::Gcn);
        let (a, ra) = serial.infer(&nodes);
        let machine = Machine::new(MachineConfig::dgx_like(4));
        let cfg = PipelineConfig::tiny(Framework::Dgl, ModelKind::Gcn)
            .with_seed(11)
            .with_exec(ExecMode::Overlapped);
        let mut overlapped = Pipeline::new(machine, dataset(), cfg).unwrap();
        let (b, rb) = overlapped.infer(&nodes);
        assert_eq!(a, b);
        assert_eq!(ra.total_time(), rb.total_time());
        assert!(
            rb.wall_time < ra.wall_time,
            "overlapped {} !< serial {}",
            rb.wall_time,
            ra.wall_time
        );
        assert!(rb.throughput() > ra.throughput());
    }

    #[test]
    fn feature_placements_compute_identically_but_cost_differently() {
        // The storage-mode ablation: P2P, UM and host zero-copy move the
        // same bytes and train the same model; only the simulated gather
        // time changes, ordered P2P < HostMapped < UM.
        let mut results = Vec::new();
        for placement in [
            FeaturePlacement::DeviceP2p,
            FeaturePlacement::HostMapped,
            FeaturePlacement::DeviceUnifiedMemory,
        ] {
            let machine = Machine::new(MachineConfig::dgx_like(4));
            let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn)
                .with_seed(44)
                .with_feature_placement(placement)
                .with_storage(0);
            let mut p = Pipeline::new(machine, dataset(), cfg).unwrap();
            let batch: Vec<NodeId> = p.dataset().train[..48].to_vec();
            let r = p.run_iteration(0, 0, &batch, false);
            results.push((placement, r));
        }
        let base_loss = results[0].1.loss;
        for (pl, r) in &results {
            assert!(
                (r.loss - base_loss).abs() < 1e-3 * (1.0 + base_loss.abs()),
                "{pl:?} loss {} vs {base_loss}",
                r.loss
            );
        }
        let p2p = results[0].1.times.gather;
        let mapped = results[1].1.times.gather;
        let um = results[2].1.times.gather;
        assert!(p2p < mapped, "P2P {p2p} !< host-mapped {mapped}");
        assert!(mapped < um, "host-mapped {mapped} !< UM {um}");
    }

    /// Train two epochs with an explicitly pinned cache config (`None`
    /// pins the cache *off* — these tests must not inherit a CI matrix
    /// leg's `WG_CACHE_ROWS`) and return the second epoch's report: the
    /// small batch gives every rank several iterations, so epoch 0 warms
    /// a CLOCK cache and epoch 1 measures it in steady state.
    fn epoch_with_cache(cache: Option<(usize, CacheMode)>) -> EpochReport {
        let machine = Machine::new(MachineConfig::dgx_like(4));
        let (rows, mode) = cache.unwrap_or((0, CacheMode::Static));
        // Storage pinned off too: the cache cost deltas below compare
        // against pure DSM gathers.
        let mut cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
            .with_seed(11)
            .with_cache(rows, mode)
            .with_storage(0);
        cfg.batch_size = 16;
        let mut p = Pipeline::new(machine, dataset(), cfg).unwrap();
        p.train_epoch(0);
        p.train_epoch(1)
    }

    #[test]
    fn epoch_numerics_are_bit_identical_with_any_cache() {
        // The cache contract at pipeline scope: every mode × size
        // (disabled, small, ≥ working set) trains to bit-identical loss
        // and accuracy — caching moves cost, never values.
        let base = epoch_with_cache(None);
        for mode in [CacheMode::Static, CacheMode::Clock] {
            for rows in [0usize, 64, 1_000_000] {
                let r = epoch_with_cache(Some((rows, mode)));
                assert_eq!(
                    base.loss.to_bits(),
                    r.loss.to_bits(),
                    "{mode:?} cache of {rows} rows changed the loss"
                );
                assert_eq!(base.train_accuracy, r.train_accuracy, "{mode:?}/{rows}");
            }
        }
    }

    #[test]
    fn cache_hits_cut_gather_and_epoch_time() {
        let base = epoch_with_cache(None);
        for mode in [CacheMode::Static, CacheMode::Clock] {
            let cached = epoch_with_cache(Some((512, mode)));
            assert!(
                cached.gather_time < base.gather_time,
                "{mode:?}: cached gather {} !< uncached {}",
                cached.gather_time,
                base.gather_time
            );
            assert!(
                cached.epoch_time < base.epoch_time,
                "{mode:?}: cached epoch {} !< uncached {}",
                cached.epoch_time,
                base.epoch_time
            );
        }
        // A zero-capacity cache is cost-identical to no cache at all.
        let off = epoch_with_cache(Some((0, CacheMode::Clock)));
        assert_eq!(off.gather_time, base.gather_time);
        assert_eq!(off.epoch_time, base.epoch_time);
    }

    /// Train two epochs with an explicitly pinned storage budget (cache
    /// pinned off so the deltas below isolate the disk tier) and return
    /// the second epoch's report.
    fn epoch_with_storage(budget_rows: usize) -> EpochReport {
        let machine = Machine::new(MachineConfig::dgx_like(4));
        let mut cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
            .with_seed(11)
            .with_cache(0, CacheMode::Static)
            .with_storage(budget_rows);
        cfg.batch_size = 16;
        let mut p = Pipeline::new(machine, dataset(), cfg).unwrap();
        p.train_epoch(0);
        p.train_epoch(1)
    }

    #[test]
    fn epoch_numerics_are_bit_identical_through_the_disk_tier() {
        // The storage contract at pipeline scope: training through the
        // disk tier at any residency — nothing resident, a 25%-ish
        // budget, everything resident — produces bit-identical loss and
        // accuracy to the pure in-memory run. Values never move; only
        // the priced storage time does.
        let base = epoch_with_storage(0);
        assert_eq!(base.storage_time, SimTime::ZERO);
        for budget in [1usize, 400, usize::MAX] {
            let r = epoch_with_storage(budget);
            assert_eq!(
                base.loss.to_bits(),
                r.loss.to_bits(),
                "budget {budget} changed the loss"
            );
            assert_eq!(base.train_accuracy, r.train_accuracy, "budget {budget}");
        }
    }

    #[test]
    fn disk_tier_charges_storage_time_and_prefetch_overlaps_it() {
        let base = epoch_with_storage(0);
        // Partial residency: NVMe reads are priced into the gather, and
        // the double-buffered prefetch hides part of them behind compute
        // (strictly, since every wave trains for a nonzero time).
        let partial = epoch_with_storage(400);
        assert!(partial.storage_time > SimTime::ZERO);
        assert!(
            partial.gather_time > base.gather_time,
            "disk reads must slow the gather: {} vs {}",
            partial.gather_time,
            base.gather_time
        );
        assert!(
            partial.storage_exposed_time < partial.storage_time,
            "prefetch overlap must beat blocking: exposed {} vs blocking {}",
            partial.storage_exposed_time,
            partial.storage_time
        );
        // Full residency: the tier is built and the tiered path runs,
        // but zero rows are disk-served — cost-identical to in-memory.
        let full = epoch_with_storage(usize::MAX);
        assert_eq!(full.storage_time, SimTime::ZERO);
        assert_eq!(full.storage_exposed_time, SimTime::ZERO);
        assert_eq!(full.gather_time, base.gather_time);
        assert_eq!(full.epoch_time, base.epoch_time);
    }

    #[test]
    fn dsm_setup_time_only_for_wholegraph() {
        let wg = pipeline(Framework::WholeGraph, ModelKind::Gcn);
        let dgl = pipeline(Framework::Dgl, ModelKind::Gcn);
        assert!(wg.setup_time() > SimTime::ZERO);
        assert!(dgl.setup_time().is_zero());
    }
}
