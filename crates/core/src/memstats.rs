//! Per-GPU memory accounting by phase — Table IV.
//!
//! Graph structure and node features are registered by the store builders
//! (`wg_graph::MultiGpuGraph::build`); this module estimates and registers
//! the *training* footprint: parameters (+ gradients + Adam moments),
//! per-layer activations and their gradients, and the gathered input
//! feature batch.

use wg_gnn::cost::BlockShape;
use wg_gnn::GnnModel;
use wg_sim::memory::{AllocKind, OutOfMemory};
use wg_sim::Machine;

/// Estimate the per-GPU training-phase bytes for a model and a
/// representative mini-batch shape.
pub fn training_bytes_per_gpu(model: &GnnModel, shapes: &[BlockShape], feat_dim: usize) -> u64 {
    // Parameters: value + gradient + Adam m + Adam v.
    let params = model.params.param_bytes() * 4;
    // Activations: each layer holds its input and output feature matrices
    // plus gradients and workspace (~4 copies of the wider side).
    let mut activations = 0u64;
    for (l, s) in shapes.iter().rev().enumerate() {
        let in_dim = if l == 0 { feat_dim } else { model.cfg.hidden };
        let width = in_dim.max(model.cfg.hidden);
        activations += (s.num_src * width * 4) as u64 * 4;
    }
    // Gathered input features for the deepest frontier.
    let gathered = shapes
        .last()
        .map_or(0, |s| (s.num_src * feat_dim * 4) as u64);
    params + activations + gathered
}

/// Register the training footprint on every GPU of the machine.
pub fn register_training_memory(machine: &Machine, bytes_per_gpu: u64) -> Result<(), OutOfMemory> {
    let acct = machine.memory();
    for gpu in machine.gpus() {
        acct.alloc(gpu, AllocKind::Training, bytes_per_gpu)?;
    }
    Ok(())
}

/// One row of the Table IV report.
#[derive(Clone, Copy, Debug)]
pub struct MemoryRow {
    /// Phase label.
    pub kind: AllocKind,
    /// Measured bytes on GPU 0 (all GPUs are within padding of each
    /// other under hash partitioning).
    pub per_gpu_bytes: u64,
    /// Sum across all GPUs.
    pub total_bytes: u64,
}

/// Collect the per-phase memory rows from the machine's accounting.
pub fn memory_report(machine: &Machine) -> Vec<MemoryRow> {
    let acct = machine.memory();
    [
        AllocKind::GraphStructure,
        AllocKind::Features,
        AllocKind::Training,
    ]
    .into_iter()
    .map(|kind| {
        let rows = acct.gpu_usage_by(kind);
        let total: u64 = rows.iter().map(|(_, b)| b).sum();
        let per_gpu = rows.first().map_or(0, |(_, b)| *b);
        MemoryRow {
            kind,
            per_gpu_bytes: per_gpu,
            total_bytes: total,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use std::sync::Arc;
    use wg_gnn::ModelKind;
    use wg_graph::{DatasetKind, NodeId, SyntheticDataset};
    use wg_sim::{Machine, MachineConfig};

    #[test]
    fn table4_style_report_has_all_phases() {
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            2000,
            1,
        ));
        let machine = Machine::new(MachineConfig::dgx_like(4));
        let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage);
        let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();
        let batch: Vec<NodeId> =
            pipe.dataset().train[..32.min(pipe.dataset().train.len())].to_vec();
        let it = pipe.run_iteration(0, 0, &batch, true);
        let bytes = training_bytes_per_gpu(&pipe.model, &it.shapes, pipe.dataset().feature_dim);
        assert!(bytes > 0);
        register_training_memory(pipe.machine(), bytes).unwrap();
        let report = memory_report(pipe.machine());
        assert_eq!(report.len(), 3);
        for row in &report {
            assert!(row.total_bytes > 0, "{:?} has zero bytes", row.kind);
            assert!(row.per_gpu_bytes <= row.total_bytes);
        }
        // Structure + features are spread across GPUs: per-GPU share is
        // well below the total.
        let structure = &report[0];
        assert!(structure.per_gpu_bytes * 2 <= structure.total_bytes);
    }

    #[test]
    fn training_estimate_scales_with_batch() {
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            2000,
            2,
        ));
        let machine = Machine::new(MachineConfig::dgx_like(2));
        let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn);
        let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();
        let small: Vec<NodeId> = pipe.dataset().train[..8].to_vec();
        let large: Vec<NodeId> = pipe.dataset().train[..64].to_vec();
        let a = pipe.run_iteration(0, 0, &small, false);
        let b = pipe.run_iteration(0, 1, &large, false);
        let fa = training_bytes_per_gpu(&pipe.model, &a.shapes, pipe.dataset().feature_dim);
        let fb = training_bytes_per_gpu(&pipe.model, &b.shapes, pipe.dataset().feature_dim);
        assert!(fb > fa, "larger batch must need more memory ({fa} vs {fb})");
    }
}
