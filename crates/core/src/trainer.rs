//! Multi-epoch training with validation — the accuracy experiments
//! (Table III, Figure 7).

use wg_graph::NodeId;
use wg_sim::SimTime;

use crate::pipeline::{EpochReport, Pipeline};

/// Trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Epochs to train (the paper trains "about 24 epochs" for Table III).
    pub epochs: u64,
    /// Evaluate on the validation split every `eval_every` epochs
    /// (0 disables periodic evaluation).
    pub eval_every: u64,
    /// Early stopping: end training when validation accuracy has not
    /// improved for this many consecutive evaluations (`None` disables;
    /// requires `eval_every > 0`).
    pub patience: Option<u64>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 24,
            eval_every: 1,
            patience: None,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Per-epoch reports.
    pub epochs: Vec<EpochReport>,
    /// `(epoch, validation_accuracy)` at each evaluation point —
    /// the Figure 7 curve.
    pub val_curve: Vec<(u64, f64)>,
    /// Final validation accuracy.
    pub val_accuracy: f64,
    /// Final test accuracy.
    pub test_accuracy: f64,
    /// Total simulated training time.
    pub total_time: SimTime,
}

impl TrainOutcome {
    /// Mean GPU-0 utilization across the trained epochs, from each
    /// epoch's busy/idle occupancy accounting (union busy over the epoch
    /// span, so overlapped schedules never exceed 1.0).
    pub fn mean_utilization(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs
            .iter()
            .map(|r| r.occupancy.utilization())
            .sum::<f64>()
            / self.epochs.len() as f64
    }
}

/// Drives a [`Pipeline`] through epochs with periodic evaluation.
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// Trainer with the given configuration.
    pub fn new(cfg: TrainerConfig) -> Self {
        Trainer { cfg }
    }

    /// Train to completion (or early stop), evaluating on the dataset's
    /// splits.
    pub fn run(&self, pipe: &mut Pipeline) -> TrainOutcome {
        let mut epochs = Vec::with_capacity(self.cfg.epochs as usize);
        let mut val_curve = Vec::new();
        let val: Vec<NodeId> = pipe.dataset().val.clone();
        let test: Vec<NodeId> = pipe.dataset().test.clone();
        let mut best = f64::NEG_INFINITY;
        let mut since_best = 0u64;
        for e in 0..self.cfg.epochs {
            let report = pipe.train_epoch(e);
            epochs.push(report);
            if self.cfg.eval_every > 0 && (e + 1) % self.cfg.eval_every == 0 {
                let acc = pipe.evaluate(&val);
                val_curve.push((e, acc));
                if acc > best {
                    best = acc;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if let Some(p) = self.cfg.patience {
                        if since_best >= p {
                            break;
                        }
                    }
                }
            }
        }
        let val_accuracy = pipe.evaluate(&val);
        let test_accuracy = pipe.evaluate(&test);
        let total_time = epochs.iter().map(|r| r.epoch_time).sum();
        TrainOutcome {
            epochs,
            val_curve,
            val_accuracy,
            test_accuracy,
            total_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use crate::pipeline::PipelineConfig;
    use std::sync::Arc;
    use wg_gnn::ModelKind;
    use wg_graph::{DatasetKind, SyntheticDataset};
    use wg_sim::{Machine, MachineConfig};

    fn learnable_pipeline(fw: Framework) -> Pipeline {
        // A dense, strongly homophilous SBM stand-in the tiny model can
        // learn quickly.
        let dataset = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            1200,
            3,
        ));
        let machine = Machine::new(MachineConfig::dgx_like(4));
        let cfg = PipelineConfig::tiny(fw, ModelKind::GraphSage).with_seed(3);
        Pipeline::new(machine, dataset, cfg).unwrap()
    }

    #[test]
    fn training_learns_the_sbm_classes() {
        let mut pipe = learnable_pipeline(Framework::WholeGraph);
        let out = Trainer::new(TrainerConfig {
            epochs: 6,
            eval_every: 2,
            patience: None,
        })
        .run(&mut pipe);
        assert_eq!(out.epochs.len(), 6);
        assert_eq!(out.val_curve.len(), 3);
        // 16-class problem: random guessing is ~6%; the model must do far
        // better after a few epochs.
        assert!(
            out.val_accuracy > 0.5,
            "validation accuracy {} too low",
            out.val_accuracy
        );
        assert!(
            out.test_accuracy > 0.5,
            "test accuracy {}",
            out.test_accuracy
        );
        // Loss decreases epoch over epoch (first vs last).
        assert!(out.epochs.last().unwrap().loss < out.epochs[0].loss);
        assert!(out.total_time > wg_sim::SimTime::ZERO);
        // WholeGraph keeps the GPU busy in every phase, so the occupancy
        // accounting must report near-full utilization.
        assert!(out.mean_utilization() > 0.99, "{}", out.mean_utilization());
    }

    #[test]
    fn early_stopping_halts_training() {
        // The tiny SBM saturates quickly; with patience 1, training must
        // stop well before the (absurd) 50-epoch budget.
        let mut pipe = learnable_pipeline(Framework::WholeGraph);
        let out = Trainer::new(TrainerConfig {
            epochs: 50,
            eval_every: 1,
            patience: Some(1),
        })
        .run(&mut pipe);
        assert!(out.epochs.len() < 50, "ran all {} epochs", out.epochs.len());
        // Accuracy is still good — stopping happened at the plateau.
        assert!(
            out.val_accuracy > 0.5,
            "stopped too early: {}",
            out.val_accuracy
        );
    }

    #[test]
    fn accuracy_parity_between_wholegraph_and_dgl() {
        // Table III: "PyG, DGL and WholeGraph can achieve almost the same
        // validation and test accuracy".
        let mut wg = learnable_pipeline(Framework::WholeGraph);
        let mut dgl = learnable_pipeline(Framework::Dgl);
        let t = Trainer::new(TrainerConfig {
            epochs: 4,
            eval_every: 0,
            patience: None,
        });
        let a = t.run(&mut wg);
        let b = t.run(&mut dgl);
        assert!(
            (a.val_accuracy - b.val_accuracy).abs() < 0.06,
            "val accuracy diverged: {} vs {}",
            a.val_accuracy,
            b.val_accuracy
        );
    }
}
