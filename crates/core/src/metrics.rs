//! Classification metrics beyond plain accuracy.
//!
//! OGB leaderboards report accuracy, but a library user evaluating on
//! imbalanced label sets (like the 1%-labeled KONECT graphs) needs the
//! confusion matrix and macro-averaged scores too.

/// A `C × C` confusion matrix: `counts[true][pred]`.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    counts: Vec<u64>,
    classes: usize,
}

impl ConfusionMatrix {
    /// Empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0);
        ConfusionMatrix {
            counts: vec![0; classes * classes],
            classes,
        }
    }

    /// Build from paired label slices.
    pub fn from_pairs(classes: usize, truth: &[u32], pred: &[u32]) -> Self {
        assert_eq!(truth.len(), pred.len());
        let mut m = Self::new(classes);
        for (&t, &p) in truth.iter().zip(pred) {
            m.record(t, p);
        }
        m
    }

    /// Record one observation.
    pub fn record(&mut self, truth: u32, pred: u32) {
        assert!((truth as usize) < self.classes && (pred as usize) < self.classes);
        self.counts[truth as usize * self.classes + pred as usize] += 1;
    }

    /// Count for `(truth, pred)`.
    pub fn get(&self, truth: u32, pred: u32) -> u64 {
        self.counts[truth as usize * self.classes + pred as usize]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Micro accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes)
            .map(|c| self.counts[c * self.classes + c])
            .sum();
        correct as f64 / self.total().max(1) as f64
    }

    /// Per-class precision (None when the class was never predicted).
    pub fn precision(&self, class: u32) -> Option<f64> {
        let c = class as usize;
        let predicted: u64 = (0..self.classes)
            .map(|t| self.counts[t * self.classes + c])
            .sum();
        if predicted == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / predicted as f64)
        }
    }

    /// Per-class recall (None when the class never occurs).
    pub fn recall(&self, class: u32) -> Option<f64> {
        let c = class as usize;
        let actual: u64 = self.counts[c * self.classes..(c + 1) * self.classes]
            .iter()
            .sum();
        if actual == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / actual as f64)
        }
    }

    /// Per-class F1 (None when undefined).
    pub fn f1(&self, class: u32) -> Option<f64> {
        let p = self.precision(class)?;
        let r = self.recall(class)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Macro-F1 over the classes that occur (absent classes are skipped,
    /// as scikit-learn does with zero-support labels).
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in 0..self.classes as u32 {
            if self.recall(c).is_some() {
                sum += self.f1(c).unwrap_or(0.0);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_pairs(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn known_confusion() {
        // truth:  0 0 1 1
        // pred:   0 1 1 1
        let m = ConfusionMatrix::from_pairs(2, &[0, 0, 1, 1], &[0, 1, 1, 1]);
        assert_eq!(m.accuracy(), 0.75);
        assert_eq!(m.precision(0), Some(1.0)); // predicted 0 once, correct
        assert_eq!(m.recall(0), Some(0.5));
        assert!((m.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall(1), Some(1.0));
        let f1_0 = 2.0 * 1.0 * 0.5 / 1.5;
        let f1_1 = 2.0 * (2.0 / 3.0) * 1.0 / (2.0 / 3.0 + 1.0);
        assert!((m.macro_f1() - (f1_0 + f1_1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_is_skipped_in_macro_f1() {
        // Class 2 never occurs and is never predicted.
        let m = ConfusionMatrix::from_pairs(3, &[0, 1], &[0, 1]);
        assert_eq!(m.recall(2), None);
        assert_eq!(m.precision(2), None);
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn never_predicted_class_has_no_precision() {
        let m = ConfusionMatrix::from_pairs(2, &[1, 1], &[0, 0]);
        assert_eq!(m.precision(1), None);
        assert_eq!(m.recall(1), Some(0.0));
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut m = ConfusionMatrix::new(2);
        m.record(2, 0);
    }
}
