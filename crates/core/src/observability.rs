//! Merged host/sim trace export (the Figure 12 evidence, machine-readable).
//!
//! The workspace records two kinds of timing:
//!
//! * **host wall-clock spans** — `wg-trace` spans recorded by the real
//!   code (`pipeline.sample`, `mem.gather`, …) on every participating
//!   thread, and
//! * **simulated device intervals** — the per-GPU busy/idle phase
//!   intervals the executors charge into [`wg_sim::UtilizationTrace`]s
//!   (what the paper's utilization timeline plots).
//!
//! [`chrome_trace_json`] merges both into one Chrome trace-event JSON:
//! process 1 carries one track per host thread (wall-clock microseconds),
//! process 2 one track per simulated device (simulated microseconds).
//! The two processes are separate time bases by construction — the
//! process names say so — but land in a single file that
//! `chrome://tracing` / Perfetto load directly, which is what makes the
//! per-stage host split and the simulated starvation dips inspectable
//! side by side.

use wg_sim::{DeviceId, Machine};
use wg_trace::chrome::ChromeTrace;

/// Chrome `pid` for host wall-clock thread tracks.
pub const HOST_PID: u32 = 1;
/// Chrome `pid` for simulated device tracks.
pub const SIM_PID: u32 = 2;

/// Drain the host span rings and merge them with `machine`'s recorded
/// device traces into Chrome trace-event JSON.
///
/// Draining consumes the host spans: a second call exports only spans
/// recorded after the first. The machine's traces are read, not cleared
/// (reset them with [`Machine::reset_time`] between experiments).
pub fn chrome_trace_json(machine: &Machine) -> String {
    let mut out = ChromeTrace::new();
    add_host_tracks(&mut out);
    add_machine_tracks(&mut out, SIM_PID, "simulated devices (sim time)", machine);
    out.finish()
}

/// Multi-node variant of [`chrome_trace_json`]: one Chrome process per
/// machine node (`pid = SIM_PID + k`, named `node<k> devices (sim
/// time)`), so Perfetto shows each node's per-GPU comm/compute occupancy
/// as its own swimlane group — the per-phase evidence behind the executed
/// multi-node sweep.
pub fn cluster_chrome_trace_json(machines: &[&Machine]) -> String {
    let mut out = ChromeTrace::new();
    add_host_tracks(&mut out);
    for (k, machine) in machines.iter().enumerate() {
        add_machine_tracks(
            &mut out,
            SIM_PID + k as u32,
            &format!("node{k} devices (sim time)"),
            machine,
        );
    }
    out.finish()
}

fn add_host_tracks(out: &mut ChromeTrace) {
    out.process_name(HOST_PID, "host threads (wall-clock)");
    for thread in wg_trace::drain() {
        if !thread.events.is_empty() || thread.dropped > 0 {
            out.add_host_thread(HOST_PID, &thread);
        }
    }
}

fn add_machine_tracks(out: &mut ChromeTrace, pid: u32, name: &str, machine: &Machine) {
    out.process_name(pid, name);
    let mut devices: Vec<DeviceId> = machine.gpus();
    devices.push(DeviceId::Cpu);
    for (tid, dev) in devices.into_iter().enumerate() {
        let trace = machine.trace(dev);
        if !trace.events().is_empty() {
            out.thread_name(pid, tid as u32, &dev.to_string());
            trace.chrome_events(out, pid, tid as u32);
        }
    }
}

/// [`chrome_trace_json`] straight to a file.
pub fn write_chrome_trace(path: &str, machine: &Machine) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(machine))
}

/// [`cluster_chrome_trace_json`] straight to a file.
pub fn write_cluster_chrome_trace(path: &str, machines: &[&Machine]) -> std::io::Result<()> {
    std::fs::write(path, cluster_chrome_trace_json(machines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_sim::trace::Phase;
    use wg_sim::{MachineConfig, SimTime};

    #[test]
    fn export_merges_host_and_sim_tracks() {
        let mut machine = Machine::new(MachineConfig::dgx_like(2));
        machine.run(
            DeviceId::Gpu(0),
            Phase::Training,
            true,
            SimTime::from_millis(2.0),
        );
        machine.run(
            DeviceId::Gpu(1),
            Phase::Idle,
            false,
            SimTime::from_millis(2.0),
        );
        wg_trace::enable_spans();
        {
            let _g = wg_trace::span!("test.host.span");
        }
        wg_trace::disable_all();
        let json = chrome_trace_json(&machine);
        // Both processes are present and labeled…
        assert!(json.contains("host threads (wall-clock)"));
        assert!(json.contains("simulated devices (sim time)"));
        // …the host span and both device tracks made it in…
        assert!(json.contains("test.host.span"));
        assert!(json.contains("\"GPU0\""));
        assert!(json.contains("\"GPU1\""));
        // …with phase labels and the busy flag as an arg.
        assert!(json.contains("\"training\""));
        assert!(json.contains("\"busy\":true"));
        assert!(json.contains("\"busy\":false"));
    }

    #[test]
    fn cluster_export_gives_each_node_its_own_process() {
        let mut machines: Vec<Machine> = (0..3)
            .map(|_| Machine::new(MachineConfig::dgx_like(2)))
            .collect();
        for (k, m) in machines.iter_mut().enumerate() {
            m.run(
                DeviceId::Gpu(0),
                Phase::Training,
                true,
                SimTime::from_millis(1.0 + k as f64),
            );
        }
        let refs: Vec<&Machine> = machines.iter().collect();
        let json = cluster_chrome_trace_json(&refs);
        for k in 0..3 {
            assert!(
                json.contains(&format!("node{k} devices (sim time)")),
                "missing node {k} process"
            );
            assert!(json.contains(&format!("\"pid\":{}", SIM_PID + k)));
        }
        // Device tracks live under per-node pids, not the single-machine
        // one's name.
        assert!(!json.contains("simulated devices (sim time)"));
    }
}
