//! Trainable node embeddings in distributed shared memory.
//!
//! The paper stores *fixed* node features in WholeMemory; the natural
//! extension (shipped by the later open-source WholeGraph, and implied by
//! the paper's "node or edge features" framing) is a **trainable
//! embedding table**: rows live across the GPUs exactly like features,
//! mini-batches gather the rows they touch through the one-kernel global
//! gather, and after backward the *sparse* per-row gradients are scattered
//! back with an in-place optimizer update — no dense parameter copy, no
//! AllReduce (each row has exactly one home GPU).
//!
//! The optimizer is row-wise Adagrad (the standard choice for embedding
//! tables): `state += g²; w -= lr · g / (√state + ε)`.

use rand::prelude::*;
use rand::rngs::SmallRng;

use wg_sim::cost::AccessMode;
use wg_sim::device::DeviceSpec;
use wg_sim::{CostModel, SimTime};

use crate::gather::{global_gather, GatherStats};
use crate::handle::WholeMemory;

/// A distributed, trainable embedding matrix.
pub struct EmbeddingTable {
    weights: WholeMemory<f32>,
    /// Adagrad squared-gradient accumulators, same partitioning.
    state: WholeMemory<f32>,
    dim: usize,
}

impl EmbeddingTable {
    /// Allocate a `rows × dim` table across `ranks` GPUs, initialized
    /// N(0, 0.1)-ish via Box–Muller.
    pub fn new(model: &CostModel, ranks: u32, rows: usize, dim: usize, seed: u64) -> Self {
        let weights = WholeMemory::<f32>::allocate(model, ranks, rows, dim, AccessMode::PeerAccess);
        let state = WholeMemory::<f32>::allocate(model, ranks, rows, dim, AccessMode::PeerAccess);
        weights.init_rows(|row, out| {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (row as u64).wrapping_mul(0x9e3779b97f4a7c15));
            for v in out.iter_mut() {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                *v = 0.1
                    * ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
            }
        });
        EmbeddingTable {
            weights,
            state,
            dim,
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.weights.rows()
    }

    /// Underlying weight storage (read access for tests/tools).
    pub fn weights(&self) -> &WholeMemory<f32> {
        &self.weights
    }

    /// Gather embedding rows into `out` (one-kernel global gather).
    pub fn gather(
        &self,
        rows: &[usize],
        out: &mut [f32],
        executing_rank: u32,
        model: &CostModel,
        spec: &DeviceSpec,
    ) -> GatherStats {
        global_gather(&self.weights, rows, out, executing_rank, model, spec)
    }

    /// Apply sparse Adagrad updates for `rows` (must be duplicate-free —
    /// AppendUnique's output order satisfies this) with per-row gradients
    /// `grads` (`rows.len() × dim`). Returns the simulated time of the
    /// scatter-update kernel (reads + writes both weight and state rows).
    pub fn apply_sparse_adagrad(
        &self,
        rows: &[usize],
        grads: &[f32],
        lr: f32,
        eps: f32,
        model: &CostModel,
        spec: &DeviceSpec,
    ) -> SimTime {
        assert_eq!(
            grads.len(),
            rows.len() * self.dim,
            "gradient shape mismatch"
        );
        debug_assert!(
            {
                let mut seen = std::collections::HashSet::new();
                rows.iter().all(|r| seen.insert(*r))
            },
            "rows passed to sparse update must be unique"
        );
        let dim = self.dim;
        // Group updates per home rank so region locks are taken once.
        let partition = self.weights.partition();
        let mut by_rank: Vec<Vec<(usize, &[f32])>> =
            (0..self.weights.ranks()).map(|_| Vec::new()).collect();
        for (i, &row) in rows.iter().enumerate() {
            let loc = partition.locate(row);
            by_rank[loc.device_rank as usize].push((loc.local_row, &grads[i * dim..(i + 1) * dim]));
        }
        for (rank, updates) in by_rank.iter().enumerate() {
            if updates.is_empty() {
                continue;
            }
            self.state.with_region_mut(rank as u32, |sregion| {
                self.weights.with_region_mut(rank as u32, |wregion| {
                    for (local, g) in updates {
                        let base = local * dim;
                        for j in 0..dim {
                            let gj = g[j];
                            let s = &mut sregion[base + j];
                            *s += gj * gj;
                            wregion[base + j] -= lr * gj / (s.sqrt() + eps);
                        }
                    }
                });
            });
        }
        // Kernel cost: each touched row moves 4 row-widths (read w, read
        // s, write w, write s) over the gather path.
        let row_bytes = dim * 4;
        model.dsm_gather_time(rows.len() as u64 * 4, row_bytes, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(rows: usize, dim: usize) -> (EmbeddingTable, CostModel, DeviceSpec) {
        let model = CostModel::dgx_a100();
        let table = EmbeddingTable::new(&model, 8, rows, dim, 42);
        (table, model, DeviceSpec::a100_40gb())
    }

    #[test]
    fn init_is_small_and_nonzero() {
        let (t, model, spec) = setup(100, 8);
        let rows: Vec<usize> = (0..100).collect();
        let mut out = vec![0.0f32; 100 * 8];
        t.gather(&rows, &mut out, 0, &model, &spec);
        let norm: f32 = out.iter().map(|v| v * v).sum::<f32>();
        assert!(norm > 0.0);
        assert!(out.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn adagrad_update_matches_scalar_reference() {
        let (t, model, spec) = setup(10, 4);
        let rows = vec![3usize, 7];
        let mut before = vec![0.0f32; 2 * 4];
        t.gather(&rows, &mut before, 0, &model, &spec);
        let grads = vec![0.5f32; 2 * 4];
        let (lr, eps) = (0.1, 1e-8);
        t.apply_sparse_adagrad(&rows, &grads, lr, eps, &model, &spec);
        let mut after = vec![0.0f32; 2 * 4];
        t.gather(&rows, &mut after, 0, &model, &spec);
        for i in 0..8 {
            let s = 0.5f32 * 0.5;
            let expect = before[i] - lr * 0.5 / (s.sqrt() + eps);
            assert!(
                (after[i] - expect).abs() < 1e-6,
                "elem {i}: {} vs {expect}",
                after[i]
            );
        }
        // Rows not updated stay put.
        let other = vec![0usize];
        let mut a = vec![0.0f32; 4];
        t.gather(&other, &mut a, 0, &model, &spec);
        let t2 = EmbeddingTable::new(&model, 8, 10, 4, 42);
        let mut b = vec![0.0f32; 4];
        t2.gather(&other, &mut b, 0, &model, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_updates_shrink_step_size() {
        // Adagrad: same gradient applied twice moves less the second time.
        let (t, model, spec) = setup(4, 2);
        let rows = vec![1usize];
        let grads = vec![1.0f32, 1.0];
        let read = |t: &EmbeddingTable| {
            let mut o = vec![0.0f32; 2];
            t.gather(&rows, &mut o, 0, &model, &spec);
            o
        };
        let w0 = read(&t);
        t.apply_sparse_adagrad(&rows, &grads, 0.1, 1e-8, &model, &spec);
        let w1 = read(&t);
        t.apply_sparse_adagrad(&rows, &grads, 0.1, 1e-8, &model, &spec);
        let w2 = read(&t);
        let step1 = (w0[0] - w1[0]).abs();
        let step2 = (w1[0] - w2[0]).abs();
        assert!(step2 < step1, "steps {step1} then {step2}");
    }

    #[test]
    fn embeddings_learn_a_regression_target() {
        // Minimize ||e_r - target_r||² over a handful of rows with sparse
        // updates; distance must collapse.
        let (t, model, spec) = setup(32, 4);
        let rows: Vec<usize> = (0..8).collect();
        let target: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut dist_start = None;
        for step in 0..300 {
            let mut cur = vec![0.0f32; 32];
            t.gather(&rows, &mut cur, 0, &model, &spec);
            let grads: Vec<f32> = cur
                .iter()
                .zip(&target)
                .map(|(c, g)| 2.0 * (c - g))
                .collect();
            let d: f32 = cur.iter().zip(&target).map(|(c, g)| (c - g).powi(2)).sum();
            if step == 0 {
                dist_start = Some(d);
            }
            t.apply_sparse_adagrad(&rows, &grads, 0.2, 1e-8, &model, &spec);
        }
        let mut cur = vec![0.0f32; 32];
        t.gather(&rows, &mut cur, 0, &model, &spec);
        let d: f32 = cur.iter().zip(&target).map(|(c, g)| (c - g).powi(2)).sum();
        assert!(
            d < 0.01 * dist_start.unwrap(),
            "distance {d} from {}",
            dist_start.unwrap()
        );
    }

    #[test]
    fn update_time_scales_with_rows() {
        let (t, model, spec) = setup(1000, 16);
        let few: Vec<usize> = (0..10).collect();
        let many: Vec<usize> = (0..500).collect();
        let tf = t.apply_sparse_adagrad(&few, &vec![0.0; 10 * 16], 0.1, 1e-8, &model, &spec);
        let tm = t.apply_sparse_adagrad(&many, &vec![0.0; 500 * 16], 0.1, 1e-8, &model, &spec);
        assert!(tm > tf);
    }
}
