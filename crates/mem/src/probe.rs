//! Microbenchmark probes behind Table I and Figure 8.
//!
//! * [`pointer_chase`] reproduces the paper's latency experiment (§II-B):
//!   a single thread walks a dependency chain of 100 K random addresses
//!   spread across the distributed allocation, so no latency can be hidden;
//!   the average per-access time is reported for UM and P2P modes.
//! * [`random_gather_bandwidth`] reproduces the Figure 8 experiment: each
//!   GPU gathers a large volume of randomly placed contiguous segments from
//!   a 128 GB distributed allocation, sweeping the segment size from 4 B to
//!   4 KB, and reports AlgoBW and BusBW.
//!
//! Both probes run the *real* access pattern over a proportionally scaled
//! array (we cannot allocate 128 GB here) while the latency/bandwidth models
//! are evaluated at the paper's logical sizes via
//! [`WholeMemory::set_logical_bytes`].

use rand::prelude::*;
use rand::rngs::SmallRng;

use wg_sim::cost::AccessMode;
use wg_sim::device::DeviceSpec;
use wg_sim::{CostModel, SimTime};

use crate::gather::global_gather;
use crate::handle::WholeMemory;

/// Result of a pointer-chase latency probe.
#[derive(Clone, Copy, Debug)]
pub struct ChaseReport {
    /// Number of dependent accesses performed.
    pub steps: usize,
    /// Average simulated latency per access.
    pub avg_latency: SimTime,
    /// Total simulated time of the chase.
    pub total_time: SimTime,
    /// Sum of visited indices — forces the real walk to happen and lets
    /// tests detect a broken chain.
    pub checksum: u64,
}

/// Walk a `steps`-long dependency chain through a distributed allocation.
///
/// * `logical_bytes` — the allocation size the latency model sees (Table I
///   sweeps 8–128 GB);
/// * `real_rows` — the scaled size of the actual in-memory array the chain
///   is embedded in;
/// * `mode` — [`AccessMode::PeerAccess`] or [`AccessMode::UnifiedMemory`].
///
/// As in the paper, "according to the value just visited ... the thread
/// determines the next memory access address", so accesses serialize and
/// the latency cannot be hidden.
pub fn pointer_chase(
    model: &CostModel,
    mode: AccessMode,
    logical_bytes: u64,
    real_rows: usize,
    steps: usize,
    seed: u64,
) -> ChaseReport {
    assert!(real_rows >= 2, "need at least two rows to chase");
    let ranks = model.topology.num_gpus;
    let mut wm = WholeMemory::<u64>::allocate(model, ranks, real_rows, 1, mode);
    wm.set_logical_bytes(logical_bytes);

    // Embed a single random cycle over all rows so the walk never
    // short-circuits: next[i] = cycle successor of i.
    let mut perm: Vec<usize> = (0..real_rows).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(seed));
    wm.init_rows(|_, _| {});
    for w in 0..real_rows {
        let from = perm[w];
        let to = perm[(w + 1) % real_rows];
        wm.write_row(from, &[to as u64]);
    }

    // The chase: every access really reads the array; every access is
    // charged the mode's dependent-load latency into a `logical_bytes`
    // sized distributed allocation (the Table I measurement is exactly
    // this blended average).
    let per_access = model.remote_access_latency(mode, logical_bytes);
    let mut at = perm[0];
    let mut checksum = 0u64;
    let mut next = [0u64; 1];
    for _ in 0..steps {
        wm.read_row(at, &mut next);
        checksum = checksum.wrapping_add(next[0]);
        at = next[0] as usize;
    }
    let total = per_access * steps as f64;
    ChaseReport {
        steps,
        avg_latency: if steps > 0 {
            total / steps as f64
        } else {
            SimTime::ZERO
        },
        total_time: total,
        checksum,
    }
}

/// One point of the Figure 8 bandwidth sweep.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthPoint {
    /// Contiguous segment size of each random read, bytes.
    pub segment_bytes: usize,
    /// Bandwidth seen by the algorithm, GB/s.
    pub algo_gbps: f64,
    /// Bandwidth seen by the NVLink bus, GB/s.
    pub bus_gbps: f64,
}

/// Measure random-read bandwidth at one segment size.
///
/// Logically each of the `ranks` GPUs gathers `logical_bytes_per_gpu`
/// (4 GB in the paper) of `segment_bytes`-sized segments from a
/// `logical_total_bytes` (128 GB) distributed allocation; the real run
/// executes a proportionally scaled copy so the code path (random segment
/// gather through the pointer table) is truly exercised.
#[allow(clippy::too_many_arguments)] // probe parameters mirror the paper experiment
pub fn random_gather_bandwidth(
    model: &CostModel,
    spec: &DeviceSpec,
    segment_bytes: usize,
    logical_total_bytes: u64,
    logical_bytes_per_gpu: u64,
    real_rows: usize,
    real_segments: usize,
    seed: u64,
) -> BandwidthPoint {
    assert!(
        segment_bytes >= 4,
        "segments below one element are not addressable"
    );
    let ranks = model.topology.num_gpus;
    let width = segment_bytes / 4; // f32 elements per segment
    let mut wm =
        WholeMemory::<f32>::allocate(model, ranks, real_rows, width, AccessMode::PeerAccess);
    wm.set_logical_bytes(logical_total_bytes);
    wm.init_rows(|row, out| {
        for (j, v) in out.iter_mut().enumerate() {
            *v = (row + j) as f32;
        }
    });

    // Real scaled gather — exercises the actual kernel.
    let mut rng = SmallRng::seed_from_u64(seed);
    let indices: Vec<usize> = (0..real_segments)
        .map(|_| rng.gen_range(0..real_rows))
        .collect();
    let mut out = vec![0.0f32; real_segments * width];
    let _ = global_gather(&wm, &indices, &mut out, 0, model, spec);

    // Bandwidth at the paper's logical volume.
    let logical_segments = logical_bytes_per_gpu / segment_bytes as u64;
    let t = model.dsm_gather_time(logical_segments, segment_bytes, spec);
    let algo = logical_bytes_per_gpu as f64 / t.as_secs() / 1e9;
    let n = ranks as f64;
    let bus = algo * (n - 1.0) / n;
    BandwidthPoint {
        segment_bytes,
        algo_gbps: algo,
        bus_gbps: bus,
    }
}

/// Run the full Figure 8 sweep (segment sizes 4 B → 4 KB, doubling).
pub fn bandwidth_sweep(model: &CostModel, spec: &DeviceSpec) -> Vec<BandwidthPoint> {
    const GB: u64 = 1 << 30;
    let mut points = Vec::new();
    let mut seg = 4usize;
    while seg <= 4096 {
        points.push(random_gather_bandwidth(
            model,
            spec,
            seg,
            128 * GB,
            4 * GB,
            1 << 16,
            1 << 14,
            42 + seg as u64,
        ));
        seg *= 2;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn chase_walks_a_full_cycle() {
        let model = CostModel::dgx_a100();
        let r = pointer_chase(&model, AccessMode::PeerAccess, 8 * GB, 64, 64, 9);
        // Visiting a full cycle of length 64 sums every index exactly once.
        assert_eq!(r.checksum, (0..64u64).sum::<u64>());
        assert_eq!(r.steps, 64);
    }

    #[test]
    fn chase_reproduces_table1_p2p_column() {
        let model = CostModel::dgx_a100();
        for (gb, us) in [
            (8u64, 1.35),
            (16, 1.37),
            (32, 1.43),
            (64, 1.51),
            (128, 1.56),
        ] {
            let r = pointer_chase(&model, AccessMode::PeerAccess, gb * GB, 1024, 2000, 1);
            assert!(
                (r.avg_latency.as_micros() - us).abs() < 0.05,
                "{gb} GB: {} vs paper {us} µs",
                r.avg_latency
            );
        }
    }

    #[test]
    fn chase_reproduces_table1_um_column() {
        let model = CostModel::dgx_a100();
        for (gb, us) in [
            (8u64, 20.8),
            (16, 29.6),
            (32, 32.5),
            (64, 35.3),
            (128, 35.8),
        ] {
            let r = pointer_chase(&model, AccessMode::UnifiedMemory, gb * GB, 1024, 2000, 1);
            assert!(
                (r.avg_latency.as_micros() - us).abs() < 1.5,
                "{gb} GB: {} vs paper {us} µs",
                r.avg_latency
            );
        }
    }

    #[test]
    fn sweep_reproduces_figure8_shape() {
        let model = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let pts = bandwidth_sweep(&model, &spec);
        assert_eq!(pts.len(), 11); // 4..4096 doubling
                                   // Monotone nondecreasing bus bandwidth.
        for w in pts.windows(2) {
            assert!(w[1].bus_gbps >= w[0].bus_gbps - 1e-9);
        }
        let at = |seg: usize| pts.iter().find(|p| p.segment_bytes == seg).unwrap();
        // ≈181 GB/s BusBW at 64 B (within model overheads).
        assert!(
            (at(64).bus_gbps - 181.0).abs() < 10.0,
            "{}",
            at(64).bus_gbps
        );
        // ≈230 GB/s from 128 B up; AlgoBW ≈ 260 GB/s.
        assert!(
            (at(512).bus_gbps - 230.0).abs() < 12.0,
            "{}",
            at(512).bus_gbps
        );
        assert!(
            (at(512).algo_gbps - 260.0).abs() < 15.0,
            "{}",
            at(512).algo_gbps
        );
        // Proportional regime below the knee.
        let ratio = at(32).bus_gbps / at(16).bus_gbps;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "sub-knee proportionality: {ratio}"
        );
    }
}
