//! Hotness-aware per-device feature cache over [`WholeMemory`].
//!
//! GNN feature accesses are heavily Zipf-skewed: a small set of
//! high-degree vertices appears in almost every sampled mini-batch, so a
//! per-device cache of hot rows converts most remote gathers into
//! local-HBM hits (PyTorch-Direct's GPU-centric access analysis and
//! FastSample's locality-aware feature handling both exploit the same
//! skew). Two modes:
//!
//! * [`CacheMode::Static`] — rank rows by a hotness score (degree or
//!   observed access frequency), pin the top-K into the cache at load
//!   time, and replicate that hot set to every device. Never evicts, so
//!   one shared store serves all devices.
//! * [`CacheMode::Clock`] — per-device caches that fill on miss with
//!   CLOCK (second-chance) eviction for streaming/serving traffic whose
//!   hot set drifts. Eviction decisions run **at plan time inside the
//!   sequential planning loop**, so they are identical at any worker
//!   count — determinism does not depend on the copy kernel's schedule.
//!
//! The cache changes *cost only, never values*: a hit copies the exact
//! bytes the owning region holds (placed there at build time or by a
//! planned insert reading the owning region), it is merely priced at
//! local-HBM bandwidth instead of NVLink by the gather path. The cache
//! assumes the feature store is immutable while it is live — a
//! `global_scatter` into cached rows must be followed by [`FeatureCache::clear`].
//!
//! Steady-state lookups are allocation-free: the row→slot map is a fixed
//! open-addressed table (linear probing, backward-shift deletion — no
//! tombstones) sized at build time, and every per-slot side array is
//! preallocated at capacity.

use crate::access::Element;
use crate::handle::WholeMemory;

/// Replacement policy of a [`FeatureCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheMode {
    /// Top-K hottest rows pinned at build time, replicated to every
    /// device; no eviction.
    Static,
    /// Fill-on-miss per-device caches with deterministic CLOCK
    /// (second-chance) eviction.
    Clock,
}

impl CacheMode {
    /// Parse a CLI/env spelling (`static` | `clock`).
    pub fn parse(s: &str) -> Option<CacheMode> {
        match s {
            "static" => Some(CacheMode::Static),
            "clock" => Some(CacheMode::Clock),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheMode::Static => "static",
            CacheMode::Clock => "clock",
        }
    }
}

/// Row value marking a free table bucket / free slot.
const EMPTY_ROW: usize = usize::MAX;

#[derive(Clone, Copy)]
struct TableEntry {
    row: usize,
    slot: u32,
}

/// One device's cache store: a `capacity × width` row array plus an
/// open-addressed row→slot lookup table and the CLOCK bookkeeping.
pub(crate) struct DeviceCache<T> {
    capacity: usize,
    /// Open-addressed lookup table, linear probing, power-of-two size.
    table: Vec<TableEntry>,
    mask: usize,
    hash_shift: u32,
    /// slot → global row currently cached there ([`EMPTY_ROW`] if free).
    slot_rows: Vec<usize>,
    /// Cached row values, `capacity × width`.
    pub(crate) data: Vec<T>,
    /// CLOCK reference bits (second chance).
    ref_bits: Vec<bool>,
    /// slot → id of the batch that last referenced it. A slot stamped
    /// with the current batch is never evicted: a hit planned earlier in
    /// the same batch still points at it, and the copy kernel runs after
    /// planning finishes.
    stamp: Vec<u64>,
    /// CLOCK hand.
    hand: usize,
    /// Occupied slots (grows monotonically to `capacity`).
    len: usize,
    /// Current batch id, advanced by [`begin_batch`](Self::begin_batch).
    batch: u64,
    /// Slots carrying the current batch's stamp. Once every slot is
    /// stamped, [`insert`](Self::insert) fails in O(1) instead of
    /// sweeping the whole ring per miss — on a miss-heavy stream whose
    /// working set dwarfs the cache, the sweep would otherwise cost
    /// O(misses × capacity) per batch for inserts that cannot succeed.
    stamped: usize,
}

impl<T: Element> DeviceCache<T> {
    fn new(capacity: usize, width: usize) -> Self {
        let table_len = (2 * capacity).next_power_of_two().max(2);
        DeviceCache {
            capacity,
            table: vec![
                TableEntry {
                    row: EMPTY_ROW,
                    slot: 0
                };
                table_len
            ],
            mask: table_len - 1,
            hash_shift: 64 - table_len.trailing_zeros(),
            slot_rows: vec![EMPTY_ROW; capacity],
            data: vec![T::default(); capacity * width],
            ref_bits: vec![false; capacity],
            stamp: vec![0; capacity],
            hand: 0,
            len: 0,
            batch: 0,
            stamped: 0,
        }
    }

    /// Fibonacci-multiplicative home bucket of `row` (high product bits —
    /// low bits of sequential row ids are far too regular for masking).
    #[inline]
    fn bucket(&self, row: usize) -> usize {
        (row.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.hash_shift) & self.mask
    }

    /// The slot caching `row`, if present. Allocation-free.
    #[inline]
    pub(crate) fn lookup(&self, row: usize) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mut i = self.bucket(row);
        loop {
            let e = self.table[i];
            if e.row == row {
                return Some(e.slot);
            }
            if e.row == EMPTY_ROW {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Record a reference to `slot` (second chance + same-batch pin).
    #[inline]
    pub(crate) fn touch(&mut self, slot: u32) {
        self.ref_bits[slot as usize] = true;
        self.stamp_current(slot as usize);
    }

    /// Stamp `slot` with the current batch, keeping the stamped-slot
    /// count exact (each slot counts once per batch).
    #[inline]
    fn stamp_current(&mut self, slot: usize) {
        if self.stamp[slot] != self.batch {
            self.stamp[slot] = self.batch;
            self.stamped += 1;
        }
    }

    /// Start a new planning batch (advances the eviction-protection
    /// stamp; `batch` increments monotonically, so no slot can already
    /// carry the new value).
    pub(crate) fn begin_batch(&mut self) {
        self.batch += 1;
        self.stamped = 0;
    }

    /// Claim a slot for `row`: a free slot while the cache is filling,
    /// then CLOCK eviction. Returns `None` when every slot is protected
    /// by the current batch (evicting one would corrupt a hit already
    /// planned against it). Updates the lookup table; the caller copies
    /// the row values into the slot at execute time.
    pub(crate) fn insert(&mut self, row: usize) -> Option<u32> {
        if self.capacity == 0 {
            return None;
        }
        let slot = if self.len < self.capacity {
            self.len += 1;
            self.len - 1
        } else {
            // Every slot already stamped by this batch → no victim can
            // exist; bail in O(1). State-identical to the failed sweep
            // below: the stamp check fires before the ref-bit clear, so
            // a sweep over all-stamped slots mutates nothing anyway.
            if self.stamped >= self.capacity {
                return None;
            }
            // Bounded two-revolution sweep: the first pass clears ref
            // bits, so the second must find a victim unless every slot
            // carries the current batch's stamp.
            let mut victim = None;
            for _ in 0..2 * self.capacity {
                let s = self.hand;
                self.hand = (self.hand + 1) % self.capacity;
                if self.stamp[s] == self.batch {
                    continue;
                }
                if self.ref_bits[s] {
                    self.ref_bits[s] = false;
                    continue;
                }
                victim = Some(s);
                break;
            }
            let s = victim?;
            self.table_remove(self.slot_rows[s]);
            s
        };
        self.slot_rows[slot] = row;
        self.ref_bits[slot] = true;
        self.stamp_current(slot);
        self.table_insert(row, slot as u32);
        Some(slot as u32)
    }

    fn table_insert(&mut self, row: usize, slot: u32) {
        let mut i = self.bucket(row);
        while self.table[i].row != EMPTY_ROW {
            i = (i + 1) & self.mask;
        }
        self.table[i] = TableEntry { row, slot };
    }

    /// Remove `row` with backward-shift deletion: every displaced entry
    /// after the hole moves back into it, so probe chains stay intact
    /// without tombstones and lookups stay O(cluster) forever.
    fn table_remove(&mut self, row: usize) {
        let mut i = self.bucket(row);
        while self.table[i].row != row {
            debug_assert_ne!(self.table[i].row, EMPTY_ROW, "removing absent row");
            i = (i + 1) & self.mask;
        }
        let mut j = i;
        loop {
            self.table[i] = TableEntry {
                row: EMPTY_ROW,
                slot: 0,
            };
            loop {
                j = (j + 1) & self.mask;
                if self.table[j].row == EMPTY_ROW {
                    return;
                }
                let home = self.bucket(self.table[j].row);
                // Entry j may fill the hole at i iff its home bucket is
                // not cyclically inside (i, j] — moving it then keeps it
                // reachable from its home by linear probing.
                let moves = if i <= j {
                    home <= i || home > j
                } else {
                    home <= i && home > j
                };
                if moves {
                    break;
                }
            }
            self.table[i] = self.table[j];
            i = j;
        }
    }

    /// Drop every cached row (the store mutated underneath us).
    fn clear(&mut self) {
        for e in &mut self.table {
            e.row = EMPTY_ROW;
        }
        self.slot_rows.fill(EMPTY_ROW);
        self.ref_bits.fill(false);
        self.stamp.fill(0);
        self.hand = 0;
        self.len = 0;
        // `batch` stays monotone, so zeroed stamps never read as current.
        self.stamped = 0;
    }

    /// Occupied slots.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The global row cached in `slot` (tests/debugging).
    #[cfg(test)]
    fn slot_row(&self, slot: u32) -> usize {
        self.slot_rows[slot as usize]
    }
}

/// A per-device feature cache over a [`WholeMemory`]. See the module docs
/// for the two modes and the determinism argument.
pub struct FeatureCache<T> {
    mode: CacheMode,
    capacity: usize,
    width: usize,
    /// One store per device in [`CacheMode::Clock`]; a single shared
    /// store in [`CacheMode::Static`] (every device pins the same top-K,
    /// so replicating the bytes would only multiply host memory — the
    /// *simulated* layout is still one copy per device).
    devices: Vec<DeviceCache<T>>,
}

impl<T: Element> FeatureCache<T> {
    /// Build a static cache: the `capacity` rows with the highest
    /// `hotness` score (ties broken by lower row id — fully
    /// deterministic) are copied out of `wm` and pinned. `hotness` is
    /// one score per global row: vertex degree at load time, or an
    /// observed access-frequency profile.
    pub fn new_static(wm: &WholeMemory<T>, hotness: &[u64], capacity: usize) -> Self {
        assert_eq!(
            hotness.len(),
            wm.rows(),
            "hotness scores must cover every row"
        );
        let capacity = capacity.min(wm.rows());
        let width = wm.width();
        let mut order: Vec<usize> = (0..wm.rows()).collect();
        order.sort_by(|&a, &b| hotness[b].cmp(&hotness[a]).then(a.cmp(&b)));
        order.truncate(capacity);
        let mut dc = DeviceCache::new(capacity, width);
        let mut buf = vec![T::default(); width];
        for &row in &order {
            let slot = dc.insert(row).expect("static build fills free slots") as usize;
            wm.read_row(row, &mut buf);
            dc.data[slot * width..(slot + 1) * width].copy_from_slice(&buf);
        }
        FeatureCache {
            mode: CacheMode::Static,
            capacity,
            width,
            devices: vec![dc],
        }
    }

    /// Build an empty CLOCK cache with `capacity` row slots on each of
    /// `devices` devices; slots fill as misses stream through
    /// `plan_gather_cached`.
    pub fn new_clock(wm: &WholeMemory<T>, devices: u32, capacity: usize) -> Self {
        let capacity = capacity.min(wm.rows());
        let width = wm.width();
        FeatureCache {
            mode: CacheMode::Clock,
            capacity,
            width,
            devices: (0..devices.max(1))
                .map(|_| DeviceCache::new(capacity, width))
                .collect(),
        }
    }

    /// The replacement policy.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Row slots per device.
    pub fn rows_per_device(&self) -> usize {
        self.capacity
    }

    /// Elements per cached row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether `device`'s cache currently holds `row`. Allocation-free —
    /// this is the halo path's pre-check.
    pub fn contains(&self, device: u32, row: usize) -> bool {
        self.device(device).lookup(row).is_some()
    }

    /// Rows currently cached on `device`.
    pub fn occupied(&self, device: u32) -> usize {
        self.device(device).len()
    }

    /// Drop all cached rows on every device. Required after any
    /// `global_scatter` that may have touched cached rows — the cache
    /// never observes writes to the backing store.
    pub fn clear(&mut self) {
        for d in &mut self.devices {
            d.clear();
        }
    }

    #[inline]
    fn device_index(&self, device: u32) -> usize {
        match self.mode {
            CacheMode::Static => 0,
            CacheMode::Clock => device as usize,
        }
    }

    #[inline]
    pub(crate) fn device(&self, device: u32) -> &DeviceCache<T> {
        &self.devices[self.device_index(device)]
    }

    #[inline]
    pub(crate) fn device_mut(&mut self, device: u32) -> &mut DeviceCache<T> {
        let i = self.device_index(device);
        &mut self.devices[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use wg_sim::cost::AccessMode;
    use wg_sim::CostModel;

    fn wm(rows: usize, width: usize, ranks: u32) -> WholeMemory<f32> {
        let model = CostModel::dgx_a100();
        let wm = WholeMemory::<f32>::allocate(&model, ranks, rows, width, AccessMode::PeerAccess);
        wm.init_rows(|row, out| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = (row * 100 + j) as f32;
            }
        });
        wm
    }

    #[test]
    fn cache_mode_parses_cli_spellings() {
        assert_eq!(CacheMode::parse("static"), Some(CacheMode::Static));
        assert_eq!(CacheMode::parse("clock"), Some(CacheMode::Clock));
        assert_eq!(CacheMode::parse("lru"), None);
        assert_eq!(
            CacheMode::parse(CacheMode::Clock.as_str()),
            Some(CacheMode::Clock)
        );
    }

    #[test]
    fn static_cache_pins_topk_by_hotness_with_deterministic_ties() {
        let wm = wm(100, 4, 4);
        // Rows 10/20/30 are hottest; 40 and 50 tie — lower id wins.
        let mut hot = vec![0u64; 100];
        hot[10] = 9;
        hot[20] = 8;
        hot[30] = 7;
        hot[40] = 5;
        hot[50] = 5;
        let cache = FeatureCache::new_static(&wm, &hot, 4);
        for row in [10, 20, 30, 40] {
            assert!(cache.contains(0, row), "row {row} should be pinned");
            // Static mode replicates: every device sees the same set.
            assert!(cache.contains(3, row));
        }
        assert!(!cache.contains(0, 50), "tie loser must not be pinned");
        assert!(!cache.contains(0, 0));
        assert_eq!(cache.occupied(0), 4);
        assert_eq!(cache.mode(), CacheMode::Static);
    }

    #[test]
    fn static_cache_holds_exact_row_values() {
        let wm = wm(64, 8, 4);
        let hot: Vec<u64> = (0..64u64).collect(); // hottest = highest ids
        let cache = FeatureCache::new_static(&wm, &hot, 6);
        let mut expect = vec![0.0f32; 8];
        for row in 58..64 {
            let slot = cache.device(0).lookup(row).unwrap() as usize;
            wm.read_row(row, &mut expect);
            assert_eq!(&cache.device(0).data[slot * 8..(slot + 1) * 8], &expect[..]);
        }
    }

    #[test]
    fn capacity_is_clamped_to_row_count() {
        let wm = wm(10, 2, 2);
        let cache = FeatureCache::new_static(&wm, &vec![1; 10], 1000);
        assert_eq!(cache.rows_per_device(), 10);
        let clock = FeatureCache::new_clock(&wm, 2, 1000);
        assert_eq!(clock.rows_per_device(), 10);
    }

    #[test]
    fn zero_capacity_cache_never_hits_or_inserts() {
        let wm = wm(10, 2, 2);
        let mut cache = FeatureCache::new_clock(&wm, 2, 0);
        let dc = cache.device_mut(0);
        dc.begin_batch();
        assert_eq!(dc.insert(3), None);
        assert_eq!(dc.lookup(3), None);
        assert!(!cache.contains(0, 3));
    }

    #[test]
    fn clock_second_chance_evicts_unreferenced_first() {
        let wm = wm(100, 2, 2);
        let mut cache = FeatureCache::new_clock(&wm, 1, 3);
        let dc = cache.device_mut(0);
        // Fill with rows 1,2,3 (one batch each so stamps don't pin).
        for row in [1usize, 2, 3] {
            dc.begin_batch();
            assert!(dc.insert(row).is_some());
        }
        // Re-reference row 1 in a later batch (sets its ref bit again).
        dc.begin_batch();
        let s1 = dc.lookup(1).unwrap();
        dc.touch(s1);
        // Insert row 4: the first revolution clears all three ref bits
        // (every slot was referenced at least once), then the hand is
        // back at slot 0, whose bit is now spent — one second chance is
        // exactly one, so row 1 goes.
        dc.begin_batch();
        let slot = dc.insert(4).unwrap();
        assert_eq!(dc.slot_row(slot), 4);
        assert_eq!(
            dc.lookup(1),
            None,
            "hand reached slot 0 after one revolution"
        );
        assert!(dc.lookup(2).is_some());
        assert!(dc.lookup(3).is_some());
        // Next insert evicts slot 1 (row 2): its bit was cleared by the
        // previous sweep and not refreshed.
        dc.begin_batch();
        assert!(dc.insert(5).is_some());
        assert_eq!(dc.lookup(2), None);
        assert!(dc.lookup(4).is_some());
    }

    #[test]
    fn clock_never_evicts_current_batch_rows() {
        let wm = wm(100, 2, 2);
        let mut cache = FeatureCache::new_clock(&wm, 1, 2);
        let dc = cache.device_mut(0);
        dc.begin_batch();
        assert!(dc.insert(1).is_some());
        assert!(dc.insert(2).is_some());
        // Same batch: both slots carry the current stamp — a third
        // insert must fail rather than corrupt a planned hit.
        assert_eq!(dc.insert(3), None);
        // Next batch the protection lapses.
        dc.begin_batch();
        assert!(dc.insert(3).is_some());
    }

    #[test]
    fn clear_empties_every_device() {
        let wm = wm(20, 2, 2);
        let mut cache = FeatureCache::new_clock(&wm, 2, 4);
        for dev in 0..2 {
            let dc = cache.device_mut(dev);
            dc.begin_batch();
            dc.insert(5);
        }
        assert!(cache.contains(0, 5) && cache.contains(1, 5));
        cache.clear();
        assert!(!cache.contains(0, 5) && !cache.contains(1, 5));
        assert_eq!(cache.occupied(0), 0);
        // Reusable after clear.
        let dc = cache.device_mut(0);
        dc.begin_batch();
        assert!(dc.insert(7).is_some());
        assert!(cache.contains(0, 7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The open-addressed table (insert + backward-shift delete via
        /// CLOCK eviction) always agrees with a HashMap oracle.
        #[test]
        fn table_matches_hashmap_oracle(
            capacity in 1usize..24,
            rows in proptest::collection::vec(0usize..64, 1..200),
        ) {
            let mut dc = DeviceCache::<f32>::new(capacity, 1);
            let mut oracle: HashMap<usize, u32> = HashMap::new();
            for row in rows {
                dc.begin_batch();
                match dc.lookup(row) {
                    Some(slot) => {
                        prop_assert_eq!(oracle.get(&row).copied(), Some(slot));
                        dc.touch(slot);
                    }
                    None => {
                        prop_assert!(!oracle.contains_key(&row));
                        if let Some(slot) = dc.insert(row) {
                            oracle.retain(|_, s| *s != slot);
                            oracle.insert(row, slot);
                        }
                    }
                }
                // Full-table agreement after every step.
                for (&r, &s) in &oracle {
                    prop_assert_eq!(dc.lookup(r), Some(s));
                }
                prop_assert_eq!(dc.len(), oracle.len());
            }
        }
    }
}
