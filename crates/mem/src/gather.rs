//! The one-kernel global gather (§III-C3, right half of Figure 4).
//!
//! Because every GPU can load directly from peer memory through its pointer
//! table, gathering an arbitrary list of global rows needs **one kernel and
//! no explicit communication**: each output row is copied straight from
//! whichever region owns it, and "the underlying NVLink and NVSwitch handle
//! all the necessary communication without the involvement of software."
//!
//! The copy below is real (a rayon-parallel loop standing in for the CUDA
//! kernel). The simulated duration comes from the Figure 8 bandwidth curve:
//! random reads of `width × sizeof(T)`-byte segments achieve a
//! segment-size-dependent fraction of NVLink bandwidth.

use rayon::prelude::*;

use wg_sim::cost::AccessMode;
use wg_sim::device::DeviceSpec;
use wg_sim::{CostModel, SimTime};

use crate::access::{ChunkLocator, Element};
use crate::cache::{CacheMode, FeatureCache};
use crate::handle::WholeMemory;
use crate::ooc::{OocTier, Persist};

/// Statistics of one global gather.
#[derive(Clone, Copy, Debug)]
pub struct GatherStats {
    /// Rows gathered.
    pub rows: usize,
    /// Rows that were local to the executing device (cache hits count as
    /// local — they are served from the device's own HBM).
    pub local_rows: usize,
    /// Rows pulled from peer devices (these cross the bus).
    pub remote_rows: usize,
    /// Total bytes the algorithm gathered.
    pub algo_bytes: u64,
    /// Bytes that actually crossed NVLink (remote rows only) — the
    /// numerator of BusBW.
    pub bus_bytes: u64,
    /// Rows served out of the per-device feature cache (zero on the
    /// uncached path).
    pub cache_hits: usize,
    /// Bytes that would have crossed the bus had their rows not been
    /// cached: cache hits whose owning rank is not the executing device,
    /// times the row size.
    pub saved_bus_bytes: u64,
    /// Rows staged from the out-of-core storage tier (zero on untiered
    /// paths and at full residency).
    pub disk_rows: usize,
    /// Bytes read from the storage tier (`disk_rows × row bytes`). The
    /// conservation invariant of the tier: DSM-served bytes plus
    /// `disk_bytes` (plus cache-served bytes) always equal `algo_bytes`.
    pub disk_bytes: u64,
    /// Priced time of the storage fetch — a sub-component of
    /// [`sim_time`](Self::sim_time), split out so the executor can
    /// overlap it against compute (the prefetch model).
    pub storage_time: SimTime,
    /// Simulated duration of the gather kernel (storage fetch included).
    pub sim_time: SimTime,
}

impl GatherStats {
    /// Bandwidth seen by the algorithm, bytes/s.
    pub fn algo_bandwidth(&self) -> f64 {
        self.algo_bytes as f64 / self.sim_time.as_secs()
    }

    /// Bandwidth seen by the bus, bytes/s.
    pub fn bus_bandwidth(&self) -> f64 {
        self.bus_bytes as f64 / self.sim_time.as_secs()
    }

    /// Fraction of gathered rows served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.rows as f64
        }
    }
}

/// Sentinel "owning rank" marking a planned row served from the
/// executing device's feature cache; `start` is then an offset into the
/// cache store rather than a region.
const CACHE_RANK: u32 = u32::MAX;

/// Sentinel "owning rank" marking a planned row staged from the
/// out-of-core storage tier; `start` is then an offset into the tier's
/// staging buffer (filled by the batched prefetch fetch that runs
/// before the copy kernel).
const DISK_RANK: u32 = u32::MAX - 1;

/// One gather row resolved to its owning region and element offset.
#[derive(Clone, Copy, Debug)]
struct PlannedRow {
    rank: u32,
    start: usize,
}

/// A CLOCK fill scheduled at plan time: at execute time the row at
/// `src_start` of `src_rank`'s region is copied into cache slot `slot`
/// *before* the output copy loop, so later same-batch hits on the row
/// read valid data.
#[derive(Clone, Copy, Debug)]
struct PlannedInsert {
    slot: u32,
    src_rank: u32,
    src_start: usize,
}

/// A precomputed gather plan: the address translation of
/// [`global_gather`] hoisted out of the copy kernel.
///
/// Building the plan resolves every index through a pooled
/// [`ChunkLocator`] (division-free, built once per partition) and counts
/// rows per owning rank, so the planned gather itself is a pure
/// peer-to-peer copy loop — no `locate()`, no reduction, and with a warm
/// plan no heap allocation beyond the region read-guard table.
#[derive(Default)]
pub struct RowPlan {
    slots: Vec<PlannedRow>,
    rank_counts: Vec<usize>,
    locator: Option<ChunkLocator>,
    width: usize,
    /// CLOCK fills scheduled this batch (empty on the uncached path and
    /// in static mode).
    inserts: Vec<PlannedInsert>,
    /// Planned rows served from the cache.
    cache_hits: usize,
    /// Cache hits whose owning rank is not the executing device (the
    /// rows whose bus crossing the cache saved).
    cache_remote_hits: usize,
    /// Whether this plan was built by [`plan_gather_cached`] — routes the
    /// per-call stats into the `mem.cache.*` metrics.
    cached: bool,
    /// Whether this plan resolved rows against an [`OocTier`]: it must
    /// be executed by [`global_gather_planned_tiered`] with the same
    /// tier, which stages `disk_slots` before the copy kernel runs.
    tiered: bool,
    /// Global row ids of disk-served rows, in staging-slot order: slot
    /// `i` of the tier's staging buffer receives row `disk_slots[i]`.
    /// This list *is* the prefetch queue's request batch.
    disk_slots: Vec<u32>,
}

impl RowPlan {
    /// Rows this plan gathers.
    pub fn rows(&self) -> usize {
        self.slots.len()
    }

    /// Rows this plan serves from the feature cache.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Rows this plan serves from the out-of-core storage tier.
    pub fn disk_rows(&self) -> usize {
        self.disk_slots.len()
    }
}

/// Resolve `indices` (global row ids) of `wm` into a reusable [`RowPlan`].
pub fn plan_gather<T: Element>(wm: &WholeMemory<T>, indices: &[usize], plan: &mut RowPlan) {
    let partition = wm.partition();
    if plan
        .locator
        .as_ref()
        .is_none_or(|l| l.partition() != partition)
    {
        plan.locator = Some(ChunkLocator::new(partition));
    }
    let locator = plan.locator.as_ref().unwrap();
    let width = wm.width();
    plan.width = width;
    plan.rank_counts.clear();
    plan.rank_counts.resize(partition.ranks as usize, 0);
    plan.slots.clear();
    plan.slots.reserve(indices.len());
    plan.inserts.clear();
    plan.cache_hits = 0;
    plan.cache_remote_hits = 0;
    plan.cached = false;
    plan.tiered = false;
    plan.disk_slots.clear();
    for &row in indices {
        let loc = locator.locate(row);
        plan.rank_counts[loc.device_rank as usize] += 1;
        plan.slots.push(PlannedRow {
            rank: loc.device_rank,
            start: loc.local_row * width,
        });
    }
}

/// Resolve `indices` into a [`RowPlan`], consulting `cache` (the cache
/// of the device `executing_rank`) first: hits are planned against the
/// cache store, misses fall through to the owning region exactly as in
/// [`plan_gather`]. In [`CacheMode::Clock`] mode, misses also claim a
/// cache slot here — the whole consult/insert loop is sequential, so
/// eviction order is identical at any worker count.
///
/// The plan is bound to `executing_rank`'s cache: execute it with
/// [`global_gather_planned_cached`] passing the same cache and rank.
/// With a warm plan this path is allocation-free except for CLOCK
/// insert-list growth beyond previously seen capacity.
pub fn plan_gather_cached<T: Element>(
    wm: &WholeMemory<T>,
    indices: &[usize],
    plan: &mut RowPlan,
    cache: &mut FeatureCache<T>,
    executing_rank: u32,
) {
    let partition = wm.partition();
    if plan
        .locator
        .as_ref()
        .is_none_or(|l| l.partition() != partition)
    {
        plan.locator = Some(ChunkLocator::new(partition));
    }
    let locator = plan.locator.as_ref().unwrap();
    let width = wm.width();
    assert_eq!(cache.width(), width, "cache built for a different width");
    plan.width = width;
    plan.rank_counts.clear();
    plan.rank_counts.resize(partition.ranks as usize, 0);
    plan.slots.clear();
    plan.slots.reserve(indices.len());
    plan.inserts.clear();
    plan.cache_hits = 0;
    plan.cache_remote_hits = 0;
    plan.cached = true;
    plan.tiered = false;
    plan.disk_slots.clear();
    let fill_on_miss = cache.mode() == CacheMode::Clock;
    let dc = cache.device_mut(executing_rank);
    dc.begin_batch();
    for &row in indices {
        let loc = locator.locate(row);
        if let Some(slot) = dc.lookup(row) {
            dc.touch(slot);
            plan.cache_hits += 1;
            if loc.device_rank != executing_rank {
                plan.cache_remote_hits += 1;
            }
            plan.slots.push(PlannedRow {
                rank: CACHE_RANK,
                start: slot as usize * width,
            });
        } else {
            plan.rank_counts[loc.device_rank as usize] += 1;
            let start = loc.local_row * width;
            plan.slots.push(PlannedRow {
                rank: loc.device_rank,
                start,
            });
            if fill_on_miss {
                if let Some(slot) = dc.insert(row) {
                    plan.inserts.push(PlannedInsert {
                        slot,
                        src_rank: loc.device_rank,
                        src_start: start,
                    });
                }
            }
        }
    }
}

/// Resolve `indices` into a [`RowPlan`] through the full tier stack:
/// **cache → DSM → disk**. Rows found in `executing_rank`'s cache (when
/// one is passed) are planned against the cache store; cache misses that
/// are DSM-**resident** under `tier`'s budget are planned against their
/// owning region exactly as in [`plan_gather`]; everything else falls to
/// the storage tier and joins the plan's prefetch batch. In CLOCK mode,
/// misses claim cache slots here regardless of which lower tier serves
/// them — a hot disk row graduates straight into the top tier.
///
/// Planning is sequential (one pass, deterministic at any worker
/// count), and with a warm plan allocation-free. Execute the plan with
/// [`global_gather_planned_tiered`], passing the same tier (and cache).
pub fn plan_gather_tiered<T: Element + Persist>(
    wm: &WholeMemory<T>,
    indices: &[usize],
    plan: &mut RowPlan,
    tier: &OocTier<T>,
    cache: Option<&mut FeatureCache<T>>,
    executing_rank: u32,
) {
    let partition = wm.partition();
    if plan
        .locator
        .as_ref()
        .is_none_or(|l| l.partition() != partition)
    {
        plan.locator = Some(ChunkLocator::new(partition));
    }
    let locator = plan.locator.as_ref().unwrap();
    let width = wm.width();
    assert_eq!(tier.rows(), wm.rows(), "tier built for a different store");
    assert_eq!(tier.width(), width, "tier built for a different width");
    plan.width = width;
    plan.rank_counts.clear();
    plan.rank_counts.resize(partition.ranks as usize, 0);
    plan.slots.clear();
    plan.slots.reserve(indices.len());
    plan.inserts.clear();
    plan.cache_hits = 0;
    plan.cache_remote_hits = 0;
    plan.cached = cache.is_some();
    plan.tiered = true;
    plan.disk_slots.clear();
    let fill_on_miss = cache
        .as_deref()
        .is_some_and(|c| c.mode() == CacheMode::Clock);
    let mut dc = cache.map(|c| {
        assert_eq!(c.width(), width, "cache built for a different width");
        let dc = c.device_mut(executing_rank);
        dc.begin_batch();
        dc
    });
    for &row in indices {
        let loc = locator.locate(row);
        if let Some(slot) = dc.as_deref_mut().and_then(|dc| dc.lookup(row)) {
            let dc = dc.as_deref_mut().unwrap();
            dc.touch(slot);
            plan.cache_hits += 1;
            if loc.device_rank != executing_rank {
                plan.cache_remote_hits += 1;
            }
            plan.slots.push(PlannedRow {
                rank: CACHE_RANK,
                start: slot as usize * width,
            });
            continue;
        }
        // Miss in the top tier: resolve DSM residency, then disk.
        let (rank, start) = if tier.is_resident(row) {
            plan.rank_counts[loc.device_rank as usize] += 1;
            (loc.device_rank, loc.local_row * width)
        } else {
            let disk_slot = plan.disk_slots.len();
            plan.disk_slots.push(row as u32);
            (DISK_RANK, disk_slot * width)
        };
        plan.slots.push(PlannedRow { rank, start });
        if fill_on_miss {
            if let Some(slot) = dc.as_deref_mut().unwrap().insert(row) {
                plan.inserts.push(PlannedInsert {
                    slot,
                    src_rank: rank,
                    src_start: start,
                });
            }
        }
    }
}

/// Gather `indices` (global row ids) from `wm` into `out`, executing on
/// device `executing_rank`.
///
/// `out` must hold `indices.len() * wm.width()` elements. Returns the
/// per-op statistics including the simulated kernel duration. Allocating
/// convenience wrapper over [`plan_gather`] + [`global_gather_planned`];
/// hot loops keep a pooled [`RowPlan`] and call those directly.
pub fn global_gather<T: Element>(
    wm: &WholeMemory<T>,
    indices: &[usize],
    out: &mut [T],
    executing_rank: u32,
    model: &CostModel,
    spec: &DeviceSpec,
) -> GatherStats {
    let mut plan = RowPlan::default();
    plan_gather(wm, indices, &mut plan);
    global_gather_planned(wm, &plan, out, executing_rank, model, spec)
}

/// Execute a precomputed gather plan: copy every planned row from its
/// owning region into `out`.
pub fn global_gather_planned<T: Element>(
    wm: &WholeMemory<T>,
    plan: &RowPlan,
    out: &mut [T],
    executing_rank: u32,
    model: &CostModel,
    spec: &DeviceSpec,
) -> GatherStats {
    assert!(
        !plan.cached,
        "plan consulted a cache; execute it with global_gather_planned_cached"
    );
    assert!(
        !plan.tiered,
        "plan resolved a storage tier; execute it with global_gather_planned_tiered"
    );
    execute_planned(wm, plan, out, executing_rank, model, spec, None, &[])
}

/// Execute a plan built by [`plan_gather_cached`]: cache hits copy out
/// of `cache`'s store at local-HBM cost, misses copy from their owning
/// regions at DSM cost, and this batch's CLOCK fills land in the cache
/// first so same-batch re-references read valid data. `cache` and
/// `executing_rank` must be the ones the plan was built with.
pub fn global_gather_planned_cached<T: Element>(
    wm: &WholeMemory<T>,
    plan: &RowPlan,
    out: &mut [T],
    executing_rank: u32,
    model: &CostModel,
    spec: &DeviceSpec,
    cache: &mut FeatureCache<T>,
) -> GatherStats {
    assert!(
        !plan.tiered,
        "plan resolved a storage tier; execute it with global_gather_planned_tiered"
    );
    execute_planned(wm, plan, out, executing_rank, model, spec, Some(cache), &[])
}

/// Execute a plan built by [`plan_gather_tiered`]: the tier's batched
/// prefetch stages every disk-planned row first (real file I/O, priced
/// by the storage cost model), this batch's CLOCK fills land in the
/// cache — from DSM regions or the staging buffer, whichever tier
/// served the miss — and the copy kernel then reads cache hits from the
/// cache store, resident rows from their owning regions, and spilled
/// rows from staging. `tier` (and `cache`, when the plan consulted one)
/// must be the ones the plan was built with.
#[allow(clippy::too_many_arguments)] // mirrors the cached execute + tier
pub fn global_gather_planned_tiered<T: Element + Persist>(
    wm: &WholeMemory<T>,
    plan: &RowPlan,
    out: &mut [T],
    executing_rank: u32,
    model: &CostModel,
    spec: &DeviceSpec,
    cache: Option<&mut FeatureCache<T>>,
    tier: &mut OocTier<T>,
) -> GatherStats {
    assert!(
        plan.tiered,
        "plan did not resolve a storage tier; use global_gather_planned[_cached]"
    );
    assert_eq!(
        plan.cached,
        cache.is_some(),
        "plan and execute disagree about the cache tier"
    );
    tier.fetch(&plan.disk_slots);
    execute_planned(
        wm,
        plan,
        out,
        executing_rank,
        model,
        spec,
        cache,
        tier.staging(),
    )
}

#[allow(clippy::too_many_arguments)] // shared body behind the cached + tiered entry points
fn execute_planned<T: Element>(
    wm: &WholeMemory<T>,
    plan: &RowPlan,
    out: &mut [T],
    executing_rank: u32,
    model: &CostModel,
    spec: &DeviceSpec,
    mut cache: Option<&mut FeatureCache<T>>,
    staging: &[T],
) -> GatherStats {
    let _span = wg_trace::span!("mem.gather");
    let width = wm.width();
    assert_eq!(plan.width, width, "plan was built for a different width");
    assert_eq!(
        out.len(),
        plan.rows() * width,
        "gather output buffer has wrong size"
    );
    let regions = wm.read_all();
    let level = wg_tensor::simd::level();

    // Apply this batch's CLOCK fills before the copy loop: a hit planned
    // after the miss that claimed the slot must read the freshly cached
    // values. Slots in the insert list are unique (a just-filled slot is
    // stamped with the current batch and cannot be re-evicted), so the
    // sequential fill order is immaterial.
    if let Some(cache) = cache.as_deref_mut() {
        if !plan.inserts.is_empty() {
            let dc = cache.device_mut(executing_rank);
            for ins in &plan.inserts {
                let src = if ins.src_rank == DISK_RANK {
                    staging
                } else {
                    regions.region(ins.src_rank as usize)
                };
                let slot = ins.slot as usize;
                wg_tensor::simd::copy_slice(
                    level,
                    &mut dc.data[slot * width..(slot + 1) * width],
                    &src[ins.src_start..ins.src_start + width],
                );
            }
        }
    }
    let cache_store: &[T] = cache
        .as_deref()
        .map(|c| c.device(executing_rank).data.as_slice())
        .unwrap_or(&[]);

    // The "kernel": every thread block copies one output row from the
    // owning region through the pointer table (or from the device's own
    // cache store for hits). All address translation already happened at
    // plan time; the guard table is inline (no heap allocation at ≤ 16
    // ranks) and the row copy streams through the SIMD path.
    out.par_chunks_mut(width.max(1))
        .zip(plan.slots.par_iter())
        .for_each(|(dst, slot)| {
            let src = if slot.rank == CACHE_RANK {
                cache_store
            } else if slot.rank == DISK_RANK {
                staging
            } else {
                regions.region(slot.rank as usize)
            };
            wg_tensor::simd::copy_slice(level, dst, &src[slot.start..slot.start + width]);
        });

    let rows = plan.rows();
    let hit_rows = plan.cache_hits;
    let disk_rows = plan.disk_slots.len();
    // DSM-served misses: everything the cache and the storage tier did
    // not absorb. With no tiers both terms are zero and this is `rows`.
    let miss_rows = rows - hit_rows - disk_rows;
    let miss_local = plan
        .rank_counts
        .get(executing_rank as usize)
        .copied()
        .unwrap_or(0);
    // Cache hits are served from the executing device's HBM: local by
    // construction, whoever owns the row's home region.
    let local_rows = miss_local + hit_rows;
    let remote_rows = rows - local_rows - disk_rows;
    let row_bytes = width * std::mem::size_of::<T>();
    let algo_bytes = (rows * row_bytes) as u64;
    let bus_bytes = (remote_rows * row_bytes) as u64;
    let saved_bus_bytes = (plan.cache_remote_hits * row_bytes) as u64;
    let disk_bytes = (disk_rows * row_bytes) as u64;
    // The storage tier's batched prefetch: `disk_rows` queued reads,
    // priced by the NVMe seek + bandwidth-knee model. Zero when every
    // planned row was cache- or DSM-resident.
    let storage_time = model.storage.read_time(disk_rows as u64, row_bytes);

    // Hits ride the same kernel but stream out of local HBM; only the
    // misses pay the DSM price. With no cache (hit_rows == 0) both terms
    // reduce to exactly the uncached formula.
    let hit_time = model.hbm_gather_time(hit_rows as u64, row_bytes, spec);
    let sim_time = match wm.mode() {
        AccessMode::PeerAccess => {
            model.dsm_gather_time(miss_rows as u64, row_bytes, spec) + hit_time + storage_time
        }
        AccessMode::UnifiedMemory => {
            // Every remote row triggers a page fault serviced by the host;
            // faults for distinct rows overlap poorly because the fault
            // handler serializes on the driver. We charge a per-fault
            // latency amortized over a small service parallelism, plus the
            // migration of the touched pages.
            const FAULT_PARALLELISM: f64 = 16.0;
            let fault = model.um_access_latency(wm.logical_bytes());
            let fault_time = fault * (remote_rows as f64 / FAULT_PARALLELISM);
            let page = 64 * 1024;
            let pages = remote_rows as u64 * row_bytes.div_ceil(page) as u64;
            let migrate =
                SimTime::from_secs((pages * page as u64) as f64 / model.topology.nvlink_bandwidth);
            SimTime::from_secs(spec.kernel_launch_overhead_s)
                + fault_time
                + migrate
                + hit_time
                + storage_time
        }
    };

    let stats = GatherStats {
        rows,
        local_rows,
        remote_rows,
        algo_bytes,
        bus_bytes,
        cache_hits: hit_rows,
        saved_bus_bytes,
        disk_rows,
        disk_bytes,
        storage_time,
        sim_time,
    };
    record_gather_metrics(&stats, model);
    if plan.cached {
        record_cache_metrics(&stats);
    }
    if plan.tiered {
        record_storage_metrics(&stats);
    }
    stats
}

/// Rows-per-gather histogram bucket bounds (mini-batch input sets run
/// from hundreds of rows at toy scale to ~100k at paper fanouts). The
/// wallclock epoch's training batches gather ~1.7k rows each, so the
/// 1024–2048 band carries 1280/1536/1792 edges to resolve it — with a
/// bare 1024→2048 step, 90 of 99 calls piled into one `le: 2048`
/// bucket above an empty `le: 1024`.
const ROWS_BUCKETS: [f64; 13] = [
    256.0, 1024.0, 1280.0, 1536.0, 1792.0, 2048.0, 4096.0, 8192.0, 16384.0, 65536.0, 262144.0, 1e6,
    4e6,
];
/// Link-utilization histogram bounds (fraction of peak NVLink bandwidth
/// the gather's bus traffic achieved).
const LINK_UTIL_BUCKETS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 1.0];

/// Accrue one gather's statistics into the `mem.gather.*` metrics: byte
/// and row counters, the rows-per-call histogram, and the achieved
/// fraction of peak NVLink bandwidth. One atomic-load probe when
/// metrics are disabled.
fn record_gather_metrics(stats: &GatherStats, model: &CostModel) {
    if !wg_trace::metrics_enabled() {
        return;
    }
    wg_trace::counter!("mem.gather.calls", 1.0);
    wg_trace::counter!("mem.gather.rows", stats.rows as f64);
    wg_trace::counter!("mem.gather.remote_rows", stats.remote_rows as f64);
    wg_trace::counter!("mem.gather.algo_bytes", stats.algo_bytes as f64);
    wg_trace::counter!("mem.gather.bus_bytes", stats.bus_bytes as f64);
    wg_trace::histogram!("mem.gather.rows_per_call", &ROWS_BUCKETS, stats.rows as f64);
    if stats.sim_time.as_secs() > 0.0 && model.topology.nvlink_bandwidth > 0.0 {
        wg_trace::histogram!(
            "mem.gather.link_utilization",
            &LINK_UTIL_BUCKETS,
            stats.bus_bandwidth() / model.topology.nvlink_bandwidth
        );
    }
}

/// Per-call hit-rate histogram bounds.
const HIT_RATE_BUCKETS: [f64; 6] = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

/// Accrue one cached gather's statistics into the `mem.cache.*` metrics.
/// Hits and misses partition the gathered rows, so summed over a run
/// `mem.cache.hits + mem.cache.misses == mem.gather.rows` whenever every
/// gather went through the cached path.
fn record_cache_metrics(stats: &GatherStats) {
    if !wg_trace::metrics_enabled() {
        return;
    }
    wg_trace::counter!("mem.cache.hits", stats.cache_hits as f64);
    wg_trace::counter!("mem.cache.misses", (stats.rows - stats.cache_hits) as f64);
    wg_trace::counter!("mem.cache.saved_bus_bytes", stats.saved_bus_bytes as f64);
    if stats.rows > 0 {
        wg_trace::histogram!("mem.cache.hit_rate", &HIT_RATE_BUCKETS, stats.hit_rate());
    }
}

/// Accrue one tiered gather's storage-side statistics into the
/// `mem.storage.*` metrics. Summed over a run with the cache disabled,
/// `mem.storage.bytes + mem.gather.bus_bytes + local DSM bytes ==
/// mem.gather.algo_bytes` — the bytes-conservation invariant the
/// `storage_sweep` bench asserts as `dsm + disk == uncached total`.
fn record_storage_metrics(stats: &GatherStats) {
    if !wg_trace::metrics_enabled() {
        return;
    }
    wg_trace::counter!("mem.storage.rows", stats.disk_rows as f64);
    wg_trace::counter!("mem.storage.bytes", stats.disk_bytes as f64);
    wg_trace::counter!("mem.storage.time_s", stats.storage_time.as_secs());
}

/// Scatter rows back into the distributed allocation (the write-side
/// counterpart, used for embedding updates and for building storage).
/// Returns the simulated kernel duration.
pub fn global_scatter<T: Element>(
    wm: &WholeMemory<T>,
    indices: &[usize],
    data: &[T],
    model: &CostModel,
    spec: &DeviceSpec,
) -> SimTime {
    let width = wm.width();
    assert_eq!(
        data.len(),
        indices.len() * width,
        "scatter input buffer has wrong size"
    );
    // Writes take region write locks; group updates per owning rank so the
    // locks are taken once per rank rather than once per row.
    let partition = wm.partition();
    let mut by_rank: Vec<Vec<(usize, &[T])>> = (0..wm.ranks()).map(|_| Vec::new()).collect();
    for (i, &row) in indices.iter().enumerate() {
        let loc = partition.locate(row);
        by_rank[loc.device_rank as usize].push((loc.local_row, &data[i * width..(i + 1) * width]));
    }
    for (rank, updates) in by_rank.into_iter().enumerate() {
        if updates.is_empty() {
            continue;
        }
        wm_write_rank(wm, rank as u32, width, &updates);
    }
    let row_bytes = width * std::mem::size_of::<T>();
    model.dsm_gather_time(indices.len() as u64, row_bytes, spec)
}

fn wm_write_rank<T: Element>(
    wm: &WholeMemory<T>,
    rank: u32,
    width: usize,
    updates: &[(usize, &[T])],
) {
    // Private helper: apply a batch of (local_row, data) writes to a rank.
    wm.with_region_mut(rank, |region| {
        for (local_row, row) in updates {
            let start = local_row * width;
            region[start..start + width].copy_from_slice(row);
        }
    });
}

impl<T: Element> WholeMemory<T> {
    /// Run `f` with write access to the region of `rank`. Hands out a
    /// slice, not the backing `Vec`: batched writers update rows in place
    /// and must not be able to resize a region out from under the
    /// partition map.
    pub fn with_region_mut<R>(&self, rank: u32, f: impl FnOnce(&mut [T]) -> R) -> R {
        // Exposed here (rather than handle.rs) because scatter is the only
        // batched writer.
        f(&mut self.region_write(rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn setup(
        rows: usize,
        width: usize,
        ranks: u32,
        mode: AccessMode,
    ) -> (WholeMemory<f32>, CostModel, DeviceSpec) {
        let model = CostModel::dgx_a100();
        let wm = WholeMemory::<f32>::allocate(&model, ranks, rows, width, mode);
        wm.init_rows(|row, out| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = (row * 1000 + j) as f32;
            }
        });
        (wm, model, DeviceSpec::a100_40gb())
    }

    #[test]
    fn gather_matches_scalar_reference() {
        let (wm, model, spec) = setup(1000, 16, 8, AccessMode::PeerAccess);
        let mut rng = SmallRng::seed_from_u64(7);
        let indices: Vec<usize> = (0..333).map(|_| rng.gen_range(0..1000)).collect();
        let mut out = vec![0.0f32; indices.len() * 16];
        let stats = global_gather(&wm, &indices, &mut out, 0, &model, &spec);
        assert_eq!(stats.rows, indices.len());
        let mut expect = vec![0.0f32; 16];
        for (i, &row) in indices.iter().enumerate() {
            wm.read_row(row, &mut expect);
            assert_eq!(&out[i * 16..(i + 1) * 16], &expect[..], "row {row}");
        }
    }

    #[test]
    fn local_remote_split_adds_up() {
        let (wm, model, spec) = setup(800, 4, 8, AccessMode::PeerAccess);
        let indices: Vec<usize> = (0..800).collect();
        let mut out = vec![0.0f32; indices.len() * 4];
        let stats = global_gather(&wm, &indices, &mut out, 3, &model, &spec);
        assert_eq!(stats.local_rows + stats.remote_rows, 800);
        // Chunked partition: exactly 1/8 of all rows live on rank 3.
        assert_eq!(stats.local_rows, 100);
        assert_eq!(stats.bus_bytes, (700 * 4 * 4) as u64);
    }

    #[test]
    fn um_mode_is_far_slower_than_p2p() {
        let (wm_p2p, model, spec) = setup(4096, 32, 8, AccessMode::PeerAccess);
        let (wm_um, _, _) = setup(4096, 32, 8, AccessMode::UnifiedMemory);
        let indices: Vec<usize> = (0..2048).collect();
        let mut out = vec![0.0f32; indices.len() * 32];
        let p2p = global_gather(&wm_p2p, &indices, &mut out, 0, &model, &spec);
        let um = global_gather(&wm_um, &indices, &mut out, 0, &model, &spec);
        assert!(
            um.sim_time / p2p.sim_time > 10.0,
            "UM should be >10x slower"
        );
    }

    #[test]
    fn wide_rows_achieve_near_saturated_bandwidth() {
        // papers100M rows are 512 B; Figure 8 says those saturate NVLink.
        let (wm, model, spec) = setup(100_000, 128, 8, AccessMode::PeerAccess);
        let indices: Vec<usize> = (0..100_000).collect();
        let mut out = vec![0.0f32; indices.len() * 128];
        let stats = global_gather(&wm, &indices, &mut out, 0, &model, &spec);
        let algobw = stats.algo_bandwidth();
        assert!(
            algobw > 0.8 * model.gather_algobw(512),
            "algo bandwidth {algobw:.3e}"
        );
    }

    #[test]
    fn scatter_then_gather_roundtrips() {
        let (wm, model, spec) = setup(100, 8, 4, AccessMode::PeerAccess);
        let indices = vec![3usize, 77, 42, 99];
        let data: Vec<f32> = (0..indices.len() * 8).map(|x| x as f32 * 0.5).collect();
        global_scatter(&wm, &indices, &data, &model, &spec);
        let mut out = vec![0.0f32; indices.len() * 8];
        global_gather(&wm, &indices, &mut out, 0, &model, &spec);
        assert_eq!(out, data);
    }

    #[test]
    fn planned_gather_matches_adhoc_and_reuses_plan() {
        let (wm, model, spec) = setup(1000, 16, 8, AccessMode::PeerAccess);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut plan = RowPlan::default();
        let mut planned = vec![0.0f32; 0];
        let mut adhoc = vec![0.0f32; 0];
        // Reuse one plan across batches of different sizes; every batch
        // must match the allocating gather exactly, stats included.
        for batch in [333usize, 57, 999] {
            let indices: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..1000)).collect();
            planned.clear();
            planned.resize(batch * 16, 0.0);
            adhoc.clear();
            adhoc.resize(batch * 16, 0.0);
            plan_gather(&wm, &indices, &mut plan);
            assert_eq!(plan.rows(), batch);
            let sp = global_gather_planned(&wm, &plan, &mut planned, 2, &model, &spec);
            let sa = global_gather(&wm, &indices, &mut adhoc, 2, &model, &spec);
            assert_eq!(planned, adhoc);
            assert_eq!(sp.local_rows, sa.local_rows);
            assert_eq!(sp.bus_bytes, sa.bus_bytes);
            assert_eq!(sp.sim_time, sa.sim_time);
        }
    }

    /// Gather `indices` through a cache and through the plain path; the
    /// values must be bit-identical. Returns (cached stats, plain stats).
    fn gather_both_ways(
        wm: &WholeMemory<f32>,
        cache: &mut FeatureCache<f32>,
        indices: &[usize],
        rank: u32,
        model: &CostModel,
        spec: &DeviceSpec,
    ) -> (GatherStats, GatherStats) {
        let width = wm.width();
        let mut plan = RowPlan::default();
        let mut cached = vec![0.0f32; indices.len() * width];
        let mut plain = vec![0.0f32; indices.len() * width];
        plan_gather_cached(wm, indices, &mut plan, cache, rank);
        let sc = global_gather_planned_cached(wm, &plan, &mut cached, rank, model, spec, cache);
        let sp = global_gather(wm, indices, &mut plain, rank, model, spec);
        assert_eq!(cached, plain, "cache changed gathered values");
        (sc, sp)
    }

    #[test]
    fn static_cache_preserves_values_and_cuts_remote_rows() {
        let (wm, model, spec) = setup(1000, 16, 8, AccessMode::PeerAccess);
        // Hot set = rows 0..100; the access stream is 80% hot.
        let hot: Vec<u64> = (0..1000).map(|r| if r < 100 { 10 } else { 0 }).collect();
        let mut cache = FeatureCache::new_static(&wm, &hot, 100);
        let mut rng = SmallRng::seed_from_u64(3);
        let indices: Vec<usize> = (0..500)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    rng.gen_range(0..100)
                } else {
                    rng.gen_range(100..1000)
                }
            })
            .collect();
        let (sc, sp) = gather_both_ways(&wm, &mut cache, &indices, 2, &model, &spec);
        let expected_hits = indices.iter().filter(|&&r| r < 100).count();
        assert_eq!(sc.cache_hits, expected_hits);
        assert_eq!(sc.rows, sp.rows);
        assert_eq!(sc.local_rows + sc.remote_rows, sc.rows);
        assert!(
            sc.remote_rows < sp.remote_rows / 2,
            "hot-set cache should halve remote rows: {} vs {}",
            sc.remote_rows,
            sp.remote_rows
        );
        assert!(sc.bus_bytes < sp.bus_bytes);
        assert!(sc.sim_time < sp.sim_time, "hits must be cheaper than DSM");
        // Saved bytes = remote-owned hits × row bytes; rank 2 owns rows
        // 250..375, so every hit (rows < 100) was remote-owned.
        assert_eq!(sc.saved_bus_bytes, (expected_hits * 16 * 4) as u64);
        assert_eq!(sc.bus_bytes + sc.saved_bus_bytes, sp.bus_bytes);
    }

    #[test]
    fn zero_capacity_cache_is_cost_identical_to_uncached() {
        let (wm, model, spec) = setup(500, 8, 4, AccessMode::PeerAccess);
        let mut cache = FeatureCache::new_clock(&wm, 4, 0);
        let indices: Vec<usize> = (0..300).map(|i| (i * 7) % 500).collect();
        let (sc, sp) = gather_both_ways(&wm, &mut cache, &indices, 1, &model, &spec);
        assert_eq!(sc.cache_hits, 0);
        assert_eq!(sc.saved_bus_bytes, 0);
        assert_eq!(sc.remote_rows, sp.remote_rows);
        assert_eq!(sc.bus_bytes, sp.bus_bytes);
        assert_eq!(sc.sim_time, sp.sim_time);
    }

    #[test]
    fn clock_cache_warms_to_full_hits_at_working_set_size() {
        let (wm, model, spec) = setup(400, 8, 4, AccessMode::PeerAccess);
        // Capacity ≥ working set: after one pass everything is resident.
        let mut cache = FeatureCache::new_clock(&wm, 4, 128);
        let working_set: Vec<usize> = (0..100).map(|i| i * 3).collect();
        let (first, _) = gather_both_ways(&wm, &mut cache, &working_set, 0, &model, &spec);
        assert_eq!(first.cache_hits, 0, "cold cache");
        let (second, plain) = gather_both_ways(&wm, &mut cache, &working_set, 0, &model, &spec);
        assert_eq!(second.cache_hits, working_set.len());
        assert_eq!(second.remote_rows, 0);
        assert_eq!(second.bus_bytes, 0);
        assert!(second.sim_time < plain.sim_time);
        // A different device's cache is still cold.
        let (other, _) = gather_both_ways(&wm, &mut cache, &working_set, 3, &model, &spec);
        assert_eq!(other.cache_hits, 0);
    }

    #[test]
    fn clock_same_batch_reuse_hits_the_fresh_insert() {
        let (wm, model, spec) = setup(100, 4, 4, AccessMode::PeerAccess);
        let mut cache = FeatureCache::new_clock(&wm, 1, 16);
        // Row 42 appears three times in one batch: miss+insert, then two
        // hits that must read the values the insert wrote.
        let indices = vec![42usize, 7, 42, 42, 9];
        let (stats, _) = gather_both_ways(&wm, &mut cache, &indices, 0, &model, &spec);
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn um_mode_cache_hits_skip_fault_costs() {
        let (wm, model, spec) = setup(512, 16, 8, AccessMode::UnifiedMemory);
        let hot: Vec<u64> = (0..512).map(|r| if r < 64 { 1 } else { 0 }).collect();
        let mut cache = FeatureCache::new_static(&wm, &hot, 64);
        // Execute on rank 3: rows 0..64 all live on rank 0, so every
        // uncached access is a remote fault.
        let indices: Vec<usize> = (0..256).map(|i| i % 64).collect();
        let (sc, sp) = gather_both_ways(&wm, &mut cache, &indices, 3, &model, &spec);
        assert_eq!(sc.cache_hits, indices.len());
        assert!(
            sp.sim_time / sc.sim_time > 10.0,
            "UM fault storm should dwarf HBM hits: {} vs {}",
            sp.sim_time,
            sc.sim_time
        );
    }

    #[test]
    #[should_panic(expected = "global_gather_planned_cached")]
    fn cached_plan_rejected_by_plain_execute() {
        let (wm, model, spec) = setup(100, 4, 4, AccessMode::PeerAccess);
        let mut cache = FeatureCache::new_clock(&wm, 4, 8);
        let mut plan = RowPlan::default();
        plan_gather_cached(&wm, &[1, 2, 3], &mut plan, &mut cache, 0);
        let mut out = vec![0.0f32; 12];
        global_gather_planned(&wm, &plan, &mut out, 0, &model, &spec);
    }

    /// Gather `indices` through a storage tier (optionally with a cache
    /// above it) and through the plain path; values must be bit-identical.
    /// Returns (tiered stats, plain stats).
    fn gather_tiered_vs_plain(
        wm: &WholeMemory<f32>,
        tier: &mut OocTier<f32>,
        cache: Option<&mut FeatureCache<f32>>,
        indices: &[usize],
        rank: u32,
        model: &CostModel,
        spec: &DeviceSpec,
    ) -> (GatherStats, GatherStats) {
        let width = wm.width();
        let mut plan = RowPlan::default();
        let mut tiered = vec![0.0f32; indices.len() * width];
        let mut plain = vec![0.0f32; indices.len() * width];
        let mut cache = cache;
        plan_gather_tiered(wm, indices, &mut plan, tier, cache.as_deref_mut(), rank);
        let st = global_gather_planned_tiered(
            wm,
            &plan,
            &mut tiered,
            rank,
            model,
            spec,
            cache.as_deref_mut(),
            tier,
        );
        let sp = global_gather(wm, indices, &mut plain, rank, model, spec);
        assert_eq!(tiered, plain, "storage tier changed gathered values");
        (st, sp)
    }

    #[test]
    fn tiered_gather_preserves_values_at_any_residency() {
        let (wm, model, spec) = setup(600, 8, 4, AccessMode::PeerAccess);
        let hotness: Vec<u64> = (0..600).map(|r| (600 - r) as u64).collect();
        let indices: Vec<usize> = (0..400).map(|i| (i * 13) % 600).collect();
        for budget in [0usize, 150, 300, 600] {
            let mut tier = OocTier::build(&wm, &hotness, budget).unwrap();
            let (st, sp) = gather_tiered_vs_plain(&wm, &mut tier, None, &indices, 1, &model, &spec);
            // Hotness is highest for the lowest row ids, so residency is
            // exactly the prefix 0..budget.
            let expect_disk = indices.iter().filter(|&&r| r >= budget).count();
            assert_eq!(st.disk_rows, expect_disk, "budget {budget}");
            assert_eq!(st.rows, sp.rows);
            assert_eq!(st.algo_bytes, sp.algo_bytes);
        }
    }

    #[test]
    fn full_residency_tier_is_cost_identical_to_uncached() {
        let (wm, model, spec) = setup(500, 8, 4, AccessMode::PeerAccess);
        let hotness = vec![1u64; 500];
        let mut tier = OocTier::build(&wm, &hotness, 500).unwrap();
        let indices: Vec<usize> = (0..300).map(|i| (i * 7) % 500).collect();
        let (st, sp) = gather_tiered_vs_plain(&wm, &mut tier, None, &indices, 2, &model, &spec);
        assert_eq!(st.disk_rows, 0);
        assert_eq!(st.disk_bytes, 0);
        assert_eq!(st.storage_time, SimTime::ZERO);
        assert_eq!(st.remote_rows, sp.remote_rows);
        assert_eq!(st.bus_bytes, sp.bus_bytes);
        assert_eq!(st.sim_time, sp.sim_time);
    }

    #[test]
    fn tiered_bytes_partition_and_storage_slows_the_gather() {
        let (wm, model, spec) = setup(800, 16, 8, AccessMode::PeerAccess);
        let hotness: Vec<u64> = (0..800).map(|r| (800 - r) as u64).collect();
        // 25% residency: rows 0..200 stay in the DSM.
        let mut tier = OocTier::build(&wm, &hotness, 200).unwrap();
        let indices: Vec<usize> = (0..800).collect();
        let (st, sp) = gather_tiered_vs_plain(&wm, &mut tier, None, &indices, 3, &model, &spec);
        let row_bytes = 16 * 4;
        // Conservation: disk + bus + local-HBM bytes == uncached algo bytes.
        assert_eq!(
            st.disk_bytes + st.bus_bytes + (st.local_rows * row_bytes) as u64,
            sp.algo_bytes
        );
        assert_eq!(st.disk_rows, 600);
        assert!(st.storage_time > SimTime::ZERO);
        assert!(
            st.sim_time > sp.sim_time,
            "NVMe reads must cost more than DSM: {} vs {}",
            st.sim_time,
            sp.sim_time
        );
    }

    #[test]
    fn clock_cache_warms_from_disk_served_rows() {
        let (wm, model, spec) = setup(300, 8, 4, AccessMode::PeerAccess);
        let hotness = vec![1u64; 300];
        // Nothing resident: every miss is disk-served, and the CLOCK
        // inserts must copy from the staging buffer, not a DSM region.
        let mut tier = OocTier::build(&wm, &hotness, 0).unwrap();
        let mut cache = FeatureCache::new_clock(&wm, 4, 128);
        let working_set: Vec<usize> = (0..90).map(|i| i * 3).collect();
        let (first, _) = gather_tiered_vs_plain(
            &wm,
            &mut tier,
            Some(&mut cache),
            &working_set,
            0,
            &model,
            &spec,
        );
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.disk_rows, working_set.len());
        let (second, _) = gather_tiered_vs_plain(
            &wm,
            &mut tier,
            Some(&mut cache),
            &working_set,
            0,
            &model,
            &spec,
        );
        assert_eq!(second.cache_hits, working_set.len(), "warmed from disk");
        assert_eq!(second.disk_rows, 0);
        assert_eq!(second.storage_time, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "global_gather_planned_tiered")]
    fn tiered_plan_rejected_by_plain_execute() {
        let (wm, model, spec) = setup(100, 4, 4, AccessMode::PeerAccess);
        let tier = OocTier::build(&wm, &[1; 100], 10).unwrap();
        let mut plan = RowPlan::default();
        plan_gather_tiered(&wm, &[1, 2, 3], &mut plan, &tier, None, 0);
        let mut out = vec![0.0f32; 12];
        global_gather_planned(&wm, &plan, &mut out, 0, &model, &spec);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn wrong_output_size_panics() {
        let (wm, model, spec) = setup(10, 4, 2, AccessMode::PeerAccess);
        let mut out = vec![0.0f32; 3];
        global_gather(&wm, &[0, 1], &mut out, 0, &model, &spec);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn gather_is_correct_for_any_shape(
            rows in 1usize..500,
            width in 1usize..32,
            ranks in 1u32..8,
            seed in 0u64..1000,
        ) {
            let model = CostModel::dgx_a100();
            let wm = WholeMemory::<f32>::allocate(&model, ranks, rows, width, AccessMode::PeerAccess);
            wm.init_rows(|row, out| {
                for (j, v) in out.iter_mut().enumerate() {
                    *v = (row * 37 + j) as f32;
                }
            });
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(1..=rows * 2);
            let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..rows)).collect();
            let mut out = vec![0.0f32; n * width];
            let spec = DeviceSpec::a100_40gb();
            let stats = global_gather(&wm, &indices, &mut out, 0, &model, &spec);
            prop_assert_eq!(stats.local_rows + stats.remote_rows, n);
            for (i, &row) in indices.iter().enumerate() {
                for j in 0..width {
                    prop_assert_eq!(out[i * width + j], (row * 37 + j) as f32);
                }
            }
        }

        /// For any shape, mode and capacity: cached gathers return the
        /// exact uncached values, and hits + misses partition the rows
        /// (`stats.cache_hits + (mem.cache.misses contribution) == rows`).
        #[test]
        fn cached_gather_preserves_values_and_partitions_rows(
            rows in 1usize..300,
            width in 1usize..16,
            ranks in 1u32..8,
            capacity in 0usize..64,
            seed in 0u64..1000,
        ) {
            let clock = seed % 2 == 0;
            let model = CostModel::dgx_a100();
            let wm = WholeMemory::<f32>::allocate(&model, ranks, rows, width, AccessMode::PeerAccess);
            wm.init_rows(|row, out| {
                for (j, v) in out.iter_mut().enumerate() {
                    *v = (row * 37 + j) as f32;
                }
            });
            let mut rng = SmallRng::seed_from_u64(seed);
            let hot: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..10)).collect();
            let mut cache = if clock {
                FeatureCache::new_clock(&wm, ranks, capacity)
            } else {
                FeatureCache::new_static(&wm, &hot, capacity)
            };
            let spec = DeviceSpec::a100_40gb();
            let mut plan = RowPlan::default();
            // Several batches so CLOCK actually warms and evicts.
            for _ in 0..3 {
                let n = rng.gen_range(1..=rows * 2);
                let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..rows)).collect();
                let rank = rng.gen_range(0..ranks);
                let mut out = vec![0.0f32; n * width];
                plan_gather_cached(&wm, &indices, &mut plan, &mut cache, rank);
                let stats =
                    global_gather_planned_cached(&wm, &plan, &mut out, rank, &model, &spec, &mut cache);
                prop_assert_eq!(stats.rows, n);
                prop_assert!(stats.cache_hits <= n);
                prop_assert_eq!(stats.cache_hits + (stats.rows - stats.cache_hits), stats.rows);
                prop_assert_eq!(stats.local_rows + stats.remote_rows, n);
                prop_assert!(stats.saved_bus_bytes <= (stats.cache_hits * width * 4) as u64);
                for (i, &row) in indices.iter().enumerate() {
                    for j in 0..width {
                        prop_assert_eq!(out[i * width + j], (row * 37 + j) as f32);
                    }
                }
            }
        }
    }
}
