//! Out-of-core storage tier below the DSM (ROADMAP item 1a).
//!
//! [`OocTier`] spills a [`WholeMemory`] allocation to a file-backed store
//! — feature rows plus, optionally, the CSR adjacency arrays — and keeps
//! only the hottest `budget_rows` rows **resident** in the DSM. The
//! tiered gather path (`plan_gather_tiered`) resolves each requested row
//! cache → DSM → disk; rows that fall to disk are staged by
//! [`OocTier::fetch`], the batched prefetch queue: all of a gather
//! plan's disk rows are coalesced into one submission batch, sorted into
//! file order (the NVMe-friendly access pattern GIDS submits through its
//! GPU-side queues), read through a std-only positional-read abstraction
//! ([`RowFile`]), and decoded into a pooled staging buffer the copy
//! kernel then treats as one more source region.
//!
//! The contract is the same as the cache tier's: **values never move**.
//! The staged bytes really do round-trip through the file — the
//! bit-identity tests are witnessing actual disk I/O, not a simulated
//! flag — while the *cost* of the detour comes from
//! [`wg_sim::cost::StorageCostModel`] (seek latency amortized over the
//! queue depth plus a per-byte bandwidth knee).
//!
//! Follow-up (re-filed from ROADMAP item 1): sampling directly from the
//! on-disk adjacency and delta-CSR streaming updates. The adjacency
//! sections and their round-trip accessors exist below; the sampler
//! still walks the DSM copy.

use std::fs::File;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::access::Element;
use crate::handle::WholeMemory;

/// Fixed-width little-endian persistence for element types the tier can
/// spill. Kept separate from [`Element`] so the DSM stays open to types
/// nobody needs on disk.
pub trait Persist: Copy + Default {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Encode into `out` (exactly `BYTES` long).
    fn write_le(&self, out: &mut [u8]);
    /// Decode from `bytes` (exactly `BYTES` long).
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! persist_via_le_bytes {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                Self::from_le_bytes(bytes.try_into().expect("persist width"))
            }
        }
    )*};
}

persist_via_le_bytes!(f32, f64, u32, i32, u64, i64);

/// Std-only positional-read file abstraction: the reader half of a
/// memory-mapped view, without reaching for `mmap` (no new
/// dependencies). On Unix this is `pread(2)` — offset reads with no
/// shared cursor, so concurrent readers never seek over each other.
struct RowFile {
    file: File,
}

impl RowFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            // Fallback for non-Unix hosts: seek + read on a cloned handle
            // so the tier's logical cursor never moves.
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

/// Unique suffix for spill files: pid + a process-wide counter, so
/// parallel test binaries (and parallel tiers within one) never collide.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn spill_path() -> PathBuf {
    let n = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("wg_ooc_{}_{n}.bin", std::process::id()))
}

/// The file-backed storage tier for one [`WholeMemory`] allocation.
///
/// Construction writes every feature row to the spill file and marks the
/// `budget_rows` hottest rows resident; [`fetch`](Self::fetch) stages a
/// gather plan's non-resident rows. The spill file is deleted on drop.
pub struct OocTier<T> {
    file: RowFile,
    path: PathBuf,
    rows: usize,
    width: usize,
    budget_rows: usize,
    /// Per-row residency: `true` rows stay in the DSM, `false` rows are
    /// served from disk.
    resident: Vec<bool>,
    resident_rows: usize,
    /// CSR adjacency sections (byte offsets into the spill file); zero
    /// until [`write_adjacency`](Self::write_adjacency) runs.
    meta_base: u64,
    meta_entries: usize,
    edges_base: u64,
    edge_entries: usize,
    // Pooled prefetch-queue state: allocation-free once warm.
    staging: Vec<T>,
    byte_buf: Vec<u8>,
    reqs: Vec<(u32, u32)>,
}

impl<T: Element + Persist> OocTier<T> {
    /// Spill `wm` to a fresh temp file and keep the `budget_rows` rows
    /// with the highest `hotness` resident (ties break toward lower row
    /// ids — the same deterministic ranking the static cache tier uses).
    /// `hotness.len()` must equal `wm.rows()`.
    pub fn build(wm: &WholeMemory<T>, hotness: &[u64], budget_rows: usize) -> io::Result<Self> {
        let rows = wm.rows();
        let width = wm.width();
        assert_eq!(hotness.len(), rows, "hotness signal shape mismatch");
        let path = spill_path();
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;

        // Write every row in global order: the file IS the feature
        // matrix, row-major, little-endian.
        let row_bytes = width * T::BYTES;
        let mut buf = vec![0u8; row_bytes];
        let mut row_buf = vec![T::default(); width];
        {
            use std::io::Write;
            let mut w = io::BufWriter::new(&file);
            for row in 0..rows {
                wm.read_row(row, &mut row_buf);
                for (v, chunk) in row_buf.iter().zip(buf.chunks_exact_mut(T::BYTES)) {
                    v.write_le(chunk);
                }
                w.write_all(&buf)?;
            }
            w.flush()?;
        }

        // Residency: top `budget_rows` by hotness, ties by lower id.
        let mut resident = vec![false; rows];
        let resident_rows = budget_rows.min(rows);
        if resident_rows == rows {
            resident.iter_mut().for_each(|r| *r = true);
        } else if resident_rows > 0 {
            let mut order: Vec<u32> = (0..rows as u32).collect();
            order.sort_unstable_by_key(|&r| (std::cmp::Reverse(hotness[r as usize]), r));
            for &r in &order[..resident_rows] {
                resident[r as usize] = true;
            }
        }

        Ok(OocTier {
            file: RowFile { file },
            path,
            rows,
            width,
            budget_rows,
            resident,
            resident_rows,
            meta_base: 0,
            meta_entries: 0,
            edges_base: 0,
            edge_entries: 0,
            staging: Vec::new(),
            byte_buf: vec![0u8; row_bytes],
            reqs: Vec::new(),
        })
    }

    /// Rows in the backing allocation.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Elements per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The configured residency budget (may exceed `rows`).
    pub fn budget_rows(&self) -> usize {
        self.budget_rows
    }

    /// Rows actually resident in the DSM.
    pub fn resident_rows(&self) -> usize {
        self.resident_rows
    }

    /// Whether a row is DSM-resident (disk-served otherwise).
    #[inline]
    pub fn is_resident(&self, row: usize) -> bool {
        self.resident[row]
    }

    /// Stage `rows` (global row ids, in plan-slot order) from the spill
    /// file into the pooled staging buffer: slot `i` of the buffer holds
    /// row `rows[i]`. Requests are sorted into file order before
    /// submission — the batched prefetch queue — and the reads go
    /// through the positional-read path, so a warm tier stages an
    /// arbitrary batch with zero heap allocations.
    pub fn fetch(&mut self, rows: &[u32]) {
        self.staging.clear();
        self.staging.resize(rows.len() * self.width, T::default());
        self.reqs.clear();
        self.reqs
            .extend(rows.iter().enumerate().map(|(slot, &r)| (r, slot as u32)));
        self.reqs.sort_unstable();
        let row_bytes = self.width * T::BYTES;
        for &(row, slot) in &self.reqs {
            self.file
                .read_exact_at(&mut self.byte_buf, row as u64 * row_bytes as u64)
                .expect("ooc: spill file read failed");
            let dst = &mut self.staging[slot as usize * self.width..][..self.width];
            for (v, chunk) in dst.iter_mut().zip(self.byte_buf.chunks_exact(T::BYTES)) {
                *v = T::read_le(chunk);
            }
        }
    }

    /// The staging buffer filled by the last [`fetch`](Self::fetch).
    pub fn staging(&self) -> &[T] {
        &self.staging
    }

    /// Append the CSR adjacency (`meta`: per-node `[edge_start, degree]`
    /// rows; `edges`: packed neighbor ids) after the feature section, so
    /// one spill file holds the whole graph.
    pub fn write_adjacency(
        &mut self,
        meta: &WholeMemory<u64>,
        edges: &WholeMemory<u64>,
    ) -> io::Result<()> {
        use std::io::Write;
        let feature_bytes = (self.rows * self.width * T::BYTES) as u64;
        self.meta_base = feature_bytes;
        self.meta_entries = meta.rows() * meta.width();
        self.edges_base = self.meta_base + (self.meta_entries * u64::BYTES) as u64;
        self.edge_entries = edges.rows() * edges.width();

        let mut w = io::BufWriter::new(&self.file.file);
        let write_wm = |wm: &WholeMemory<u64>, w: &mut io::BufWriter<&File>| -> io::Result<()> {
            let width = wm.width();
            let mut row_buf = vec![0u64; width];
            let mut buf = vec![0u8; width * u64::BYTES];
            for row in 0..wm.rows() {
                wm.read_row(row, &mut row_buf);
                for (v, chunk) in row_buf.iter().zip(buf.chunks_exact_mut(u64::BYTES)) {
                    v.write_le(chunk);
                }
                w.write_all(&buf)?;
            }
            Ok(())
        };
        // BufWriter appends from the file cursor, which sits at the end
        // of the feature section after `build`'s sequential writes.
        write_wm(meta, &mut w)?;
        write_wm(edges, &mut w)?;
        w.flush()
    }

    /// Whether [`write_adjacency`](Self::write_adjacency) has run.
    pub fn has_adjacency(&self) -> bool {
        self.meta_entries > 0
    }

    /// Read `[edge_start, degree]` for a global metadata row from disk.
    pub fn read_meta_row(&self, row: usize) -> [u64; 2] {
        assert!(self.has_adjacency(), "adjacency not spilled");
        let mut buf = [0u8; 16];
        self.file
            .read_exact_at(&mut buf, self.meta_base + (row * 2 * u64::BYTES) as u64)
            .expect("ooc: meta read failed");
        [u64::read_le(&buf[..8]), u64::read_le(&buf[8..])]
    }

    /// Read `len` packed neighbor entries starting at global edge slot
    /// `start` from disk, appending to `out`.
    pub fn read_edges(&self, start: u64, len: usize, out: &mut Vec<u64>) {
        assert!(self.has_adjacency(), "adjacency not spilled");
        assert!(
            (start as usize + len) <= self.edge_entries,
            "edge span out of bounds"
        );
        out.reserve(len);
        let mut buf = [0u8; 8];
        for k in 0..len {
            self.file
                .read_exact_at(
                    &mut buf,
                    self.edges_base + ((start as usize + k) * u64::BYTES) as u64,
                )
                .expect("ooc: edge read failed");
            out.push(u64::read_le(&buf));
        }
    }
}

impl<T> Drop for OocTier<T> {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_sim::cost::AccessMode;
    use wg_sim::CostModel;

    fn wm(rows: usize, width: usize, ranks: u32) -> WholeMemory<f32> {
        let model = CostModel::dgx_a100();
        let wm = WholeMemory::<f32>::allocate(&model, ranks, rows, width, AccessMode::PeerAccess);
        wm.init_rows(|row, out| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = (row * 131 + j) as f32;
            }
        });
        wm
    }

    #[test]
    fn fetch_roundtrips_rows_bit_exactly() {
        let wm = wm(300, 7, 4);
        let hot = vec![0u64; 300];
        let mut tier = OocTier::build(&wm, &hot, 0).unwrap();
        // Out-of-order, duplicated request batch: slot order must follow
        // the request order, not the sorted file order.
        let rows: Vec<u32> = vec![299, 0, 150, 0, 42, 299];
        tier.fetch(&rows);
        let mut expect = vec![0.0f32; 7];
        for (slot, &r) in rows.iter().enumerate() {
            wm.read_row(r as usize, &mut expect);
            assert_eq!(
                &tier.staging()[slot * 7..(slot + 1) * 7],
                &expect[..],
                "row {r} at slot {slot}"
            );
        }
    }

    #[test]
    fn residency_keeps_the_hottest_rows() {
        let wm = wm(100, 4, 2);
        // Hotness = row id: the top-30 budget must keep rows 70..100.
        let hot: Vec<u64> = (0..100).collect();
        let tier = OocTier::build(&wm, &hot, 30).unwrap();
        assert_eq!(tier.resident_rows(), 30);
        for r in 0..100 {
            assert_eq!(tier.is_resident(r), r >= 70, "row {r}");
        }
    }

    #[test]
    fn residency_ties_break_toward_lower_ids() {
        let wm = wm(10, 2, 1);
        let hot = vec![5u64; 10];
        let tier = OocTier::build(&wm, &hot, 4).unwrap();
        for r in 0..10 {
            assert_eq!(tier.is_resident(r), r < 4, "row {r}");
        }
    }

    #[test]
    fn full_budget_keeps_everything_resident() {
        let wm = wm(50, 3, 2);
        let hot = vec![1u64; 50];
        let tier = OocTier::build(&wm, &hot, usize::MAX).unwrap();
        assert_eq!(tier.resident_rows(), 50);
        assert!((0..50).all(|r| tier.is_resident(r)));
    }

    #[test]
    fn spill_file_is_deleted_on_drop() {
        let wm = wm(10, 2, 1);
        let tier = OocTier::build(&wm, &[0; 10], 0).unwrap();
        let path = tier.path.clone();
        assert!(path.exists());
        drop(tier);
        assert!(!path.exists());
    }

    #[test]
    fn warm_fetch_does_not_grow_buffers() {
        let wm = wm(200, 8, 4);
        let mut tier = OocTier::build(&wm, &[0; 200], 0).unwrap();
        tier.fetch(&[1, 2, 3, 199, 100, 57, 12, 0]);
        let (cap_s, cap_r) = (tier.staging.capacity(), tier.reqs.capacity());
        for _ in 0..5 {
            tier.fetch(&[7, 6, 5, 4]);
            assert_eq!(tier.staging.capacity(), cap_s);
            assert_eq!(tier.reqs.capacity(), cap_r);
        }
    }

    #[test]
    fn adjacency_roundtrips_through_the_spill_file() {
        let features = wm(40, 3, 2);
        let model = CostModel::dgx_a100();
        let meta = WholeMemory::<u64>::allocate(&model, 2, 40, 2, AccessMode::PeerAccess);
        let edges = WholeMemory::<u64>::allocate(&model, 2, 80, 1, AccessMode::PeerAccess);
        meta.init_rows(|row, out| {
            out[0] = (row * 2) as u64;
            out[1] = 2;
        });
        edges.init_rows(|row, out| out[0] = (row * 17 + 3) as u64);
        let mut tier = OocTier::build(&features, &[0; 40], 40).unwrap();
        tier.write_adjacency(&meta, &edges).unwrap();
        assert!(tier.has_adjacency());
        for row in [0usize, 17, 39] {
            assert_eq!(tier.read_meta_row(row), [(row * 2) as u64, 2]);
        }
        let mut out = Vec::new();
        tier.read_edges(10, 4, &mut out);
        let expect: Vec<u64> = (10..14).map(|e| (e * 17 + 3) as u64).collect();
        assert_eq!(out, expect);
        // Feature fetches still read the feature section, not the
        // adjacency appended after it.
        tier.fetch(&[39]);
        let mut expect_row = vec![0.0f32; 3];
        features.read_row(39, &mut expect_row);
        assert_eq!(tier.staging(), &expect_row[..]);
    }
}
