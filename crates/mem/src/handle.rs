//! The distributed shared allocation.
//!
//! A [`WholeMemory`] is a matrix of `rows × width` elements whose rows are
//! chunk-partitioned across the GPUs of a node (Figure 3 of the paper).
//! Every device holds one region; after the IPC setup every device can read
//! any region directly. In this reproduction a region is a `Vec<T>` behind
//! an `RwLock` (concurrent gather kernels take read guards; initialization
//! takes write guards), and "direct peer access" is a slice read whose
//! simulated cost is charged by the calling op.

use parking_lot::RwLock;
use rayon::prelude::*;

use wg_sim::cost::AccessMode;
use wg_sim::memory::{AllocKind, MemoryAccounting, OutOfMemory};
use wg_sim::{CostModel, DeviceId, SimTime};

use crate::access::{ChunkedPartition, Element, RowLocation};
use crate::ipc::{self, MemoryPointerTable};

/// A matrix distributed across the device memories of one node.
///
/// ```
/// use wg_mem::WholeMemory;
/// use wg_mem::gather::global_gather;
/// use wg_sim::cost::AccessMode;
/// use wg_sim::{CostModel, DeviceSpec};
///
/// let model = CostModel::dgx_a100();
/// // 1000 rows of 8 floats spread over 8 simulated GPUs.
/// let wm = WholeMemory::<f32>::allocate(&model, 8, 1000, 8, AccessMode::PeerAccess);
/// wm.init_rows(|row, out| out.fill(row as f32));
///
/// // Any GPU gathers arbitrary rows with one kernel.
/// let rows = vec![3usize, 997, 421];
/// let mut out = vec![0.0f32; rows.len() * 8];
/// let spec = DeviceSpec::a100_40gb();
/// let stats = global_gather(&wm, &rows, &mut out, 0, &model, &spec);
/// assert_eq!(out[0], 3.0);
/// assert_eq!(out[8], 997.0);
/// assert!(stats.sim_time.as_micros() > 0.0);
/// ```
pub struct WholeMemory<T> {
    regions: Vec<RwLock<Vec<T>>>,
    partition: ChunkedPartition,
    width: usize,
    mode: AccessMode,
    tables: Vec<MemoryPointerTable>,
    setup_time: SimTime,
    /// Logical size used by the latency models. Normally the real byte
    /// size; probes reproducing Table I at "128 GB" scale override it so the
    /// latency model sees the paper's allocation size while the simulation
    /// holds a proportionally smaller array.
    logical_bytes: u64,
}

impl<T: Element> WholeMemory<T> {
    /// Allocate a `rows × width` matrix partitioned across `ranks` devices,
    /// running the IPC handle-exchange setup protocol.
    pub fn allocate(
        model: &CostModel,
        ranks: u32,
        rows: usize,
        width: usize,
        mode: AccessMode,
    ) -> Self {
        assert!(width > 0, "row width must be positive");
        assert!(rows > 0, "cannot allocate an empty WholeMemory");
        let partition = ChunkedPartition::new(rows, ranks);
        let elem = std::mem::size_of::<T>();
        let regions: Vec<RwLock<Vec<T>>> = (0..ranks)
            .map(|r| RwLock::new(vec![T::default(); partition.rows_on_rank(r) * width]))
            .collect();
        let bytes_per_rank = (partition.rows_per_rank * width * elem) as u64;
        let setup = ipc::exchange_handles(model, ranks, bytes_per_rank);
        let logical_bytes = (rows * width * elem) as u64;
        WholeMemory {
            regions,
            partition,
            width,
            mode,
            tables: setup.tables,
            setup_time: setup.setup_time,
            logical_bytes,
        }
    }

    /// Allocate and register the per-device byte usage with the machine's
    /// memory accounting (Table IV).
    pub fn allocate_tracked(
        model: &CostModel,
        ranks: u32,
        rows: usize,
        width: usize,
        mode: AccessMode,
        acct: &MemoryAccounting,
        kind: AllocKind,
    ) -> Result<Self, OutOfMemory> {
        let wm = Self::allocate(model, ranks, rows, width, mode);
        let elem = std::mem::size_of::<T>() as u64;
        for r in 0..ranks {
            let bytes = wm.partition.rows_on_rank(r) as u64 * width as u64 * elem;
            acct.alloc(DeviceId::Gpu(r), kind, bytes)?;
        }
        Ok(wm)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.partition.rows
    }

    /// Elements per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of device partitions.
    pub fn ranks(&self) -> u32 {
        self.partition.ranks
    }

    /// The row partitioning.
    pub fn partition(&self) -> ChunkedPartition {
        self.partition
    }

    /// Access mode (P2P vs UM) this allocation is mapped with.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Simulated time the IPC setup took.
    pub fn setup_time(&self) -> SimTime {
        self.setup_time
    }

    /// Per-device pointer tables built during setup.
    pub fn pointer_tables(&self) -> &[MemoryPointerTable] {
        &self.tables
    }

    /// Real total size in bytes.
    pub fn total_bytes(&self) -> u64 {
        (self.rows() * self.width * std::mem::size_of::<T>()) as u64
    }

    /// Logical size in bytes used by latency models (see struct docs).
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Override the logical size (probe support for Table I / Figure 8 at
    /// paper-scale allocation sizes).
    pub fn set_logical_bytes(&mut self, bytes: u64) {
        self.logical_bytes = bytes;
    }

    /// Locate the owner of a global row.
    #[inline]
    pub fn locate(&self, row: usize) -> RowLocation {
        self.partition.locate(row)
    }

    /// Copy a global row into `out` (length must equal `width`).
    pub fn read_row(&self, row: usize, out: &mut [T]) {
        assert_eq!(out.len(), self.width);
        let loc = self.locate(row);
        let region = self.regions[loc.device_rank as usize].read();
        let start = loc.local_row * self.width;
        out.copy_from_slice(&region[start..start + self.width]);
    }

    /// Overwrite a global row from `data` (length must equal `width`).
    pub fn write_row(&self, row: usize, data: &[T]) {
        assert_eq!(data.len(), self.width);
        let loc = self.locate(row);
        let mut region = self.regions[loc.device_rank as usize].write();
        let start = loc.local_row * self.width;
        region[start..start + self.width].copy_from_slice(data);
    }

    /// Initialize every row in parallel: `f(global_row, row_slice)`.
    ///
    /// This is the data-load path — each device fills its own partition
    /// concurrently, as the real library does when constructing graph
    /// storage.
    pub fn init_rows<F>(&self, f: F)
    where
        F: Fn(usize, &mut [T]) + Send + Sync,
    {
        let width = self.width;
        let partition = self.partition;
        self.regions
            .par_iter()
            .enumerate()
            .for_each(|(rank, region)| {
                let mut region = region.write();
                for (local, chunk) in region.chunks_mut(width).enumerate() {
                    let global = partition.global_row(rank as u32, local);
                    f(global, chunk);
                }
            });
    }

    /// Run `f` with read access to the region of `rank`.
    pub fn with_region<R>(&self, rank: u32, f: impl FnOnce(&[T]) -> R) -> R {
        f(&self.regions[rank as usize].read())
    }

    /// Pin every region under a read guard and return a [`RegionView`] that
    /// hands out borrowed slices — the zero-copy analogue of a kernel
    /// holding the DSM pointer table: one lock acquisition per region up
    /// front, then plain indexed loads with no per-access locking or
    /// copying. Writers block while a view is live, so callers should keep
    /// views scoped to read-only phases (e.g. one sampling pass).
    pub fn pin(&self) -> RegionView<'_, T> {
        RegionView {
            guards: self.regions.iter().map(|r| r.read()).collect(),
        }
    }

    /// Acquire read guards on all regions (a gather kernel's view of the
    /// whole address space through its pointer table). The guards live in
    /// a fixed-size inline table up to [`INLINE_REGIONS`] ranks — one
    /// node's worth of GPUs — so the per-batch gather takes zero heap
    /// allocations; only >16-rank allocations spill to a heap table.
    pub(crate) fn read_all(&self) -> RegionGuards<'_, T> {
        let mut guards = RegionGuards {
            inline: [const { None }; INLINE_REGIONS],
            heap: Vec::new(),
        };
        if self.regions.len() <= INLINE_REGIONS {
            for (slot, region) in guards.inline.iter_mut().zip(&self.regions) {
                *slot = Some(region.read());
            }
        } else {
            guards.heap = self.regions.iter().map(|r| r.read()).collect();
        }
        guards
    }

    /// Acquire a write guard on one rank's region.
    pub(crate) fn region_write(&self, rank: u32) -> parking_lot::RwLockWriteGuard<'_, Vec<T>> {
        self.regions[rank as usize].write()
    }
}

/// How many region read-guards the gather path stores inline: one DGX
/// node's worth of GPUs with headroom. Allocations on up to this many
/// ranks get their whole-address-space view without heap allocation.
pub(crate) const INLINE_REGIONS: usize = 16;

/// An allocation-free table of read guards over every region — the gather
/// kernel's view of the address space. Guards sit in a fixed inline array
/// for ≤ [`INLINE_REGIONS`] ranks; larger (multi-node-scale) allocations
/// spill to a heap table.
pub(crate) struct RegionGuards<'a, T> {
    inline: [Option<parking_lot::RwLockReadGuard<'a, Vec<T>>>; INLINE_REGIONS],
    heap: Vec<parking_lot::RwLockReadGuard<'a, Vec<T>>>,
}

impl<T> RegionGuards<'_, T> {
    /// The memory region owned by `rank`.
    #[inline]
    pub(crate) fn region(&self, rank: usize) -> &[T] {
        if self.heap.is_empty() {
            self.inline[rank].as_ref().expect("rank out of range")
        } else {
            &self.heap[rank]
        }
    }
}

/// Read guards over every region of a [`WholeMemory`], created by
/// [`WholeMemory::pin`]. Region slices are borrowed straight out of the
/// guards, so reads through a view neither lock nor copy.
pub struct RegionView<'a, T> {
    guards: Vec<parking_lot::RwLockReadGuard<'a, Vec<T>>>,
}

impl<T: Element> RegionView<'_, T> {
    /// The full memory region owned by `rank`.
    #[inline]
    pub fn region(&self, rank: u32) -> &[T] {
        &self.guards[rank as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::dgx_a100()
    }

    #[test]
    fn allocate_partitions_rows() {
        let wm = WholeMemory::<f32>::allocate(&model(), 4, 10, 3, AccessMode::PeerAccess);
        assert_eq!(wm.rows(), 10);
        assert_eq!(wm.width(), 3);
        assert_eq!(wm.ranks(), 4);
        assert_eq!(wm.total_bytes(), 10 * 3 * 4);
        assert_eq!(wm.pointer_tables().len(), 4);
        assert!(wm.setup_time() > SimTime::ZERO);
    }

    #[test]
    fn read_write_roundtrip() {
        let wm = WholeMemory::<f32>::allocate(&model(), 3, 7, 2, AccessMode::PeerAccess);
        for row in 0..7 {
            wm.write_row(row, &[row as f32, -(row as f32)]);
        }
        let mut buf = [0.0f32; 2];
        for row in 0..7 {
            wm.read_row(row, &mut buf);
            assert_eq!(buf, [row as f32, -(row as f32)]);
        }
    }

    #[test]
    fn init_rows_covers_every_row() {
        let wm = WholeMemory::<u32>::allocate(&model(), 5, 23, 4, AccessMode::PeerAccess);
        wm.init_rows(|row, out| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = (row * 10 + j) as u32;
            }
        });
        let mut buf = [0u32; 4];
        for row in 0..23 {
            wm.read_row(row, &mut buf);
            assert_eq!(
                buf,
                [
                    10 * row as u32,
                    10 * row as u32 + 1,
                    10 * row as u32 + 2,
                    10 * row as u32 + 3
                ]
            );
        }
    }

    #[test]
    fn tracked_allocation_registers_per_gpu_bytes() {
        let acct = MemoryAccounting::new((0..4).map(|r| (DeviceId::Gpu(r), 1 << 20)));
        let wm = WholeMemory::<f32>::allocate_tracked(
            &model(),
            4,
            100,
            8,
            AccessMode::PeerAccess,
            &acct,
            AllocKind::Features,
        )
        .unwrap();
        assert_eq!(wm.rows(), 100);
        let usage = acct.gpu_usage_by(AllocKind::Features);
        let total: u64 = usage.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 100 * 8 * 4);
    }

    #[test]
    fn tracked_allocation_can_oom() {
        let acct = MemoryAccounting::new((0..2).map(|r| (DeviceId::Gpu(r), 16)));
        let res = WholeMemory::<f32>::allocate_tracked(
            &model(),
            2,
            100,
            8,
            AccessMode::PeerAccess,
            &acct,
            AllocKind::Features,
        );
        assert!(res.is_err());
    }

    #[test]
    fn logical_bytes_override() {
        let mut wm = WholeMemory::<u64>::allocate(&model(), 8, 1024, 1, AccessMode::UnifiedMemory);
        assert_eq!(wm.logical_bytes(), 8192);
        wm.set_logical_bytes(128 * (1 << 30));
        assert_eq!(wm.logical_bytes(), 128 * (1 << 30));
        assert_eq!(wm.mode(), AccessMode::UnifiedMemory);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn zero_width_rejected() {
        WholeMemory::<f32>::allocate(&model(), 2, 4, 0, AccessMode::PeerAccess);
    }
}
