//! # wg-mem — the WholeMemory multi-GPU distributed shared memory library
//!
//! This crate reproduces §III-B of the WholeGraph paper: a library that
//! treats the device memory of all GPUs on a node as **one logically shared
//! address space**. Each (simulated) GPU process allocates its partition,
//! exposes it through a CUDA-IPC-style handle, the handles are AllGathered,
//! and every device ends up with a *memory pointer table* through which it
//! can directly load/store any peer's memory — the GPUDirect P2P path.
//!
//! On top of the address space the crate implements the paper's
//! communication primitives:
//!
//! * [`handle`] — [`WholeMemory`], the distributed allocation itself, with
//!   chunked row partitioning and global addressing;
//! * [`ipc`] — the handle-exchange setup protocol (AllGather of handles,
//!   pointer-table construction, setup-time cost);
//! * [`access`] — element-level global reads/writes and address
//!   translation;
//! * [`gather`] — the **one-kernel global gather** of §III-C3 (each GPU
//!   directly reads peer memory; NVLink handles the communication);
//! * [`cache`] — the hotness-aware per-device feature cache (static
//!   replication of the top-K hot set, or dynamic CLOCK eviction) that
//!   turns remote gathers into local-HBM hits — cost changes, values
//!   never do;
//! * [`ooc`] — the file-backed out-of-core tier *below* the DSM: feature
//!   rows and CSR adjacency spilled to disk, a batched prefetch queue
//!   staging each gather plan's non-resident rows, priced by the NVMe
//!   storage cost model — again, cost changes, values never do;
//! * [`nccl`] — the 5-step distributed-memory gather baseline of Figure 4
//!   (bucket → exchange counts → alltoallv IDs → local gather → alltoallv
//!   features → reorder), used by Figure 10;
//! * [`probe`] — the microbenchmarks behind Table I (UM vs P2P pointer
//!   chase) and Figure 8 (random-read bandwidth vs segment size).
//!
//! All data movement is real (bytes are copied between per-device regions
//! by rayon-parallel loops standing in for CUDA kernels); the simulated
//! elapsed time of every operation comes from the calibrated cost models in
//! [`wg_sim`].

pub mod access;
pub mod cache;
pub mod embedding;
pub mod gather;
pub mod halo;
pub mod handle;
pub mod ipc;
pub mod nccl;
pub mod ooc;
pub mod probe;

pub use access::{ChunkLocator, Element};
pub use cache::{CacheMode, FeatureCache};
pub use embedding::EmbeddingTable;
pub use gather::{
    global_gather_planned, global_gather_planned_cached, global_gather_planned_tiered, plan_gather,
    plan_gather_cached, plan_gather_tiered, GatherStats, RowPlan,
};
pub use halo::{count_halo_rows, halo_exchange, HaloStats};
pub use handle::{RegionView, WholeMemory};
pub use ipc::{IpcHandle, MemoryPointerTable, SetupReport};
pub use nccl::NcclGatherStats;
pub use ooc::{OocTier, Persist};
