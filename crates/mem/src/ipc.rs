//! The distributed-shared-memory setup protocol of §III-B.
//!
//! On the real system every GPU is driven by its own OS process, so device
//! pointers are not directly shareable; WholeGraph exchanges **CUDA IPC
//! handles**: each process `cudaMalloc`s its partition, exports a handle
//! with `cudaIpcGetMemHandle`, AllGathers the handles, opens every peer
//! handle with `cudaIpcOpenMemHandle`, and writes the resulting mapped
//! pointers into a per-device *memory pointer table* (just `num_gpus`
//! pointers — 64 bytes on a DGX-A100).
//!
//! We reproduce the protocol with one thread per simulated GPU process and
//! crossbeam channels as the interconnect: each worker "allocates" its
//! region id, broadcasts its handle, collects everyone else's, and builds
//! its pointer table. The returned [`SetupReport`] carries the simulated
//! setup time — which the paper notes is "tens to one or two hundred
//! milliseconds" and paid once before training.

use crossbeam::channel;
use wg_sim::collective::allgather_intra_node;
use wg_sim::{CostModel, SimTime};

/// An exported handle for one device's partition — the stand-in for a
/// `cudaIpcMemHandle_t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpcHandle {
    /// Rank of the exporting device.
    pub device_rank: u32,
    /// Identifier of the exported region (index into the region vector of
    /// the owning [`crate::WholeMemory`]).
    pub region_id: u32,
    /// Size of the exported region in bytes.
    pub bytes: u64,
}

/// The per-device table of mapped peer pointers (Figure 3). In the
/// simulation a "mapped pointer" is the peer's region id; the table is what
/// a gather kernel indexes with a row's owning rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryPointerTable {
    /// Rank of the device owning this table.
    pub device_rank: u32,
    /// `entries[r]` is the mapped handle of rank `r`'s region.
    pub entries: Vec<IpcHandle>,
}

impl MemoryPointerTable {
    /// Size of the table itself in bytes (the paper: 8 pointers × 8 bytes =
    /// 64 bytes on a DGX-A100 — "this will not hurt scalability").
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<u64>()
    }
}

/// Result of the setup protocol.
#[derive(Clone, Debug)]
pub struct SetupReport {
    /// One pointer table per device, indexed by rank.
    pub tables: Vec<MemoryPointerTable>,
    /// Simulated time the setup took (cudaMalloc + handle AllGather +
    /// opening peer handles).
    pub setup_time: SimTime,
}

/// `cudaMalloc` time model: a fixed driver overhead plus a per-byte cost of
/// mapping pages. Calibrated so an 8-GPU, multi-GB setup lands in the
/// paper's "tens to one or two hundred milliseconds".
fn malloc_time(bytes_per_rank: u64) -> SimTime {
    const FIXED_S: f64 = 1.0e-3;
    const PER_GIB_S: f64 = 8.0e-3;
    SimTime::from_secs(FIXED_S + bytes_per_rank as f64 / (1u64 << 30) as f64 * PER_GIB_S)
}

/// Per-handle `cudaIpcOpenMemHandle` cost (driver round-trip).
fn open_handle_time() -> SimTime {
    SimTime::from_micros(200.0)
}

/// Run the handle-exchange protocol across `ranks` simulated GPU processes,
/// each exporting a region of `bytes_per_rank` bytes.
///
/// One thread per rank exchanges handles over channels (a real AllGather
/// dataflow, not a loop over shared state), then each thread builds its
/// pointer table independently — exactly the structure of the CUDA code.
#[allow(clippy::needless_range_loop)] // the mesh construction reads more clearly indexed
pub fn exchange_handles(model: &CostModel, ranks: u32, bytes_per_rank: u64) -> SetupReport {
    assert!(ranks > 0);
    let n = ranks as usize;

    // Mesh of channels: senders[from][to].
    let mut senders: Vec<Vec<channel::Sender<IpcHandle>>> = (0..n).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<channel::Receiver<IpcHandle>>> =
        (0..n).map(|_| Vec::new()).collect();
    for _from in 0..n {
        for to in 0..n {
            let (tx, rx) = channel::bounded(1);
            senders[_from].push(tx);
            receivers[to].push(rx);
        }
    }

    let mut tables: Vec<Option<MemoryPointerTable>> = vec![None; n];
    crossbeam::scope(|scope| {
        let mut joins = Vec::new();
        for (rank, (my_senders, my_receivers)) in
            senders.drain(..).zip(receivers.drain(..)).enumerate()
        {
            joins.push(scope.spawn(move |_| {
                // "cudaMalloc" + "cudaIpcGetMemHandle": our region id is our
                // rank (the owning WholeMemory stores regions rank-indexed).
                let my_handle = IpcHandle {
                    device_rank: rank as u32,
                    region_id: rank as u32,
                    bytes: bytes_per_rank,
                };
                // AllGather: send our handle to every rank (including
                // ourselves, as NCCL AllGather does) ...
                for tx in &my_senders {
                    tx.send(my_handle).expect("peer hung up during setup");
                }
                // ... and collect one handle from every rank.
                let mut entries: Vec<IpcHandle> = my_receivers
                    .iter()
                    .map(|rx| rx.recv().expect("peer hung up during setup"))
                    .collect();
                entries.sort_by_key(|h| h.device_rank);
                MemoryPointerTable {
                    device_rank: rank as u32,
                    entries,
                }
            }));
        }
        for (rank, j) in joins.into_iter().enumerate() {
            tables[rank] = Some(j.join().expect("setup worker panicked"));
        }
    })
    .expect("setup scope panicked");

    let handle_bytes = std::mem::size_of::<IpcHandle>() as u64;
    let setup_time = malloc_time(bytes_per_rank)
        + allgather_intra_node(model, handle_bytes, ranks)
        + open_handle_time() * (ranks.saturating_sub(1)) as f64;

    SetupReport {
        tables: tables.into_iter().map(Option::unwrap).collect(),
        setup_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rank_gets_every_handle() {
        let model = CostModel::dgx_a100();
        let report = exchange_handles(&model, 8, 1 << 30);
        assert_eq!(report.tables.len(), 8);
        for (rank, table) in report.tables.iter().enumerate() {
            assert_eq!(table.device_rank as usize, rank);
            assert_eq!(table.entries.len(), 8);
            for (peer, h) in table.entries.iter().enumerate() {
                assert_eq!(h.device_rank as usize, peer);
                assert_eq!(h.region_id as usize, peer);
                assert_eq!(h.bytes, 1 << 30);
            }
        }
    }

    #[test]
    fn pointer_table_is_64_bytes_on_dgx() {
        // Paper §III-B: "For DGX-A100 with 8 GPUs, it is just 8×8 = 64
        // bytes. So this will not hurt scalability."
        let model = CostModel::dgx_a100();
        let report = exchange_handles(&model, 8, 1 << 20);
        assert_eq!(report.tables[0].size_bytes(), 64);
    }

    #[test]
    fn setup_time_is_tens_of_milliseconds() {
        // Paper §III-B: setup "is likely tens to one or two hundred of
        // milliseconds ... depending on the memory size".
        let model = CostModel::dgx_a100();
        let small = exchange_handles(&model, 8, 1 << 30); // 1 GiB/rank
        let large = exchange_handles(&model, 8, 16 * (1 << 30)); // 16 GiB/rank
        assert!(small.setup_time.as_millis() > 1.0);
        assert!(large.setup_time.as_millis() < 250.0);
        assert!(large.setup_time > small.setup_time);
    }

    #[test]
    fn single_rank_setup_works() {
        let model = CostModel::dgx_a100();
        let report = exchange_handles(&model, 1, 1024);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].entries.len(), 1);
    }
}
