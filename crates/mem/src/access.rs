//! Element types and global address translation.

/// Marker trait for element types storable in a [`crate::WholeMemory`].
///
/// Stands in for "plain old device data": fixed-size, copyable, and safely
/// zero-initializable. Implemented for the scalar types GNN training needs.
/// The [`wg_tensor::simd::Pod`] bound lets the gather kernel move rows as
/// raw byte streams through the SIMD copy path.
pub trait Element: Copy + Default + Send + Sync + 'static + wg_tensor::simd::Pod {}

impl Element for f32 {}
impl Element for f64 {}
impl Element for u8 {}
impl Element for i32 {}
impl Element for u32 {}
impl Element for i64 {}
impl Element for u64 {}

/// Location of a global row: which device region owns it and at which local
/// row offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowLocation {
    /// Owning device rank (index into the memory pointer table).
    pub device_rank: u32,
    /// Row index within the owning region.
    pub local_row: usize,
}

/// Chunked row partitioning: rows `[d·rows_per_rank, (d+1)·rows_per_rank)`
/// live on rank `d`. This is exactly the layout a `cudaMalloc` per rank +
/// IPC mapping produces, and is how WholeGraph lays out both the CSR arrays
/// and the feature matrix (higher layers map *node IDs* onto this address
/// space with a hash, giving the §III-B "partition by node ID hash value").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkedPartition {
    /// Total rows in the allocation.
    pub rows: usize,
    /// Rows assigned to each rank (last rank may own fewer).
    pub rows_per_rank: usize,
    /// Number of ranks.
    pub ranks: u32,
}

impl ChunkedPartition {
    /// Partition `rows` rows over `ranks` devices in equal contiguous
    /// chunks (ceil division; the last rank absorbs the remainder).
    pub fn new(rows: usize, ranks: u32) -> Self {
        assert!(ranks > 0, "need at least one rank");
        let rows_per_rank = rows.div_ceil(ranks as usize).max(1);
        ChunkedPartition {
            rows,
            rows_per_rank,
            ranks,
        }
    }

    /// Locate a global row.
    #[inline]
    pub fn locate(&self, row: usize) -> RowLocation {
        debug_assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        let device_rank = (row / self.rows_per_rank) as u32;
        RowLocation {
            device_rank,
            local_row: row - device_rank as usize * self.rows_per_rank,
        }
    }

    /// Number of rows rank `r` owns.
    pub fn rows_on_rank(&self, r: u32) -> usize {
        let start = r as usize * self.rows_per_rank;
        if start >= self.rows {
            0
        } else {
            (self.rows - start).min(self.rows_per_rank)
        }
    }

    /// Inverse of [`locate`](Self::locate).
    pub fn global_row(&self, device_rank: u32, local_row: usize) -> usize {
        device_rank as usize * self.rows_per_rank + local_row
    }
}

/// Division-free locator for a [`ChunkedPartition`].
///
/// [`ChunkedPartition::locate`] costs an integer division per row, which
/// dominates the address-translation side of a multi-million-row gather.
/// `ChunkLocator` precomputes a chunk base table (`bases[r] = r ·
/// rows_per_rank`) and a multiply-high magic reciprocal of
/// `rows_per_rank`: locating a row is then one widening multiply, a table
/// walk of at most a couple of steps to absorb the reciprocal's rounding,
/// and one subtract for the local row. Bit-exact against the dividing
/// oracle (see the proptest below).
#[derive(Clone, Debug)]
pub struct ChunkLocator {
    partition: ChunkedPartition,
    /// `⌊(2⁶⁴ − 1) / rows_per_rank⌋` — multiply-high by this
    /// underestimates `row / rows_per_rank` by at most 2.
    magic: u64,
    /// `bases[r] = r · rows_per_rank`, one entry per rank plus a sentinel.
    bases: Vec<usize>,
}

impl ChunkLocator {
    /// Precompute the locator tables for `partition`.
    pub fn new(partition: ChunkedPartition) -> Self {
        let d = partition.rows_per_rank as u64;
        let magic = u64::MAX / d;
        let bases = (0..=partition.ranks as usize)
            .map(|r| r.saturating_mul(partition.rows_per_rank))
            .collect();
        ChunkLocator {
            partition,
            magic,
            bases,
        }
    }

    /// The partition this locator was built for.
    pub fn partition(&self) -> ChunkedPartition {
        self.partition
    }

    /// Locate a global row — same result as
    /// [`ChunkedPartition::locate`], no division.
    #[inline]
    pub fn locate(&self, row: usize) -> RowLocation {
        debug_assert!(row < self.partition.rows, "row {row} out of bounds");
        let est = ((row as u128 * self.magic as u128) >> 64) as usize;
        let mut r = est.min(self.partition.ranks as usize - 1);
        while r + 1 < self.bases.len() && self.bases[r + 1] <= row {
            r += 1;
        }
        while self.bases[r] > row {
            r -= 1;
        }
        RowLocation {
            device_rank: r as u32,
            local_row: row - self.bases[r],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_partition() {
        let p = ChunkedPartition::new(8, 4);
        assert_eq!(p.rows_per_rank, 2);
        assert_eq!(
            p.locate(0),
            RowLocation {
                device_rank: 0,
                local_row: 0
            }
        );
        assert_eq!(
            p.locate(3),
            RowLocation {
                device_rank: 1,
                local_row: 1
            }
        );
        assert_eq!(
            p.locate(7),
            RowLocation {
                device_rank: 3,
                local_row: 1
            }
        );
        for r in 0..4 {
            assert_eq!(p.rows_on_rank(r), 2);
        }
    }

    #[test]
    fn uneven_partition_last_rank_short() {
        let p = ChunkedPartition::new(10, 4); // ceil(10/4)=3 per rank
        assert_eq!(p.rows_per_rank, 3);
        assert_eq!(p.rows_on_rank(0), 3);
        assert_eq!(p.rows_on_rank(3), 1);
        assert_eq!(p.locate(9).device_rank, 3);
    }

    #[test]
    fn more_ranks_than_rows() {
        let p = ChunkedPartition::new(2, 8);
        assert_eq!(p.rows_on_rank(0), 1);
        assert_eq!(p.rows_on_rank(1), 1);
        assert_eq!(p.rows_on_rank(2), 0);
        assert_eq!(p.rows_on_rank(7), 0);
    }

    #[test]
    fn chunk_locator_handles_rows_per_rank_one() {
        // rows_per_rank == 1 exercises the magic-reciprocal edge case.
        let p = ChunkedPartition::new(8, 8);
        assert_eq!(p.rows_per_rank, 1);
        let loc = ChunkLocator::new(p);
        for row in 0..8 {
            assert_eq!(loc.locate(row), p.locate(row));
        }
    }

    proptest! {
        #[test]
        fn chunk_locator_matches_dividing_oracle(
            rows in 1usize..1_000_000,
            ranks in 1u32..64,
            sel in 0.0f64..1.0,
        ) {
            let p = ChunkedPartition::new(rows, ranks);
            let loc = ChunkLocator::new(p);
            let row = ((rows as f64 - 1.0) * sel) as usize;
            prop_assert_eq!(loc.locate(row), p.locate(row));
            // Chunk boundaries are where the reciprocal estimate is most
            // likely to be off by one — probe them all.
            for r in 0..ranks as usize {
                for probe in [r * p.rows_per_rank, (r + 1) * p.rows_per_rank - 1] {
                    if probe < rows {
                        prop_assert_eq!(loc.locate(probe), p.locate(probe));
                    }
                }
            }
        }

        #[test]
        fn locate_roundtrips(rows in 1usize..10_000, ranks in 1u32..16, sel in 0.0f64..1.0) {
            let p = ChunkedPartition::new(rows, ranks);
            let row = ((rows as f64 - 1.0) * sel) as usize;
            let loc = p.locate(row);
            prop_assert!(loc.device_rank < ranks);
            prop_assert!(loc.local_row < p.rows_on_rank(loc.device_rank));
            prop_assert_eq!(p.global_row(loc.device_rank, loc.local_row), row);
        }

        #[test]
        fn rank_row_counts_sum_to_total(rows in 1usize..10_000, ranks in 1u32..16) {
            let p = ChunkedPartition::new(rows, ranks);
            let total: usize = (0..ranks).map(|r| p.rows_on_rank(r)).sum();
            prop_assert_eq!(total, rows);
        }
    }
}
