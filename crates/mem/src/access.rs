//! Element types and global address translation.

/// Marker trait for element types storable in a [`crate::WholeMemory`].
///
/// Stands in for "plain old device data": fixed-size, copyable, and safely
/// zero-initializable. Implemented for the scalar types GNN training needs.
pub trait Element: Copy + Default + Send + Sync + 'static {}

impl Element for f32 {}
impl Element for f64 {}
impl Element for u8 {}
impl Element for i32 {}
impl Element for u32 {}
impl Element for i64 {}
impl Element for u64 {}

/// Location of a global row: which device region owns it and at which local
/// row offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowLocation {
    /// Owning device rank (index into the memory pointer table).
    pub device_rank: u32,
    /// Row index within the owning region.
    pub local_row: usize,
}

/// Chunked row partitioning: rows `[d·rows_per_rank, (d+1)·rows_per_rank)`
/// live on rank `d`. This is exactly the layout a `cudaMalloc` per rank +
/// IPC mapping produces, and is how WholeGraph lays out both the CSR arrays
/// and the feature matrix (higher layers map *node IDs* onto this address
/// space with a hash, giving the §III-B "partition by node ID hash value").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkedPartition {
    /// Total rows in the allocation.
    pub rows: usize,
    /// Rows assigned to each rank (last rank may own fewer).
    pub rows_per_rank: usize,
    /// Number of ranks.
    pub ranks: u32,
}

impl ChunkedPartition {
    /// Partition `rows` rows over `ranks` devices in equal contiguous
    /// chunks (ceil division; the last rank absorbs the remainder).
    pub fn new(rows: usize, ranks: u32) -> Self {
        assert!(ranks > 0, "need at least one rank");
        let rows_per_rank = rows.div_ceil(ranks as usize).max(1);
        ChunkedPartition {
            rows,
            rows_per_rank,
            ranks,
        }
    }

    /// Locate a global row.
    #[inline]
    pub fn locate(&self, row: usize) -> RowLocation {
        debug_assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        let device_rank = (row / self.rows_per_rank) as u32;
        RowLocation {
            device_rank,
            local_row: row - device_rank as usize * self.rows_per_rank,
        }
    }

    /// Number of rows rank `r` owns.
    pub fn rows_on_rank(&self, r: u32) -> usize {
        let start = r as usize * self.rows_per_rank;
        if start >= self.rows {
            0
        } else {
            (self.rows - start).min(self.rows_per_rank)
        }
    }

    /// Inverse of [`locate`](Self::locate).
    pub fn global_row(&self, device_rank: u32, local_row: usize) -> usize {
        device_rank as usize * self.rows_per_rank + local_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_partition() {
        let p = ChunkedPartition::new(8, 4);
        assert_eq!(p.rows_per_rank, 2);
        assert_eq!(
            p.locate(0),
            RowLocation {
                device_rank: 0,
                local_row: 0
            }
        );
        assert_eq!(
            p.locate(3),
            RowLocation {
                device_rank: 1,
                local_row: 1
            }
        );
        assert_eq!(
            p.locate(7),
            RowLocation {
                device_rank: 3,
                local_row: 1
            }
        );
        for r in 0..4 {
            assert_eq!(p.rows_on_rank(r), 2);
        }
    }

    #[test]
    fn uneven_partition_last_rank_short() {
        let p = ChunkedPartition::new(10, 4); // ceil(10/4)=3 per rank
        assert_eq!(p.rows_per_rank, 3);
        assert_eq!(p.rows_on_rank(0), 3);
        assert_eq!(p.rows_on_rank(3), 1);
        assert_eq!(p.locate(9).device_rank, 3);
    }

    #[test]
    fn more_ranks_than_rows() {
        let p = ChunkedPartition::new(2, 8);
        assert_eq!(p.rows_on_rank(0), 1);
        assert_eq!(p.rows_on_rank(1), 1);
        assert_eq!(p.rows_on_rank(2), 0);
        assert_eq!(p.rows_on_rank(7), 0);
    }

    proptest! {
        #[test]
        fn locate_roundtrips(rows in 1usize..10_000, ranks in 1u32..16, sel in 0.0f64..1.0) {
            let p = ChunkedPartition::new(rows, ranks);
            let row = ((rows as f64 - 1.0) * sel) as usize;
            let loc = p.locate(row);
            prop_assert!(loc.device_rank < ranks);
            prop_assert!(loc.local_row < p.rows_on_rank(loc.device_rank));
            prop_assert_eq!(p.global_row(loc.device_rank, loc.local_row), row);
        }

        #[test]
        fn rank_row_counts_sum_to_total(rows in 1usize..10_000, ranks in 1u32..16) {
            let p = ChunkedPartition::new(rows, ranks);
            let total: usize = (0..ranks).map(|r| p.rows_on_rank(r)).sum();
            prop_assert_eq!(total, rows);
        }
    }
}
