//! Halo (boundary-node) feature exchange for multi-node data-parallel
//! training.
//!
//! When features are partitioned *across machines* (one level above the
//! intra-node DSM of §III-B), a minibatch's input rows split into rows
//! the node owns and **halo rows** owned by a peer machine. DistGNN
//! calls these boundary vertices; fetching them is the dominant
//! cross-node traffic besides gradient AllReduce. Following the repo's
//! "caching changes cost, not values" convention, the halo fetch is
//! charged as an IB transfer in simulated time while the feature values
//! themselves still come from the local full replica — numerics are
//! unchanged, only the clock (and the counters) move.

use wg_sim::{CostModel, SimTime};

/// Accounting for one minibatch's halo exchange.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HaloStats {
    /// Input rows in the minibatch (owned + halo).
    pub total_rows: u64,
    /// Rows owned by this machine (served from local memory).
    pub local_rows: u64,
    /// Rows owned by a peer machine (fetched over IB).
    pub halo_rows: u64,
    /// Bytes pulled over IB for the halo rows.
    pub halo_bytes: u64,
    /// Simulated IB time of the exchange. Exactly zero when there is
    /// nothing to fetch or only one machine exists — single-node
    /// execution must not be charged any IB time.
    pub time: SimTime,
}

/// Split `total_rows` minibatch input rows into local and halo parts and
/// price the halo fetch: one IB latency for the batched request plus the
/// payload over the node's aggregate IB bandwidth.
///
/// `row_bytes` is the feature row width in bytes; `nodes` the machine
/// count. With `nodes <= 1` or `halo_rows == 0` the returned time is
/// [`SimTime::ZERO`] — the N=1 bit/time identity of the multi-node
/// executor depends on this.
pub fn halo_exchange(
    model: &CostModel,
    total_rows: u64,
    halo_rows: u64,
    row_bytes: usize,
    nodes: u32,
) -> HaloStats {
    assert!(halo_rows <= total_rows, "more halo rows than input rows");
    let halo_bytes = halo_rows * row_bytes as u64;
    let time = if nodes <= 1 || halo_rows == 0 {
        SimTime::ZERO
    } else {
        SimTime::from_secs(
            model.ib_latency_s + halo_bytes as f64 / model.topology.node_ib_bandwidth(),
        )
    };
    let stats = HaloStats {
        total_rows,
        local_rows: total_rows - halo_rows,
        halo_rows,
        halo_bytes,
        time,
    };
    if halo_rows > 0 {
        wg_trace::counter!("mem.halo.rows", halo_rows as f64);
        wg_trace::counter!("mem.halo.bytes", halo_bytes as f64);
    }
    stats
}

/// Count how many of `owners` differ from `home` — the halo-row count of
/// a minibatch whose input rows are owned by the given ranks.
pub fn count_halo_rows(owners: impl Iterator<Item = u32>, home: u32) -> (u64, u64) {
    let mut total = 0u64;
    let mut halo = 0u64;
    for r in owners {
        total += 1;
        if r != home {
            halo += 1;
        }
    }
    (total, halo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_halo_is_free() {
        let m = CostModel::dgx_a100();
        let s = halo_exchange(&m, 1024, 0, 400, 1);
        assert!(s.time.is_zero());
        assert_eq!(s.local_rows, 1024);
        assert_eq!(s.halo_bytes, 0);
        // Even with nonzero halo rows, one machine pays nothing (there
        // is no peer to fetch from — the "partition" is the whole set).
        let s = halo_exchange(&m, 1024, 512, 400, 1);
        assert!(s.time.is_zero());
    }

    #[test]
    fn halo_cost_scales_with_rows() {
        let m = CostModel::dgx_a100();
        let a = halo_exchange(&m, 4096, 1024, 400, 4);
        let b = halo_exchange(&m, 4096, 2048, 400, 4);
        assert!(b.time > a.time);
        assert_eq!(b.halo_bytes, 2 * a.halo_bytes);
        // Latency floor plus bandwidth term, in the right ballpark.
        let ideal = a.halo_bytes as f64 / m.topology.node_ib_bandwidth();
        assert!(a.time.as_secs() >= ideal);
        assert!(a.time.as_secs() <= ideal + 2.0 * m.ib_latency_s);
    }

    #[test]
    fn count_halo_rows_splits_by_owner() {
        let owners = [0u32, 1, 0, 2, 0, 1];
        let (total, halo) = count_halo_rows(owners.iter().copied(), 0);
        assert_eq!(total, 6);
        assert_eq!(halo, 3);
    }

    #[test]
    fn halo_counters_accrue() {
        wg_trace::enable_metrics();
        let m = CostModel::dgx_a100();
        halo_exchange(&m, 100, 40, 8, 2);
        halo_exchange(&m, 100, 10, 8, 2);
        wg_trace::disable_all();
        let snap = wg_trace::metrics::snapshot();
        let rows = snap
            .counters
            .iter()
            .find(|(n, _)| n == "mem.halo.rows")
            .expect("halo counter interned")
            .1;
        // The registry is process-global; other tests may add too.
        assert!(rows >= 50.0, "halo rows {rows}");
    }
}
