//! The distributed-memory gather baseline (Figure 4, left; Figure 10).
//!
//! When the GPUs are treated as a *distributed* memory system, no GPU can
//! dereference another's pointers, so gathering remote feature rows takes
//! explicit NCCL-style communication in five steps:
//!
//! 1. **Bucket** the requested node IDs by home GPU (so each GPU pair needs
//!    only one send/recv);
//! 2. **Exchange counts**, then AlltoAllV the **node IDs** to their home
//!    GPUs;
//! 3. Every GPU performs a **local gather** of the rows requested from it;
//! 4. AlltoAllV the **feature rows** back to the requesters (the step whose
//!    bandwidth the paper reports in Figure 10);
//! 5. **Reorder** the received rows into the original request order.
//!
//! Each step's real data movement is executed, and each step is charged
//! simulated time, so Figure 10's comparison (one-kernel DSM gather vs this
//! pipeline) falls out of the same cost model.

use rayon::prelude::*;

use wg_sim::collective::alltoallv_intra_node;
use wg_sim::device::DeviceSpec;
use wg_sim::{CostModel, SimTime};

use crate::access::Element;
use crate::handle::WholeMemory;

/// Efficiency of a random-row gather out of local HBM relative to streaming
/// bandwidth (each row is a separate cache line burst).
const LOCAL_GATHER_EFFICIENCY: f64 = 0.35;
/// Efficiency of the final reorder (sequential read, scattered write).
const REORDER_EFFICIENCY: f64 = 0.5;
/// Fraction of NVLink peak an NCCL AlltoAllV achieves in steady state
/// (protocol overhead, chunking) — Figure 10 shows it close to, but below,
/// the measured link limit.
const NCCL_LINK_EFFICIENCY: f64 = 0.8;

/// Per-step and total timing of one distributed-memory gather.
#[derive(Clone, Copy, Debug)]
pub struct NcclGatherStats {
    /// Step 1: bucketing node IDs by home GPU.
    pub bucket_time: SimTime,
    /// Step 2: exchanging counts + AlltoAllV of node IDs.
    pub id_exchange_time: SimTime,
    /// Step 3: local gather on every home GPU.
    pub local_gather_time: SimTime,
    /// Step 4: AlltoAllV of the gathered feature rows.
    pub feature_exchange_time: SimTime,
    /// Step 5: reorder into request order.
    pub reorder_time: SimTime,
    /// Bytes of feature payload that crossed NVLink in step 4.
    pub bus_bytes: u64,
}

impl NcclGatherStats {
    /// End-to-end simulated time (the five steps run back-to-back).
    pub fn total_time(&self) -> SimTime {
        self.bucket_time
            + self.id_exchange_time
            + self.local_gather_time
            + self.feature_exchange_time
            + self.reorder_time
    }

    /// BusBW of the step-4 AlltoAllV alone — what the paper's Figure 10
    /// bars report for the NCCL-based method.
    pub fn alltoallv_bus_bandwidth(&self) -> f64 {
        self.bus_bytes as f64 / self.feature_exchange_time.as_secs()
    }
}

/// Gather `indices` from `wm` into `out` using the 5-step
/// distributed-memory protocol. Produces bitwise the same `out` as
/// [`crate::gather::global_gather`].
pub fn nccl_gather<T: Element>(
    wm: &WholeMemory<T>,
    indices: &[usize],
    out: &mut [T],
    executing_rank: u32,
    model: &CostModel,
    spec: &DeviceSpec,
) -> NcclGatherStats {
    let width = wm.width();
    assert_eq!(
        out.len(),
        indices.len() * width,
        "gather output buffer has wrong size"
    );
    let ranks = wm.ranks() as usize;
    let partition = wm.partition();
    let id_bytes = std::mem::size_of::<u64>() as u64;
    let row_bytes = (width * std::mem::size_of::<T>()) as u64;

    // ---- Step 1: bucket node IDs by home GPU, remembering original slots.
    let mut buckets: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ranks]; // (orig_pos, row)
    for (pos, &row) in indices.iter().enumerate() {
        buckets[partition.locate(row).device_rank as usize].push((pos, row));
    }
    // Reading the ID list and writing the bucketed copy.
    let bucket_time = model.memory_stream_time(2 * indices.len() as u64 * id_bytes, spec);

    // ---- Step 2: exchange counts (latency-bound) + AlltoAllV of the IDs.
    let counts_time = SimTime::from_secs(model.nccl_op_overhead_s);
    let ids_time = alltoallv_intra_node(model, indices.len() as u64 * id_bytes, ranks as u32);
    let id_exchange_time = counts_time + ids_time;

    // ---- Step 3: every home GPU gathers the rows requested from it, out
    // of its local region. Real copy below; time charged at random-access
    // HBM efficiency.
    let gathered: Vec<Vec<T>> = buckets
        .par_iter()
        .enumerate()
        .map(|(rank, bucket)| {
            let mut buf = vec![T::default(); bucket.len() * width];
            wm.with_region(rank as u32, |region| {
                for ((_, row), dst) in bucket.iter().zip(buf.chunks_mut(width)) {
                    let local = partition.locate(*row).local_row;
                    dst.copy_from_slice(&region[local * width..local * width + width]);
                }
            });
            buf
        })
        .collect();
    let payload = indices.len() as u64 * row_bytes;
    let local_gather_time = model.memory_stream_time(
        (2.0 * payload as f64 / LOCAL_GATHER_EFFICIENCY) as u64,
        spec,
    );

    // ---- Step 4: AlltoAllV the feature rows back. Only rows whose home is
    // a *different* GPU cross the link.
    let remote_rows: usize = buckets
        .iter()
        .enumerate()
        .filter(|(rank, _)| *rank != executing_rank as usize)
        .map(|(_, b)| b.len())
        .sum();
    let bus_bytes = remote_rows as u64 * row_bytes;
    let ideal = alltoallv_intra_node(model, payload, ranks as u32);
    let feature_exchange_time = SimTime::from_secs(ideal.as_secs() / NCCL_LINK_EFFICIENCY);

    // ---- Step 5: reorder into the original request order (real copy).
    for (bucket, rows) in buckets.iter().zip(gathered.iter()) {
        for ((pos, _), src) in bucket.iter().zip(rows.chunks(width)) {
            out[pos * width..(pos + 1) * width].copy_from_slice(src);
        }
    }
    let reorder_time =
        model.memory_stream_time((2.0 * payload as f64 / REORDER_EFFICIENCY) as u64, spec);

    NcclGatherStats {
        bucket_time,
        id_exchange_time,
        local_gather_time,
        feature_exchange_time,
        reorder_time,
        bus_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::global_gather;
    use rand::prelude::*;
    use rand::rngs::SmallRng;
    use wg_sim::cost::AccessMode;

    fn setup(rows: usize, width: usize) -> (WholeMemory<f32>, CostModel, DeviceSpec) {
        let model = CostModel::dgx_a100();
        let wm = WholeMemory::<f32>::allocate(&model, 8, rows, width, AccessMode::PeerAccess);
        wm.init_rows(|row, out| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = (row * 31 + j) as f32;
            }
        });
        (wm, model, DeviceSpec::a100_40gb())
    }

    #[test]
    fn nccl_gather_matches_dsm_gather() {
        let (wm, model, spec) = setup(5000, 16);
        let mut rng = SmallRng::seed_from_u64(11);
        let indices: Vec<usize> = (0..1234).map(|_| rng.gen_range(0..5000)).collect();
        let mut a = vec![0.0f32; indices.len() * 16];
        let mut b = vec![0.0f32; indices.len() * 16];
        global_gather(&wm, &indices, &mut a, 2, &model, &spec);
        nccl_gather(&wm, &indices, &mut b, 2, &model, &spec);
        assert_eq!(a, b, "both gather implementations must agree bit-for-bit");
    }

    #[test]
    fn dsm_gather_is_at_least_2x_faster() {
        // Figure 10: "the speedups of time are above 2X on all of datasets".
        let (wm, model, spec) = setup(200_000, 128); // 512-byte rows as in papers100M
        let mut rng = SmallRng::seed_from_u64(3);
        let indices: Vec<usize> = (0..150_000).map(|_| rng.gen_range(0..200_000)).collect();
        let mut a = vec![0.0f32; indices.len() * 128];
        let mut b = vec![0.0f32; indices.len() * 128];
        let dsm = global_gather(&wm, &indices, &mut a, 0, &model, &spec);
        let nccl = nccl_gather(&wm, &indices, &mut b, 0, &model, &spec);
        let speedup = nccl.total_time() / dsm.sim_time;
        assert!(speedup > 2.0, "DSM/NCCL gather speedup = {speedup:.2}");
    }

    #[test]
    fn alltoallv_bandwidth_close_to_dsm_bandwidth() {
        // Figure 10: the two bandwidths "are close to each other and all
        // close to the measured NVLink upper limit".
        let (wm, model, spec) = setup(200_000, 128);
        let mut rng = SmallRng::seed_from_u64(5);
        let indices: Vec<usize> = (0..150_000).map(|_| rng.gen_range(0..200_000)).collect();
        let mut a = vec![0.0f32; indices.len() * 128];
        let mut b = vec![0.0f32; indices.len() * 128];
        let dsm = global_gather(&wm, &indices, &mut a, 0, &model, &spec);
        let nccl = nccl_gather(&wm, &indices, &mut b, 0, &model, &spec);
        let bw_dsm = dsm.bus_bandwidth();
        let bw_nccl = nccl.alltoallv_bus_bandwidth();
        let ratio = bw_dsm / bw_nccl;
        assert!(ratio > 0.7 && ratio < 1.4, "BusBW ratio {ratio:.2}");
        // Both within 40% of the measured NVLink saturation point.
        assert!(bw_dsm > 0.6 * model.gather_saturated_busbw);
        assert!(bw_nccl > 0.6 * model.gather_saturated_busbw);
    }

    #[test]
    fn step_times_are_all_positive_and_dominated_by_data_steps() {
        let (wm, model, spec) = setup(50_000, 128);
        let indices: Vec<usize> = (0..40_000).collect();
        let mut out = vec![0.0f32; indices.len() * 128];
        let s = nccl_gather(&wm, &indices, &mut out, 0, &model, &spec);
        for t in [
            s.bucket_time,
            s.id_exchange_time,
            s.local_gather_time,
            s.feature_exchange_time,
            s.reorder_time,
        ] {
            assert!(t > SimTime::ZERO);
        }
        // The ID-side steps are small next to the feature payload steps.
        assert!(s.bucket_time + s.id_exchange_time < s.local_gather_time + s.feature_exchange_time);
    }
}
