//! The thread-count leg of the feature-cache determinism contract.
//!
//! CLOCK eviction decisions happen inside the *sequential* planning loop
//! of `plan_gather_cached`, so cache contents, hit/miss splits and the
//! gathered values must not depend on how many workers execute the copy
//! kernel. This binary forces a **two-worker** pool via `init_threads(2)`
//! before any gather runs and replays the same access stream a
//! single-worker process would see (tier-1 runs the suite again under
//! `WG_THREADS=1`, pinning the other leg): every per-batch hit count,
//! eviction victim and output byte is asserted against values computed
//! from the plan alone — worker count never appears in the expectation.

use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_mem::cache::{CacheMode, FeatureCache};
use wg_mem::gather::{global_gather_planned_cached, plan_gather_cached, RowPlan};
use wg_mem::WholeMemory;
use wg_sim::cost::AccessMode;
use wg_sim::device::DeviceSpec;
use wg_sim::CostModel;

const ROWS: usize = 600;
const WIDTH: usize = 12;
const RANKS: u32 = 4;

fn setup() -> (WholeMemory<f32>, CostModel, DeviceSpec) {
    let model = CostModel::dgx_a100();
    let wm = WholeMemory::<f32>::allocate(&model, RANKS, ROWS, WIDTH, AccessMode::PeerAccess);
    wm.init_rows(|row, out| {
        for (j, v) in out.iter_mut().enumerate() {
            *v = (row * 131 + j) as f32;
        }
    });
    (wm, model, DeviceSpec::a100_40gb())
}

/// Replay a Zipf-ish access stream through a small CLOCK cache on a
/// two-worker pool; the per-batch (hits, occupancy, membership-sample)
/// trajectory must equal the hardcoded one recorded from the sequential
/// schedule — any schedule-dependence in eviction would diverge here.
#[test]
fn clock_trajectory_is_identical_on_two_workers() {
    let width = rayon::init_threads(2);
    assert!(width >= 1, "pool must initialize");
    let (wm, model, spec) = setup();
    // Capacity far below the working set so eviction churns constantly.
    let mut cache = FeatureCache::new_clock(&wm, RANKS, 24);
    assert_eq!(cache.mode(), CacheMode::Clock);
    let mut plan = RowPlan::default();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut trajectory = Vec::new();
    for batch in 0..20 {
        let rank = batch % RANKS;
        let indices: Vec<usize> = (0..80)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    rng.gen_range(0..30) // hot head
                } else {
                    rng.gen_range(30..ROWS)
                }
            })
            .collect();
        let mut out = vec![0.0f32; indices.len() * WIDTH];
        plan_gather_cached(&wm, &indices, &mut plan, &mut cache, rank);
        let stats =
            global_gather_planned_cached(&wm, &plan, &mut out, rank, &model, &spec, &mut cache);
        // Values never depend on the cache.
        for (i, &row) in indices.iter().enumerate() {
            assert_eq!(out[i * WIDTH], (row * 131) as f32, "row {row}");
        }
        assert_eq!(
            stats.cache_hits + (stats.rows - stats.cache_hits),
            stats.rows
        );
        trajectory.push((stats.cache_hits, cache.occupied(rank)));
    }
    // The per-device trajectories recorded from the sequential reference
    // schedule (WG_THREADS=1). Planning is sequential by construction,
    // so two workers must reproduce them exactly.
    let expect = sequential_reference_trajectory();
    assert_eq!(
        trajectory, expect,
        "CLOCK trajectory diverged across worker counts"
    );
}

/// Recompute the expected trajectory with a second, independently warmed
/// cache using the identical stream. `plan_gather_cached` is a plain
/// sequential loop over `indices`, so this expectation is worker-count
/// free even though the test process runs a two-worker pool.
fn sequential_reference_trajectory() -> Vec<(usize, usize)> {
    let (wm, model, spec) = setup();
    let mut cache = FeatureCache::new_clock(&wm, RANKS, 24);
    let mut plan = RowPlan::default();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut trajectory = Vec::new();
    for batch in 0..20 {
        let rank = batch % RANKS;
        let indices: Vec<usize> = (0..80)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    rng.gen_range(0..30)
                } else {
                    rng.gen_range(30..ROWS)
                }
            })
            .collect();
        plan_gather_cached(&wm, &indices, &mut plan, &mut cache, rank);
        let hits = plan.cache_hits();
        // Execute sequentially (run_sequential = the reference schedule)
        // so the expectation never touches the pool.
        let mut out = vec![0.0f32; indices.len() * WIDTH];
        rayon::run_sequential(|| {
            global_gather_planned_cached(&wm, &plan, &mut out, rank, &model, &spec, &mut cache)
        });
        trajectory.push((hits, cache.occupied(rank)));
    }
    trajectory
}

/// Static caches are immutable after build: two-worker gathers must
/// leave contents untouched and hit the same rows every time.
#[test]
fn static_hits_are_stable_on_two_workers() {
    rayon::init_threads(2);
    let (wm, model, spec) = setup();
    let hot: Vec<u64> = (0..ROWS as u64).rev().collect(); // hottest = row 0
    let mut cache = FeatureCache::new_static(&wm, &hot, 50);
    let indices: Vec<usize> = (0..200).map(|i| (i * 13) % ROWS).collect();
    let expected_hits = indices.iter().filter(|&&r| r < 50).count();
    let mut plan = RowPlan::default();
    let mut out = vec![0.0f32; indices.len() * WIDTH];
    for rank in 0..RANKS {
        plan_gather_cached(&wm, &indices, &mut plan, &mut cache, rank);
        let stats =
            global_gather_planned_cached(&wm, &plan, &mut out, rank, &model, &spec, &mut cache);
        assert_eq!(stats.cache_hits, expected_hits);
        assert_eq!(cache.occupied(rank), 50);
    }
}
