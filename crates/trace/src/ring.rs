//! Thread-local event ring buffers and the global drain.
//!
//! Each thread records into its own fixed-capacity ring (allocated once,
//! on the thread's first event; `WG_TRACE_BUFFER` overrides the default
//! capacity). The buffer sits behind the thread's own `Mutex`, which is
//! uncontended on the record path — the only cross-thread touch is
//! [`drain`], which walks the registry of every buffer ever created.
//! When a ring fills, the oldest events are overwritten and counted in
//! [`ThreadTrace::dropped`] — recording never blocks and never grows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One recorded event. `Copy`, fixed-size, no heap — names are interned
/// `'static` strings supplied by the probe sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A completed span (start + duration, both in nanoseconds since the
    /// trace epoch).
    Span {
        /// Span label.
        name: &'static str,
        /// Start, ns since the trace epoch.
        start_ns: u64,
        /// Duration in ns.
        dur_ns: u64,
    },
    /// An instantaneous marker.
    Instant {
        /// Marker label.
        name: &'static str,
        /// Timestamp, ns since the trace epoch.
        t_ns: u64,
    },
}

/// Default per-thread ring capacity (events). At 32 bytes per event this
/// is ~2 MiB per recording thread.
const DEFAULT_CAPACITY: usize = 1 << 16;

/// Per-thread ring capacity: `WG_TRACE_BUFFER` if set, else the default.
fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("WG_TRACE_BUFFER")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

/// A fixed-capacity overwrite-oldest ring of events.
#[derive(Debug)]
pub(crate) struct RingVec {
    buf: Vec<Event>,
    /// Index of the oldest event when the ring has wrapped.
    head: usize,
    /// Live event count (≤ capacity).
    len: usize,
    /// Events overwritten since the last drain.
    dropped: u64,
}

impl RingVec {
    pub(crate) fn new(cap: usize) -> Self {
        RingVec {
            buf: Vec::with_capacity(cap),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Append, overwriting the oldest event when full. Never reallocates.
    pub(crate) fn push(&mut self, ev: Event) {
        let cap = self.buf.capacity();
        if self.buf.len() < cap {
            self.buf.push(ev);
            self.len += 1;
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Move the events out in record order, emptying the ring (capacity
    /// is retained).
    pub(crate) fn take(&mut self) -> (Vec<Event>, u64) {
        let mut out = Vec::with_capacity(self.len);
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        (out, std::mem::take(&mut self.dropped))
    }
}

/// One thread's buffer as registered in the global registry.
struct ThreadBuf {
    id: usize,
    label: String,
    ring: Mutex<RingVec>,
}

/// Registry of every thread buffer ever created (buffers outlive their
/// threads so late drains still see their events).
static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
/// Monotone thread-track id source (0 is reserved for the main thread's
/// label aesthetics only; ids are whatever registration order yields).
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: Arc<ThreadBuf> = register_current_thread();
}

fn register_current_thread() -> Arc<ThreadBuf> {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed) as usize;
    let label = std::thread::current()
        .name()
        .map_or_else(|| format!("thread-{id}"), str::to_owned);
    let buf = Arc::new(ThreadBuf {
        id,
        label,
        ring: Mutex::new(RingVec::new(capacity())),
    });
    REGISTRY.lock().unwrap().push(Arc::clone(&buf));
    buf
}

/// Record an event on the current thread. Callers gate on
/// [`crate::spans_enabled`]; this function itself always records.
#[inline]
pub(crate) fn record(ev: Event) {
    LOCAL.with(|b| b.ring.lock().unwrap().push(ev));
}

/// Everything one thread recorded since the last drain.
#[derive(Debug)]
pub struct ThreadTrace {
    /// Stable per-thread track id (registration order).
    pub id: usize,
    /// Thread name, or `thread-<id>` for unnamed threads.
    pub label: String,
    /// Events in record order.
    pub events: Vec<Event>,
    /// Events lost to ring overwrites since the last drain.
    pub dropped: u64,
}

/// Collect and clear every thread's recorded events, in thread
/// registration order. Threads keep their (empty) buffers and ids.
pub fn drain() -> Vec<ThreadTrace> {
    let registry = REGISTRY.lock().unwrap();
    registry
        .iter()
        .map(|b| {
            let (events, dropped) = b.ring.lock().unwrap().take();
            ThreadTrace {
                id: b.id,
                label: b.label.clone(),
                events,
                dropped,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start_ns: u64) -> Event {
        Event::Span {
            name,
            start_ns,
            dur_ns: 1,
        }
    }

    #[test]
    fn ring_preserves_order_until_full_then_overwrites_oldest() {
        let mut r = RingVec::new(3);
        r.push(span("a", 0));
        r.push(span("b", 1));
        let (evs, dropped) = r.take();
        assert_eq!(dropped, 0);
        assert_eq!(evs, vec![span("a", 0), span("b", 1)]);

        for (i, name) in ["a", "b", "c", "d", "e"].into_iter().enumerate() {
            r.push(span(name, i as u64));
        }
        let (evs, dropped) = r.take();
        assert_eq!(dropped, 2, "a and b overwritten");
        assert_eq!(evs, vec![span("c", 2), span("d", 3), span("e", 4)]);
        // Capacity survives the take; the ring is reusable.
        r.push(span("f", 9));
        let (evs, dropped) = r.take();
        assert_eq!((evs.len(), dropped), (1, 0));
    }

    #[test]
    fn named_threads_register_with_their_name() {
        let _guard = crate::test_guard();
        std::thread::Builder::new()
            .name("ring-test-worker".into())
            .spawn(|| record(span("from-worker", 5)))
            .unwrap()
            .join()
            .unwrap();
        let traces = drain();
        let worker = traces
            .iter()
            .find(|t| t.label == "ring-test-worker")
            .expect("worker thread registered");
        assert!(worker.events.contains(&span("from-worker", 5)));
    }
}
