//! The global metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Values live in atomics and update lock-free; the registry itself is a
//! small mutex-guarded vector that is only locked to *intern* a name on
//! its first use (and to snapshot). Probe sites therefore allocate only
//! on the first observation of each metric — warm hot loops are
//! allocation-free, which is what lets the wallclock harness keep its
//! allocation budgets with metrics enabled.
//!
//! All recording is gated on [`crate::metrics_enabled`]: a disabled
//! probe is one atomic load.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An `f64` stored in an `AtomicU64` (by bit pattern).
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }
}

enum Kind {
    Counter(AtomicF64),
    Gauge(AtomicF64),
    Histogram {
        /// Upper bucket bounds (inclusive); an implicit `+inf` bucket
        /// follows. Must be the same `'static` slice on every call.
        bounds: &'static [f64],
        /// One count per bound, plus the overflow bucket.
        buckets: Box<[AtomicU64]>,
        count: AtomicU64,
        sum: AtomicF64,
    },
}

struct Entry {
    /// Static for the common macro path; owned for runtime-built names
    /// (e.g. per-node counters like `multinode.node3.halo.bytes`).
    name: Cow<'static, str>,
    kind: Kind,
}

/// Interned metrics, in first-use order. Entries are never removed, so
/// probe sites may cache nothing and still stay allocation-free after
/// the first touch.
static REGISTRY: Mutex<Vec<Arc<Entry>>> = Mutex::new(Vec::new());

fn intern(name: Cow<'static, str>, make: impl FnOnce() -> Kind) -> Arc<Entry> {
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(e) = reg.iter().find(|e| e.name == name) {
        return Arc::clone(e);
    }
    let entry = Arc::new(Entry { name, kind: make() });
    reg.push(Arc::clone(&entry));
    entry
}

/// Add `v` to the counter `name` (created on first use).
#[inline]
pub fn add(name: &'static str, v: f64) {
    if !crate::metrics_enabled() {
        return;
    }
    let e = intern(Cow::Borrowed(name), || Kind::Counter(AtomicF64::default()));
    match &e.kind {
        Kind::Counter(c) => c.add(v),
        _ => panic!("metric {name} is not a counter"),
    }
}

/// Add `v` to the counter `name`, where `name` is built at runtime (e.g.
/// a per-node counter like `multinode.node3.allreduce.bytes`).
///
/// The name is copied into the registry the first time it is seen;
/// subsequent calls only compare strings. Callers on hot paths should
/// pre-build the `String` once (not `format!` per call) so the probe
/// itself stays allocation-free after the first touch.
#[inline]
pub fn add_dyn(name: &str, v: f64) {
    if !crate::metrics_enabled() {
        return;
    }
    // Fast path: already interned — no allocation.
    {
        let reg = REGISTRY.lock().unwrap();
        if let Some(e) = reg.iter().find(|e| e.name == name) {
            match &e.kind {
                Kind::Counter(c) => {
                    c.add(v);
                    return;
                }
                _ => panic!("metric {name} is not a counter"),
            }
        }
    }
    let e = intern(Cow::Owned(name.to_string()), || {
        Kind::Counter(AtomicF64::default())
    });
    match &e.kind {
        Kind::Counter(c) => c.add(v),
        _ => panic!("metric {name} is not a counter"),
    }
}

/// Set the gauge `name` to `v` (created on first use).
#[inline]
pub fn set(name: &'static str, v: f64) {
    if !crate::metrics_enabled() {
        return;
    }
    let e = intern(Cow::Borrowed(name), || Kind::Gauge(AtomicF64::default()));
    match &e.kind {
        Kind::Gauge(g) => g.set(v),
        _ => panic!("metric {name} is not a gauge"),
    }
}

/// Record `v` into the fixed-bucket histogram `name`. `bounds` are the
/// inclusive upper bucket bounds (ascending); values above the last
/// bound land in an implicit overflow bucket.
#[inline]
pub fn observe(name: &'static str, bounds: &'static [f64], v: f64) {
    if !crate::metrics_enabled() {
        return;
    }
    let e = intern(Cow::Borrowed(name), || Kind::Histogram {
        bounds,
        buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
        count: AtomicU64::new(0),
        sum: AtomicF64::default(),
    });
    match &e.kind {
        Kind::Histogram {
            bounds: b,
            buckets,
            count,
            sum,
        } => {
            assert!(
                std::ptr::eq(*b, bounds),
                "histogram {name} re-registered with different bounds"
            );
            let idx = b.partition_point(|&bound| bound < v);
            buckets[idx].fetch_add(1, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
            sum.add(v);
        }
        _ => panic!("metric {name} is not a histogram"),
    }
}

/// A histogram's frozen state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Upper bucket bounds (an overflow bucket follows the last).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` long.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-th quantile (`0.0 ≤ q ≤ 1.0`) from the bucket
    /// counts, Prometheus-style: find the bucket holding the `q·count`-th
    /// observation (ranks are 1-based; `q = 0` reads as the first
    /// observation), then interpolate linearly between the bucket's lower
    /// and upper bound under a uniform-within-bucket assumption. The
    /// first bucket interpolates from 0; a quantile landing in the
    /// overflow bucket returns the last finite bound (the histogram
    /// cannot resolve beyond it). Returns `None` on an empty histogram.
    ///
    /// The estimate is deterministic — a pure function of the frozen
    /// bucket counts — so serving-latency p50/p99 reported from it are
    /// reproducible across runs with identical observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) < rank {
                continue;
            }
            let upper = match self.bounds.get(i) {
                Some(&b) => b,
                // Overflow bucket: unbounded above, so the best the
                // fixed buckets can say is "at least the last bound".
                None => return Some(self.bounds.last().copied().unwrap_or(0.0)),
            };
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            let frac = if c == 0 {
                1.0
            } else {
                (rank - prev as f64) / c as f64
            };
            return Some(lower + (upper - lower) * frac);
        }
        self.bounds.last().copied()
    }

    /// Median estimate — `quantile(0.5)`.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Tail-latency estimate — `quantile(0.99)`.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// A frozen copy of the whole registry, each section sorted by name.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter name → accumulated value.
    pub counters: Vec<(String, f64)>,
    /// Gauge name → last value.
    pub gauges: Vec<(String, f64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    /// Histograms carry `count`, `sum`, `mean`, and per-bucket
    /// `{"le": bound, "count": n}` rows (the last bound is `"inf"`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", crate::chrome::escape(name), num(*v)));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", crate::chrome::escape(name), num(*v)));
        }
        out.push_str("}, \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"buckets\": [",
                crate::chrome::escape(&h.name),
                h.count,
                num(h.sum),
                num(mean)
            ));
            for (j, &c) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let le = h
                    .bounds
                    .get(j)
                    .map_or_else(|| "\"inf\"".to_string(), |b| num(*b));
                out.push_str(&format!("{{\"le\": {le}, \"count\": {c}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// JSON-safe number formatting (no NaN/inf literals).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Freeze the current registry contents.
pub fn snapshot() -> Snapshot {
    let reg = REGISTRY.lock().unwrap();
    let mut snap = Snapshot::default();
    for e in reg.iter() {
        match &e.kind {
            Kind::Counter(c) => snap.counters.push((e.name.to_string(), c.get())),
            Kind::Gauge(g) => snap.gauges.push((e.name.to_string(), g.get())),
            Kind::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => snap.histograms.push(HistogramSnapshot {
                name: e.name.to_string(),
                bounds: bounds.to_vec(),
                buckets: buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                count: count.load(Ordering::Relaxed),
                sum: sum.get(),
            }),
        }
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

/// Clear the registry (names un-intern; the next probe re-creates them).
pub fn reset() {
    REGISTRY.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    static BOUNDS: [f64; 3] = [1.0, 10.0, 100.0];

    #[test]
    fn counters_gauges_histograms_accumulate_and_snapshot() {
        let _guard = crate::test_guard();
        crate::enable_metrics();
        reset();
        add("m.counter", 1.5);
        add("m.counter", 2.5);
        set("m.gauge", 3.0);
        set("m.gauge", 9.0);
        for v in [0.5, 1.0, 5.0, 50.0, 5000.0] {
            observe("m.hist", &BOUNDS, v);
        }
        let snap = snapshot();
        assert_eq!(snap.counters, vec![("m.counter".to_string(), 4.0)]);
        assert_eq!(snap.gauges, vec![("m.gauge".to_string(), 9.0)]);
        let h = &snap.histograms[0];
        // 0.5 and 1.0 land in the ≤1 bucket (inclusive bounds), then one
        // observation per remaining bucket including overflow.
        assert_eq!(h.buckets, vec![2, 1, 1, 1]);
        assert_eq!(h.count, 5);
        assert!((h.sum - 5056.5).abs() < 1e-9);
        let json = snap.to_json();
        assert!(json.contains("\"m.counter\": 4"));
        assert!(json.contains("{\"le\": \"inf\", \"count\": 1}"));
        crate::disable_all();
        reset();
    }

    #[test]
    fn dynamic_names_intern_once_and_accumulate() {
        let _guard = crate::test_guard();
        crate::enable_metrics();
        reset();
        let name = format!("m.node{}.bytes", 3);
        add_dyn(&name, 10.0);
        add_dyn(&name, 32.0);
        // A dynamic and a static probe with the same spelling share one
        // entry.
        add("m.node3.bytes", 8.0);
        let snap = snapshot();
        assert_eq!(snap.counters, vec![("m.node3.bytes".to_string(), 50.0)]);
        crate::disable_all();
        reset();
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        // 10 observations ≤1, 80 in (1, 10], 10 in (10, 100]: the median
        // rank (50) sits 40/80 of the way through the middle bucket.
        let h = HistogramSnapshot {
            name: "q".into(),
            bounds: vec![1.0, 10.0, 100.0],
            buckets: vec![10, 80, 10, 0],
            count: 100,
            sum: 0.0,
        };
        assert!((h.p50().unwrap() - 5.5).abs() < 1e-9);
        // Rank 99 is the 89th observation past the first two buckets:
        // 9/10 of the way through (10, 100].
        assert!((h.p99().unwrap() - 91.0).abs() < 1e-9);
        // Rank 10 closes out the first bucket exactly.
        assert!((h.quantile(0.1).unwrap() - 1.0).abs() < 1e-9);
        // q=0 reads the first observation's bucket, interpolated from 0.
        assert!((h.quantile(0.0).unwrap() - 0.1).abs() < 1e-9);
        assert!((h.quantile(1.0).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        let empty = HistogramSnapshot {
            name: "e".into(),
            bounds: vec![1.0, 2.0],
            buckets: vec![0, 0, 0],
            count: 0,
            sum: 0.0,
        };
        assert_eq!(empty.p50(), None);
        // All mass in the overflow bucket: the histogram can only answer
        // "at least the last bound".
        let overflow = HistogramSnapshot {
            name: "o".into(),
            bounds: vec![1.0, 2.0],
            buckets: vec![0, 0, 7],
            count: 7,
            sum: 0.0,
        };
        assert_eq!(overflow.p50(), Some(2.0));
        assert_eq!(overflow.p99(), Some(2.0));
    }

    #[test]
    fn disabled_metrics_do_not_intern() {
        let _guard = crate::test_guard();
        crate::disable_all();
        reset();
        add("never.counter", 1.0);
        observe("never.hist", &BOUNDS, 1.0);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn concurrent_counter_adds_do_not_lose_updates() {
        let _guard = crate::test_guard();
        crate::enable_metrics();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        add("m.racy", 1.0);
                    }
                });
            }
        });
        assert_eq!(snapshot().counters[0].1, 4000.0);
        crate::disable_all();
        reset();
    }
}
