//! Chrome trace-event JSON assembly.
//!
//! Produces the `{"traceEvents": [...]}` object format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly. The builder is deliberately dumb — callers place events on
//! `(pid, tid)` tracks themselves — so host wall-clock spans (from the
//! thread rings) and *simulated* device intervals (from `wg-sim`
//! utilization traces) can sit side by side in one file, each process
//! labeled with its time base.

use crate::ring::{Event, ThreadTrace};

/// Escape a string for embedding in a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental Chrome trace-event writer.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events added so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Label a process track (`"M"` metadata event).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Label a thread track within a process.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// A complete span (`"X"` event). Times are microseconds; `cat` is
    /// the filterable category; `args` is a pre-serialized JSON object
    /// body (`""` for none), e.g. `"\"busy\":true"`.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: &str,
    ) {
        let args = if args.is_empty() {
            String::new()
        } else {
            format!(",\"args\":{{{args}}}")
        };
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{ts_us:.3},\"dur\":{dur_us:.3}{args}}}",
            escape(name),
            escape(cat)
        ));
    }

    /// An instantaneous marker (`"i"` event, thread scope).
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts_us: f64) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
             \"cat\":\"{}\",\"ts\":{ts_us:.3}}}",
            escape(name),
            escape(cat)
        ));
    }

    /// Add one drained host thread's events under `pid`, using the
    /// thread's registry id as `tid` and labeling the track.
    pub fn add_host_thread(&mut self, pid: u32, trace: &ThreadTrace) {
        let tid = trace.id as u32;
        let label = if trace.dropped > 0 {
            format!("{} (dropped {})", trace.label, trace.dropped)
        } else {
            trace.label.clone()
        };
        self.thread_name(pid, tid, &label);
        for ev in &trace.events {
            match *ev {
                Event::Span {
                    name,
                    start_ns,
                    dur_ns,
                } => self.complete(
                    pid,
                    tid,
                    name,
                    "host",
                    start_ns as f64 / 1e3,
                    dur_ns as f64 / 1e3,
                    "",
                ),
                Event::Instant { name, t_ns } => {
                    self.instant(pid, tid, name, "host", t_ns as f64 / 1e3);
                }
            }
        }
    }

    /// Serialize. The result is a single JSON object Perfetto loads
    /// as-is.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builder_emits_loadable_event_stream() {
        let mut t = ChromeTrace::new();
        assert!(t.is_empty());
        t.process_name(1, "host");
        t.thread_name(1, 0, "main");
        t.complete(1, 0, "pipeline.sample", "host", 10.0, 5.5, "");
        t.complete(2, 3, "training", "sim", 0.0, 100.0, "\"busy\":true");
        t.instant(1, 0, "epoch-done", "host", 20.0);
        assert_eq!(t.len(), 5);
        let json = t.finish();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"busy\":true}"));
        assert!(json.contains("\"process_name\""));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn host_thread_events_become_x_and_i_events() {
        let trace = ThreadTrace {
            id: 2,
            label: "worker-2".into(),
            events: vec![
                Event::Span {
                    name: "s",
                    start_ns: 1_500,
                    dur_ns: 2_000,
                },
                Event::Instant {
                    name: "m",
                    t_ns: 4_000,
                },
            ],
            dropped: 1,
        };
        let mut t = ChromeTrace::new();
        t.add_host_thread(7, &trace);
        let json = t.finish();
        assert!(json.contains("worker-2 (dropped 1)"));
        assert!(json.contains("\"ts\":1.500,\"dur\":2.000"));
        assert!(json.contains("\"ph\":\"i\""));
    }
}
