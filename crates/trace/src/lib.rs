//! # wg-trace — workspace-wide observability
//!
//! A zero-dependency span/event tracer and metrics registry, designed for
//! hot paths that must stay allocation-free:
//!
//! * [`span!`] opens a scoped span recorded into a **thread-local ring
//!   buffer** (fixed capacity, preallocated on the thread's first event;
//!   oldest events are overwritten when full). Dropping the guard stamps
//!   the span's duration — no channels, no locks on the record path
//!   beyond the thread's own uncontended buffer mutex.
//! * [`counter!`], [`gauge!`] and [`histogram!`] feed the global
//!   [`metrics`] registry: lock-free atomic updates after the first use
//!   of a name interns its entry (warm-up traffic pays the one-time
//!   allocation; steady state allocates nothing).
//! * [`chrome::ChromeTrace`] serializes spans — and any simulated-device
//!   intervals the caller supplies — into Chrome trace-event JSON that
//!   `chrome://tracing` and Perfetto load directly.
//!
//! ## Enablement contract
//!
//! Everything is **off by default**. A disabled probe is one relaxed
//! atomic load and a predictable branch — no timestamps, no buffer
//! registration, no registry lookups — so the workspace's allocation
//! budgets and checksums are byte-identical with tracing compiled in.
//! Spans and metrics enable independently ([`enable_spans`],
//! [`enable_metrics`]; [`enable_all`] for both). Building this crate with
//! the `disabled` feature pins the enablement checks to `const false`,
//! compiling every probe out entirely.
//!
//! ```
//! wg_trace::enable_all();
//! {
//!     let _g = wg_trace::span!("demo.work");
//!     wg_trace::counter!("demo.bytes", 4096.0);
//! }
//! let threads = wg_trace::drain();
//! assert_eq!(threads.iter().map(|t| t.events.len()).sum::<usize>(), 1);
//! wg_trace::disable_all();
//! ```

pub mod chrome;
pub mod metrics;
pub mod ring;

pub use ring::{drain, Event, ThreadTrace};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Enablement bit for span recording.
const SPANS: u8 = 0b01;
/// Enablement bit for metric recording.
const METRICS: u8 = 0b10;

/// Global enablement state (both bits clear at startup).
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether span recording is live. With the `disabled` feature this is
/// `const false` and the compiler removes every probe behind it.
#[inline(always)]
pub fn spans_enabled() -> bool {
    if cfg!(feature = "disabled") {
        return false;
    }
    STATE.load(Ordering::Relaxed) & SPANS != 0
}

/// Whether metric recording is live.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    if cfg!(feature = "disabled") {
        return false;
    }
    STATE.load(Ordering::Relaxed) & METRICS != 0
}

/// Turn span recording on.
pub fn enable_spans() {
    STATE.fetch_or(SPANS, Ordering::Relaxed);
}

/// Turn metric recording on.
pub fn enable_metrics() {
    STATE.fetch_or(METRICS, Ordering::Relaxed);
}

/// Turn both spans and metrics on.
pub fn enable_all() {
    STATE.fetch_or(SPANS | METRICS, Ordering::Relaxed);
}

/// Turn everything off (recorded data stays until drained/reset).
pub fn disable_all() {
    STATE.store(0, Ordering::Relaxed);
}

/// The process-wide trace epoch: all span timestamps are nanoseconds
/// since the first probe fired.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the trace epoch (monotonic).
#[inline]
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// A scoped span: created by [`span!`], records one [`Event::Span`] into
/// the current thread's ring buffer when dropped. When spans are
/// disabled the guard is inert (no timestamp is ever taken).
pub struct SpanGuard {
    open: Option<(&'static str, u64)>,
}

impl SpanGuard {
    /// Open a span now (or an inert guard if spans are disabled).
    #[inline]
    pub fn begin(name: &'static str) -> SpanGuard {
        SpanGuard {
            open: spans_enabled().then(|| (name, now_ns())),
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((name, start_ns)) = self.open.take() {
            ring::record(Event::Span {
                name,
                start_ns,
                dur_ns: now_ns().saturating_sub(start_ns),
            });
        }
    }
}

/// Record an instantaneous marker event on the current thread.
#[inline]
pub fn instant(name: &'static str) {
    if spans_enabled() {
        ring::record(Event::Instant {
            name,
            t_ns: now_ns(),
        });
    }
}

/// Open a scoped span: `let _g = span!("pipeline.sample");`. The span
/// closes when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::begin($name)
    };
}

/// Add to a monotonically increasing counter:
/// `counter!("mem.gather.bus_bytes", bytes as f64);`
#[macro_export]
macro_rules! counter {
    ($name:expr, $value:expr) => {
        $crate::metrics::add($name, $value)
    };
}

/// Set a last-value-wins gauge: `gauge!("pool.threads", n as f64);`
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::metrics::set($name, $value)
    };
}

/// Record an observation into a fixed-bucket histogram:
/// `histogram!("mem.gather.rows", &BUCKETS, rows as f64);`
/// The bucket bounds must be the same `'static` slice on every call.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr, $value:expr) => {
        $crate::metrics::observe($name, $bounds, $value)
    };
}

/// Serializes tests that touch the process-global enablement flags,
/// thread registry, or metrics registry.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_are_inert_and_enabled_probes_record() {
        let _guard = test_guard();
        drain();
        metrics::reset();
        disable_all();
        {
            let _g = span!("off.span");
            instant("off.instant");
            counter!("off.counter", 1.0);
        }
        assert!(drain().iter().all(|t| t.events.is_empty()));
        assert!(metrics::snapshot().counters.is_empty());

        enable_all();
        assert!(spans_enabled() && metrics_enabled());
        {
            let _g = span!("on.span");
            instant("on.instant");
            counter!("on.counter", 2.5);
            gauge!("on.gauge", 7.0);
            histogram!("on.hist", &[1.0, 10.0], 3.0);
        }
        let events: usize = drain().iter().map(|t| t.events.len()).sum();
        assert_eq!(events, 2, "span + instant");
        let snap = metrics::snapshot();
        assert_eq!(snap.counters[0], ("on.counter".into(), 2.5));
        assert_eq!(snap.gauges[0], ("on.gauge".into(), 7.0));
        assert_eq!(snap.histograms[0].count, 1);

        disable_all();
        metrics::reset();
        assert!(!spans_enabled() && !metrics_enabled());
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
