//! The thread-count leg of the blocked-kernel bit-identity contract.
//!
//! The unit proptests in `ops.rs`/`sparse.rs` pin blocked == reference at
//! whatever width the test process runs (tier-1 runs the suite at the
//! natural width and again under `WG_THREADS=1`). This integration binary
//! pins the remaining leg: a **two-worker** pool, requested via
//! `init_threads(2)` before any kernel runs (first initialization wins;
//! an explicit `WG_THREADS` override still takes precedence, which keeps
//! the tier-1 sequential pass meaningful). Every output is also compared
//! against the sequential reference schedule within the same process.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_tensor::ops::{
    matmul, matmul_nt, matmul_nt_reference, matmul_reference, matmul_tn, matmul_tn_reference,
};
use wg_tensor::sparse::{spmm, spmm_backward_src, spmm_reference, Agg, BlockCsr};
use wg_tensor::Matrix;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

fn block(dst: usize, src: usize, fanout: usize, seed: u64) -> BlockCsr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut offsets = vec![0u32];
    let mut indices = Vec::new();
    for _ in 0..dst {
        for _ in 0..=rng.gen_range(0..fanout) {
            indices.push(rng.gen_range(0..src as u32));
        }
        offsets.push(indices.len() as u32);
    }
    let mut dup = vec![0u32; src];
    for &c in &indices {
        dup[c as usize] += 1;
    }
    BlockCsr {
        num_dst: dst,
        num_src: src,
        offsets,
        indices,
        dup_count: dup,
    }
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

#[test]
fn dense_kernels_bit_identical_on_two_workers() {
    let width = rayon::init_threads(2);
    for (m, k, n, seed) in [
        (1usize, 1usize, 1usize, 1u64),
        (7, 13, 5, 2),
        (64, 48, 96, 3),
        (130, 260, 33, 4),
    ] {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 99);
        let at = mat(k, m, seed ^ 7);
        let bt = mat(n, k, seed ^ 13);
        assert_bits_eq(&matmul(&a, &b), &matmul_reference(&a, &b), "matmul");
        assert_bits_eq(
            &matmul_tn(&at, &b),
            &matmul_tn_reference(&at, &b),
            "matmul_tn",
        );
        assert_bits_eq(
            &matmul_nt(&a, &bt),
            &matmul_nt_reference(&a, &bt),
            "matmul_nt",
        );
        // The pool schedule (whatever width we actually got) must also
        // match the sequential reference schedule exactly.
        let pooled = matmul(&a, &b);
        let seq = rayon::run_sequential(|| matmul(&a, &b));
        assert_bits_eq(&pooled, &seq, "matmul pool-vs-seq");
    }
    assert!(width >= 1);
}

#[test]
fn spmm_kernels_bit_identical_on_two_workers() {
    rayon::init_threads(2);
    for (dst, src, fanout, seed) in [
        (1usize, 2usize, 1usize, 5u64),
        (37, 90, 6, 6),
        (128, 400, 12, 7),
    ] {
        let b = block(dst, src, fanout, seed);
        for agg in [Agg::Mean, Agg::Sum] {
            let x = mat(src, 19, seed ^ 21);
            let y = spmm(&b, &x, None, 1, agg);
            assert_bits_eq(&y, &spmm_reference(&b, &x, None, 1, agg), "spmm");
            let g = spmm_backward_src(&b, &y, None, 1, agg);
            let g_seq = rayon::run_sequential(|| spmm_backward_src(&b, &y, None, 1, agg));
            assert_bits_eq(&g, &g_seq, "spmm_backward pool-vs-seq");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn blocked_matmul_matches_reference_on_two_workers(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        rayon::init_threads(2);
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 0xabcd);
        let blocked = matmul(&a, &b);
        let reference = matmul_reference(&a, &b);
        for (x, y) in blocked.data().iter().zip(reference.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
