//! The two-worker pool leg of the SIMD bit-identity contract.
//!
//! `simd_equivalence.rs` pins the levels against each other at whatever
//! width its process runs (tier-1: natural width and `WG_THREADS=1`).
//! This binary requests a **two-worker** pool before any kernel runs —
//! the SIMD lane blocking is inside each worker's tile, orthogonal to
//! the pool schedule, so forced-scalar and forced-AVX2 must still agree
//! bitwise, and both must match the within-process sequential schedule.

use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_tensor::ops::{
    matmul_into_with, matmul_nt_into_with, matmul_reference, matmul_tn_into_with,
};
use wg_tensor::simd::{self, Level};
use wg_tensor::Matrix;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

#[test]
fn simd_levels_agree_on_two_workers() {
    let width = rayon::init_threads(2);
    let mut levels = vec![Level::Scalar];
    if simd::avx2_available() {
        levels.push(Level::Avx2);
    }
    for (m, k, n, seed) in [
        (1usize, 1usize, 1usize, 60u64),
        (9, 21, 33, 61),
        (64, 67, 57, 62),
        (130, 50, 96, 63),
    ] {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 0x44);
        let at = mat(k, m, seed ^ 0x55);
        let bt = mat(n, k, seed ^ 0x66);
        let reference = matmul_reference(&a, &b);
        let mut outs = Vec::new();
        for &level in &levels {
            let name = level.name();
            let mut c = Matrix::empty();
            matmul_into_with(level, &a, &b, &mut c);
            assert_bits_eq(&c, &reference, &format!("matmul/{name} 2-worker"));
            // Pool schedule vs sequential schedule, same level.
            let seq = rayon::run_sequential(|| {
                let mut c = Matrix::empty();
                matmul_into_with(level, &a, &b, &mut c);
                c
            });
            assert_bits_eq(&c, &seq, &format!("matmul/{name} pool-vs-seq"));

            let mut scratch = Vec::new();
            let (mut tn, mut nt) = (Matrix::empty(), Matrix::empty());
            matmul_tn_into_with(level, &at, &b, &mut tn, &mut scratch);
            matmul_nt_into_with(level, &a, &bt, &mut nt, &mut scratch);
            outs.push((c, tn, nt));
        }
        // Cross-level: every level produced the same bits on this pool.
        for pair in outs.windows(2) {
            assert_bits_eq(&pair[0].0, &pair[1].0, "matmul cross-level 2-worker");
            assert_bits_eq(&pair[0].1, &pair[1].1, "matmul_tn cross-level 2-worker");
            assert_bits_eq(&pair[0].2, &pair[1].2, "matmul_nt cross-level 2-worker");
        }
    }
    assert!(width >= 1);
}
