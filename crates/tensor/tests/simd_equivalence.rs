//! The SIMD leg of the bit-identity contract.
//!
//! Every vectorized kernel must produce the *same bits* as the scalar
//! path and as the naive reference — the AVX2 kernels only block across
//! independent output lanes, never inside a per-element reduction, so
//! there is no tolerance anywhere in this file: all comparisons are
//! `to_bits()` equality. Shapes deliberately straddle every tile
//! boundary (j widths around 8/16/32, k % 8 != 0, empty matrices), and
//! the forced-`Scalar` vs forced-`Avx2` tests pin the two code paths
//! against each other directly (gated on host AVX2 support — the
//! dispatched-vs-reference tests run everywhere). The two-worker pool
//! leg lives in `simd_equivalence_threads2.rs`; tier-1 reruns this
//! binary under `WG_THREADS=1`.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_tensor::ops::{
    matmul_into_with, matmul_nt_into_with, matmul_nt_reference, matmul_reference,
    matmul_tn_into_with, matmul_tn_reference,
};
use wg_tensor::simd::{self, Level};
use wg_tensor::sparse::{
    spmm_backward_src_into_with, spmm_backward_src_reference, spmm_into_with, spmm_reference, Agg,
    BlockCsr, ReverseScratch,
};
use wg_tensor::Matrix;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

fn block(dst: usize, src: usize, fanout: usize, seed: u64) -> BlockCsr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut offsets = vec![0u32];
    let mut indices = Vec::new();
    for _ in 0..dst {
        for _ in 0..rng.gen_range(0..=fanout) {
            indices.push(rng.gen_range(0..src as u32));
        }
        offsets.push(indices.len() as u32);
    }
    let mut dup = vec![0u32; src];
    for &c in &indices {
        dup[c as usize] += 1;
    }
    BlockCsr {
        num_dst: dst,
        num_src: src,
        offsets,
        indices,
        dup_count: dup,
    }
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

/// Both SIMD levels on the host: `Scalar` always, `Avx2` when supported.
fn levels() -> Vec<Level> {
    let mut l = vec![Level::Scalar];
    if simd::avx2_available() {
        l.push(Level::Avx2);
    }
    l
}

/// Shapes that straddle every lane-block boundary of the 8/16/32-wide
/// column tiles, plus k remainders that are not multiples of the unroll.
const DENSE_SHAPES: [(usize, usize, usize); 10] = [
    (1, 1, 1),
    (3, 5, 7),    // below one lane
    (2, 9, 8),    // exactly one lane
    (5, 11, 9),   // one lane + scalar tail
    (4, 17, 15),  // just under two lanes
    (6, 13, 31),  // just under the 32-wide block
    (9, 21, 33),  // 32-block + 1 tail column
    (17, 30, 40), // 32 + 8 blocks
    (33, 67, 57), // 32 + 16 + 8 + tail, k % 8 = 3
    (12, 256, 48),
];

#[test]
fn dense_kernels_bit_identical_at_every_level() {
    for level in levels() {
        for (i, &(m, k, n)) in DENSE_SHAPES.iter().enumerate() {
            let seed = 100 + i as u64;
            let a = mat(m, k, seed);
            let b = mat(k, n, seed ^ 0x5a);
            let at = mat(k, m, seed ^ 0xa5);
            let bt = mat(n, k, seed ^ 0x3c);
            let name = level.name();

            let mut c = Matrix::empty();
            matmul_into_with(level, &a, &b, &mut c);
            assert_bits_eq(&c, &matmul_reference(&a, &b), &format!("matmul/{name}"));

            let mut scratch = Vec::new();
            matmul_tn_into_with(level, &at, &b, &mut c, &mut scratch);
            assert_bits_eq(
                &c,
                &matmul_tn_reference(&at, &b),
                &format!("matmul_tn/{name}"),
            );

            matmul_nt_into_with(level, &a, &bt, &mut c, &mut scratch);
            assert_bits_eq(
                &c,
                &matmul_nt_reference(&a, &bt),
                &format!("matmul_nt/{name}"),
            );
        }
    }
}

#[test]
fn empty_matrices_at_every_level() {
    for level in levels() {
        for (m, k, n) in [(0usize, 4usize, 4usize), (4, 0, 4), (4, 4, 0), (0, 0, 0)] {
            let a = mat(m, k, 9);
            let b = mat(k, n, 10);
            let mut c = Matrix::empty();
            matmul_into_with(level, &a, &b, &mut c);
            assert_bits_eq(&c, &matmul_reference(&a, &b), "matmul empty");

            let at = mat(k, m, 11);
            let mut scratch = Vec::new();
            matmul_tn_into_with(level, &at, &b, &mut c, &mut scratch);
            assert_bits_eq(&c, &matmul_tn_reference(&at, &b), "matmul_tn empty");

            let bt = mat(n, k, 12);
            matmul_nt_into_with(level, &a, &bt, &mut c, &mut scratch);
            assert_bits_eq(&c, &matmul_nt_reference(&a, &bt), "matmul_nt empty");
        }
        // An all-empty graph block: every dst has zero edges.
        let b = block(6, 9, 0, 13);
        assert!(b.indices.is_empty());
        let x = mat(9, 17, 14);
        let mut out = Matrix::empty();
        spmm_into_with(level, &b, &x, None, 1, Agg::Mean, &mut out);
        assert_bits_eq(
            &out,
            &spmm_reference(&b, &x, None, 1, Agg::Mean),
            "spmm empty",
        );
    }
}

#[test]
fn spmm_kernels_bit_identical_at_every_level() {
    for level in levels() {
        for (dst, src, fanout, channels, heads, seed) in [
            (1usize, 2usize, 1usize, 1usize, 1usize, 20u64),
            (7, 15, 3, 9, 1, 21),    // one lane + tail
            (23, 60, 5, 31, 1, 22),  // just under a lane block
            (40, 100, 8, 33, 3, 23), // multi-head, 32 + tail
            (16, 50, 4, 64, 4, 24),
        ] {
            let b = block(dst, src, fanout, seed);
            let x = mat(src, channels, seed ^ 0x77);
            let w = mat(b.num_edges(), heads, seed ^ 0x88);
            let name = level.name();
            for agg in [Agg::Mean, Agg::Sum] {
                for weights in [None, Some(&w)] {
                    let mut y = Matrix::empty();
                    spmm_into_with(level, &b, &x, weights, heads, agg, &mut y);
                    assert_bits_eq(
                        &y,
                        &spmm_reference(&b, &x, weights, heads, agg),
                        &format!("spmm/{name}"),
                    );
                    let mut g = Matrix::empty();
                    let mut rev = ReverseScratch::default();
                    spmm_backward_src_into_with(
                        level, &b, &y, weights, heads, agg, &mut g, &mut rev,
                    );
                    assert_bits_eq(
                        &g,
                        &spmm_backward_src_reference(&b, &y, weights, heads, agg),
                        &format!("spmm_backward/{name}"),
                    );
                }
            }
        }
    }
}

/// The load-bearing test of the whole scheme: the forced-AVX2 path must
/// produce the same bits as the forced-scalar path, kernel by kernel —
/// not merely both matching the reference. Skipped (trivially green) on
/// hosts without AVX2; the scalar-vs-reference leg above still runs.
#[test]
fn forced_scalar_and_forced_avx2_agree_bitwise() {
    if !simd::avx2_available() {
        eprintln!("host has no AVX2 — forced-level cross-check skipped");
        return;
    }
    for (i, &(m, k, n)) in DENSE_SHAPES.iter().enumerate() {
        let seed = 300 + i as u64;
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 0x11);
        let (mut cs, mut cv) = (Matrix::empty(), Matrix::empty());
        matmul_into_with(Level::Scalar, &a, &b, &mut cs);
        matmul_into_with(Level::Avx2, &a, &b, &mut cv);
        assert_bits_eq(&cs, &cv, "matmul scalar-vs-avx2");

        let at = mat(k, m, seed ^ 0x22);
        let (mut ss, mut sv) = (Vec::new(), Vec::new());
        matmul_tn_into_with(Level::Scalar, &at, &b, &mut cs, &mut ss);
        matmul_tn_into_with(Level::Avx2, &at, &b, &mut cv, &mut sv);
        assert_bits_eq(&cs, &cv, "matmul_tn scalar-vs-avx2");

        let bt = mat(n, k, seed ^ 0x33);
        matmul_nt_into_with(Level::Scalar, &a, &bt, &mut cs, &mut ss);
        matmul_nt_into_with(Level::Avx2, &a, &bt, &mut cv, &mut sv);
        assert_bits_eq(&cs, &cv, "matmul_nt scalar-vs-avx2");
    }
    let b = block(31, 77, 6, 40);
    for channels in [1usize, 8, 17, 33, 64] {
        let x = mat(77, channels, 41);
        for agg in [Agg::Mean, Agg::Sum] {
            let (mut ys, mut yv) = (Matrix::empty(), Matrix::empty());
            spmm_into_with(Level::Scalar, &b, &x, None, 1, agg, &mut ys);
            spmm_into_with(Level::Avx2, &b, &x, None, 1, agg, &mut yv);
            assert_bits_eq(&ys, &yv, "spmm scalar-vs-avx2");

            let (mut gs, mut gv) = (Matrix::empty(), Matrix::empty());
            let mut rev = ReverseScratch::default();
            spmm_backward_src_into_with(Level::Scalar, &b, &ys, None, 1, agg, &mut gs, &mut rev);
            spmm_backward_src_into_with(Level::Avx2, &b, &ys, None, 1, agg, &mut gv, &mut rev);
            assert_bits_eq(&gs, &gv, "spmm_backward scalar-vs-avx2");
        }
    }
}

#[test]
fn copy_slice_matches_at_every_level_and_width() {
    let mut rng = SmallRng::seed_from_u64(50);
    // Widths straddle the 32-byte lane and the 128-byte unroll of the
    // AVX2 byte-stream copy, in both f32 (4 B) and u64 (8 B) elements.
    for level in levels() {
        for n in [0usize, 1, 3, 7, 8, 9, 31, 32, 33, 100, 256, 1000] {
            let src: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let mut dst = vec![f32::NAN; n];
            simd::copy_slice(level, &mut dst, &src);
            for (x, y) in dst.iter().zip(&src) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            let src64: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
            let mut dst64 = vec![0u64; n];
            simd::copy_slice(level, &mut dst64, &src64);
            assert_eq!(dst64, src64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random unaligned shapes: every level matches the reference, and
    /// (on AVX2 hosts) the two forced levels match each other.
    #[test]
    fn matmul_levels_agree_on_random_shapes(
        m in 1usize..48,
        k in 1usize..80,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 0xbeef);
        let reference = matmul_reference(&a, &b);
        for level in levels() {
            let mut c = Matrix::empty();
            matmul_into_with(level, &a, &b, &mut c);
            for (x, y) in c.data().iter().zip(reference.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn spmm_levels_agree_on_random_blocks(
        dst in 1usize..40,
        src in 1usize..90,
        fanout in 0usize..7,
        channels in 1usize..48,
        seed in 0u64..1000,
    ) {
        let b = block(dst, src, fanout, seed);
        let x = mat(src, channels, seed ^ 0xfeed);
        for agg in [Agg::Mean, Agg::Sum] {
            let reference = spmm_reference(&b, &x, None, 1, agg);
            for level in levels() {
                let mut y = Matrix::empty();
                spmm_into_with(level, &b, &x, None, 1, agg, &mut y);
                for (p, q) in y.data().iter().zip(reference.data()) {
                    prop_assert_eq!(p.to_bits(), q.to_bits());
                }
            }
        }
    }

    /// The unrolled checksum is byte-identical to the naive serial fold
    /// (one word-sized `(h ^ w) * prime` step per element — the repo's
    /// witness convention) for any length, including the 0..3 remainder
    /// cases, and chains across arbitrary split points exactly like one
    /// flat pass.
    #[test]
    fn fnv1a_unroll_matches_naive_fold(
        data in proptest::collection::vec(-1.0e30f32..1.0e30, 0..200),
        split in 0usize..200,
    ) {
        let naive = data.iter().fold(simd::FNV_OFFSET, |h, v| {
            (h ^ v.to_bits() as u64).wrapping_mul(simd::FNV_PRIME)
        });
        prop_assert_eq!(simd::fnv1a_f32(simd::FNV_OFFSET, &data), naive);
        let split = split.min(data.len());
        let chained = simd::fnv1a_f32(
            simd::fnv1a_f32(simd::FNV_OFFSET, &data[..split]),
            &data[split..],
        );
        prop_assert_eq!(chained, naive);
    }
}
