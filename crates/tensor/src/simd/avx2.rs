//! AVX2 implementations of the dispatched kernels in [`super`].
//!
//! Every function here is `#[target_feature(enable = "avx2")]` and only
//! reachable through [`super::level`]-guarded dispatch (or an explicit
//! [`super::Level::Avx2`] that the caller asserted is executable).
//!
//! Bit-identity discipline, enforced throughout this file:
//!
//! * vector lanes are always eight **adjacent output columns** `j` — the
//!   reduction over `k`/edges stays in program order per element;
//! * multiply and add are separate intrinsics (`_mm256_mul_ps` then
//!   `_mm256_add_ps`), matching the two separately-rounded scalar ops —
//!   intrinsics are never contraction-fused, so no implicit FMA;
//! * the zero-skip rules of the scalar kernels (`av == 0.0 → skip`) are
//!   applied to the same scalar operand before broadcasting.

// The safety contract is documented on the module; the `0..NV` loops
// index both the register array and the `v * 8` lane offsets of raw
// pointers, so enumerate() has nothing to iterate over there.
#![allow(clippy::missing_safety_doc)]
#![allow(clippy::needless_range_loop)]

use core::arch::x86_64::*;

/// `acc += av * b` on `NV` consecutive YMM lanes, accumulators kept in
/// registers across the whole `l` loop. `NV` = 4 gives the 8x32 tile the
/// blocked GEMM hands us; 2 and 1 mop up narrower tiles.
#[target_feature(enable = "avx2")]
unsafe fn rowtile_block<const NV: usize>(
    arow: &[f32],
    b: *const f32,
    ldb: usize,
    acc: *mut f32,
    skip_zero: bool,
) {
    let mut r = [_mm256_setzero_ps(); NV];
    for v in 0..NV {
        r[v] = _mm256_loadu_ps(acc.add(v * 8));
    }
    for (l, &av) in arow.iter().enumerate() {
        if skip_zero && av == 0.0 {
            continue;
        }
        let avv = _mm256_set1_ps(av);
        let brow = b.add(l * ldb);
        for v in 0..NV {
            let bv = _mm256_loadu_ps(brow.add(v * 8));
            r[v] = _mm256_add_ps(r[v], _mm256_mul_ps(avv, bv));
        }
    }
    for v in 0..NV {
        _mm256_storeu_ps(acc.add(v * 8), r[v]);
    }
}

/// AVX2 matmul register tile: `acc[j] += arow[l] * b[l*ldb + j]`,
/// ascending `l`, optional zero-skip. Caller checked that every row
/// segment `b[l*ldb..l*ldb+acc.len()]` is in bounds.
#[target_feature(enable = "avx2")]
pub unsafe fn matmul_rowtile(
    arow: &[f32],
    b: &[f32],
    ldb: usize,
    acc: &mut [f32],
    skip_zero: bool,
) {
    let nb = acc.len();
    let bp = b.as_ptr();
    let ap = acc.as_mut_ptr();
    let mut j = 0;
    while j + 32 <= nb {
        rowtile_block::<4>(arow, bp.add(j), ldb, ap.add(j), skip_zero);
        j += 32;
    }
    if j + 16 <= nb {
        rowtile_block::<2>(arow, bp.add(j), ldb, ap.add(j), skip_zero);
        j += 16;
    }
    if j + 8 <= nb {
        rowtile_block::<1>(arow, bp.add(j), ldb, ap.add(j), skip_zero);
        j += 8;
    }
    if j < nb {
        for (l, &av) in arow.iter().enumerate() {
            if skip_zero && av == 0.0 {
                continue;
            }
            let brow = bp.add(l * ldb);
            for jj in j..nb {
                *ap.add(jj) += av * *brow.add(jj);
            }
        }
    }
}

/// `acc += scale * src_row` over the edge list, `NV` lanes resident.
#[target_feature(enable = "avx2")]
unsafe fn gather_block<const NV: usize>(
    indices: &[u32],
    src: *const f32,
    lds: usize,
    scale: f32,
    acc: *mut f32,
) {
    let sv = _mm256_set1_ps(scale);
    let mut r = [_mm256_setzero_ps(); NV];
    for v in 0..NV {
        r[v] = _mm256_loadu_ps(acc.add(v * 8));
    }
    for &s in indices {
        let srow = src.add(s as usize * lds);
        for v in 0..NV {
            let x = _mm256_loadu_ps(srow.add(v * 8));
            r[v] = _mm256_add_ps(r[v], _mm256_mul_ps(sv, x));
        }
    }
    for v in 0..NV {
        _mm256_storeu_ps(acc.add(v * 8), r[v]);
    }
}

/// AVX2 spmm forward channel tile: `acc[j] += scale * src[s*lds+j0+j]`
/// for every source in `indices`, ascending edge order.
#[target_feature(enable = "avx2")]
pub unsafe fn spmm_gather_rowtile(
    indices: &[u32],
    src: &[f32],
    lds: usize,
    j0: usize,
    scale: f32,
    acc: &mut [f32],
) {
    let cb = acc.len();
    if let Some(max_s) = indices.iter().copied().max() {
        assert!(
            max_s as usize * lds + j0 + cb <= src.len(),
            "spmm gather: source row out of bounds"
        );
    } else {
        return;
    }
    let sp = src.as_ptr().add(j0);
    let ap = acc.as_mut_ptr();
    let mut j = 0;
    while j + 32 <= cb {
        gather_block::<4>(indices, sp.add(j), lds, scale, ap.add(j));
        j += 32;
    }
    if j + 16 <= cb {
        gather_block::<2>(indices, sp.add(j), lds, scale, ap.add(j));
        j += 16;
    }
    if j + 8 <= cb {
        gather_block::<1>(indices, sp.add(j), lds, scale, ap.add(j));
        j += 8;
    }
    if j < cb {
        for &s in indices {
            let srow = sp.add(s as usize * lds);
            for jj in j..cb {
                *ap.add(jj) += scale * *srow.add(jj);
            }
        }
    }
}

/// Per-edge-scaled gather block for the backward pass: each destination
/// row carries its own `agg_scale` (1/deg under mean, 1 under sum).
#[target_feature(enable = "avx2")]
unsafe fn scatter_block<const NV: usize>(
    dsts: &[u32],
    offsets: &[u32],
    mean: bool,
    grad: *const f32,
    ldg: usize,
    acc: *mut f32,
) {
    let mut r = [_mm256_setzero_ps(); NV];
    for v in 0..NV {
        r[v] = _mm256_loadu_ps(acc.add(v * 8));
    }
    for &d in dsts {
        let d = d as usize;
        let sv = _mm256_set1_ps(super::scatter_scale(offsets, d, mean));
        let grow = grad.add(d * ldg);
        for v in 0..NV {
            let g = _mm256_loadu_ps(grow.add(v * 8));
            r[v] = _mm256_add_ps(r[v], _mm256_mul_ps(sv, g));
        }
    }
    for v in 0..NV {
        _mm256_storeu_ps(acc.add(v * 8), r[v]);
    }
}

/// AVX2 spmm backward channel tile: `acc[j] += agg_scale(d) *
/// grad[d*ldg+j0+j]` over the incoming edges' destinations.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub unsafe fn spmm_scatter_rowtile(
    dsts: &[u32],
    offsets: &[u32],
    mean: bool,
    grad: &[f32],
    ldg: usize,
    j0: usize,
    acc: &mut [f32],
) {
    let cb = acc.len();
    if let Some(max_d) = dsts.iter().copied().max() {
        assert!(
            (max_d as usize) + 1 < offsets.len(),
            "spmm scatter: destination out of offsets range"
        );
        assert!(
            max_d as usize * ldg + j0 + cb <= grad.len(),
            "spmm scatter: grad row out of bounds"
        );
    } else {
        return;
    }
    let gp = grad.as_ptr().add(j0);
    let ap = acc.as_mut_ptr();
    let mut j = 0;
    while j + 32 <= cb {
        scatter_block::<4>(dsts, offsets, mean, gp.add(j), ldg, ap.add(j));
        j += 32;
    }
    if j + 16 <= cb {
        scatter_block::<2>(dsts, offsets, mean, gp.add(j), ldg, ap.add(j));
        j += 16;
    }
    if j + 8 <= cb {
        scatter_block::<1>(dsts, offsets, mean, gp.add(j), ldg, ap.add(j));
        j += 8;
    }
    if j < cb {
        for &d in dsts {
            let d = d as usize;
            let scale = super::scatter_scale(offsets, d, mean);
            let grow = gp.add(d * ldg);
            for jj in j..cb {
                *ap.add(jj) += scale * *grow.add(jj);
            }
        }
    }
}

/// `acc[j] += s * x[j]` over `n` raw elements.
#[target_feature(enable = "avx2")]
unsafe fn axpy_raw(acc: *mut f32, x: *const f32, n: usize, s: f32) {
    let sv = _mm256_set1_ps(s);
    let mut j = 0;
    while j + 8 <= n {
        let a = _mm256_loadu_ps(acc.add(j));
        let v = _mm256_loadu_ps(x.add(j));
        _mm256_storeu_ps(acc.add(j), _mm256_add_ps(a, _mm256_mul_ps(sv, v)));
        j += 8;
    }
    while j < n {
        *acc.add(j) += s * *x.add(j);
        j += 1;
    }
}

/// AVX2 `acc[j] += s * x[j]` (equal lengths asserted by the caller).
#[target_feature(enable = "avx2")]
pub unsafe fn axpy(acc: &mut [f32], x: &[f32], s: f32) {
    axpy_raw(acc.as_mut_ptr(), x.as_ptr(), acc.len(), s);
}

/// AVX2 rank-1 panel update for `matmul_tn`: row `i` of the accumulator
/// gets `arow[i] * brow`, with the reference's zero-skip on `arow[i]`.
#[target_feature(enable = "avx2")]
pub unsafe fn tn_accumulate(arow: &[f32], brow: &[f32], acc: &mut [f32], n: usize) {
    assert!(arow.len() * n <= acc.len(), "tn_accumulate: acc too short");
    assert!(
        n <= brow.len() || arow.is_empty(),
        "tn_accumulate: brow too short"
    );
    let ap = acc.as_mut_ptr();
    for (i, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        axpy_raw(ap.add(i * n), brow.as_ptr(), n, av);
    }
}

/// AVX2 `dst[j] += src[j]` (equal lengths asserted by the caller).
#[target_feature(enable = "avx2")]
pub unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let mut j = 0;
    while j + 8 <= n {
        let d = _mm256_loadu_ps(dp.add(j));
        let s = _mm256_loadu_ps(sp.add(j));
        _mm256_storeu_ps(dp.add(j), _mm256_add_ps(d, s));
        j += 8;
    }
    while j < n {
        *dp.add(j) += *sp.add(j);
        j += 1;
    }
}

/// Stream `len` bytes from `src` to `dst` in 32-byte YMM lanes (the
/// gather row-copy path). The regions must not overlap and must each be
/// valid for `len` bytes — guaranteed by the `&mut [T]`/`&[T]` pair the
/// safe wrapper starts from.
#[target_feature(enable = "avx2")]
pub unsafe fn copy_bytes(dst: *mut u8, src: *const u8, len: usize) {
    let mut off = 0;
    while off + 128 <= len {
        let a = _mm256_loadu_si256(src.add(off).cast());
        let b = _mm256_loadu_si256(src.add(off + 32).cast());
        let c = _mm256_loadu_si256(src.add(off + 64).cast());
        let d = _mm256_loadu_si256(src.add(off + 96).cast());
        _mm256_storeu_si256(dst.add(off).cast(), a);
        _mm256_storeu_si256(dst.add(off + 32).cast(), b);
        _mm256_storeu_si256(dst.add(off + 64).cast(), c);
        _mm256_storeu_si256(dst.add(off + 96).cast(), d);
        off += 128;
    }
    while off + 32 <= len {
        let v = _mm256_loadu_si256(src.add(off).cast());
        _mm256_storeu_si256(dst.add(off).cast(), v);
        off += 32;
    }
    if off < len {
        core::ptr::copy_nonoverlapping(src.add(off), dst.add(off), len - off);
    }
}
