//! Runtime-dispatched SIMD inner loops for the hot kernels.
//!
//! Every kernel in this module comes in two implementations selected at
//! runtime: a portable scalar loop (the reference semantics, exactly the
//! float sequences the `*_reference` oracles execute) and an AVX2 version
//! using 8-wide `f32` lanes via `std::arch::x86_64`. Dispatch is decided
//! once per process by [`level`] — `is_x86_feature_detected!("avx2")`
//! cached in a `OnceLock`, overridable with the `WG_SIMD` environment
//! variable (`off`/`scalar` force the portable path, `avx2` forces the
//! vector path, `auto`/unset detects).
//!
//! # Bit-identity contract
//!
//! The repo's determinism guarantee — identical output bits at any thread
//! count, any schedule, and now any SIMD level — holds because every
//! kernel here vectorizes **across independent output elements**, never
//! across a single element's reduction:
//!
//! * `matmul_rowtile`, `spmm_gather_rowtile`, `spmm_scatter_rowtile`,
//!   `tn_accumulate`, `axpy`, `add_assign`: each output element `acc[j]`
//!   accumulates its contributions in the same ascending order (ascending
//!   `k` / edge index) whether `j` lives in a YMM lane or a scalar
//!   register. Lanes are just eight adjacent `j`s computed together.
//! * No FMA contraction anywhere: the scalar paths (and the reference
//!   oracles) round the multiply and the add separately, so the vector
//!   paths use explicit `mul` + `add` intrinsics, never `fmadd`.
//! * `copy_slice` moves bytes; `fnv1a_f32` is an order-serial hash chain
//!   (each step consumes the previous hash), so it cannot be lane-split
//!   without changing the digest — it is kept as one scalar chain,
//!   unrolled, and stays byte-identical to the naive fold.
//!
//! The dispatched `*_with` kernel entry points in [`crate::ops`] /
//! [`crate::sparse`] take an explicit [`Level`] so tests and benches can
//! pin both paths against each other bitwise.

#[cfg(target_arch = "x86_64")]
mod avx2;

use std::sync::OnceLock;

/// The instruction-set level a kernel runs at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Level {
    /// Portable scalar loops — the reference float sequences.
    Scalar,
    /// 8-wide `f32` lanes via AVX2 (separate mul + add, no FMA).
    Avx2,
}

impl Level {
    /// Human-readable name (logged by benches and the wallclock harness).
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2 => "avx2",
        }
    }
}

/// Parse a `WG_SIMD` override. `None` means "auto" (detect).
///
/// Accepted values: `off` / `scalar` (force portable), `avx2` (force
/// vector), `auto` / empty (detect). Anything else panics — a typo in a
/// perf knob should be loud, not silently scalar.
pub fn parse_override(value: &str) -> Option<Level> {
    match value.to_ascii_lowercase().as_str() {
        "" | "auto" => None,
        "off" | "scalar" => Some(Level::Scalar),
        "avx2" => Some(Level::Avx2),
        other => panic!("WG_SIMD={other:?} not understood (use off|scalar|avx2|auto)"),
    }
}

/// True when the host can execute the AVX2 kernels.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

static LEVEL: OnceLock<Level> = OnceLock::new();

/// The process-wide dispatch level: the `WG_SIMD` override if set, else
/// runtime feature detection. Decided once, cached in a `OnceLock`.
///
/// Panics if `WG_SIMD=avx2` is forced on a host without AVX2 — an
/// explicit override that cannot be honored must not silently downgrade.
pub fn level() -> Level {
    *LEVEL.get_or_init(|| {
        let requested = std::env::var("WG_SIMD")
            .ok()
            .and_then(|v| parse_override(&v));
        match requested {
            Some(Level::Avx2) => {
                assert!(
                    avx2_available(),
                    "WG_SIMD=avx2 forced but the host does not support AVX2"
                );
                Level::Avx2
            }
            Some(Level::Scalar) => Level::Scalar,
            None => {
                if avx2_available() {
                    Level::Avx2
                } else {
                    Level::Scalar
                }
            }
        }
    })
}

/// Marker for plain-old-data numeric element types whose byte
/// representation may be copied freely (no padding, no drop glue) —
/// the bound [`copy_slice`] needs to reinterpret rows as byte streams.
pub trait Pod: Copy + 'static {}

impl Pod for f32 {}
impl Pod for f64 {}
impl Pod for u8 {}
impl Pod for i32 {}
impl Pod for u32 {}
impl Pod for i64 {}
impl Pod for u64 {}

// ---------------------------------------------------------------------------
// Scalar kernels — the portable fallback. These ARE the reference float
// sequences: the blocked kernels in ops.rs/sparse.rs executed exactly
// these loops before dispatch existed.
// ---------------------------------------------------------------------------

/// One matmul register tile, scalar: `acc[j] += arow[l] * b[l*ldb + j]`
/// for every `l` in ascending order, skipping `arow[l] == 0.0` when
/// `skip_zero` (the reference kernels' zero-skip rule).
fn matmul_rowtile_scalar(arow: &[f32], b: &[f32], ldb: usize, acc: &mut [f32], skip_zero: bool) {
    let nb = acc.len();
    for (l, &av) in arow.iter().enumerate() {
        if skip_zero && av == 0.0 {
            continue;
        }
        let brow = &b[l * ldb..l * ldb + nb];
        for (a, &bv) in acc.iter_mut().zip(brow) {
            *a += av * bv;
        }
    }
}

/// One spmm forward channel tile, scalar: for every edge source index,
/// `acc[j] += scale * src[s*lds + j0 + j]` in ascending edge order.
fn spmm_gather_scalar(
    indices: &[u32],
    src: &[f32],
    lds: usize,
    j0: usize,
    scale: f32,
    acc: &mut [f32],
) {
    let cb = acc.len();
    for &s in indices {
        let s = s as usize;
        let srow = &src[s * lds + j0..s * lds + j0 + cb];
        for (a, &x) in acc.iter_mut().zip(srow) {
            *a += scale * x;
        }
    }
}

/// One spmm backward channel tile, scalar: for every incoming edge's
/// destination `d` (ascending edge order), accumulate
/// `agg_scale * grad[d*ldg + j0 + j]`, where `agg_scale` is `1/deg(d)`
/// under mean aggregation (0 for isolated destinations) and 1 under sum.
fn spmm_scatter_scalar(
    dsts: &[u32],
    offsets: &[u32],
    mean: bool,
    grad: &[f32],
    ldg: usize,
    j0: usize,
    acc: &mut [f32],
) {
    let cb = acc.len();
    for &d in dsts {
        let d = d as usize;
        let scale = scatter_scale(offsets, d, mean);
        let grow = &grad[d * ldg + j0..d * ldg + j0 + cb];
        for (a, &g) in acc.iter_mut().zip(grow) {
            *a += scale * g;
        }
    }
}

/// The backward aggregation scale for destination `d`: exactly
/// `agg_scale(agg, degree(d))` from the sparse kernels.
#[inline]
fn scatter_scale(offsets: &[u32], d: usize, mean: bool) -> f32 {
    if !mean {
        return 1.0;
    }
    let degree = (offsets[d + 1] - offsets[d]) as usize;
    if degree == 0 {
        0.0
    } else {
        1.0 / degree as f32
    }
}

/// One k-row's rank-1 update `acc[i*n..][j] += arow[i] * brow[j]`,
/// scalar, with the matmul_tn zero-skip rule on `arow[i]`.
fn tn_accumulate_scalar(arow: &[f32], brow: &[f32], acc: &mut [f32], n: usize) {
    for (i, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let dst = &mut acc[i * n..(i + 1) * n];
        for (d, &bv) in dst.iter_mut().zip(brow) {
            *d += av * bv;
        }
    }
}

fn axpy_scalar(acc: &mut [f32], x: &[f32], s: f32) {
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += s * v;
    }
}

fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        *d += v;
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------------

/// Validate the geometry the rowtile kernels assume: `b` must cover every
/// `l*ldb..l*ldb+acc.len()` row segment the tile reads.
#[inline]
fn check_rowtile_bounds(rows: usize, b_len: usize, ldb: usize, nb: usize) {
    if rows > 0 && nb > 0 {
        assert!(
            (rows - 1) * ldb + nb <= b_len,
            "rowtile: B panel too short ({b_len} < {})",
            (rows - 1) * ldb + nb
        );
    }
}

/// `acc[j] += arow[l] * b[l*ldb + j]`, ascending `l`, optional zero-skip
/// on `arow[l]`. The matmul register-tile inner loop.
#[inline]
pub fn matmul_rowtile(
    level: Level,
    arow: &[f32],
    b: &[f32],
    ldb: usize,
    acc: &mut [f32],
    skip_zero: bool,
) {
    check_rowtile_bounds(arow.len(), b.len(), ldb, acc.len());
    match level {
        Level::Scalar => matmul_rowtile_scalar(arow, b, ldb, acc, skip_zero),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() only reports Avx2 when the host supports it, and
        // the bounds of every row segment were checked above.
        Level::Avx2 => unsafe { avx2::matmul_rowtile(arow, b, ldb, acc, skip_zero) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => matmul_rowtile_scalar(arow, b, ldb, acc, skip_zero),
    }
}

/// Forward g-SpMM channel tile: `acc[j] += scale * src[s*lds + j0 + j]`
/// over the edge sources `indices`, in ascending edge order.
#[inline]
pub fn spmm_gather_rowtile(
    level: Level,
    indices: &[u32],
    src: &[f32],
    lds: usize,
    j0: usize,
    scale: f32,
    acc: &mut [f32],
) {
    match level {
        Level::Scalar => spmm_gather_scalar(indices, src, lds, j0, scale, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified by level(); per-row bounds are re-checked
        // by slice indexing inside the kernel's scalar prologue contract
        // (indices are validated by BlockCsr::validate and slicing below).
        Level::Avx2 => unsafe { avx2::spmm_gather_rowtile(indices, src, lds, j0, scale, acc) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => spmm_gather_scalar(indices, src, lds, j0, scale, acc),
    }
}

/// Backward g-SpMM channel tile: gather `agg_scale(d) * grad[d]` over the
/// incoming edges' destinations, ascending edge order.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn spmm_scatter_rowtile(
    level: Level,
    dsts: &[u32],
    offsets: &[u32],
    mean: bool,
    grad: &[f32],
    ldg: usize,
    j0: usize,
    acc: &mut [f32],
) {
    match level {
        Level::Scalar => spmm_scatter_scalar(dsts, offsets, mean, grad, ldg, j0, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified by level(); row bounds checked per edge.
        Level::Avx2 => unsafe {
            avx2::spmm_scatter_rowtile(dsts, offsets, mean, grad, ldg, j0, acc)
        },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => spmm_scatter_scalar(dsts, offsets, mean, grad, ldg, j0, acc),
    }
}

/// One k-row of `matmul_tn`: `acc[i*n + j] += arow[i] * brow[j]` with the
/// zero-skip rule on `arow[i]`.
#[inline]
pub fn tn_accumulate(level: Level, arow: &[f32], brow: &[f32], acc: &mut [f32], n: usize) {
    debug_assert!(arow.len() * n <= acc.len());
    debug_assert!(n <= brow.len() || arow.is_empty());
    match level {
        Level::Scalar => tn_accumulate_scalar(arow, brow, acc, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified by level(); slice bounds asserted above.
        Level::Avx2 => unsafe { avx2::tn_accumulate(arow, brow, acc, n) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => tn_accumulate_scalar(arow, brow, acc, n),
    }
}

/// `acc[j] += s * x[j]` (the weighted-spmm / rank-1 inner loop).
#[inline]
pub fn axpy(level: Level, acc: &mut [f32], x: &[f32], s: f32) {
    assert_eq!(acc.len(), x.len(), "axpy length mismatch");
    match level {
        Level::Scalar => axpy_scalar(acc, x, s),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified by level(); equal lengths asserted.
        Level::Avx2 => unsafe { avx2::axpy(acc, x, s) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => axpy_scalar(acc, x, s),
    }
}

/// `dst[j] += src[j]` (the tree-reduction merge loop).
#[inline]
pub fn add_assign(level: Level, dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign length mismatch");
    match level {
        Level::Scalar => add_assign_scalar(dst, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified by level(); equal lengths asserted.
        Level::Avx2 => unsafe { avx2::add_assign(dst, src) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => add_assign_scalar(dst, src),
    }
}

/// Copy `src` into `dst` (equal lengths) — the gather row-copy inner
/// loop. The AVX2 path streams 32-byte lanes instead of deferring to
/// `memcpy`'s size-class dispatch; bytes are bytes, so the result is
/// trivially identical.
#[inline]
pub fn copy_slice<T: Pod>(level: Level, dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len(), "copy_slice length mismatch");
    match level {
        Level::Scalar => dst.copy_from_slice(src),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => {
            let bytes = std::mem::size_of_val(src);
            // SAFETY: T is Pod (no padding, no drop glue), the byte views
            // cover exactly the two equal-length slices, and AVX2 support
            // was verified by level().
            unsafe {
                avx2::copy_bytes(
                    dst.as_mut_ptr().cast::<u8>(),
                    src.as_ptr().cast::<u8>(),
                    bytes,
                )
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => dst.copy_from_slice(src),
    }
}

// ---------------------------------------------------------------------------
// FNV-1a — the bench harness checksum.
// ---------------------------------------------------------------------------

/// FNV-1a offset basis (the chain's seed).
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over the bit patterns of an `f32` slice, continuing from `h`.
///
/// The chain `h = (h ^ w) * prime` consumes the previous hash at every
/// step, so it is inherently order-serial: lane-splitting it would change
/// the digest, and the digests are pinned (they are the repo's
/// bit-exactness witnesses). What SIMD *can't* buy here, unrolling does:
/// the loop below runs four chain steps per iteration with the
/// float→word conversions hoisted, keeping the dependency chain — xor
/// plus multiply — as the only serialized work. Byte-identical to the
/// naive per-element fold at any level, which is the whole point.
#[inline]
pub fn fnv1a_f32(mut h: u64, data: &[f32]) -> u64 {
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        let (w0, w1) = (c[0].to_bits() as u64, c[1].to_bits() as u64);
        let (w2, w3) = (c[2].to_bits() as u64, c[3].to_bits() as u64);
        h = (h ^ w0).wrapping_mul(FNV_PRIME);
        h = (h ^ w1).wrapping_mul(FNV_PRIME);
        h = (h ^ w2).wrapping_mul(FNV_PRIME);
        h = (h ^ w3).wrapping_mul(FNV_PRIME);
    }
    for &v in chunks.remainder() {
        h = (h ^ v.to_bits() as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_override_accepts_the_documented_values() {
        assert_eq!(parse_override(""), None);
        assert_eq!(parse_override("auto"), None);
        assert_eq!(parse_override("AUTO"), None);
        assert_eq!(parse_override("off"), Some(Level::Scalar));
        assert_eq!(parse_override("scalar"), Some(Level::Scalar));
        assert_eq!(parse_override("SCALAR"), Some(Level::Scalar));
        assert_eq!(parse_override("avx2"), Some(Level::Avx2));
        assert_eq!(parse_override("AVX2"), Some(Level::Avx2));
    }

    #[test]
    #[should_panic(expected = "not understood")]
    fn parse_override_rejects_typos() {
        parse_override("avx512");
    }

    #[test]
    fn fnv1a_matches_naive_fold() {
        let data: Vec<f32> = (0..37).map(|i| i as f32 * 0.37 - 5.0).collect();
        for take in [0usize, 1, 3, 4, 5, 8, 36, 37] {
            let naive = data[..take].iter().fold(FNV_OFFSET, |h, v| {
                (h ^ v.to_bits() as u64).wrapping_mul(FNV_PRIME)
            });
            assert_eq!(fnv1a_f32(FNV_OFFSET, &data[..take]), naive, "take={take}");
        }
        // Chained calls continue the same stream.
        let split = fnv1a_f32(fnv1a_f32(FNV_OFFSET, &data[..13]), &data[13..]);
        assert_eq!(split, fnv1a_f32(FNV_OFFSET, &data));
    }

    #[test]
    fn level_is_cached_and_valid() {
        let l = level();
        assert_eq!(l, level());
        if l == Level::Avx2 {
            assert!(avx2_available());
        }
    }
}
