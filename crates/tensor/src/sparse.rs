//! g-SpMM / g-SDDMM sparse kernels (§III-C4).
//!
//! "For message passing, it is a g-SpMM pattern as the message passes from
//! edges to the target node and aggregates in the target node. ...
//! Backward edge weights can be done by a g-SDDMM also on the CSR matrix.
//! Backward dense feature input should be g-SpMM on the transposed CSR
//! matrix, this can be done by computing on the original CSR matrix and
//! using atomic add operations to avoid the sparse matrix transpose. ...
//! We use the duplicate count array to help identify the nodes without
//! duplicated one, whose atomic add can then be optimized to a simple
//! assign operation."
//!
//! [`spmm_backward_src_atomic`] and [`spmm_max_backward_atomic`] follow
//! that design literally: they walk the *forward* CSR in parallel and
//! scatter with CAS-loop atomic f32 adds, downgraded to plain stores for
//! sub-graph nodes whose AppendUnique duplicate count is 1. Atomic float
//! adds commit in race order, though, so their results vary run-to-run
//! under real parallelism. The default [`spmm_backward_src`] /
//! [`spmm_max_backward`] instead gather over a transposed CSR (built with
//! a stable counting sort), accumulating each source row's contributions
//! in ascending edge order — bit-identical at any thread count. The atomic
//! variants are kept for paper fidelity and as an ablation baseline.

#![allow(clippy::needless_range_loop)] // kernel-style indexed loops mirror the CUDA code

use std::sync::atomic::{AtomicU32, Ordering};

use rayon::prelude::*;

use crate::matrix::Matrix;
use crate::simd::{self, Level};

/// Aggregation applied over each destination's incoming messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Agg {
    /// Plain sum.
    Sum,
    /// Mean over the destination's sampled in-edges (GraphSage's mean
    /// aggregator; also our sampled-GCN normalization).
    Mean,
}

/// A sampled bipartite sub-graph in CSR form: `num_dst` destination rows,
/// columns indexing a `num_src`-node source space (whose first `num_dst`
/// entries are the destinations themselves — AppendUnique's targets-first
/// layout).
#[derive(Clone, Debug)]
pub struct BlockCsr {
    /// Destination node count.
    pub num_dst: usize,
    /// Source node count.
    pub num_src: usize,
    /// CSR offsets (`num_dst + 1`).
    pub offsets: Vec<u32>,
    /// Column indices (`offsets[num_dst]` entries, each `< num_src`).
    pub indices: Vec<u32>,
    /// AppendUnique duplicate counts per source node (how many times each
    /// was sampled); drives the atomic→assign optimization.
    pub dup_count: Vec<u32>,
}

impl BlockCsr {
    /// Sampled edge count.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// In-degree of a destination.
    #[inline]
    pub fn degree(&self, dst: usize) -> usize {
        (self.offsets[dst + 1] - self.offsets[dst]) as usize
    }

    /// Validate structural invariants (debug aid; O(E)).
    pub fn validate(&self) {
        assert_eq!(self.offsets.len(), self.num_dst + 1);
        assert_eq!(self.offsets[0], 0);
        assert_eq!(*self.offsets.last().unwrap() as usize, self.indices.len());
        assert!(self.offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(self.indices.iter().all(|&c| (c as usize) < self.num_src));
        assert_eq!(self.dup_count.len(), self.num_src);
        assert!(
            self.num_dst <= self.num_src,
            "targets must be a prefix of the source space"
        );
    }
}

/// Per-message scale applied during aggregation.
#[inline]
fn agg_scale(agg: Agg, degree: usize) -> f32 {
    match agg {
        Agg::Sum => 1.0,
        Agg::Mean => {
            if degree == 0 {
                0.0
            } else {
                1.0 / degree as f32
            }
        }
    }
}

/// g-SpMM forward — the original unblocked loop, kept as the bit-exactness
/// oracle for [`spmm_into`].
///
/// `src`: `[num_src, H·D]` source features. `edge_weights`: optional
/// `[E, H]` per-edge per-head weights (`heads` must divide `src.cols()`);
/// `None` means weight 1 on a single head spanning all channels.
pub fn spmm_reference(
    block: &BlockCsr,
    src: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
) -> Matrix {
    assert_eq!(src.rows(), block.num_src, "src feature rows != num_src");
    let channels = src.cols();
    assert!(
        heads >= 1 && channels.is_multiple_of(heads),
        "heads must divide channels"
    );
    if let Some(w) = edge_weights {
        assert_eq!(w.rows(), block.num_edges());
        assert_eq!(w.cols(), heads);
    }
    let head_dim = channels / heads;
    let mut out = Matrix::zeros(block.num_dst, channels);
    out.data_mut()
        .par_chunks_mut(channels.max(1))
        .enumerate()
        .for_each(|(d, orow)| {
            let lo = block.offsets[d] as usize;
            let hi = block.offsets[d + 1] as usize;
            let scale = agg_scale(agg, hi - lo);
            for e in lo..hi {
                let s = block.indices[e] as usize;
                let srow = src.row(s);
                match edge_weights {
                    None => {
                        for (o, &x) in orow.iter_mut().zip(srow) {
                            *o += scale * x;
                        }
                    }
                    Some(w) => {
                        let wrow = w.row(e);
                        for h in 0..heads {
                            let wh = scale * wrow[h];
                            let base = h * head_dim;
                            for j in 0..head_dim {
                                orow[base + j] += wh * srow[base + j];
                            }
                        }
                    }
                }
            }
        });
    out
}

/// Channel-tile width of the blocked spmm kernels: per-tile accumulators
/// live in registers across a destination row's whole edge list, so the
/// output row is stored once per tile instead of read-modify-written per
/// edge.
const SPMM_CB: usize = 32;

/// g-SpMM forward into a caller-provided output (re-shaped in place,
/// capacity reused). Channel-blocked on the unweighted path; every output
/// element still accumulates its edges in ascending edge order with the
/// same `agg` scaling, so results are bit-identical to
/// [`spmm_reference`] at any thread count.
pub fn spmm_into(
    block: &BlockCsr,
    src: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
    out: &mut Matrix,
) {
    spmm_into_with(simd::level(), block, src, edge_weights, heads, agg, out);
}

/// [`spmm_into`] at an explicit SIMD [`Level`].
#[allow(clippy::too_many_arguments)]
pub fn spmm_into_with(
    level: Level,
    block: &BlockCsr,
    src: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
    out: &mut Matrix,
) {
    assert_eq!(src.rows(), block.num_src, "src feature rows != num_src");
    let channels = src.cols();
    assert!(
        heads >= 1 && channels.is_multiple_of(heads),
        "heads must divide channels"
    );
    if let Some(w) = edge_weights {
        assert_eq!(w.rows(), block.num_edges());
        assert_eq!(w.cols(), heads);
    }
    let head_dim = channels / heads;
    out.reset_shape(block.num_dst, channels);
    out.data_mut()
        .par_chunks_mut(channels.max(1))
        .enumerate()
        .for_each(|(d, orow)| {
            let lo = block.offsets[d] as usize;
            let hi = block.offsets[d + 1] as usize;
            let scale = agg_scale(agg, hi - lo);
            match edge_weights {
                None => {
                    let edges = &block.indices[lo..hi];
                    let mut j0 = 0;
                    while j0 < channels {
                        let cb = SPMM_CB.min(channels - j0);
                        let mut acc = [0.0f32; SPMM_CB];
                        simd::spmm_gather_rowtile(
                            level,
                            edges,
                            src.data(),
                            channels,
                            j0,
                            scale,
                            &mut acc[..cb],
                        );
                        orow[j0..j0 + cb].copy_from_slice(&acc[..cb]);
                        j0 += cb;
                    }
                }
                Some(w) => {
                    for e in lo..hi {
                        let s = block.indices[e] as usize;
                        let srow = src.row(s);
                        let wrow = w.row(e);
                        for h in 0..heads {
                            let wh = scale * wrow[h];
                            let base = h * head_dim;
                            simd::axpy(
                                level,
                                &mut orow[base..base + head_dim],
                                &srow[base..base + head_dim],
                                wh,
                            );
                        }
                    }
                }
            }
        });
}

/// Allocating wrapper over [`spmm_into`].
pub fn spmm(
    block: &BlockCsr,
    src: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
) -> Matrix {
    let mut out = Matrix::empty();
    spmm_into(block, src, edge_weights, heads, agg, &mut out);
    out
}

/// CAS-loop atomic add on an `f32` stored in an `AtomicU32` — the software
/// equivalent of CUDA's `atomicAdd(float*)`.
#[inline]
fn atomic_add_f32(slot: &AtomicU32, add: f32) {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let new = f32::from_bits(cur) + add;
        match slot.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// The transposed adjacency of a [`BlockCsr`]: for every source node, its
/// incoming edges (and their destinations) in **ascending edge order** —
/// the deterministic gather order for the backward kernels. The buffers
/// are pooled: `ReverseScratch` is rebuilt in place every backward call,
/// so a warm scratch performs zero heap allocations.
#[derive(Default)]
pub struct ReverseScratch {
    offsets: Vec<u32>,
    edges: Vec<u32>,
    dsts: Vec<u32>,
    next: Vec<u32>,
}

/// Build the transpose with a stable counting sort over the edge list.
/// O(E) and sequential: the fill is a trivial fraction of the channel-wide
/// accumulation that follows, and stability is what buys determinism.
fn reverse_csr_into(block: &BlockCsr, rev: &mut ReverseScratch) {
    rev.offsets.clear();
    rev.offsets.resize(block.num_src + 1, 0);
    for &c in &block.indices {
        rev.offsets[c as usize + 1] += 1;
    }
    for s in 0..block.num_src {
        rev.offsets[s + 1] += rev.offsets[s];
    }
    rev.edges.clear();
    rev.edges.resize(block.indices.len(), 0);
    rev.dsts.clear();
    rev.dsts.resize(block.indices.len(), 0);
    rev.next.clear();
    rev.next.extend_from_slice(&rev.offsets[..block.num_src]);
    for d in 0..block.num_dst {
        for e in block.offsets[d] as usize..block.offsets[d + 1] as usize {
            let s = block.indices[e] as usize;
            let pos = rev.next[s] as usize;
            rev.next[s] += 1;
            rev.edges[pos] = e as u32;
            rev.dsts[pos] = d as u32;
        }
    }
}

/// g-SpMM backward w.r.t. source features — the original unblocked
/// transpose-gather, kept as the oracle for [`spmm_backward_src_into`].
pub fn spmm_backward_src_reference(
    block: &BlockCsr,
    grad_dst: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
) -> Matrix {
    assert_eq!(grad_dst.rows(), block.num_dst);
    let channels = grad_dst.cols();
    assert!(heads >= 1 && channels.is_multiple_of(heads));
    let head_dim = channels / heads;
    let mut rev = ReverseScratch::default();
    reverse_csr_into(block, &mut rev);
    let mut out = Matrix::zeros(block.num_src, channels);
    out.data_mut()
        .par_chunks_mut(channels.max(1))
        .enumerate()
        .for_each(|(s, orow)| {
            for i in rev.offsets[s] as usize..rev.offsets[s + 1] as usize {
                let e = rev.edges[i] as usize;
                let d = rev.dsts[i] as usize;
                let scale = agg_scale(agg, block.degree(d));
                let grow = grad_dst.row(d);
                match edge_weights {
                    None => {
                        for (o, &g) in orow.iter_mut().zip(grow) {
                            *o += scale * g;
                        }
                    }
                    Some(w) => {
                        let wrow = w.row(e);
                        for h in 0..heads {
                            let wh = scale * wrow[h];
                            let base = h * head_dim;
                            for j in 0..head_dim {
                                orow[base + j] += wh * grow[base + j];
                            }
                        }
                    }
                }
            }
        });
    out
}

/// g-SpMM backward w.r.t. source features — deterministic variant: a
/// gather over the transposed CSR, parallel across source rows, each row
/// accumulating its incoming gradients in ascending edge order. Results
/// are bit-identical at any thread count (the autograd tape uses this).
/// Channel-blocked like [`spmm_into`]; writes into a caller-provided
/// output and rebuilds the transpose in pooled scratch, so warm calls
/// allocate nothing.
pub fn spmm_backward_src_into(
    block: &BlockCsr,
    grad_dst: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
    out: &mut Matrix,
    rev: &mut ReverseScratch,
) {
    spmm_backward_src_into_with(
        simd::level(),
        block,
        grad_dst,
        edge_weights,
        heads,
        agg,
        out,
        rev,
    );
}

/// [`spmm_backward_src_into`] at an explicit SIMD [`Level`].
#[allow(clippy::too_many_arguments)]
pub fn spmm_backward_src_into_with(
    level: Level,
    block: &BlockCsr,
    grad_dst: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
    out: &mut Matrix,
    rev: &mut ReverseScratch,
) {
    assert_eq!(grad_dst.rows(), block.num_dst);
    let channels = grad_dst.cols();
    assert!(heads >= 1 && channels.is_multiple_of(heads));
    let head_dim = channels / heads;
    reverse_csr_into(block, rev);
    let rev = &*rev;
    out.reset_shape(block.num_src, channels);
    out.data_mut()
        .par_chunks_mut(channels.max(1))
        .enumerate()
        .for_each(|(s, orow)| {
            let lo = rev.offsets[s] as usize;
            let hi = rev.offsets[s + 1] as usize;
            match edge_weights {
                None => {
                    let dsts = &rev.dsts[lo..hi];
                    let mut j0 = 0;
                    while j0 < channels {
                        let cb = SPMM_CB.min(channels - j0);
                        let mut acc = [0.0f32; SPMM_CB];
                        simd::spmm_scatter_rowtile(
                            level,
                            dsts,
                            &block.offsets,
                            agg == Agg::Mean,
                            grad_dst.data(),
                            channels,
                            j0,
                            &mut acc[..cb],
                        );
                        orow[j0..j0 + cb].copy_from_slice(&acc[..cb]);
                        j0 += cb;
                    }
                }
                Some(w) => {
                    for i in lo..hi {
                        let e = rev.edges[i] as usize;
                        let d = rev.dsts[i] as usize;
                        let scale = agg_scale(agg, block.degree(d));
                        let grow = grad_dst.row(d);
                        let wrow = w.row(e);
                        for h in 0..heads {
                            let wh = scale * wrow[h];
                            let base = h * head_dim;
                            simd::axpy(
                                level,
                                &mut orow[base..base + head_dim],
                                &grow[base..base + head_dim],
                                wh,
                            );
                        }
                    }
                }
            }
        });
}

/// Allocating wrapper over [`spmm_backward_src_into`].
pub fn spmm_backward_src(
    block: &BlockCsr,
    grad_dst: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
) -> Matrix {
    let mut out = Matrix::empty();
    let mut rev = ReverseScratch::default();
    spmm_backward_src_into(
        block,
        grad_dst,
        edge_weights,
        heads,
        agg,
        &mut out,
        &mut rev,
    );
    out
}

/// g-SpMM backward w.r.t. source features — the paper-literal atomic
/// variant: the transposed aggregation executed on the **untransposed**
/// CSR with atomic adds; source nodes with `dup_count == 1` take the
/// plain-store fast path. Atomic f32 adds commit in race order, so outputs
/// may differ in low bits between runs; kept for fidelity and ablation.
pub fn spmm_backward_src_atomic(
    block: &BlockCsr,
    grad_dst: &Matrix,
    edge_weights: Option<&Matrix>,
    heads: usize,
    agg: Agg,
) -> Matrix {
    assert_eq!(grad_dst.rows(), block.num_dst);
    let channels = grad_dst.cols();
    assert!(heads >= 1 && channels.is_multiple_of(heads));
    let head_dim = channels / heads;
    let grad_src: Vec<AtomicU32> = (0..block.num_src * channels)
        .map(|_| AtomicU32::new(0f32.to_bits()))
        .collect();

    (0..block.num_dst).into_par_iter().for_each(|d| {
        let lo = block.offsets[d] as usize;
        let hi = block.offsets[d + 1] as usize;
        let scale = agg_scale(agg, hi - lo);
        let grow = grad_dst.row(d);
        for e in lo..hi {
            let s = block.indices[e] as usize;
            let plain_store = block.dup_count[s] == 1;
            let dst_slots = &grad_src[s * channels..(s + 1) * channels];
            match edge_weights {
                None => {
                    for (slot, &g) in dst_slots.iter().zip(grow) {
                        let v = scale * g;
                        if plain_store {
                            // dup_count == 1 ⇒ this edge is the only writer.
                            slot.store(
                                (f32::from_bits(slot.load(Ordering::Relaxed)) + v).to_bits(),
                                Ordering::Relaxed,
                            );
                        } else {
                            atomic_add_f32(slot, v);
                        }
                    }
                }
                Some(w) => {
                    let wrow = w.row(e);
                    for h in 0..heads {
                        let wh = scale * wrow[h];
                        let base = h * head_dim;
                        for j in 0..head_dim {
                            let v = wh * grow[base + j];
                            if plain_store {
                                let slot = &dst_slots[base + j];
                                slot.store(
                                    (f32::from_bits(slot.load(Ordering::Relaxed)) + v).to_bits(),
                                    Ordering::Relaxed,
                                );
                            } else {
                                atomic_add_f32(&dst_slots[base + j], v);
                            }
                        }
                    }
                }
            }
        }
    });

    let data: Vec<f32> = grad_src
        .into_iter()
        .map(|a| f32::from_bits(a.into_inner()))
        .collect();
    Matrix::from_vec(block.num_src, channels, data)
}

/// g-SpMM with **max** aggregation (GraphSage's pooling aggregator):
/// `out[d, c] = max over edges (d←s) of src[s, c]`, zeros for isolated
/// destinations. Returns the output and, per `(dst, channel)`, the *edge
/// index* that won (`u32::MAX` when the dst has no edges) — the backward
/// routes gradients through exactly those edges.
pub fn spmm_max(block: &BlockCsr, src: &Matrix) -> (Matrix, Vec<u32>) {
    assert_eq!(src.rows(), block.num_src, "src feature rows != num_src");
    let channels = src.cols();
    let mut out = Matrix::zeros(block.num_dst, channels);
    let mut argmax = vec![u32::MAX; block.num_dst * channels];
    out.data_mut()
        .par_chunks_mut(channels.max(1))
        .zip(argmax.par_chunks_mut(channels.max(1)))
        .enumerate()
        .for_each(|(d, (orow, arow))| {
            let lo = block.offsets[d] as usize;
            let hi = block.offsets[d + 1] as usize;
            if lo == hi {
                return; // isolated dst: zeros, argmax stays MAX
            }
            orow.fill(f32::NEG_INFINITY);
            for e in lo..hi {
                let s = block.indices[e] as usize;
                let srow = src.row(s);
                for c in 0..channels {
                    if srow[c] > orow[c] {
                        orow[c] = srow[c];
                        arow[c] = e as u32;
                    }
                }
            }
        });
    (out, argmax)
}

/// Backward of [`spmm_max`]: each `(dst, channel)` gradient flows only to
/// the source node of its winning edge. Deterministic variant — gathers
/// over the transposed CSR, so each source row checks its incoming edges
/// in ascending order against the argmax and accumulates schedule-free.
pub fn spmm_max_backward(block: &BlockCsr, grad_dst: &Matrix, argmax: &[u32]) -> Matrix {
    let channels = grad_dst.cols();
    assert_eq!(argmax.len(), block.num_dst * channels);
    let mut rev = ReverseScratch::default();
    reverse_csr_into(block, &mut rev);
    let mut out = Matrix::zeros(block.num_src, channels);
    out.data_mut()
        .par_chunks_mut(channels.max(1))
        .enumerate()
        .for_each(|(s, orow)| {
            for i in rev.offsets[s] as usize..rev.offsets[s + 1] as usize {
                let e = rev.edges[i];
                let d = rev.dsts[i] as usize;
                let grow = grad_dst.row(d);
                let arow = &argmax[d * channels..(d + 1) * channels];
                for c in 0..channels {
                    if arow[c] == e {
                        orow[c] += grow[c];
                    }
                }
            }
        });
    out
}

/// Backward of [`spmm_max`], paper-literal atomic-scatter variant (race-
/// order float adds; kept for fidelity and ablation).
pub fn spmm_max_backward_atomic(block: &BlockCsr, grad_dst: &Matrix, argmax: &[u32]) -> Matrix {
    let channels = grad_dst.cols();
    assert_eq!(argmax.len(), block.num_dst * channels);
    let grad_src: Vec<AtomicU32> = (0..block.num_src * channels)
        .map(|_| AtomicU32::new(0f32.to_bits()))
        .collect();
    (0..block.num_dst).into_par_iter().for_each(|d| {
        let grow = grad_dst.row(d);
        let arow = &argmax[d * channels..(d + 1) * channels];
        for c in 0..channels {
            let e = arow[c];
            if e == u32::MAX {
                continue;
            }
            let s = block.indices[e as usize] as usize;
            atomic_add_f32(&grad_src[s * channels + c], grow[c]);
        }
    });
    let data: Vec<f32> = grad_src
        .into_iter()
        .map(|a| f32::from_bits(a.into_inner()))
        .collect();
    Matrix::from_vec(block.num_src, channels, data)
}

/// g-SDDMM: per-edge, per-head dot products `out[e,h] = <a_dst[d], b_src[s]>_h`
/// for each edge `d←s`. This is both the GAT attention-logit kernel and
/// the backward of weighted g-SpMM w.r.t. the edge weights
/// (`a = grad_dst, b = src`, with the forward's aggregation scale).
pub fn sddmm(block: &BlockCsr, a_dst: &Matrix, b_src: &Matrix, heads: usize, agg: Agg) -> Matrix {
    assert_eq!(a_dst.rows(), block.num_dst);
    assert_eq!(b_src.rows(), block.num_src);
    assert_eq!(a_dst.cols(), b_src.cols());
    let channels = a_dst.cols();
    assert!(heads >= 1 && channels.is_multiple_of(heads));
    let head_dim = channels / heads;
    let mut out = Matrix::zeros(block.num_edges(), heads);
    // Parallel over dst rows; each owns a disjoint slice of edges.
    let out_ptr = out.data_mut().as_mut_ptr() as usize;
    (0..block.num_dst).into_par_iter().for_each(|d| {
        let lo = block.offsets[d] as usize;
        let hi = block.offsets[d + 1] as usize;
        let scale = agg_scale(agg, hi - lo);
        let arow = a_dst.row(d);
        for e in lo..hi {
            let s = block.indices[e] as usize;
            let brow = b_src.row(s);
            // SAFETY: edge ranges [lo, hi) are disjoint across dst rows, so
            // each parallel task writes a private slice of `out`.
            let orow = unsafe {
                std::slice::from_raw_parts_mut((out_ptr as *mut f32).add(e * heads), heads)
            };
            for h in 0..heads {
                let base = h * head_dim;
                let mut acc = 0.0f32;
                for j in 0..head_dim {
                    acc += arow[base + j] * brow[base + j];
                }
                orow[h] = scale * acc;
            }
        }
    });
    out
}

/// Softmax over each destination's incoming edges, per head (GAT's
/// attention normalization). Input and output are `[E, H]`.
pub fn edge_softmax(block: &BlockCsr, logits: &Matrix) -> Matrix {
    assert_eq!(logits.rows(), block.num_edges());
    let heads = logits.cols();
    let mut out = logits.clone();
    let out_ptr = out.data_mut().as_mut_ptr() as usize;
    (0..block.num_dst).into_par_iter().for_each(|d| {
        let lo = block.offsets[d] as usize;
        let hi = block.offsets[d + 1] as usize;
        if lo == hi {
            return;
        }
        // SAFETY: disjoint edge ranges per dst.
        let rows = unsafe {
            std::slice::from_raw_parts_mut((out_ptr as *mut f32).add(lo * heads), (hi - lo) * heads)
        };
        for h in 0..heads {
            let mut max = f32::NEG_INFINITY;
            for e in 0..hi - lo {
                max = max.max(rows[e * heads + h]);
            }
            let mut denom = 0.0f32;
            for e in 0..hi - lo {
                let v = (rows[e * heads + h] - max).exp();
                rows[e * heads + h] = v;
                denom += v;
            }
            for e in 0..hi - lo {
                rows[e * heads + h] /= denom;
            }
        }
    });
    out
}

/// Backward of [`edge_softmax`]: given the forward output `soft` and
/// upstream gradient `grad`, returns the gradient w.r.t. the logits:
/// `g_e = soft_e · (grad_e − Σ_f soft_f · grad_f)` per destination, per head.
pub fn edge_softmax_backward(block: &BlockCsr, soft: &Matrix, grad: &Matrix) -> Matrix {
    assert_eq!(soft.rows(), block.num_edges());
    assert_eq!(grad.rows(), block.num_edges());
    let heads = soft.cols();
    let mut out = Matrix::zeros(block.num_edges(), heads);
    let out_ptr = out.data_mut().as_mut_ptr() as usize;
    (0..block.num_dst).into_par_iter().for_each(|d| {
        let lo = block.offsets[d] as usize;
        let hi = block.offsets[d + 1] as usize;
        for h in 0..heads {
            let mut dot = 0.0f32;
            for e in lo..hi {
                dot += soft.get(e, h) * grad.get(e, h);
            }
            for e in lo..hi {
                let v = soft.get(e, h) * (grad.get(e, h) - dot);
                // SAFETY: disjoint edge ranges per dst.
                unsafe {
                    *(out_ptr as *mut f32).add(e * heads + h) = v;
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    /// Tiny block: 2 dst, 4 src (dst 0,1 are src 0,1).
    /// dst0 ← {src2, src3}; dst1 ← {src2}.
    fn tiny_block() -> BlockCsr {
        let b = BlockCsr {
            num_dst: 2,
            num_src: 4,
            offsets: vec![0, 2, 3],
            indices: vec![2, 3, 2],
            dup_count: vec![0, 0, 2, 1],
        };
        b.validate();
        b
    }

    fn randm(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// Dense reference: materialize the (scaled, weighted) adjacency and
    /// multiply.
    fn dense_spmm(
        block: &BlockCsr,
        src: &Matrix,
        w: Option<&Matrix>,
        heads: usize,
        agg: Agg,
    ) -> Matrix {
        let channels = src.cols();
        let head_dim = channels / heads;
        let mut out = Matrix::zeros(block.num_dst, channels);
        for d in 0..block.num_dst {
            let lo = block.offsets[d] as usize;
            let hi = block.offsets[d + 1] as usize;
            let scale = agg_scale(agg, hi - lo);
            for e in lo..hi {
                let s = block.indices[e] as usize;
                for h in 0..heads {
                    let wh = w.map_or(1.0, |w| w.get(e, h)) * scale;
                    for j in 0..head_dim {
                        let c = h * head_dim + j;
                        out.set(d, c, out.get(d, c) + wh * src.get(s, c));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn spmm_sum_matches_dense() {
        let b = tiny_block();
        let src = randm(4, 6, 1);
        let got = spmm(&b, &src, None, 1, Agg::Sum);
        assert!(got.max_abs_diff(&dense_spmm(&b, &src, None, 1, Agg::Sum)) < 1e-6);
    }

    #[test]
    fn spmm_mean_divides_by_degree() {
        let b = tiny_block();
        let src = randm(4, 3, 2);
        let got = spmm(&b, &src, None, 1, Agg::Mean);
        // dst0 has 2 in-edges: mean = (src2 + src3)/2.
        for j in 0..3 {
            let expect = (src.get(2, j) + src.get(3, j)) / 2.0;
            assert!((got.get(0, j) - expect).abs() < 1e-6);
        }
        // dst1: only src2.
        for j in 0..3 {
            assert!((got.get(1, j) - src.get(2, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_multihead_spmm_matches_dense() {
        let b = tiny_block();
        let heads = 2;
        let src = randm(4, 8, 3);
        let w = randm(b.num_edges(), heads, 4);
        let got = spmm(&b, &src, Some(&w), heads, Agg::Sum);
        assert!(got.max_abs_diff(&dense_spmm(&b, &src, Some(&w), heads, Agg::Sum)) < 1e-6);
    }

    #[test]
    fn backward_src_is_adjoint_of_forward() {
        // <spmm(x), g> == <x, spmm_backward_src(g)> for all x, g — the
        // defining property of the transpose.
        let b = tiny_block();
        for agg in [Agg::Sum, Agg::Mean] {
            let x = randm(4, 5, 10);
            let g = randm(2, 5, 11);
            let fwd = spmm(&b, &x, None, 1, agg);
            let bwd = spmm_backward_src(&b, &g, None, 1, agg);
            let lhs: f32 = fwd.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.data().iter().zip(bwd.data()).map(|(a, b)| a * b).sum();
            assert!((lhs - rhs).abs() < 1e-4, "{agg:?}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn backward_weights_via_sddmm_matches_finite_difference() {
        let b = tiny_block();
        let heads = 1;
        let src = randm(4, 4, 20);
        let w = randm(b.num_edges(), heads, 21);
        let g = randm(2, 4, 22);
        // Analytic: dL/dw_e = scale_d · <g[d], src[s]> = sddmm(g, src).
        let gw = sddmm(&b, &g, &src, heads, Agg::Sum);
        let eps = 1e-3;
        for e in 0..b.num_edges() {
            let mut wp = w.clone();
            wp.set(e, 0, w.get(e, 0) + eps);
            let mut wm = w.clone();
            wm.set(e, 0, w.get(e, 0) - eps);
            let loss = |w: &Matrix| -> f32 {
                spmm(&b, &src, Some(w), heads, Agg::Sum)
                    .data()
                    .iter()
                    .zip(g.data())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let fd = (loss(&wp) - loss(&wm)) / (2.0 * eps);
            assert!(
                (fd - gw.get(e, 0)).abs() < 1e-2,
                "edge {e}: fd {fd} vs {}",
                gw.get(e, 0)
            );
        }
    }

    #[test]
    fn edge_softmax_rows_sum_to_one_per_dst() {
        let b = tiny_block();
        let logits = randm(b.num_edges(), 2, 30);
        let soft = edge_softmax(&b, &logits);
        for h in 0..2 {
            let s0 = soft.get(0, h) + soft.get(1, h); // dst0's edges
            assert!((s0 - 1.0).abs() < 1e-6);
            assert!((soft.get(2, h) - 1.0).abs() < 1e-6); // dst1's single edge
        }
        assert!(soft.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn edge_softmax_backward_matches_finite_difference() {
        let b = tiny_block();
        let logits = randm(b.num_edges(), 1, 40);
        let up = randm(b.num_edges(), 1, 41);
        let soft = edge_softmax(&b, &logits);
        let grad = edge_softmax_backward(&b, &soft, &up);
        let eps = 1e-3;
        let loss = |l: &Matrix| -> f32 {
            edge_softmax(&b, l)
                .data()
                .iter()
                .zip(up.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for e in 0..b.num_edges() {
            let mut lp = logits.clone();
            lp.set(e, 0, logits.get(e, 0) + eps);
            let mut lm = logits.clone();
            lm.set(e, 0, logits.get(e, 0) - eps);
            let fd = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            assert!((fd - grad.get(e, 0)).abs() < 1e-2, "edge {e}");
        }
    }

    #[test]
    fn spmm_max_matches_scalar_reference() {
        let b = tiny_block();
        let src = randm(4, 5, 50);
        let (out, argmax) = spmm_max(&b, &src);
        // dst0 ← {src2, src3}: per-channel max; dst1 ← {src2}: identity.
        for c in 0..5 {
            assert_eq!(out.get(0, c), src.get(2, c).max(src.get(3, c)));
            assert_eq!(out.get(1, c), src.get(2, c));
        }
        // Winning edges are real edges of the right dst.
        for d in 0..2 {
            for c in 0..5 {
                let e = argmax[d * 5 + c] as usize;
                assert!(e >= b.offsets[d] as usize && e < b.offsets[d + 1] as usize);
            }
        }
    }

    #[test]
    fn spmm_max_isolated_dst_is_zero() {
        let b = BlockCsr {
            num_dst: 2,
            num_src: 3,
            offsets: vec![0, 0, 1],
            indices: vec![2],
            dup_count: vec![0, 0, 1],
        };
        let src = randm(3, 4, 51);
        let (out, argmax) = spmm_max(&b, &src);
        assert!(out.row(0).iter().all(|&v| v == 0.0));
        assert!(argmax[..4].iter().all(|&e| e == u32::MAX));
    }

    #[test]
    fn spmm_max_backward_matches_finite_difference() {
        let b = tiny_block();
        let src = randm(4, 3, 52);
        let g = randm(2, 3, 53);
        let (_, argmax) = spmm_max(&b, &src);
        let bwd = spmm_max_backward(&b, &g, &argmax);
        let eps = 1e-3;
        let loss = |x: &Matrix| -> f32 {
            let (o, _) = spmm_max(&b, x);
            o.data().iter().zip(g.data()).map(|(a, b)| a * b).sum()
        };
        for s in 0..4 {
            for c in 0..3 {
                let mut xp = src.clone();
                xp.set(s, c, src.get(s, c) + eps);
                let mut xm = src.clone();
                xm.set(s, c, src.get(s, c) - eps);
                let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
                assert!(
                    (fd - bwd.get(s, c)).abs() < 1e-2,
                    "({s},{c}): fd {fd} vs {}",
                    bwd.get(s, c)
                );
            }
        }
    }

    /// Random block shared by the determinism tests: dense duplicate
    /// structure so the atomic path really contends.
    fn random_block(seed: u64, num_dst: usize, num_src: usize, max_deg: usize) -> BlockCsr {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut offsets = vec![0u32];
        let mut indices = Vec::new();
        for _ in 0..num_dst {
            let deg = rng.gen_range(0..=max_deg);
            for _ in 0..deg {
                indices.push(rng.gen_range(0..num_src as u32));
            }
            offsets.push(indices.len() as u32);
        }
        let mut dup = vec![0u32; num_src];
        for &c in &indices {
            dup[c as usize] += 1;
        }
        let b = BlockCsr {
            num_dst,
            num_src,
            offsets,
            indices,
            dup_count: dup,
        };
        b.validate();
        b
    }

    #[test]
    fn deterministic_backward_matches_atomic_variant() {
        let b = random_block(60, 40, 64, 8);
        let g = randm(40, 6, 61);
        for agg in [Agg::Sum, Agg::Mean] {
            let det = spmm_backward_src(&b, &g, None, 1, agg);
            let atomic = spmm_backward_src_atomic(&b, &g, None, 1, agg);
            assert!(det.max_abs_diff(&atomic) < 1e-4, "{agg:?}");
        }
        let heads = 2;
        let w = randm(b.num_edges(), heads, 62);
        let gw = randm(40, 6, 63);
        let det = spmm_backward_src(&b, &gw, Some(&w), heads, Agg::Sum);
        let atomic = spmm_backward_src_atomic(&b, &gw, Some(&w), heads, Agg::Sum);
        assert!(det.max_abs_diff(&atomic) < 1e-4);

        let src = randm(64, 6, 64);
        let (_, argmax) = spmm_max(&b, &src);
        let det = spmm_max_backward(&b, &g, &argmax);
        let atomic = spmm_max_backward_atomic(&b, &g, &argmax);
        assert!(det.max_abs_diff(&atomic) < 1e-5);
    }

    /// The default backwards must be bit-identical between the parallel
    /// pool and the forced-sequential schedule (the atomic variants are
    /// exactly the kernels that can NOT promise this).
    #[test]
    fn deterministic_backward_is_bit_identical_across_schedules() {
        rayon::init_threads(4);
        let b = random_block(70, 128, 160, 12);
        let g = randm(128, 16, 71);
        let src = randm(160, 16, 72);
        let (_, argmax) = spmm_max(&b, &src);
        let seq_src = rayon::run_sequential(|| spmm_backward_src(&b, &g, None, 1, Agg::Mean));
        let seq_max = rayon::run_sequential(|| spmm_max_backward(&b, &g, &argmax));
        for _ in 0..3 {
            let par_src = spmm_backward_src(&b, &g, None, 1, Agg::Mean);
            assert!(par_src
                .data()
                .iter()
                .zip(seq_src.data())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            let par_max = spmm_max_backward(&b, &g, &argmax);
            assert!(par_max
                .data()
                .iter()
                .zip(seq_max.data())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn atomic_add_accumulates_under_contention() {
        let slot = AtomicU32::new(0f32.to_bits());
        (0..10_000u32)
            .into_par_iter()
            .for_each(|_| atomic_add_f32(&slot, 0.5));
        let v = f32::from_bits(slot.into_inner());
        assert!((v - 5000.0).abs() < 1e-1, "{v}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn spmm_matches_dense_on_random_blocks(
            num_dst in 1usize..12,
            extra_src in 0usize..12,
            seed in 0u64..500,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let num_src = num_dst + extra_src;
            let mut offsets = vec![0u32];
            let mut indices = Vec::new();
            for _ in 0..num_dst {
                let deg = rng.gen_range(0..5usize);
                for _ in 0..deg {
                    indices.push(rng.gen_range(0..num_src as u32));
                }
                offsets.push(indices.len() as u32);
            }
            let mut dup = vec![0u32; num_src];
            for &c in &indices {
                dup[c as usize] += 1;
            }
            let b = BlockCsr { num_dst, num_src, offsets, indices, dup_count: dup };
            b.validate();
            let src = randm(num_src, 4, seed + 1);
            for agg in [Agg::Sum, Agg::Mean] {
                let got = spmm(&b, &src, None, 1, agg);
                prop_assert!(got.max_abs_diff(&dense_spmm(&b, &src, None, 1, agg)) < 1e-5);
                // Adjoint check.
                let g = randm(num_dst, 4, seed + 2);
                let bwd = spmm_backward_src(&b, &g, None, 1, agg);
                let lhs: f32 = got.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
                let rhs: f32 = src.data().iter().zip(bwd.data()).map(|(a, b)| a * b).sum();
                prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
            }
        }

        /// The channel-blocked forward/backward kernels must match the
        /// unblocked reference kernels *in bits* on arbitrary blocks and
        /// channel widths (tile-divisible or not), with warm pooled
        /// buffers reused across calls.
        #[test]
        fn blocked_spmm_is_bit_identical_to_reference(
            num_dst in 1usize..12,
            extra_src in 0usize..12,
            channels in 1usize..70,
            seed in 0u64..500,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xb10c);
            let num_src = num_dst + extra_src;
            let mut offsets = vec![0u32];
            let mut indices = Vec::new();
            for _ in 0..num_dst {
                let deg = rng.gen_range(0..5usize);
                for _ in 0..deg {
                    indices.push(rng.gen_range(0..num_src as u32));
                }
                offsets.push(indices.len() as u32);
            }
            let mut dup = vec![0u32; num_src];
            for &c in &indices {
                dup[c as usize] += 1;
            }
            let b = BlockCsr { num_dst, num_src, offsets, indices, dup_count: dup };
            let src = randm(num_src, channels, seed + 1);
            let g = randm(num_dst, channels, seed + 2);
            let bits = |a: &Matrix, r: &Matrix| {
                a.data().iter().zip(r.data()).all(|(x, y)| x.to_bits() == y.to_bits())
            };
            // Dirty pooled buffers: contents must be fully overwritten.
            let mut out = Matrix::from_fn(2, 2, |_, _| f32::NAN);
            let mut bwd = Matrix::from_fn(3, 1, |_, _| f32::NAN);
            let mut rev = ReverseScratch::default();
            for agg in [Agg::Sum, Agg::Mean] {
                spmm_into(&b, &src, None, 1, agg, &mut out);
                prop_assert!(bits(&out, &spmm_reference(&b, &src, None, 1, agg)));
                spmm_backward_src_into(&b, &g, None, 1, agg, &mut bwd, &mut rev);
                prop_assert!(bits(&bwd, &spmm_backward_src_reference(&b, &g, None, 1, agg)));
            }
        }
    }
}
