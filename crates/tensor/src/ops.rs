//! Dense kernels (rayon-parallel stand-ins for cuBLAS / elementwise CUDA).
#![allow(clippy::needless_range_loop)] // kernel-style indexed loops mirror the CUDA code

use rayon::prelude::*;

use crate::matrix::Matrix;
use crate::simd::{self, Level};

// ---------------------------------------------------------------------------
// Dense matmul family.
//
// Each kernel comes in three forms:
//   * `*_reference` — the original naive row-parallel loop, kept as the
//     bit-exactness oracle (property tests pin the blocked kernels to it);
//   * `*_into`      — the cache-blocked kernel writing into a
//     caller-provided output (and scratch) buffer, so warm steady-state
//     calls perform zero heap allocations; its inner loops dispatch
//     through [`crate::simd`] (AVX2 when the host has it, scalar
//     otherwise), and an `*_into_with` twin takes an explicit
//     [`Level`] so tests and benches can pin both paths;
//   * the plain name — an allocating convenience wrapper over `*_into`.
//
// Determinism contract: for every output element the blocked kernels add
// contributions in ascending-k order with exactly the reference kernels'
// zero-skip rule, and `matmul_tn` reduces its k-chunk partials through the
// same midpoint tree as the reference. Blocking therefore only reorders
// *which element is worked on when* — never the per-element float
// reduction — so results are bit-identical to the references at any
// thread count.
// ---------------------------------------------------------------------------

/// Rows of `C` handled per parallel task — the `B` panel loaded into cache
/// for one (k-block × column-tile) is reused across this many rows.
const MR: usize = 8;
/// Column-tile width: per-row accumulators for one tile live in registers.
const NR: usize = 32;
/// k-block depth: one `B` panel is `KB × NR` floats (32 KiB) — L1-sized.
const KB: usize = 256;

/// `C = A · B` for `A: [m,k]`, `B: [k,n]` — naive row-parallel k-outer
/// loop. Oracle for [`matmul_into`].
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    c.data_mut()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, crow)| {
            let arow = a.row(i);
            for l in 0..k {
                let av = arow[l];
                if av == 0.0 {
                    continue;
                }
                let brow = b.row(l);
                for j in 0..n {
                    crow[j] += av * brow[j];
                }
            }
        });
    c
}

/// `C = A · B` into a caller-provided output (re-shaped in place, capacity
/// reused). Cache-blocked: parallel over `MR`-row bands, k-blocked so the
/// `KB × NR` panel of `B` stays cache-resident across the band's rows, and
/// each row × column-tile accumulates in an `NR`-wide register tile.
/// Bit-identical to [`matmul_reference`] (ascending-k adds, same
/// zero-skip) at any thread count.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    matmul_into_with(simd::level(), a, b, c);
}

/// [`matmul_into`] at an explicit SIMD [`Level`] — lets tests and benches
/// pin the scalar and AVX2 paths against each other bitwise.
pub fn matmul_into_with(level: Level, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    blocked_gemm_into(level, a, b.data(), b.cols(), c, true);
}

/// The shared cache-blocked GEMM body: `C = A · B` with `B` given as a
/// row-major `[a.cols(), n]` slice. `skip_zero` selects the reference
/// zero-skip rule (`matmul` skips `a[i,l] == 0.0`; `matmul_nt`'s oracle
/// does not skip). The register tile itself is [`simd::matmul_rowtile`],
/// which adds contributions in ascending-`l` order per element at either
/// level.
fn blocked_gemm_into(
    level: Level,
    a: &Matrix,
    b: &[f32],
    n: usize,
    c: &mut Matrix,
    skip_zero: bool,
) {
    let (m, k) = (a.rows(), a.cols());
    debug_assert_eq!(b.len(), k * n);
    c.reset_shape(m, n);
    c.data_mut()
        .par_chunks_mut((n * MR).max(1))
        .enumerate()
        .for_each(|(band, cband)| {
            let i0 = band * MR;
            let band_rows = cband.len() / n.max(1);
            let mut k0 = 0;
            while k0 < k {
                let k1 = k.min(k0 + KB);
                let mut j0 = 0;
                while j0 < n {
                    let nb = NR.min(n - j0);
                    for bi in 0..band_rows {
                        let arow = &a.row(i0 + bi)[k0..k1];
                        let crow = &mut cband[bi * n + j0..bi * n + j0 + nb];
                        let mut acc = [0.0f32; NR];
                        acc[..nb].copy_from_slice(crow);
                        simd::matmul_rowtile(
                            level,
                            arow,
                            &b[k0 * n + j0..],
                            n,
                            &mut acc[..nb],
                            skip_zero,
                        );
                        crow.copy_from_slice(&acc[..nb]);
                    }
                    j0 += nb;
                }
                k0 = k1;
            }
        });
}

/// Allocating wrapper over [`matmul_into`].
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::empty();
    matmul_into(a, b, &mut c);
    c
}

/// k-chunk size of the `matmul_tn` partial reduction. Fixed so the
/// reduction tree's shape depends only on `k`, never on the thread count.
const TN_CHUNK: usize = 512;

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` (weight-gradient shape) —
/// the original allocating chunk-partial implementation, kept as the
/// oracle for [`matmul_tn_into`].
pub fn matmul_tn_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    // Chunk the k dimension; the chunk partials are then merged by a
    // pairwise tree whose shape depends only on the partial count, so the
    // result is bit-identical at any thread count.
    let mut partials: Vec<Vec<f32>> = (0..k)
        .into_par_iter()
        .chunks(TN_CHUNK)
        .map(|rows| {
            let mut acc = vec![0.0f32; m * n];
            for l in rows {
                tn_accumulate_row(a.row(l), b.row(l), &mut acc, n);
            }
            acc
        })
        .collect();
    let out = match partials.len() {
        0 => vec![0.0f32; m * n],
        _ => tree_reduce_partials(&mut partials),
    };
    Matrix::from_vec(m, n, out)
}

/// One k-row's rank-1 contribution `acc += a_rowᵀ · b_row`, with the
/// shared zero-skip rule. Factored out so the reference and the
/// scratch-slab kernels execute the identical float sequence.
#[inline]
fn tn_accumulate_row(arow: &[f32], brow: &[f32], acc: &mut [f32], n: usize) {
    for (i, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let dst = &mut acc[i * n..(i + 1) * n];
        for (d, bv) in dst.iter_mut().zip(brow) {
            *d += av * bv;
        }
    }
}

/// Merge chunk partials pairwise: split at the midpoint, reduce both
/// halves (in parallel via `join`), then add right into left elementwise.
/// The merge tree is a pure function of `partials.len()` — deterministic
/// regardless of how the halves are scheduled.
fn tree_reduce_partials(partials: &mut [Vec<f32>]) -> Vec<f32> {
    match partials {
        [] => unreachable!("caller handles the empty case"),
        [only] => std::mem::take(only),
        _ => {
            let mid = partials.len() / 2;
            let (left, right) = partials.split_at_mut(mid);
            let (mut l, r) = rayon::join(
                || tree_reduce_partials(left),
                || tree_reduce_partials(right),
            );
            for (o, v) in l.iter_mut().zip(r) {
                *o += v;
            }
            l
        }
    }
}

/// `C = Aᵀ · B` into caller-provided output and scratch buffers. The
/// k-chunk partials live in one flat `scratch` slab (`⌈k/512⌉ · m·n`
/// floats, capacity reused across calls) instead of per-chunk `Vec`s, and
/// are merged by the same midpoint tree as [`matmul_tn_reference`] — same
/// chunk boundaries, same merge order, bit-identical output, zero steady-
/// state allocations.
pub fn matmul_tn_into(a: &Matrix, b: &Matrix, c: &mut Matrix, scratch: &mut Vec<f32>) {
    matmul_tn_into_with(simd::level(), a, b, c, scratch);
}

/// [`matmul_tn_into`] at an explicit SIMD [`Level`].
pub fn matmul_tn_into_with(
    level: Level,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    scratch: &mut Vec<f32>,
) {
    assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let stride = m * n;
    c.reset_shape(m, n);
    if k == 0 || stride == 0 {
        return;
    }
    let nchunks = k.div_ceil(TN_CHUNK);
    scratch.clear();
    scratch.resize(nchunks * stride, 0.0);
    scratch
        .par_chunks_mut(stride)
        .enumerate()
        .for_each(|(ci, acc)| {
            let lo = ci * TN_CHUNK;
            let hi = k.min(lo + TN_CHUNK);
            for l in lo..hi {
                simd::tn_accumulate(level, a.row(l), b.row(l), acc, n);
            }
        });
    tree_reduce_slabs(level, &mut scratch[..nchunks * stride], nchunks, stride);
    c.data_mut().copy_from_slice(&scratch[..stride]);
}

/// Slab form of [`tree_reduce_partials`]: reduce `count` contiguous
/// `stride`-sized partials into slab 0. Midpoint split, halves reduced in
/// parallel, right sum added into left — the identical tree, so the bits
/// match the `Vec<Vec<f32>>` reference exactly.
fn tree_reduce_slabs(level: Level, slabs: &mut [f32], count: usize, stride: usize) {
    if count <= 1 {
        return;
    }
    let mid = count / 2;
    let (left, right) = slabs.split_at_mut(mid * stride);
    rayon::join(
        || tree_reduce_slabs(level, left, mid, stride),
        || tree_reduce_slabs(level, right, count - mid, stride),
    );
    simd::add_assign(level, &mut left[..stride], &right[..stride]);
}

/// Allocating wrapper over [`matmul_tn_into`].
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::empty();
    let mut scratch = Vec::new();
    matmul_tn_into(a, b, &mut c, &mut scratch);
    c
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` (backward-through-weights
/// shape) — naive dot-product-per-cell loop. Oracle for
/// [`matmul_nt_into`].
pub fn matmul_nt_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, n);
    c.data_mut()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, crow)| {
            let arow = a.row(i);
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = b.row(j);
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += arow[l] * brow[l];
                }
                *cv = acc;
            }
        });
    c
}

/// `C = A · Bᵀ` into a caller-provided output, with `scratch` a pooled
/// buffer that holds `Bᵀ` (`[k, n]` row-major, capacity reused across
/// calls). A per-cell dot product reduces over `k` — the one shape a
/// column-lane SIMD kernel cannot vectorize without re-associating the
/// sum — so instead `B` is transposed once and the same blocked GEMM body
/// as [`matmul_into`] runs on it. Per element the contributions still add
/// in ascending-`k` order (the reference has no zero-skip, so the body
/// runs with `skip_zero = false`) — bit-identical to
/// [`matmul_nt_reference`] at any thread count and SIMD level.
pub fn matmul_nt_into(a: &Matrix, b: &Matrix, c: &mut Matrix, scratch: &mut Vec<f32>) {
    matmul_nt_into_with(simd::level(), a, b, c, scratch);
}

/// [`matmul_nt_into`] at an explicit SIMD [`Level`].
pub fn matmul_nt_into_with(
    level: Level,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    scratch: &mut Vec<f32>,
) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt shape mismatch");
    let (k, n) = (a.cols(), b.rows());
    scratch.clear();
    scratch.resize(k * n, 0.0);
    let bd = b.data();
    scratch
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(l, row)| {
            for (j, o) in row.iter_mut().enumerate() {
                *o = bd[j * k + l];
            }
        });
    blocked_gemm_into(level, a, scratch, n, c, false);
}

/// Allocating wrapper over [`matmul_nt_into`].
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::empty();
    let mut scratch = Vec::new();
    matmul_nt_into(a, b, &mut c, &mut scratch);
    c
}

/// Add a bias row vector to every row.
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), x.cols(), "bias width mismatch");
    let n = x.cols();
    x.data_mut().par_chunks_mut(n).for_each(|row| {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    });
}

/// Elementwise sum `a + b` into a caller-provided output.
pub fn add_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "add shape mismatch"
    );
    out.copy_from(a);
    out.data_mut()
        .par_iter_mut()
        .zip(b.data().par_iter())
        .for_each(|(o, y)| *o += y);
}

/// Elementwise sum `a + b`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::empty();
    add_into(a, b, &mut out);
    out
}

/// Elementwise scale.
pub fn scale(x: &mut Matrix, s: f32) {
    x.data_mut().par_iter_mut().for_each(|v| *v *= s);
}

/// ReLU forward (in place).
pub fn relu(x: &mut Matrix) {
    x.data_mut().par_iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = 0.0;
        }
    });
}

/// ReLU backward: zero gradients where the forward input was negative.
pub fn relu_backward(grad: &mut Matrix, forward_input: &Matrix) {
    assert_eq!(grad.len(), forward_input.len());
    grad.data_mut()
        .par_iter_mut()
        .zip(forward_input.data().par_iter())
        .for_each(|(g, &x)| {
            if x <= 0.0 {
                *g = 0.0;
            }
        });
}

/// LeakyReLU forward (GAT uses slope 0.2 on attention logits).
pub fn leaky_relu(x: &mut [f32], slope: f32) {
    x.par_iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v *= slope;
        }
    });
}

/// LeakyReLU backward.
pub fn leaky_relu_backward(grad: &mut [f32], forward_input: &[f32], slope: f32) {
    grad.par_iter_mut()
        .zip(forward_input.par_iter())
        .for_each(|(g, &x)| {
            if x < 0.0 {
                *g *= slope;
            }
        });
}

/// ELU forward (GAT's inter-layer activation).
pub fn elu(x: &mut Matrix, alpha: f32) {
    x.data_mut().par_iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = alpha * (v.exp() - 1.0);
        }
    });
}

/// ELU backward given the forward *output*.
pub fn elu_backward(grad: &mut Matrix, forward_output: &Matrix, alpha: f32) {
    grad.data_mut()
        .par_iter_mut()
        .zip(forward_output.data().par_iter())
        .for_each(|(g, &y)| {
            if y < 0.0 {
                *g *= y + alpha;
            }
        });
}

/// Inverted dropout: zero with probability `p`, scale survivors by
/// `1/(1-p)`. The mask (1/(1-p) or 0 per element) is returned for backward.
pub fn dropout(x: &mut Matrix, p: f32, seed: u64) -> Vec<f32> {
    let mut mask = Vec::new();
    dropout_into(x, p, seed, &mut mask);
    mask
}

/// [`dropout`] with the mask written into a caller-provided (pooled)
/// buffer. Mask contents are identical to the allocating form.
pub fn dropout_into(x: &mut Matrix, p: f32, seed: u64, mask: &mut Vec<f32>) {
    use rand::prelude::*;
    use rand::rngs::SmallRng;
    assert!((0.0..1.0).contains(&p));
    mask.clear();
    if p == 0.0 {
        return;
    }
    let keep = 1.0 / (1.0 - p);
    let n = x.cols().max(1);
    mask.resize(x.len(), 0.0);
    mask.par_chunks_mut(n)
        .zip(x.data_mut().par_chunks_mut(n))
        .enumerate()
        .for_each(|(row, (mrow, xrow))| {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (row as u64).wrapping_mul(0x9e3779b97f4a7c15));
            for (m, v) in mrow.iter_mut().zip(xrow.iter_mut()) {
                if rng.gen::<f32>() < p {
                    *m = 0.0;
                    *v = 0.0;
                } else {
                    *m = keep;
                    *v *= keep;
                }
            }
        });
}

/// Fused softmax + cross-entropy over rows. Returns `(mean_loss,
/// grad_logits)` where the gradient is already divided by the row count.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u32]) -> (f32, Matrix) {
    let mut grad = Matrix::empty();
    let mut losses = Vec::new();
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad, &mut losses);
    (loss, grad)
}

/// [`softmax_cross_entropy`] writing the gradient and the per-row loss
/// scratch into caller-provided (pooled) buffers. The per-row losses are
/// still summed sequentially in row order, so the mean loss is
/// bit-identical to the allocating form at any thread count.
pub fn softmax_cross_entropy_into(
    logits: &Matrix,
    labels: &[u32],
    grad: &mut Matrix,
    losses: &mut Vec<f32>,
) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let (m, n) = (logits.rows(), logits.cols());
    grad.reset_shape(m, n);
    losses.clear();
    losses.resize(m, 0.0);
    grad.data_mut()
        .par_chunks_mut(n.max(1))
        .zip(losses.par_iter_mut())
        .enumerate()
        .for_each(|(i, (grow, loss))| {
            let row = logits.row(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (g, &x) in grow.iter_mut().zip(row) {
                let e = (x - max).exp();
                *g = e;
                denom += e;
            }
            let label = labels[i] as usize;
            debug_assert!(label < n, "label out of range");
            let p_label = grow[label] / denom;
            for g in grow.iter_mut() {
                *g /= denom * m as f32;
            }
            grow[label] -= 1.0 / m as f32;
            *loss = -(p_label.max(1e-12)).ln();
        });
    losses.iter().sum::<f32>() / m.max(1) as f32
}

/// Row-wise argmax (predictions).
pub fn argmax_rows(x: &Matrix) -> Vec<u32> {
    let mut out = Vec::new();
    argmax_rows_into(x, &mut out);
    out
}

/// [`argmax_rows`] into a caller-provided (pooled) buffer.
pub fn argmax_rows_into(x: &Matrix, out: &mut Vec<u32>) {
    out.clear();
    out.resize(x.rows(), 0);
    out.par_iter_mut().enumerate().for_each(|(i, o)| {
        let row = x.row(i);
        let mut best = 0usize;
        for j in 1..row.len() {
            if row[j] > row[best] {
                best = j;
            }
        }
        *o = best as u32;
    });
}

/// Horizontal concatenation `[A | B]` into a caller-provided output.
pub fn concat_cols_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.rows(), b.rows(), "concat row mismatch");
    let (m, na, nb) = (a.rows(), a.cols(), b.cols());
    out.reset_shape(m, na + nb);
    out.data_mut()
        .par_chunks_mut(na + nb)
        .enumerate()
        .for_each(|(i, row)| {
            row[..na].copy_from_slice(a.row(i));
            row[na..].copy_from_slice(b.row(i));
        });
}

/// Horizontal concatenation `[A | B]`.
pub fn concat_cols(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "concat row mismatch");
    let (m, na, nb) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, na + nb);
    out.data_mut()
        .par_chunks_mut(na + nb)
        .enumerate()
        .for_each(|(i, row)| {
            row[..na].copy_from_slice(a.row(i));
            row[na..].copy_from_slice(b.row(i));
        });
    out
}

/// Split the columns of `x` into caller-provided outputs of widths `na`,
/// rest — the backward of [`concat_cols`].
pub fn split_cols_into(x: &Matrix, na: usize, a: &mut Matrix, b: &mut Matrix) {
    assert!(na <= x.cols());
    let (m, n) = (x.rows(), x.cols());
    a.reset_shape(m, na);
    b.reset_shape(m, n - na);
    for i in 0..m {
        a.row_mut(i).copy_from_slice(&x.row(i)[..na]);
        b.row_mut(i).copy_from_slice(&x.row(i)[na..]);
    }
}

/// Split the columns of `x` back into two matrices of widths `na`, rest —
/// the backward of [`concat_cols`].
pub fn split_cols(x: &Matrix, na: usize) -> (Matrix, Matrix) {
    let (mut a, mut b) = (Matrix::empty(), Matrix::empty());
    split_cols_into(x, na, &mut a, &mut b);
    (a, b)
}

/// Column-wise sum (bias gradients) into a caller-provided slice of
/// length `x.cols()`.
pub fn sum_rows_into(x: &Matrix, out: &mut [f32]) {
    assert_eq!(out.len(), x.cols(), "sum_rows output width mismatch");
    out.fill(0.0);
    for i in 0..x.rows() {
        for (o, v) in out.iter_mut().zip(x.row(i)) {
            *o += v;
        }
    }
}

/// Column-wise sum (bias gradients).
pub fn sum_rows(x: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; x.cols()];
    sum_rows_into(x, &mut out);
    out
}

/// FLOP count of `matmul(a, b)`-shaped work (2·m·k·n) — used by the cost
/// model to charge simulated GPU time for the layer compute.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn randm(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for l in 0..a.cols() {
                    acc += a.get(i, l) * b.get(l, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = randm(7, 5, 1);
        let b = randm(5, 9, 2);
        assert!(matmul(&a, &b).max_abs_diff(&naive_matmul(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = randm(11, 4, 3);
        let b = randm(11, 6, 4);
        let at = Matrix::from_fn(4, 11, |i, j| a.get(j, i));
        assert!(matmul_tn(&a, &b).max_abs_diff(&naive_matmul(&at, &b)) < 1e-4);
    }

    /// `matmul_tn`'s chunked partials + pairwise tree reduce must produce
    /// the same bits on the parallel pool as on the forced-sequential
    /// schedule (which executes the identical reduction tree inline).
    #[test]
    fn matmul_tn_bits_are_pinned_across_thread_counts() {
        rayon::init_threads(4);
        // k = 2000 spans multiple 512-row chunks, so the tree reduce has
        // real internal nodes.
        let a = randm(2000, 5, 13);
        let b = randm(2000, 7, 14);
        let seq = rayon::run_sequential(|| matmul_tn(&a, &b));
        for _ in 0..3 {
            let par = matmul_tn(&a, &b);
            assert!(
                par.data()
                    .iter()
                    .zip(seq.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "matmul_tn bits depend on schedule"
            );
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = randm(5, 8, 5);
        let b = randm(7, 8, 6);
        let bt = Matrix::from_fn(8, 7, |i, j| b.get(j, i));
        assert!(matmul_nt(&a, &b).max_abs_diff(&naive_matmul(&a, &bt)) < 1e-4);
    }

    #[test]
    fn relu_and_backward() {
        let mut x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let input = x.clone();
        relu(&mut x);
        assert_eq!(x.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0; 4]);
        relu_backward(&mut g, &input);
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn bias_and_sum_rows_are_adjoint_shapes() {
        let mut x = Matrix::zeros(3, 2);
        add_bias(&mut x, &[1.0, -2.0]);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        assert_eq!(sum_rows(&x), vec![3.0, -6.0]);
    }

    #[test]
    fn softmax_ce_on_known_case() {
        // Two rows, three classes; uniform logits → loss = ln 3.
        let logits = Matrix::zeros(2, 3);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        assert!((loss - 3.0f32.ln()).abs() < 1e-6);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
        // True-class entries are negative.
        assert!(grad.get(0, 0) < 0.0 && grad.get(1, 2) < 0.0);
    }

    #[test]
    fn softmax_ce_gradient_matches_finite_difference() {
        let x = randm(4, 5, 9);
        let labels = [1u32, 0, 4, 2];
        let (_, grad) = softmax_cross_entropy(&x, &labels);
        let eps = 1e-3;
        for (i, j) in [(0usize, 1usize), (2, 4), (3, 0)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let (lp, _) = softmax_cross_entropy(&xp, &labels);
            let (lm, _) = softmax_cross_entropy(&xm, &labels);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.get(i, j)).abs() < 1e-3,
                "({i},{j}): fd {fd} vs grad {}",
                grad.get(i, j)
            );
        }
    }

    #[test]
    fn dropout_scales_survivors() {
        let mut x = Matrix::from_vec(1, 10_000, vec![1.0; 10_000]);
        let mask = dropout(&mut x, 0.5, 42);
        let kept = x.data().iter().filter(|v| **v > 0.0).count();
        // ~50% kept; survivors scaled to 2.0.
        assert!((kept as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert!(x.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert_eq!(mask.len(), 10_000);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = randm(3, 2, 7);
        let b = randm(3, 4, 8);
        let c = concat_cols(&a, &b);
        assert_eq!(c.cols(), 6);
        let (a2, b2) = split_cols(&c, 2);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let x = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }

    #[test]
    fn elu_matches_definition() {
        let mut x = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        elu(&mut x, 1.0);
        assert!((x.get(0, 0) - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        assert_eq!(x.get(0, 1), 2.0);
    }

    fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    /// The blocked kernels reuse whatever garbage is in the output (and
    /// scratch) buffers — a warm pooled buffer must not leak into results.
    #[test]
    fn into_kernels_overwrite_dirty_buffers() {
        let a = randm(9, 6, 21);
        let b = randm(6, 7, 22);
        let mut dirty = Matrix::from_fn(3, 3, |_, _| f32::NAN);
        matmul_into(&a, &b, &mut dirty);
        assert!(bits_equal(&dirty, &matmul_reference(&a, &b)));
        let bt = randm(5, 6, 23);
        let mut scratch = vec![f32::NAN; 7];
        matmul_nt_into(&a, &bt, &mut dirty, &mut scratch);
        assert!(bits_equal(&dirty, &matmul_nt_reference(&a, &bt)));
        let a2 = randm(700, 4, 24);
        let b2 = randm(700, 3, 25);
        scratch.clear();
        scratch.push(f32::NAN);
        matmul_tn_into(&a2, &b2, &mut dirty, &mut scratch);
        assert!(bits_equal(&dirty, &matmul_tn_reference(&a2, &b2)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn matmul_is_linear(seed in 0u64..1000) {
            // (A + A) · B == 2 (A · B)
            let a = randm(6, 4, seed);
            let b = randm(4, 5, seed + 1);
            let a2 = add(&a, &a);
            let mut twice = matmul(&a, &b);
            scale(&mut twice, 2.0);
            prop_assert!(matmul(&a2, &b).max_abs_diff(&twice) < 1e-4);
        }

        /// Blocked kernels must equal the naive reference kernels *in
        /// bits*, for any shape — including shapes that don't divide the
        /// MR/NR/KB/NT_JT tile sizes, and k large enough to span several
        /// k-blocks. Together with the pool-vs-sequential tests this pins
        /// the blocked kernels at every thread count.
        #[test]
        fn blocked_matmul_family_is_bit_identical_to_reference(
            m in 1usize..40,
            k in 1usize..600,
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            let a = randm(m, k, seed);
            let b = randm(k, n, seed + 1);
            prop_assert!(bits_equal(&matmul(&a, &b), &matmul_reference(&a, &b)));

            let bt = randm(n, k, seed + 2);
            prop_assert!(bits_equal(&matmul_nt(&a, &bt), &matmul_nt_reference(&a, &bt)));

            // tn shape: A is [k, m] with k the reduced dimension.
            let atn = randm(k, m, seed + 3);
            let btn = randm(k, n, seed + 4);
            let mut c = Matrix::empty();
            let mut scratch = Vec::new();
            matmul_tn_into(&atn, &btn, &mut c, &mut scratch);
            prop_assert!(bits_equal(&c, &matmul_tn_reference(&atn, &btn)));
            // Calling again with the warm scratch must not change bits.
            matmul_tn_into(&atn, &btn, &mut c, &mut scratch);
            prop_assert!(bits_equal(&c, &matmul_tn_reference(&atn, &btn)));
        }
    }

    /// The blocked kernels on the work-stealing pool must produce the
    /// same bits as on the forced-sequential reference schedule.
    #[test]
    fn blocked_kernels_bits_are_pinned_across_schedules() {
        rayon::init_threads(4);
        let a = randm(67, 1200, 31);
        let b = randm(1200, 33, 32);
        let bt = randm(33, 1200, 33);
        let seq = rayon::run_sequential(|| {
            (
                matmul(&a, &b),
                matmul_nt(&a, &bt),
                matmul_tn(&b, &b),
                softmax_cross_entropy(&randm(64, 10, 34), &[3u32; 64]).0,
            )
        });
        for _ in 0..3 {
            let par = (
                matmul(&a, &b),
                matmul_nt(&a, &bt),
                matmul_tn(&b, &b),
                softmax_cross_entropy(&randm(64, 10, 34), &[3u32; 64]).0,
            );
            assert!(bits_equal(&par.0, &seq.0), "matmul bits depend on schedule");
            assert!(
                bits_equal(&par.1, &seq.1),
                "matmul_nt bits depend on schedule"
            );
            assert!(
                bits_equal(&par.2, &seq.2),
                "matmul_tn bits depend on schedule"
            );
            assert_eq!(par.3.to_bits(), seq.3.to_bits(), "loss depends on schedule");
        }
    }
}
