//! Dense kernels (rayon-parallel stand-ins for cuBLAS / elementwise CUDA).
#![allow(clippy::needless_range_loop)] // kernel-style indexed loops mirror the CUDA code

use rayon::prelude::*;

use crate::matrix::Matrix;

/// `C = A · B` for `A: [m,k]`, `B: [k,n]`. Parallel over rows of `C`,
/// k-outer inner loop so the `j` loop vectorizes.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    c.data_mut()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, crow)| {
            let arow = a.row(i);
            for l in 0..k {
                let av = arow[l];
                if av == 0.0 {
                    continue;
                }
                let brow = b.row(l);
                for j in 0..n {
                    crow[j] += av * brow[j];
                }
            }
        });
    c
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` (weight-gradient shape).
/// Computed with a deterministic per-chunk-partial reduction.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    // Chunk the k dimension; the chunk partials are then merged by a
    // pairwise tree whose shape depends only on the partial count, so the
    // result is bit-identical at any thread count.
    const CHUNK: usize = 512;
    let mut partials: Vec<Vec<f32>> = (0..k)
        .into_par_iter()
        .chunks(CHUNK)
        .map(|rows| {
            let mut acc = vec![0.0f32; m * n];
            for l in rows {
                let arow = a.row(l);
                let brow = b.row(l);
                for (i, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let dst = &mut acc[i * n..(i + 1) * n];
                    for j in 0..n {
                        dst[j] += av * brow[j];
                    }
                }
            }
            acc
        })
        .collect();
    let out = match partials.len() {
        0 => vec![0.0f32; m * n],
        _ => tree_reduce_partials(&mut partials),
    };
    Matrix::from_vec(m, n, out)
}

/// Merge chunk partials pairwise: split at the midpoint, reduce both
/// halves (in parallel via `join`), then add right into left elementwise.
/// The merge tree is a pure function of `partials.len()` — deterministic
/// regardless of how the halves are scheduled.
fn tree_reduce_partials(partials: &mut [Vec<f32>]) -> Vec<f32> {
    match partials {
        [] => unreachable!("caller handles the empty case"),
        [only] => std::mem::take(only),
        _ => {
            let mid = partials.len() / 2;
            let (left, right) = partials.split_at_mut(mid);
            let (mut l, r) = rayon::join(
                || tree_reduce_partials(left),
                || tree_reduce_partials(right),
            );
            for (o, v) in l.iter_mut().zip(r) {
                *o += v;
            }
            l
        }
    }
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` (backward-through-weights shape).
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, n);
    c.data_mut()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, crow)| {
            let arow = a.row(i);
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = b.row(j);
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += arow[l] * brow[l];
                }
                *cv = acc;
            }
        });
    c
}

/// Add a bias row vector to every row.
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), x.cols(), "bias width mismatch");
    let n = x.cols();
    x.data_mut().par_chunks_mut(n).for_each(|row| {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    });
}

/// Elementwise sum `a + b`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "add shape mismatch"
    );
    let data = a
        .data()
        .par_iter()
        .zip(b.data().par_iter())
        .map(|(x, y)| x + y)
        .collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

/// Elementwise scale.
pub fn scale(x: &mut Matrix, s: f32) {
    x.data_mut().par_iter_mut().for_each(|v| *v *= s);
}

/// ReLU forward (in place).
pub fn relu(x: &mut Matrix) {
    x.data_mut().par_iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = 0.0;
        }
    });
}

/// ReLU backward: zero gradients where the forward input was negative.
pub fn relu_backward(grad: &mut Matrix, forward_input: &Matrix) {
    assert_eq!(grad.len(), forward_input.len());
    grad.data_mut()
        .par_iter_mut()
        .zip(forward_input.data().par_iter())
        .for_each(|(g, &x)| {
            if x <= 0.0 {
                *g = 0.0;
            }
        });
}

/// LeakyReLU forward (GAT uses slope 0.2 on attention logits).
pub fn leaky_relu(x: &mut [f32], slope: f32) {
    x.par_iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v *= slope;
        }
    });
}

/// LeakyReLU backward.
pub fn leaky_relu_backward(grad: &mut [f32], forward_input: &[f32], slope: f32) {
    grad.par_iter_mut()
        .zip(forward_input.par_iter())
        .for_each(|(g, &x)| {
            if x < 0.0 {
                *g *= slope;
            }
        });
}

/// ELU forward (GAT's inter-layer activation).
pub fn elu(x: &mut Matrix, alpha: f32) {
    x.data_mut().par_iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = alpha * (v.exp() - 1.0);
        }
    });
}

/// ELU backward given the forward *output*.
pub fn elu_backward(grad: &mut Matrix, forward_output: &Matrix, alpha: f32) {
    grad.data_mut()
        .par_iter_mut()
        .zip(forward_output.data().par_iter())
        .for_each(|(g, &y)| {
            if y < 0.0 {
                *g *= y + alpha;
            }
        });
}

/// Inverted dropout: zero with probability `p`, scale survivors by
/// `1/(1-p)`. The mask (1/(1-p) or 0 per element) is returned for backward.
pub fn dropout(x: &mut Matrix, p: f32, seed: u64) -> Vec<f32> {
    use rand::prelude::*;
    use rand::rngs::SmallRng;
    assert!((0.0..1.0).contains(&p));
    if p == 0.0 {
        return Vec::new();
    }
    let keep = 1.0 / (1.0 - p);
    let n = x.cols().max(1);
    let mut mask = vec![0.0f32; x.len()];
    mask.par_chunks_mut(n)
        .zip(x.data_mut().par_chunks_mut(n))
        .enumerate()
        .for_each(|(row, (mrow, xrow))| {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (row as u64).wrapping_mul(0x9e3779b97f4a7c15));
            for (m, v) in mrow.iter_mut().zip(xrow.iter_mut()) {
                if rng.gen::<f32>() < p {
                    *m = 0.0;
                    *v = 0.0;
                } else {
                    *m = keep;
                    *v *= keep;
                }
            }
        });
    mask
}

/// Fused softmax + cross-entropy over rows. Returns `(mean_loss,
/// grad_logits)` where the gradient is already divided by the row count.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u32]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let (m, n) = (logits.rows(), logits.cols());
    let mut grad = Matrix::zeros(m, n);
    let losses: Vec<f32> = grad
        .data_mut()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .map(|(i, grow)| {
            let row = logits.row(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (g, &x) in grow.iter_mut().zip(row) {
                let e = (x - max).exp();
                *g = e;
                denom += e;
            }
            let label = labels[i] as usize;
            debug_assert!(label < n, "label out of range");
            let p_label = grow[label] / denom;
            for g in grow.iter_mut() {
                *g /= denom * m as f32;
            }
            grow[label] -= 1.0 / m as f32;
            -(p_label.max(1e-12)).ln()
        })
        .collect();
    (losses.iter().sum::<f32>() / m.max(1) as f32, grad)
}

/// Row-wise argmax (predictions).
pub fn argmax_rows(x: &Matrix) -> Vec<u32> {
    (0..x.rows())
        .into_par_iter()
        .map(|i| {
            let row = x.row(i);
            let mut best = 0usize;
            for j in 1..row.len() {
                if row[j] > row[best] {
                    best = j;
                }
            }
            best as u32
        })
        .collect()
}

/// Horizontal concatenation `[A | B]`.
pub fn concat_cols(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "concat row mismatch");
    let (m, na, nb) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, na + nb);
    out.data_mut()
        .par_chunks_mut(na + nb)
        .enumerate()
        .for_each(|(i, row)| {
            row[..na].copy_from_slice(a.row(i));
            row[na..].copy_from_slice(b.row(i));
        });
    out
}

/// Split the columns of `x` back into two matrices of widths `na`, rest —
/// the backward of [`concat_cols`].
pub fn split_cols(x: &Matrix, na: usize) -> (Matrix, Matrix) {
    assert!(na <= x.cols());
    let (m, n) = (x.rows(), x.cols());
    let mut a = Matrix::zeros(m, na);
    let mut b = Matrix::zeros(m, n - na);
    for i in 0..m {
        a.row_mut(i).copy_from_slice(&x.row(i)[..na]);
        b.row_mut(i).copy_from_slice(&x.row(i)[na..]);
    }
    (a, b)
}

/// Column-wise sum (bias gradients).
pub fn sum_rows(x: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; x.cols()];
    for i in 0..x.rows() {
        for (o, v) in out.iter_mut().zip(x.row(i)) {
            *o += v;
        }
    }
    out
}

/// FLOP count of `matmul(a, b)`-shaped work (2·m·k·n) — used by the cost
/// model to charge simulated GPU time for the layer compute.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn randm(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for l in 0..a.cols() {
                    acc += a.get(i, l) * b.get(l, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = randm(7, 5, 1);
        let b = randm(5, 9, 2);
        assert!(matmul(&a, &b).max_abs_diff(&naive_matmul(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = randm(11, 4, 3);
        let b = randm(11, 6, 4);
        let at = Matrix::from_fn(4, 11, |i, j| a.get(j, i));
        assert!(matmul_tn(&a, &b).max_abs_diff(&naive_matmul(&at, &b)) < 1e-4);
    }

    /// `matmul_tn`'s chunked partials + pairwise tree reduce must produce
    /// the same bits on the parallel pool as on the forced-sequential
    /// schedule (which executes the identical reduction tree inline).
    #[test]
    fn matmul_tn_bits_are_pinned_across_thread_counts() {
        rayon::init_threads(4);
        // k = 2000 spans multiple 512-row chunks, so the tree reduce has
        // real internal nodes.
        let a = randm(2000, 5, 13);
        let b = randm(2000, 7, 14);
        let seq = rayon::run_sequential(|| matmul_tn(&a, &b));
        for _ in 0..3 {
            let par = matmul_tn(&a, &b);
            assert!(
                par.data()
                    .iter()
                    .zip(seq.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "matmul_tn bits depend on schedule"
            );
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = randm(5, 8, 5);
        let b = randm(7, 8, 6);
        let bt = Matrix::from_fn(8, 7, |i, j| b.get(j, i));
        assert!(matmul_nt(&a, &b).max_abs_diff(&naive_matmul(&a, &bt)) < 1e-4);
    }

    #[test]
    fn relu_and_backward() {
        let mut x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let input = x.clone();
        relu(&mut x);
        assert_eq!(x.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0; 4]);
        relu_backward(&mut g, &input);
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn bias_and_sum_rows_are_adjoint_shapes() {
        let mut x = Matrix::zeros(3, 2);
        add_bias(&mut x, &[1.0, -2.0]);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        assert_eq!(sum_rows(&x), vec![3.0, -6.0]);
    }

    #[test]
    fn softmax_ce_on_known_case() {
        // Two rows, three classes; uniform logits → loss = ln 3.
        let logits = Matrix::zeros(2, 3);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        assert!((loss - 3.0f32.ln()).abs() < 1e-6);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
        // True-class entries are negative.
        assert!(grad.get(0, 0) < 0.0 && grad.get(1, 2) < 0.0);
    }

    #[test]
    fn softmax_ce_gradient_matches_finite_difference() {
        let x = randm(4, 5, 9);
        let labels = [1u32, 0, 4, 2];
        let (_, grad) = softmax_cross_entropy(&x, &labels);
        let eps = 1e-3;
        for (i, j) in [(0usize, 1usize), (2, 4), (3, 0)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let (lp, _) = softmax_cross_entropy(&xp, &labels);
            let (lm, _) = softmax_cross_entropy(&xm, &labels);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.get(i, j)).abs() < 1e-3,
                "({i},{j}): fd {fd} vs grad {}",
                grad.get(i, j)
            );
        }
    }

    #[test]
    fn dropout_scales_survivors() {
        let mut x = Matrix::from_vec(1, 10_000, vec![1.0; 10_000]);
        let mask = dropout(&mut x, 0.5, 42);
        let kept = x.data().iter().filter(|v| **v > 0.0).count();
        // ~50% kept; survivors scaled to 2.0.
        assert!((kept as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert!(x.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert_eq!(mask.len(), 10_000);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = randm(3, 2, 7);
        let b = randm(3, 4, 8);
        let c = concat_cols(&a, &b);
        assert_eq!(c.cols(), 6);
        let (a2, b2) = split_cols(&c, 2);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let x = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }

    #[test]
    fn elu_matches_definition() {
        let mut x = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        elu(&mut x, 1.0);
        assert!((x.get(0, 0) - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        assert_eq!(x.get(0, 1), 2.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn matmul_is_linear(seed in 0u64..1000) {
            // (A + A) · B == 2 (A · B)
            let a = randm(6, 4, seed);
            let b = randm(4, 5, seed + 1);
            let a2 = add(&a, &a);
            let mut twice = matmul(&a, &b);
            scale(&mut twice, 2.0);
            prop_assert!(matmul(&a2, &b).max_abs_diff(&twice) < 1e-4);
        }
    }
}
