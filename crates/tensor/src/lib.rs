//! # wg-tensor — dense and sparse tensor math
//!
//! The numeric substrate under WholeGraph's GNN layers. Dense kernels
//! ([`matrix`], [`ops`]) are rayon-parallel row-blocked loops standing in
//! for cuBLAS/elementwise CUDA kernels; sparse kernels ([`sparse`])
//! implement the paper's §III-C4 ops:
//!
//! * **g-SpMM** — generalized sparse-matrix × dense-matrix: message
//!   passing from source nodes to destination nodes over a sampled
//!   sub-graph CSR, with optional per-edge (per-head) weights;
//! * **g-SDDMM** — generalized sampled-dense-dense matrix multiplication:
//!   per-edge values from dst/src feature pairs (attention logits, SpMM's
//!   backward w.r.t. edge weights);
//! * the backward of g-SpMM w.r.t. source features runs on the
//!   *untransposed* CSR with **atomic adds**, using the AppendUnique
//!   duplicate counts to downgrade the atomic to a plain store for nodes
//!   sampled exactly once — exactly the paper's optimization;
//! * **edge softmax** over each destination's incoming edges (GAT).

pub mod matrix;
pub mod ops;
pub mod simd;
pub mod sparse;

pub use matrix::Matrix;
pub use sparse::{Agg, BlockCsr};
