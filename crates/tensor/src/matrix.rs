//! Row-major `f32` matrices.

use rand::prelude::*;
use rand::rngs::SmallRng;

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Build from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization for a `fan_in → fan_out`
    /// weight matrix (shape `[fan_in, fan_out]`).
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut SmallRng) -> Self {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix {
            rows: fan_in,
            cols: fan_out,
            data,
        }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a 0×n or n×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy the first `n` rows into a new matrix (used to slice the
    /// targets-first prefix out of a gathered feature batch).
    pub fn top_rows(&self, n: usize) -> Matrix {
        assert!(n <= self.rows);
        Matrix {
            rows: n,
            cols: self.cols,
            data: self.data[..n * self.cols].to_vec(),
        }
    }

    /// An empty 0×0 matrix that owns no buffer — the placeholder shape the
    /// workspace pool hands out before a kernel `reset_shape`s it.
    pub fn empty() -> Matrix {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }

    /// Re-shape in place to `rows × cols`, zero-filled, reusing the
    /// existing buffer capacity. The scratch-pool analogue of
    /// [`Matrix::zeros`]: a warm buffer performs no heap allocation.
    pub fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Become a copy of `src` (shape and contents), reusing capacity.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!((m.rows(), m.cols(), m.len()), (2, 3, 6));
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.data(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = Matrix::xavier(64, 32, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
        // Not all zero.
        assert!(m.norm() > 0.1);
    }

    #[test]
    fn top_rows_slices_prefix() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let t = m.top_rows(2);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 2.5, 3.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn shape_mismatch_panics() {
        Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
