//! Hash partitioning of nodes onto GPUs.
//!
//! §III-B: "We partition the nodes of the graph to different GPUs according
//! to the node ID hash value." Each node gets an owning rank from a 64-bit
//! mix hash of its ID and a dense local index on that rank; the (rank,
//! local) pair is its [`GlobalId`]. The partition also knows how to map a
//! node onto a row of a chunk-partitioned [`wg_mem::WholeMemory`]: row
//! `rank · rows_per_rank + local`, where `rows_per_rank` is the maximum
//! per-rank node count (ranks with fewer nodes leave a little padding —
//! the price of fixed-stride addressing, just like the real library's
//! per-rank `cudaMalloc`s of equal size).

use crate::csr::Csr;
use crate::global_id::GlobalId;
use crate::NodeId;

/// Summary statistics of a partition against a concrete graph — the
/// quality measures DistGNN-style partitioned training cares about:
/// how much of the edge set crosses partition boundaries (driving halo
/// traffic) and how evenly the vertices spread.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Directed edges whose endpoints live on different ranks.
    pub edge_cut: u64,
    /// `edge_cut / num_edges` (0.0 on an edgeless graph).
    pub cut_fraction: f64,
    /// Vertices with at least one neighbor on another rank — the
    /// boundary (halo) set whose features cross the interconnect.
    pub boundary_nodes: usize,
    /// `boundary_nodes / num_nodes` (0.0 on an empty graph).
    pub boundary_fraction: f64,
    /// Max per-rank vertex count over ideal (see
    /// [`HashPartition::imbalance`]).
    pub imbalance: f64,
}

/// Deterministic 64-bit mix (splitmix64 finalizer) — a stand-in for the
/// node-ID hash the paper partitions with.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A hash partition of `num_nodes` nodes over `ranks` GPUs.
#[derive(Clone, Debug)]
pub struct HashPartition {
    ranks: u32,
    rank_of: Vec<u32>,
    local_of: Vec<u64>,
    /// `nodes_of[rank][local]` = original node id (the inverse mapping).
    nodes_of: Vec<Vec<NodeId>>,
}

impl HashPartition {
    /// Partition `num_nodes` nodes over `ranks` GPUs by ID hash.
    pub fn new(num_nodes: usize, ranks: u32) -> Self {
        assert!(ranks > 0);
        let mut rank_of = vec![0u32; num_nodes];
        let mut local_of = vec![0u64; num_nodes];
        let mut nodes_of: Vec<Vec<NodeId>> = vec![Vec::new(); ranks as usize];
        for v in 0..num_nodes {
            let r = (mix64(v as u64) % ranks as u64) as u32;
            rank_of[v] = r;
            local_of[v] = nodes_of[r as usize].len() as u64;
            nodes_of[r as usize].push(v as NodeId);
        }
        HashPartition {
            ranks,
            rank_of,
            local_of,
            nodes_of,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Number of nodes partitioned.
    pub fn num_nodes(&self) -> usize {
        self.rank_of.len()
    }

    /// Owning rank of a node.
    #[inline]
    pub fn rank_of(&self, v: NodeId) -> u32 {
        self.rank_of[v as usize]
    }

    /// GlobalId of a node.
    #[inline]
    pub fn global_id(&self, v: NodeId) -> GlobalId {
        GlobalId::new(self.rank_of[v as usize], self.local_of[v as usize])
    }

    /// Original node id of a GlobalId.
    #[inline]
    pub fn node_of(&self, g: GlobalId) -> NodeId {
        self.nodes_of[g.rank() as usize][g.local() as usize]
    }

    /// Nodes owned by `rank`, in local-id order.
    pub fn nodes_on_rank(&self, rank: u32) -> &[NodeId] {
        &self.nodes_of[rank as usize]
    }

    /// The fixed per-rank stride for DSM addressing: the largest per-rank
    /// node count.
    pub fn rows_per_rank(&self) -> usize {
        self.nodes_of.iter().map(Vec::len).max().unwrap_or(0).max(1)
    }

    /// Total padded row count for a node-indexed WholeMemory.
    pub fn padded_rows(&self) -> usize {
        self.rows_per_rank() * self.ranks as usize
    }

    /// The DSM row a node's data lives at.
    #[inline]
    pub fn dsm_row(&self, v: NodeId) -> usize {
        self.rank_of[v as usize] as usize * self.rows_per_rank()
            + self.local_of[v as usize] as usize
    }

    /// Imbalance of the partition: max per-rank count over the ideal
    /// `num_nodes / ranks` (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let ideal = self.num_nodes() as f64 / self.ranks as f64;
        if ideal == 0.0 {
            return 1.0;
        }
        self.rows_per_rank() as f64 / ideal
    }

    /// Number of directed edges of `g` whose endpoints live on different
    /// ranks. With a single rank this is zero by construction.
    pub fn edge_cut(&self, g: &Csr) -> u64 {
        assert_eq!(
            g.num_nodes(),
            self.num_nodes(),
            "partition covers a different vertex set than the graph"
        );
        let mut cut = 0u64;
        for v in 0..g.num_nodes() as u64 {
            let rv = self.rank_of(v);
            cut += g
                .neighbors(v)
                .iter()
                .filter(|&&u| self.rank_of(u) != rv)
                .count() as u64;
        }
        cut
    }

    /// Number of vertices of `g` with at least one neighbor on another
    /// rank — the boundary (halo) set of DistGNN-style partitioned
    /// training.
    pub fn boundary_nodes(&self, g: &Csr) -> usize {
        assert_eq!(
            g.num_nodes(),
            self.num_nodes(),
            "partition covers a different vertex set than the graph"
        );
        (0..g.num_nodes() as u64)
            .filter(|&v| {
                let rv = self.rank_of(v);
                g.neighbors(v).iter().any(|&u| self.rank_of(u) != rv)
            })
            .count()
    }

    /// Full quality summary against a concrete graph.
    pub fn quality(&self, g: &Csr) -> PartitionQuality {
        let edge_cut = self.edge_cut(g);
        let boundary = self.boundary_nodes(g);
        let edges = g.num_edges() as f64;
        let nodes = g.num_nodes() as f64;
        PartitionQuality {
            edge_cut,
            cut_fraction: if edges > 0.0 {
                edge_cut as f64 / edges
            } else {
                0.0
            },
            boundary_nodes: boundary,
            boundary_fraction: if nodes > 0.0 {
                boundary as f64 / nodes
            } else {
                0.0
            },
            imbalance: self.imbalance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn every_node_gets_exactly_one_slot() {
        let p = HashPartition::new(1000, 8);
        let total: usize = (0..8).map(|r| p.nodes_on_rank(r).len()).sum();
        assert_eq!(total, 1000);
        for v in 0..1000u64 {
            let g = p.global_id(v);
            assert_eq!(p.node_of(g), v);
            assert_eq!(g.rank(), p.rank_of(v));
        }
    }

    #[test]
    fn hash_partition_is_balanced() {
        // With a good mix hash, per-rank counts on a large graph stay
        // within a few percent of ideal.
        let p = HashPartition::new(100_000, 8);
        assert!(p.imbalance() < 1.05, "imbalance = {}", p.imbalance());
    }

    #[test]
    fn dsm_rows_are_unique_and_in_range() {
        let p = HashPartition::new(500, 4);
        let mut seen = std::collections::HashSet::new();
        for v in 0..500u64 {
            let row = p.dsm_row(v);
            assert!(row < p.padded_rows());
            assert!(seen.insert(row), "row collision at node {v}");
            // Row falls inside the owning rank's chunk.
            assert_eq!(row / p.rows_per_rank(), p.rank_of(v) as usize);
        }
    }

    #[test]
    fn single_rank_partition() {
        let p = HashPartition::new(10, 1);
        for v in 0..10u64 {
            assert_eq!(p.rank_of(v), 0);
            assert_eq!(p.dsm_row(v), p.global_id(v).local() as usize);
        }
        assert_eq!(p.padded_rows(), 10);
    }

    #[test]
    fn partition_is_deterministic() {
        let a = HashPartition::new(777, 8);
        let b = HashPartition::new(777, 8);
        for v in 0..777u64 {
            assert_eq!(a.global_id(v), b.global_id(v));
        }
    }

    #[test]
    fn every_vertex_assigned_exactly_once_on_rmat() {
        // Partition invariant 1: the per-rank lists are a disjoint cover
        // of the vertex set.
        let g = crate::gen::rmat(9, 4096, 42);
        let p = HashPartition::new(g.num_nodes(), 8);
        let mut owner_count = vec![0u32; g.num_nodes()];
        for r in 0..8 {
            for &v in p.nodes_on_rank(r) {
                owner_count[v as usize] += 1;
                assert_eq!(p.rank_of(v), r);
            }
        }
        assert!(owner_count.iter().all(|&c| c == 1));
    }

    #[test]
    fn balance_factor_within_bound_on_rmat() {
        // Partition invariant 2: the hash spreads even a skewed RMAT
        // vertex set to within ~10% of ideal at this size.
        let g = crate::gen::rmat(13, 16384, 7);
        for ranks in [2u32, 4, 8] {
            let p = HashPartition::new(g.num_nodes(), ranks);
            assert!(
                p.imbalance() < 1.15,
                "ranks={ranks} imbalance={}",
                p.imbalance()
            );
        }
    }

    #[test]
    fn edge_cut_matches_brute_force_recount_on_rmat() {
        // Partition invariant 3: edge_cut agrees with an independent
        // walk over the raw CSR arrays.
        let g = crate::gen::rmat(8, 2048, 3);
        for ranks in [1u32, 2, 5, 8] {
            let p = HashPartition::new(g.num_nodes(), ranks);
            let mut brute = 0u64;
            let offsets = g.offsets();
            let targets = g.targets();
            for v in 0..g.num_nodes() {
                for &t in &targets[offsets[v] as usize..offsets[v + 1] as usize] {
                    if p.rank_of(t) != p.rank_of(v as NodeId) {
                        brute += 1;
                    }
                }
            }
            assert_eq!(p.edge_cut(&g), brute, "ranks={ranks}");
            if ranks == 1 {
                assert_eq!(brute, 0);
            } else {
                // A hash partition of a connected-ish RMAT graph cuts
                // plenty of edges — the halo path is exercised for real.
                assert!(brute > 0);
            }
        }
    }

    #[test]
    fn quality_summary_is_consistent() {
        let g = crate::gen::rmat(8, 2048, 3);
        let p = HashPartition::new(g.num_nodes(), 4);
        let q = p.quality(&g);
        assert_eq!(q.edge_cut, p.edge_cut(&g));
        assert_eq!(q.boundary_nodes, p.boundary_nodes(&g));
        assert!((q.cut_fraction - q.edge_cut as f64 / g.num_edges() as f64).abs() < 1e-12);
        assert!(q.boundary_fraction > 0.0 && q.boundary_fraction <= 1.0);
        // With 4 ranks a random hash cuts roughly 3/4 of edges.
        assert!(q.cut_fraction > 0.5 && q.cut_fraction < 0.95);
        // Single-rank quality is the degenerate all-local case.
        let q1 = HashPartition::new(g.num_nodes(), 1).quality(&g);
        assert_eq!(q1.edge_cut, 0);
        assert_eq!(q1.boundary_nodes, 0);
        assert_eq!(q1.imbalance, 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn roundtrip_for_any_shape(n in 1usize..2000, ranks in 1u32..16) {
            let p = HashPartition::new(n, ranks);
            for v in (0..n as u64).step_by((n / 50).max(1)) {
                prop_assert_eq!(p.node_of(p.global_id(v)), v);
            }
            prop_assert!(p.rows_per_rank() * ranks as usize >= n);
        }
    }
}
