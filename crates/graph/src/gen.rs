//! Synthetic graph and feature generators.
//!
//! The paper evaluates on ogbn-products, ogbn-papers100M (real features and
//! labels) and Friendster / UK_domain (features "randomly generated" by the
//! authors since KONECT ships none). Without the OGB/KONECT downloads we
//! generate structurally comparable graphs:
//!
//! * [`sbm`] — a stochastic block model with class-correlated features
//!   ([`class_features`]): *learnable*, standing in for the OGB graphs in
//!   accuracy experiments (Table III, Figure 7);
//! * [`rmat`] — R-MAT power-law graphs standing in for the web/social
//!   graphs in performance experiments (their epoch times depend on size,
//!   degree distribution and feature width only);
//! * [`erdos_renyi`] — uniform random graphs for tests and microbenches.

use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::csr::Csr;
use crate::NodeId;

/// Uniform random (Erdős–Rényi-style) graph: `n·avg_degree/2` undirected
/// edges placed uniformly, then symmetrized, giving expected degree
/// ≈ `avg_degree`.
pub fn erdos_renyi(n: usize, avg_degree: f64, seed: u64) -> Csr {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = ((n as f64 * avg_degree) / 2.0) as usize;
    let edges: Vec<(NodeId, NodeId)> = (0..m)
        .map(|_| {
            let s = rng.gen_range(0..n as u64);
            let mut t = rng.gen_range(0..n as u64 - 1);
            if t >= s {
                t += 1; // avoid self loops without rejection
            }
            (s, t)
        })
        .collect();
    Csr::from_edges(n, &edges, true)
}

/// R-MAT recursive-matrix generator (Chakrabarti et al.) with the classic
/// skewed quadrant probabilities — produces the heavy-tailed degree
/// distributions of web/social graphs like Friendster and UK_domain.
///
/// `scale` is log2 of the node count; `edges` are placed before
/// symmetrization.
pub fn rmat(scale: u32, edges: usize, seed: u64) -> Csr {
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let list: Vec<(NodeId, NodeId)> = (0..edges)
        .map(|_| {
            let (mut s, mut t) = (0u64, 0u64);
            for _ in 0..scale {
                s <<= 1;
                t <<= 1;
                let p: f64 = rng.gen();
                if p < A {
                    // top-left: neither bit set
                } else if p < A + B {
                    t |= 1;
                } else if p < A + B + C {
                    s |= 1;
                } else {
                    s |= 1;
                    t |= 1;
                }
            }
            (s, t)
        })
        .collect();
    Csr::from_edges(n, &list, true)
}

/// Stochastic block model: `n` nodes in `num_classes` equal blocks,
/// `n·avg_degree/2` edges, each intra-block with probability `p_in`
/// (otherwise endpoints are unrelated). Returns the graph and per-node
/// block labels. With `p_in` well above `1/num_classes`, a GNN can recover
/// the blocks — our stand-in for OGB node classification.
pub fn sbm(n: usize, num_classes: usize, avg_degree: f64, p_in: f64, seed: u64) -> (Csr, Vec<u32>) {
    assert!(num_classes >= 2 && n >= num_classes);
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels: Vec<u32> = (0..n)
        .map(|_| rng.gen_range(0..num_classes as u32))
        .collect();
    // Index nodes by class for fast intra-class endpoint sampling.
    let mut by_class: Vec<Vec<NodeId>> = vec![Vec::new(); num_classes];
    for (v, &c) in labels.iter().enumerate() {
        by_class[c as usize].push(v as NodeId);
    }
    let m = ((n as f64 * avg_degree) / 2.0) as usize;
    let edges: Vec<(NodeId, NodeId)> = (0..m)
        .map(|_| {
            let s = rng.gen_range(0..n as u64);
            let t = if rng.gen::<f64>() < p_in {
                let peers = &by_class[labels[s as usize] as usize];
                peers[rng.gen_range(0..peers.len())]
            } else {
                rng.gen_range(0..n as u64)
            };
            (s, t)
        })
        .collect();
    (Csr::from_edges(n, &edges, true), labels)
}

/// Cumulative power-law weights `(rank+1)^-alpha` over `nodes`, for
/// inverse-CDF endpoint sampling. `nodes[i]`'s weight depends on its
/// *position* in the slice, so callers control which nodes are hot by
/// ordering the slice (we pass seeded permutations).
fn powerlaw_cdf(len: usize, alpha: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(len);
    let mut acc = 0.0f64;
    for rank in 0..len {
        acc += ((rank + 1) as f64).powf(-alpha);
        cum.push(acc);
    }
    cum
}

/// Draw an index in `0..cum.len()` with probability proportional to the
/// power-law weights behind `cum`.
fn powerlaw_pick(cum: &[f64], rng: &mut SmallRng) -> usize {
    let u = rng.gen::<f64>() * cum[cum.len() - 1];
    cum.partition_point(|&c| c <= u).min(cum.len() - 1)
}

/// Stochastic block model with a power-law degree profile: identical
/// block/homophily structure to [`sbm`], but edge endpoints are drawn
/// with probability ∝ `(rank+1)^-alpha` over a seeded node permutation
/// instead of uniformly, so the degree distribution grows the heavy
/// tail real OGB graphs have (ogbn-products' max degree is ~17k against
/// an average of ~52). Intra-class endpoints use the same power-law
/// ranks restricted to the class, preserving `p_in` homophily.
///
/// `alpha = 0` degenerates to uniform endpoint choice (structurally
/// [`sbm`], though not bit-identical — the RNG draw sequence differs).
pub fn sbm_powerlaw(
    n: usize,
    num_classes: usize,
    avg_degree: f64,
    p_in: f64,
    alpha: f64,
    seed: u64,
) -> (Csr, Vec<u32>) {
    assert!(num_classes >= 2 && n >= num_classes);
    assert!(alpha >= 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels: Vec<u32> = (0..n)
        .map(|_| rng.gen_range(0..num_classes as u32))
        .collect();
    // Hotness ranks: a seeded permutation decouples "hot" from node-id
    // order (CSR locality would otherwise make the hot set trivially
    // contiguous and overstate cache wins downstream).
    let mut perm: Vec<NodeId> = (0..n as u64).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x9e37));
    let global_cdf = powerlaw_cdf(n, alpha);
    // Per-class views keep each class's members in global-rank order so
    // intra-class picks reuse the same hotness profile.
    let mut by_class: Vec<Vec<NodeId>> = vec![Vec::new(); num_classes];
    for &v in &perm {
        by_class[labels[v as usize] as usize].push(v);
    }
    let class_cdf: Vec<Vec<f64>> = by_class
        .iter()
        .map(|members| powerlaw_cdf(members.len(), alpha))
        .collect();
    let m = ((n as f64 * avg_degree) / 2.0) as usize;
    let edges: Vec<(NodeId, NodeId)> = (0..m)
        .map(|_| {
            let s = perm[powerlaw_pick(&global_cdf, &mut rng)];
            let t = if rng.gen::<f64>() < p_in {
                let c = labels[s as usize] as usize;
                by_class[c][powerlaw_pick(&class_cdf[c], &mut rng)]
            } else {
                perm[powerlaw_pick(&global_cdf, &mut rng)]
            };
            (s, t)
        })
        .collect();
    (Csr::from_edges(n, &edges, true), labels)
}

/// Standard-normal sample via Box–Muller.
fn normal(rng: &mut SmallRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Class-correlated node features: each class gets a random mean vector of
/// norm ~1, each node's feature is its class mean plus `noise`·N(0,1) —
/// the information a classifier must aggregate over neighborhoods to
/// denoise (mirroring how OGB features correlate with labels).
pub fn class_features(
    labels: &[u32],
    num_classes: usize,
    dim: usize,
    noise: f32,
    seed: u64,
) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let scale = 1.0 / (dim as f32).sqrt();
    let means: Vec<f32> = (0..num_classes * dim)
        .map(|_| normal(&mut rng) * scale)
        .collect();
    let mut out = Vec::with_capacity(labels.len() * dim);
    for &c in labels {
        let mean = &means[c as usize * dim..(c as usize + 1) * dim];
        for &m in mean {
            out.push(m + noise * normal(&mut rng) * scale);
        }
    }
    out
}

/// Uncorrelated random features (the paper's treatment of Friendster and
/// UK_domain: "As node features are not provided by the collection, we
/// randomly generate them").
pub fn random_features(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n * dim).map(|_| normal(&mut rng) * 0.1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_hits_target_degree() {
        let g = erdos_renyi(2000, 10.0, 3);
        assert_eq!(g.num_nodes(), 2000);
        assert!(
            (g.avg_degree() - 10.0).abs() < 0.5,
            "avg degree {}",
            g.avg_degree()
        );
    }

    #[test]
    fn erdos_renyi_has_no_self_loops() {
        let g = erdos_renyi(300, 6.0, 4);
        for v in 0..300u64 {
            assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn rmat_is_heavy_tailed() {
        let g = rmat(12, 40_000, 5); // 4096 nodes
                                     // A power-law graph's max degree vastly exceeds its average.
        assert!(
            g.max_degree() as f64 > 8.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn sbm_labels_are_dense_and_edges_homophilous() {
        let (g, labels) = sbm(4000, 8, 16.0, 0.9, 6);
        assert_eq!(labels.len(), 4000);
        assert!(labels.iter().all(|&c| c < 8));
        // Count same-class edge endpoints: with p_in=0.9 the rate must be
        // far above the 1/8 random baseline.
        let mut same = 0usize;
        let mut total = 0usize;
        for v in 0..4000u64 {
            for &t in g.neighbors(v) {
                total += 1;
                same += usize::from(labels[v as usize] == labels[t as usize]);
            }
        }
        let rate = same as f64 / total as f64;
        assert!(rate > 0.6, "homophily rate {rate}");
    }

    #[test]
    fn sbm_powerlaw_is_heavy_tailed_and_homophilous() {
        let (g, labels) = sbm_powerlaw(4000, 8, 16.0, 0.9, 1.05, 6);
        assert_eq!(labels.len(), 4000);
        // Tail: a calibrated power-law's max degree vastly exceeds its
        // average, unlike the uniform-endpoint SBM.
        assert!(
            g.max_degree() as f64 > 8.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
        let (uniform, _) = sbm(4000, 8, 16.0, 0.9, 6);
        assert!(g.max_degree() > 2 * uniform.max_degree());
        // Homophily survives the reweighting.
        let mut same = 0usize;
        let mut total = 0usize;
        for v in 0..4000u64 {
            for &t in g.neighbors(v) {
                total += 1;
                same += usize::from(labels[v as usize] == labels[t as usize]);
            }
        }
        let rate = same as f64 / total as f64;
        assert!(rate > 0.6, "homophily rate {rate}");
    }

    #[test]
    fn sbm_powerlaw_concentrates_edges_on_a_hot_set() {
        let (g, _) = sbm_powerlaw(4000, 8, 16.0, 0.85, 1.05, 11);
        let mut degs: Vec<usize> = (0..4000u64).map(|v| g.neighbors(v).len()).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let hot: usize = degs[..40].iter().sum(); // top 1% of nodes
        let all: usize = degs.iter().sum();
        let share = hot as f64 / all as f64;
        assert!(share > 0.15, "top-1% edge share {share}");
    }

    #[test]
    fn sbm_powerlaw_is_deterministic() {
        let (g1, l1) = sbm_powerlaw(800, 4, 8.0, 0.8, 1.1, 9);
        let (g2, l2) = sbm_powerlaw(800, 4, 8.0, 0.8, 1.1, 9);
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn class_features_are_separable() {
        let labels: Vec<u32> = (0..200).map(|i| (i % 4) as u32).collect();
        let f = class_features(&labels, 4, 16, 0.3, 7);
        assert_eq!(f.len(), 200 * 16);
        // Same-class feature vectors are closer than cross-class ones.
        let dist = |a: usize, b: usize| -> f32 {
            (0..16)
                .map(|j| (f[a * 16 + j] - f[b * 16 + j]).powi(2))
                .sum::<f32>()
        };
        let same = dist(0, 4); // both class 0
        let cross = dist(0, 1); // class 0 vs 1
        assert!(same < cross, "same {same} cross {cross}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = rmat(10, 5000, 42);
        let b = rmat(10, 5000, 42);
        assert_eq!(a, b);
        let (g1, l1) = sbm(500, 4, 8.0, 0.8, 9);
        let (g2, l2) = sbm(500, 4, 8.0, 0.8, 9);
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn random_features_have_expected_shape() {
        let f = random_features(10, 128, 1);
        assert_eq!(f.len(), 1280);
        let mean: f32 = f.iter().sum::<f32>() / f.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
