//! GlobalID packing.
//!
//! §III-B: "Each graph node is assigned to a GlobalID, which is composed of
//! rank ID and local ID." We pack both into one `u64`: the owning GPU rank
//! in the top 16 bits, the node's local index on that GPU in the low 48 —
//! room for 65 536 ranks and 2⁴⁸ nodes per rank, far beyond a DGX.

/// A packed (rank, local) node identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GlobalId(u64);

const LOCAL_BITS: u32 = 48;
const LOCAL_MASK: u64 = (1 << LOCAL_BITS) - 1;

impl GlobalId {
    /// Pack a rank and local index.
    #[inline]
    pub fn new(rank: u32, local: u64) -> Self {
        assert!(local <= LOCAL_MASK, "local id {local} exceeds 48 bits");
        assert!(rank < (1 << 16), "rank {rank} exceeds 16 bits");
        GlobalId(((rank as u64) << LOCAL_BITS) | local)
    }

    /// The owning GPU rank.
    #[inline]
    pub fn rank(self) -> u32 {
        (self.0 >> LOCAL_BITS) as u32
    }

    /// The local index on the owning GPU.
    #[inline]
    pub fn local(self) -> u64 {
        self.0 & LOCAL_MASK
    }

    /// Raw packed representation (what gets stored in edge lists).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw packed value.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        GlobalId(raw)
    }
}

impl std::fmt::Display for GlobalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}:{}", self.rank(), self.local())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack() {
        let g = GlobalId::new(5, 123_456);
        assert_eq!(g.rank(), 5);
        assert_eq!(g.local(), 123_456);
        assert_eq!(GlobalId::from_raw(g.raw()), g);
        assert_eq!(g.to_string(), "g5:123456");
    }

    #[test]
    fn extremes() {
        let g = GlobalId::new(65_535, LOCAL_MASK);
        assert_eq!(g.rank(), 65_535);
        assert_eq!(g.local(), LOCAL_MASK);
        let z = GlobalId::new(0, 0);
        assert_eq!(z.raw(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn oversized_local_rejected() {
        GlobalId::new(0, LOCAL_MASK + 1);
    }

    #[test]
    fn ordering_is_rank_major() {
        // GlobalIds of the same rank sort by local id; across ranks, by
        // rank — useful for bucketing in the NCCL baseline.
        assert!(GlobalId::new(0, 999) < GlobalId::new(1, 0));
        assert!(GlobalId::new(2, 1) < GlobalId::new(2, 2));
    }

    proptest! {
        #[test]
        fn roundtrip(rank in 0u32..65_536, local in 0u64..=LOCAL_MASK) {
            let g = GlobalId::new(rank, local);
            prop_assert_eq!(g.rank(), rank);
            prop_assert_eq!(g.local(), local);
            prop_assert_eq!(GlobalId::from_raw(g.raw()), g);
        }
    }
}
