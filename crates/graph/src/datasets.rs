//! Scaled stand-ins for the paper's evaluation datasets (Table II).
//!
//! | Graph            | Nodes  | Edges | Features | our generator |
//! |------------------|--------|-------|----------|---------------|
//! | ogbn-products    | 2.4 M  | 61.9 M| 100      | SBM + class features (learnable) |
//! | ogbn-papers100M  | 111.1 M| 1.6 B | 128      | SBM + class features (learnable) |
//! | Friendster       | 68.3 M | 2.6 B | 128      | R-MAT + random features |
//! | UK_domain        | 105.2 M| 3.3 B | 128      | R-MAT + random features |
//!
//! A dataset is generated at `1/scale` of the paper's node count with the
//! paper's average degree and feature width preserved, so per-batch data
//! volumes (the quantity every performance figure depends on) match the
//! paper's shape. Label splits follow the paper: OGB-style splits for the
//! learnable graphs; for Friendster/UK_domain "the ratio of labels ... is
//! 1%, making 80% of the label data to be trained data, 10% to be test
//! data, and 10% to be validation data".

use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::csr::Csr;
use crate::gen;
use crate::NodeId;

/// The four evaluation graphs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DatasetKind {
    /// Amazon co-purchasing network (OGB).
    OgbnProducts,
    /// 111M-paper citation graph (OGB).
    OgbnPapers100M,
    /// Friendster social network (KONECT).
    Friendster,
    /// UK web domain graph (KONECT).
    UkDomain,
}

impl DatasetKind {
    /// All four, in Table II order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::OgbnProducts,
        DatasetKind::OgbnPapers100M,
        DatasetKind::Friendster,
        DatasetKind::UkDomain,
    ];

    /// Display name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::OgbnProducts => "ogbn-products",
            DatasetKind::OgbnPapers100M => "ogbn-papers100M",
            DatasetKind::Friendster => "Friendster",
            DatasetKind::UkDomain => "UK_domain",
        }
    }

    /// Paper-scale `(nodes, undirected_edges, feature_dim)` from Table II.
    pub fn paper_stats(self) -> (u64, u64, usize) {
        match self {
            DatasetKind::OgbnProducts => (2_400_000, 61_900_000, 100),
            DatasetKind::OgbnPapers100M => (111_100_000, 1_600_000_000, 128),
            DatasetKind::Friendster => (68_300_000, 2_600_000_000, 128),
            DatasetKind::UkDomain => (105_200_000, 3_300_000_000, 128),
        }
    }

    /// Whether the graph has real (learnable) labels in the paper — the
    /// OGB graphs do; Friendster/UK_domain are performance-only.
    pub fn learnable(self) -> bool {
        matches!(
            self,
            DatasetKind::OgbnProducts | DatasetKind::OgbnPapers100M
        )
    }

    /// Classes our stand-in uses (the real counts are 47 / 172; we keep
    /// them smaller at reduced scale so every class keeps enough support).
    pub fn num_classes(self) -> usize {
        match self {
            DatasetKind::OgbnProducts => 16,
            DatasetKind::OgbnPapers100M => 32,
            // Labels exist only to drive the training loop.
            DatasetKind::Friendster | DatasetKind::UkDomain => 8,
        }
    }
}

/// Degree profile for the learnable (SBM-backed) stand-ins.
///
/// The default [`Uniform`](DegreeProfile::Uniform) profile draws SBM
/// edge endpoints uniformly — simple, but it flattens the degree
/// distribution real OGB graphs have, which in turn flattens node
/// *access* skew downstream (a feature cache over a uniform-degree
/// graph sees an artificially cold epoch stream). The opt-in
/// [`PowerLaw`](DegreeProfile::PowerLaw) profile draws endpoints with
/// probability ∝ `(rank+1)^-alpha` over a seeded permutation
/// ([`gen::sbm_powerlaw`]), restoring the calibrated heavy tail. The
/// R-MAT stand-ins (Friendster/UK_domain) are heavy-tailed either way
/// and ignore the profile.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DegreeProfile {
    /// Uniform endpoint choice — byte-identical to the historical
    /// [`SyntheticDataset::generate`] output.
    Uniform,
    /// Power-law endpoint weights `(rank+1)^-alpha`; `alpha` ≈ 1.05
    /// reproduces an ogbn-products-like tail at reduced scale.
    PowerLaw {
        /// Power-law exponent (0 = uniform weights).
        alpha: f64,
    },
}

/// A generated dataset: graph, features, labels and splits.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// Which paper graph this stands in for.
    pub kind: DatasetKind,
    /// Scale divisor applied to the paper's node count.
    pub scale: u64,
    /// The graph (symmetrized).
    pub graph: Csr,
    /// Row-major `num_nodes × feature_dim`.
    pub features: Vec<f32>,
    /// Feature width (paper's: 100 or 128).
    pub feature_dim: usize,
    /// Per-node class labels.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Training node ids.
    pub train: Vec<NodeId>,
    /// Validation node ids.
    pub val: Vec<NodeId>,
    /// Test node ids.
    pub test: Vec<NodeId>,
}

impl SyntheticDataset {
    /// Generate the stand-in for `kind` at `1/scale` of paper size with
    /// the default [`DegreeProfile::Uniform`] profile.
    pub fn generate(kind: DatasetKind, scale: u64, seed: u64) -> Self {
        Self::generate_with_profile(kind, scale, seed, DegreeProfile::Uniform)
    }

    /// Generate with an explicit degree profile. `Uniform` is
    /// byte-identical to [`generate`](Self::generate); `PowerLaw` swaps
    /// the learnable graphs' SBM for [`gen::sbm_powerlaw`] (labels,
    /// features, and splits are derived the same way in both).
    pub fn generate_with_profile(
        kind: DatasetKind,
        scale: u64,
        seed: u64,
        profile: DegreeProfile,
    ) -> Self {
        assert!(scale >= 1);
        let (paper_nodes, paper_edges, feature_dim) = kind.paper_stats();
        let n = (paper_nodes / scale).max(1000) as usize;
        // Stored (directed) degree after symmetrization = 2·E/N, preserved
        // across scaling.
        let avg_degree = 2.0 * paper_edges as f64 / paper_nodes as f64;
        let num_classes = kind.num_classes();

        let (graph, labels, features) = if kind.learnable() {
            let (g, labels) = match profile {
                DegreeProfile::Uniform => gen::sbm(n, num_classes, avg_degree, 0.85, seed),
                DegreeProfile::PowerLaw { alpha } => {
                    gen::sbm_powerlaw(n, num_classes, avg_degree, 0.85, alpha, seed)
                }
            };
            let features =
                gen::class_features(&labels, num_classes, feature_dim, 0.8, seed ^ 0xfeed);
            (g, labels, features)
        } else {
            let scale_log2 = (n as f64).log2().ceil() as u32;
            let edges = (n as f64 * avg_degree / 2.0) as usize;
            let g = gen::rmat(scale_log2, edges, seed);
            let n2 = g.num_nodes();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
            let labels: Vec<u32> = (0..n2)
                .map(|_| rng.gen_range(0..num_classes as u32))
                .collect();
            let features = gen::random_features(n2, feature_dim, seed ^ 0xbeef);
            (g, labels, features)
        };

        let n = graph.num_nodes();
        let mut order: Vec<NodeId> = (0..n as u64).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x51137));
        // Split fractions: OGB-like for learnable graphs; the paper's
        // 1%-labels / 80-10-10 for the KONECT graphs.
        let (f_train, f_val, f_test) = if kind.learnable() {
            (0.08, 0.01, 0.01)
        } else {
            (0.008, 0.001, 0.001)
        };
        let n_train = ((n as f64 * f_train) as usize).max(1);
        let n_val = ((n as f64 * f_val) as usize).max(1);
        let n_test = ((n as f64 * f_test) as usize).max(1);
        let train = order[..n_train].to_vec();
        let val = order[n_train..n_train + n_val].to_vec();
        let test = order[n_train + n_val..n_train + n_val + n_test].to_vec();

        SyntheticDataset {
            kind,
            scale,
            graph,
            features,
            feature_dim,
            labels,
            num_classes,
            train,
            val,
            test,
        }
    }

    /// Generate a stand-in configured for *out-of-core* runs: the graph
    /// is built with a heavy-tailed degree profile (power-law SBM for
    /// the learnable graphs; R-MAT is heavy-tailed already) so that a
    /// hotness-ranked residency set covers most accesses, and the
    /// returned budget holds only `resident_fraction` of the feature
    /// rows in the DSM — the rest live in the spill file below it.
    /// Feed the budget to `PipelineConfig::with_storage` or
    /// `WG_STORAGE_BUDGET_ROWS` to exercise the disk tier.
    pub fn generate_out_of_core(
        kind: DatasetKind,
        scale: u64,
        seed: u64,
        resident_fraction: f64,
    ) -> (Self, usize) {
        let d =
            Self::generate_with_profile(kind, scale, seed, DegreeProfile::PowerLaw { alpha: 1.05 });
        let budget = d.storage_budget_rows(resident_fraction);
        (d, budget)
    }

    /// Feature-row budget that keeps `resident_fraction` of this
    /// dataset's rows DSM-resident (clamped to `[0, 1]`; at least one
    /// row whenever the fraction is nonzero, so "a sliver resident"
    /// never degenerates to a fully-disk run by rounding).
    pub fn storage_budget_rows(&self, resident_fraction: f64) -> usize {
        let f = resident_fraction.clamp(0.0, 1.0);
        let rows = (self.num_nodes() as f64 * f).round() as usize;
        if f > 0.0 {
            rows.max(1).min(self.num_nodes())
        } else {
            0
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Stored (directed) edge count.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stats_match_table2() {
        let (n, e, f) = DatasetKind::OgbnPapers100M.paper_stats();
        assert_eq!((n, e, f), (111_100_000, 1_600_000_000, 128));
        assert_eq!(DatasetKind::OgbnProducts.paper_stats().2, 100);
        assert_eq!(DatasetKind::ALL.len(), 4);
    }

    #[test]
    fn products_standin_preserves_degree_and_width() {
        let d = SyntheticDataset::generate(DatasetKind::OgbnProducts, 200, 1);
        let (pn, pe, pf) = DatasetKind::OgbnProducts.paper_stats();
        let paper_degree = 2.0 * pe as f64 / pn as f64;
        assert!(
            (d.graph.avg_degree() - paper_degree).abs() / paper_degree < 0.15,
            "degree {} vs paper {paper_degree}",
            d.graph.avg_degree()
        );
        assert_eq!(d.feature_dim, pf);
        assert_eq!(d.features.len(), d.num_nodes() * pf);
        assert_eq!(d.labels.len(), d.num_nodes());
    }

    #[test]
    fn splits_are_disjoint() {
        let d = SyntheticDataset::generate(DatasetKind::OgbnProducts, 400, 2);
        let mut all: Vec<NodeId> = d
            .train
            .iter()
            .chain(&d.val)
            .chain(&d.test)
            .copied()
            .collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "splits overlap");
        assert!(!d.train.is_empty() && !d.val.is_empty() && !d.test.is_empty());
    }

    #[test]
    fn konect_standins_use_sparse_labels() {
        let d = SyntheticDataset::generate(DatasetKind::Friendster, 2000, 3);
        // ~0.8% of nodes in train (1% labels × 80%).
        let frac = d.train.len() as f64 / d.num_nodes() as f64;
        assert!(frac < 0.02, "train fraction {frac}");
        assert!(!DatasetKind::Friendster.learnable());
    }

    #[test]
    fn uniform_profile_matches_default_generate() {
        let a = SyntheticDataset::generate(DatasetKind::OgbnProducts, 1500, 5);
        let b = SyntheticDataset::generate_with_profile(
            DatasetKind::OgbnProducts,
            1500,
            5,
            DegreeProfile::Uniform,
        );
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        assert_eq!(a.train, b.train);
    }

    #[test]
    fn powerlaw_profile_grows_a_heavy_tail() {
        let uniform = SyntheticDataset::generate(DatasetKind::OgbnProducts, 1500, 5);
        let skewed = SyntheticDataset::generate_with_profile(
            DatasetKind::OgbnProducts,
            1500,
            5,
            DegreeProfile::PowerLaw { alpha: 1.05 },
        );
        // Same shape, very different tail.
        assert_eq!(skewed.num_nodes(), uniform.num_nodes());
        assert!(
            (skewed.graph.avg_degree() - uniform.graph.avg_degree()).abs()
                / uniform.graph.avg_degree()
                < 0.15
        );
        assert!(skewed.graph.max_degree() > 2 * uniform.graph.max_degree());
        // Still deterministic.
        let again = SyntheticDataset::generate_with_profile(
            DatasetKind::OgbnProducts,
            1500,
            5,
            DegreeProfile::PowerLaw { alpha: 1.05 },
        );
        assert_eq!(skewed.graph, again.graph);
        assert_eq!(skewed.features, again.features);
    }

    #[test]
    fn out_of_core_config_budgets_a_resident_fraction() {
        let (d, budget) =
            SyntheticDataset::generate_out_of_core(DatasetKind::OgbnProducts, 1500, 5, 0.25);
        assert_eq!(budget, (d.num_nodes() as f64 * 0.25).round() as usize);
        assert!(budget > 0 && budget < d.num_nodes());
        // The profile is the heavy-tailed one, so a hotness-ranked
        // residency set is meaningful (the uniform profile's flat
        // degrees would make residency choice arbitrary).
        let uniform = SyntheticDataset::generate(DatasetKind::OgbnProducts, 1500, 5);
        assert!(d.graph.max_degree() > 2 * uniform.graph.max_degree());
        // Edge cases: zero fraction disables the residency set entirely;
        // a sliver never rounds down to fully-disk; ≥ 1.0 is everything.
        assert_eq!(d.storage_budget_rows(0.0), 0);
        assert_eq!(d.storage_budget_rows(1e-9), 1);
        assert_eq!(d.storage_budget_rows(1.5), d.num_nodes());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::generate(DatasetKind::UkDomain, 4000, 9);
        let b = SyntheticDataset::generate(DatasetKind::UkDomain, 4000, 9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.train, b.train);
        assert_eq!(a.features, b.features);
    }
}
