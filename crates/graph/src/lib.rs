//! # wg-graph — graph storage for WholeGraph
//!
//! Implements the multi-GPU graph storage of §III-B: nodes are assigned to
//! GPUs by a hash of their node ID, every node gets a **GlobalID** composed
//! of its rank ID and local ID, edges are stored together with their source
//! node, and node features are co-located with the node — all inside
//! [`wg_mem::WholeMemory`] distributed allocations so any GPU can read any
//! node's adjacency or features directly.
//!
//! Modules:
//!
//! * [`csr`] — host-side CSR graphs and the builder used by generators;
//! * [`global_id`] — the rank‖local GlobalID packing;
//! * [`partition`] — hash partitioning of nodes onto GPUs;
//! * [`store`] — [`store::MultiGpuGraph`], the distributed graph +
//!   feature store (plus [`store::HostGraph`], the host-memory layout the
//!   DGL/PyG baselines use);
//! * [`gen`] — synthetic generators (Erdős–Rényi, R-MAT, SBM with
//!   class-correlated features);
//! * [`datasets`] — scaled stand-ins for the paper's four evaluation
//!   graphs (Table II).

pub mod csr;
pub mod datasets;
pub mod gen;
pub mod global_id;
pub mod io;
pub mod partition;
pub mod store;

/// Node identifier in the *original* (dataset) numbering.
pub type NodeId = u64;

pub use csr::Csr;
pub use datasets::{DatasetKind, DegreeProfile, SyntheticDataset};
pub use global_id::GlobalId;
pub use partition::{HashPartition, PartitionQuality};
pub use store::{AdjacencyView, HostGraph, MultiGpuGraph};
