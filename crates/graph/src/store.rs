//! Graph + feature stores.
//!
//! [`MultiGpuGraph`] is WholeGraph's storage layout (§III-B): node metadata,
//! edge lists (stored with their source node) and node features all live in
//! [`WholeMemory`] distributed allocations, partitioned by the node-ID hash,
//! with edges recorded as packed [`GlobalId`]s so a sampled neighbor is
//! directly addressable on whichever GPU owns it.
//!
//! [`HostGraph`] is the layout the DGL/PyG baselines use: the CSR and the
//! feature matrix stay in host DRAM ("Graph Store Server" of Figure 1), and
//! every mini-batch must be assembled on the CPU and shipped over PCIe.

use wg_mem::{RegionView, WholeMemory};
use wg_sim::cost::AccessMode;
use wg_sim::memory::{AllocKind, MemoryAccounting, OutOfMemory};
use wg_sim::{CostModel, DeviceId, SimTime};

use crate::csr::Csr;
use crate::global_id::GlobalId;
use crate::partition::HashPartition;
use crate::NodeId;

/// WholeGraph's distributed graph + feature store.
pub struct MultiGpuGraph {
    partition: HashPartition,
    /// Per node (padded-row indexed): `[edge_start_local, degree]`.
    node_meta: WholeMemory<u64>,
    /// Concatenated per-rank edge lists; entries are raw [`GlobalId`]s.
    edges: WholeMemory<u64>,
    /// Stride of each rank's slice of the edge allocation.
    edge_rows_per_rank: usize,
    /// Node features, padded-row indexed.
    features: WholeMemory<f32>,
    /// Optional per-edge features, laid out congruently with `edges`
    /// (edge slot `e` of rank `r` holds the feature of the same edge) —
    /// "all the edges are stored together with the source node", and so
    /// are their features (§III-B's "node or edge features").
    edge_features: Option<WholeMemory<f32>>,
    edge_feature_dim: usize,
    feature_dim: usize,
    num_edges: usize,
    setup_time: SimTime,
}

impl MultiGpuGraph {
    /// Scatter a host CSR + feature matrix into distributed storage across
    /// `ranks` GPUs, mapping the feature allocation with GPUDirect P2P
    /// (the WholeGraph default).
    pub fn build(
        model: &CostModel,
        ranks: u32,
        graph: &Csr,
        features: &[f32],
        feature_dim: usize,
        acct: &MemoryAccounting,
    ) -> Result<Self, OutOfMemory> {
        Self::build_with_mode(
            model,
            ranks,
            graph,
            features,
            feature_dim,
            acct,
            AccessMode::PeerAccess,
        )
    }

    /// Like [`build`](Self::build) but with an explicit [`AccessMode`]
    /// for the *feature* allocation — [`AccessMode::UnifiedMemory`]
    /// reproduces the paper's §II-B ablation (UM page-fault storage).
    /// Structure allocations always use P2P (the sampling kernels would be
    /// unusable otherwise, which is rather the point of Table I).
    ///
    /// `features` is row-major `num_nodes × feature_dim`. Memory is
    /// registered against `acct` under [`AllocKind::GraphStructure`] /
    /// [`AllocKind::Features`] (Table IV).
    pub fn build_with_mode(
        model: &CostModel,
        ranks: u32,
        graph: &Csr,
        features: &[f32],
        feature_dim: usize,
        acct: &MemoryAccounting,
        feature_mode: AccessMode,
    ) -> Result<Self, OutOfMemory> {
        Self::build_full(
            model,
            ranks,
            graph,
            features,
            feature_dim,
            None,
            0,
            acct,
            feature_mode,
        )
    }

    /// Full builder: node features plus optional per-edge features
    /// (`edge_features` is row-major `num_edges × edge_feature_dim`, in
    /// CSR edge order).
    #[allow(clippy::too_many_arguments)] // the assembled store simply has this many parts
    pub fn build_full(
        model: &CostModel,
        ranks: u32,
        graph: &Csr,
        features: &[f32],
        feature_dim: usize,
        edge_features: Option<&[f32]>,
        edge_feature_dim: usize,
        acct: &MemoryAccounting,
        feature_mode: AccessMode,
    ) -> Result<Self, OutOfMemory> {
        let n = graph.num_nodes();
        assert!(n > 0, "empty graph");
        assert_eq!(
            features.len(),
            n * feature_dim,
            "feature matrix shape mismatch"
        );
        let partition = HashPartition::new(n, ranks);

        // Per-rank edge totals decide the edge-allocation stride.
        let mut edge_counts = vec![0usize; ranks as usize];
        for r in 0..ranks {
            edge_counts[r as usize] = partition
                .nodes_on_rank(r)
                .iter()
                .map(|&v| graph.degree(v))
                .sum();
        }
        let edge_rows_per_rank = edge_counts.iter().copied().max().unwrap_or(0).max(1);
        let padded = partition.padded_rows();

        let node_meta = WholeMemory::<u64>::allocate_tracked(
            model,
            ranks,
            padded,
            2,
            AccessMode::PeerAccess,
            acct,
            AllocKind::GraphStructure,
        )?;
        let edges = WholeMemory::<u64>::allocate_tracked(
            model,
            ranks,
            edge_rows_per_rank * ranks as usize,
            1,
            AccessMode::PeerAccess,
            acct,
            AllocKind::GraphStructure,
        )?;
        let features_wm = WholeMemory::<f32>::allocate_tracked(
            model,
            ranks,
            padded,
            feature_dim.max(1),
            feature_mode,
            acct,
            AllocKind::Features,
        )?;
        if let Some(ef) = edge_features {
            assert_eq!(
                ef.len(),
                graph.num_edges() * edge_feature_dim,
                "edge feature matrix shape mismatch"
            );
            assert!(edge_feature_dim > 0, "edge features need a positive width");
        }
        let edge_features_wm = match edge_features {
            None => None,
            Some(_) => Some(WholeMemory::<f32>::allocate_tracked(
                model,
                ranks,
                edge_rows_per_rank * ranks as usize,
                edge_feature_dim,
                feature_mode,
                acct,
                AllocKind::Features,
            )?),
        };

        // Each rank fills its own partition (concurrently in the real
        // system; sequential per rank here keeps the cursor logic clear).
        for r in 0..ranks {
            let mut cursor = 0u64;
            for (local, &v) in partition.nodes_on_rank(r).iter().enumerate() {
                let deg = graph.degree(v) as u64;
                let meta_row = r as usize * partition.rows_per_rank() + local;
                node_meta.write_row(meta_row, &[cursor, deg]);
                edges.with_region_mut(r, |region| {
                    for (k, &t) in graph.neighbors(v).iter().enumerate() {
                        region[cursor as usize + k] = partition.global_id(t).raw();
                    }
                });
                if feature_dim > 0 {
                    features_wm.write_row(
                        meta_row,
                        &features[v as usize * feature_dim..(v as usize + 1) * feature_dim],
                    );
                }
                if let (Some(wm), Some(ef)) = (&edge_features_wm, edge_features) {
                    // CSR edge order: edge (v, k) is global CSR slot
                    // offsets[v] + k; its DSM slot is the rank-local
                    // cursor + k (same order the edge list was written).
                    let csr_base = graph.offsets()[v as usize] as usize;
                    for k in 0..deg as usize {
                        let row = r as usize * edge_rows_per_rank + cursor as usize + k;
                        wm.write_row(
                            row,
                            &ef[(csr_base + k) * edge_feature_dim
                                ..(csr_base + k + 1) * edge_feature_dim],
                        );
                    }
                }
                cursor += deg;
            }
        }

        let setup_time = node_meta.setup_time()
            + edges.setup_time()
            + features_wm.setup_time()
            + edge_features_wm
                .as_ref()
                .map_or(SimTime::ZERO, |wm| wm.setup_time());
        Ok(MultiGpuGraph {
            partition,
            node_meta,
            edges,
            edge_rows_per_rank,
            features: features_wm,
            edge_features: edge_features_wm,
            edge_feature_dim,
            feature_dim,
            num_edges: graph.num_edges(),
            setup_time,
        })
    }

    /// The node partition.
    pub fn partition(&self) -> &HashPartition {
        &self.partition
    }

    /// Number of (real, unpadded) nodes.
    pub fn num_nodes(&self) -> usize {
        self.partition.num_nodes()
    }

    /// Number of stored directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Feature width per node.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Total simulated setup time of the three distributed allocations.
    pub fn setup_time(&self) -> SimTime {
        self.setup_time
    }

    /// The distributed feature allocation (for the global gather op).
    pub fn features(&self) -> &WholeMemory<f32> {
        &self.features
    }

    /// DSM feature row of a node (by original id).
    #[inline]
    pub fn feature_row(&self, v: NodeId) -> usize {
        self.partition.dsm_row(v)
    }

    /// DSM feature row of a node given its GlobalId.
    #[inline]
    pub fn feature_row_of_global(&self, g: GlobalId) -> usize {
        g.rank() as usize * self.partition.rows_per_rank() + g.local() as usize
    }

    /// Out-degree of a node (one metadata row read).
    pub fn degree(&self, v: NodeId) -> usize {
        self.degree_of_global(self.partition.global_id(v))
    }

    /// Out-degree by GlobalId.
    pub fn degree_of_global(&self, g: GlobalId) -> usize {
        let mut meta = [0u64; 2];
        self.node_meta.read_row(
            g.rank() as usize * self.partition.rows_per_rank() + g.local() as usize,
            &mut meta,
        );
        meta[1] as usize
    }

    /// Run `f` over the neighbor list (raw GlobalIds) of a node.
    ///
    /// The span is contiguous within the owning rank's edge region, so a
    /// sampling kernel reads `degree` consecutive 8-byte entries — this is
    /// the access the multi-GPU sampler charges remote-read costs for.
    pub fn with_neighbors<R>(&self, g: GlobalId, f: impl FnOnce(&[u64]) -> R) -> R {
        let rank = g.rank();
        let mut meta = [0u64; 2];
        self.node_meta.read_row(
            rank as usize * self.partition.rows_per_rank() + g.local() as usize,
            &mut meta,
        );
        let (start, deg) = (meta[0] as usize, meta[1] as usize);
        self.edges
            .with_region(rank, |region| f(&region[start..start + deg]))
    }

    /// Neighbor list of a node as GlobalIds (allocating convenience).
    pub fn neighbors_of(&self, v: NodeId) -> Vec<GlobalId> {
        self.with_neighbors(self.partition.global_id(v), |raw| {
            raw.iter().map(|&r| GlobalId::from_raw(r)).collect()
        })
    }

    /// Stride of one rank's slice of the edge allocation.
    pub fn edge_rows_per_rank(&self) -> usize {
        self.edge_rows_per_rank
    }

    /// The distributed edge-feature allocation, if the graph has edge
    /// features (rows are global edge slots — see
    /// [`edge_slot_base`](Self::edge_slot_base)).
    pub fn edge_features(&self) -> Option<&WholeMemory<f32>> {
        self.edge_features.as_ref()
    }

    /// Edge feature width (0 when absent).
    pub fn edge_feature_dim(&self) -> usize {
        self.edge_feature_dim
    }

    /// Global edge slot of a node's first edge: the node's `k`-th sampled
    /// neighbor position maps to edge slot `base + k`, which indexes both
    /// the edge list and the edge-feature allocation.
    pub fn edge_slot_base(&self, g: GlobalId) -> u64 {
        let rank = g.rank();
        let mut meta = [0u64; 2];
        self.node_meta.read_row(
            rank as usize * self.partition.rows_per_rank() + g.local() as usize,
            &mut meta,
        );
        rank as u64 * self.edge_rows_per_rank as u64 + meta[0]
    }

    /// The distributed node-metadata allocation (per padded row:
    /// `[edge_start_local, degree]`) — exposed so the out-of-core tier
    /// can spill the CSR alongside the features
    /// ([`OocTier::write_adjacency`](wg_mem::OocTier::write_adjacency)).
    pub fn node_meta(&self) -> &WholeMemory<u64> {
        &self.node_meta
    }

    /// The distributed edge-list allocation (packed raw [`GlobalId`]s,
    /// `edge_rows_per_rank` stride per rank) — see
    /// [`node_meta`](Self::node_meta).
    pub fn edges(&self) -> &WholeMemory<u64> {
        &self.edges
    }

    /// Pin the structure allocations (node metadata + edge lists) and
    /// return a zero-copy [`AdjacencyView`]: degree / neighbor / edge-slot
    /// lookups become plain indexed loads into the pinned regions, with no
    /// per-call locking and no copying — the CPU analogue of a sampling
    /// kernel dereferencing the DSM pointer table directly.
    pub fn adjacency(&self) -> AdjacencyView<'_> {
        AdjacencyView {
            meta: self.node_meta.pin(),
            edges: self.edges.pin(),
            edge_rows_per_rank: self.edge_rows_per_rank,
        }
    }
}

/// Zero-copy adjacency access over a pinned [`MultiGpuGraph`], created by
/// [`MultiGpuGraph::adjacency`]. Neighbor lists are borrowed straight out
/// of the pinned edge regions — sampling `m ≤ fanout` of `deg` neighbors
/// never materializes the `deg`-entry list.
pub struct AdjacencyView<'a> {
    meta: RegionView<'a, u64>,
    edges: RegionView<'a, u64>,
    edge_rows_per_rank: usize,
}

impl AdjacencyView<'_> {
    /// `[edge_start_local, degree]` metadata of a node.
    #[inline]
    fn meta_of(&self, g: GlobalId) -> (usize, usize) {
        let row = g.local() as usize * 2;
        let meta = &self.meta.region(g.rank())[row..row + 2];
        (meta[0] as usize, meta[1] as usize)
    }

    /// Out-degree of a node.
    #[inline]
    pub fn degree(&self, g: GlobalId) -> usize {
        self.meta_of(g).1
    }

    /// Borrowed neighbor list (raw [`GlobalId`]s) of a node.
    #[inline]
    pub fn neighbors(&self, g: GlobalId) -> &[u64] {
        let (start, deg) = self.meta_of(g);
        &self.edges.region(g.rank())[start..start + deg]
    }

    /// Global edge slot of a node's first edge (see
    /// [`MultiGpuGraph::edge_slot_base`]).
    #[inline]
    pub fn edge_slot_base(&self, g: GlobalId) -> u64 {
        let (start, _) = self.meta_of(g);
        g.rank() as u64 * self.edge_rows_per_rank as u64 + start as u64
    }
}

/// Host-memory storage as DGL/PyG keep it (Figure 1's "Graph Store
/// Server"): CSR + features in CPU DRAM.
pub struct HostGraph {
    graph: Csr,
    features: Vec<f32>,
    feature_dim: usize,
}

impl HostGraph {
    /// Wrap a CSR and host feature matrix, accounting the bytes against
    /// host DRAM.
    pub fn build(
        graph: Csr,
        features: Vec<f32>,
        feature_dim: usize,
        acct: &MemoryAccounting,
    ) -> Result<Self, OutOfMemory> {
        assert_eq!(features.len(), graph.num_nodes() * feature_dim);
        acct.alloc(
            DeviceId::Cpu,
            AllocKind::GraphStructure,
            graph.structure_bytes(),
        )?;
        acct.alloc(
            DeviceId::Cpu,
            AllocKind::Features,
            (features.len() * 4) as u64,
        )?;
        Ok(HostGraph {
            graph,
            features,
            feature_dim,
        })
    }

    /// The CSR.
    pub fn csr(&self) -> &Csr {
        &self.graph
    }

    /// Feature width.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Feature row of a node.
    pub fn feature(&self, v: NodeId) -> &[f32] {
        &self.features[v as usize * self.feature_dim..(v as usize + 1) * self.feature_dim]
    }

    /// Gather rows for `nodes` into a dense batch (the CPU-side feature
    /// collection of Figure 1, step "gathering feature").
    pub fn gather_features(&self, nodes: &[NodeId], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(nodes.len() * self.feature_dim);
        for &v in nodes {
            out.extend_from_slice(self.feature(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::prelude::*;
    use rand::rngs::SmallRng;
    use wg_mem::gather::global_gather;
    use wg_sim::device::DeviceSpec;

    fn acct(ranks: u32) -> MemoryAccounting {
        let mut devs: Vec<(DeviceId, u64)> =
            (0..ranks).map(|r| (DeviceId::Gpu(r), 1 << 30)).collect();
        devs.push((DeviceId::Cpu, 1 << 32));
        MemoryAccounting::new(devs)
    }

    fn tiny_store(ranks: u32) -> (MultiGpuGraph, Csr, Vec<f32>) {
        let g = gen::erdos_renyi(200, 8.0, 99);
        let feat_dim = 6;
        let features: Vec<f32> = (0..200 * feat_dim).map(|i| i as f32 * 0.25).collect();
        let model = CostModel::dgx_a100();
        let store =
            MultiGpuGraph::build(&model, ranks, &g, &features, feat_dim, &acct(ranks)).unwrap();
        (store, g, features)
    }

    #[test]
    fn adjacency_roundtrips_through_dsm() {
        let (store, g, _) = tiny_store(8);
        for v in 0..200u64 {
            assert_eq!(store.degree(v), g.degree(v), "degree of {v}");
            let got: Vec<NodeId> = store
                .neighbors_of(v)
                .into_iter()
                .map(|gid| store.partition().node_of(gid))
                .collect();
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            let mut expect = g.neighbors(v).to_vec();
            expect.sort_unstable();
            assert_eq!(got_sorted, expect, "neighbors of {v}");
        }
    }

    #[test]
    fn features_roundtrip_through_dsm_gather() {
        let (store, _, features) = tiny_store(4);
        let model = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let mut rng = SmallRng::seed_from_u64(1);
        let nodes: Vec<NodeId> = (0..64).map(|_| rng.gen_range(0..200)).collect();
        let rows: Vec<usize> = nodes.iter().map(|&v| store.feature_row(v)).collect();
        let mut out = vec![0.0f32; rows.len() * 6];
        global_gather(store.features(), &rows, &mut out, 0, &model, &spec);
        for (i, &v) in nodes.iter().enumerate() {
            let expect = &features[v as usize * 6..(v as usize + 1) * 6];
            assert_eq!(&out[i * 6..(i + 1) * 6], expect, "features of node {v}");
        }
    }

    #[test]
    fn adjacency_roundtrips_through_the_ooc_spill_file() {
        use wg_mem::OocTier;
        let (store, g, features) = tiny_store(4);
        let hotness: Vec<u64> = (0..store.features().rows() as u64)
            .map(|r| r % 7 + 1)
            .collect();
        // Spill features and the CSR into one file, nothing resident.
        let mut tier = OocTier::build(store.features(), &hotness, 0).unwrap();
        tier.write_adjacency(store.node_meta(), store.edges())
            .unwrap();
        let mut edge_buf = Vec::new();
        for v in 0..200u64 {
            let gid = store.partition().global_id(v);
            let row = store.feature_row(v);
            let [start, deg] = tier.read_meta_row(row);
            assert_eq!(deg as usize, g.degree(v), "degree of {v}");
            edge_buf.clear();
            tier.read_edges(
                gid.rank() as u64 * store.edge_rows_per_rank() as u64 + start,
                deg as usize,
                &mut edge_buf,
            );
            let dsm: Vec<u64> = store.with_neighbors(gid, |raw| raw.to_vec());
            assert_eq!(edge_buf, dsm, "neighbors of {v}");
        }
        // The feature section is unaffected by the adjacency append.
        tier.fetch(&[store.feature_row(13) as u32]);
        assert_eq!(tier.staging(), &features[13 * 6..14 * 6]);
    }

    #[test]
    fn memory_accounting_sees_structure_and_features() {
        let ranks = 4;
        let a = acct(ranks);
        let g = gen::erdos_renyi(100, 4.0, 7);
        let features = vec![0.5f32; 100 * 8];
        let model = CostModel::dgx_a100();
        let _store = MultiGpuGraph::build(&model, ranks, &g, &features, 8, &a).unwrap();
        let structure: u64 = a
            .gpu_usage_by(AllocKind::GraphStructure)
            .iter()
            .map(|(_, b)| b)
            .sum();
        let feats: u64 = a
            .gpu_usage_by(AllocKind::Features)
            .iter()
            .map(|(_, b)| b)
            .sum();
        // Structure ≥ edges (8 B each) + metadata (16 B per padded node).
        assert!(structure >= (g.num_edges() * 8) as u64);
        // Features: padded rows × 8 × 4 bytes ≥ the real matrix.
        assert!(feats >= (100 * 8 * 4) as u64);
    }

    #[test]
    fn single_rank_store_works() {
        let (store, g, _) = tiny_store(1);
        assert_eq!(store.num_nodes(), 200);
        assert_eq!(store.num_edges(), g.num_edges());
        let v = 13u64;
        assert_eq!(store.degree(v), g.degree(v));
    }

    #[test]
    fn host_graph_gathers_features() {
        let g = gen::erdos_renyi(50, 3.0, 5);
        let features: Vec<f32> = (0..50 * 4).map(|i| i as f32).collect();
        let a = acct(1);
        let host = HostGraph::build(g, features.clone(), 4, &a).unwrap();
        let mut out = Vec::new();
        host.gather_features(&[7, 3, 7], &mut out);
        assert_eq!(&out[0..4], &features[28..32]);
        assert_eq!(&out[4..8], &features[12..16]);
        assert_eq!(&out[8..12], &features[28..32]);
        assert_eq!(
            a.pool(DeviceId::Cpu).used_by(AllocKind::Features),
            50 * 4 * 4
        );
    }
}
