//! Host-side CSR graphs.
//!
//! Datasets are generated (or loaded) into this compact host representation
//! first; the multi-GPU store then scatters it into WholeMemory. The
//! baselines (DGL/PyG-style pipelines) sample directly from this host CSR,
//! exactly as those frameworks keep the graph in CPU DRAM.

use rayon::prelude::*;

use crate::NodeId;

/// A graph in compressed-sparse-row form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` with `v`'s neighbors.
    offsets: Vec<u64>,
    /// Concatenated adjacency lists.
    targets: Vec<NodeId>,
}

impl Csr {
    /// Build a CSR from an edge list over `num_nodes` nodes.
    ///
    /// If `symmetrize` is set every edge is inserted in both directions
    /// (the paper treats ogbn-papers100M "as an undirected graph", doubling
    /// its stored edges). Self-loops are kept; parallel edges are kept
    /// (neighbor sampling treats them as distinct neighbor slots, as DGL
    /// does).
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)], symmetrize: bool) -> Self {
        let mut degree = vec![0u64; num_nodes];
        for &(s, t) in edges {
            assert!(
                (s as usize) < num_nodes && (t as usize) < num_nodes,
                "edge ({s},{t}) out of range"
            );
            degree[s as usize] += 1;
            if symmetrize {
                degree[t as usize] += 1;
            }
        }
        let mut offsets = vec![0u64; num_nodes + 1];
        for v in 0..num_nodes {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; offsets[num_nodes] as usize];
        for &(s, t) in edges {
            targets[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
            if symmetrize {
                targets[cursor[t as usize] as usize] = s;
                cursor[t as usize] += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// Rebuild from raw arrays (deserialization). The caller must have
    /// validated monotone offsets and in-range targets.
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must hold at least one entry");
        assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        Csr { offsets, targets }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The raw offset array (length `num_nodes + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw target array.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .into_par_iter()
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Bytes needed to store the structure with 8-byte edges (the paper's
    /// Table IV accounting: "We use 8 bytes to store each edge").
    pub fn structure_bytes(&self) -> u64 {
        (self.targets.len() * 8 + self.offsets.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triangle() -> Csr {
        Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)], false)
    }

    #[test]
    fn directed_triangle() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn symmetrized_doubles_edges() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)], true);
        assert_eq!(g.num_edges(), 6);
        let mut n0 = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(g.avg_degree(), 2.0);
    }

    #[test]
    fn isolated_nodes_have_empty_adjacency() {
        let g = Csr::from_edges(5, &[(0, 1)], false);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let g = Csr::from_edges(2, &[(0, 1), (0, 1), (0, 1)], false);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors(0), &[1, 1, 1]);
    }

    #[test]
    fn structure_bytes_counts_eight_per_edge() {
        let g = triangle();
        assert_eq!(g.structure_bytes(), 3 * 8 + 4 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Csr::from_edges(2, &[(0, 5)], false);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn builder_preserves_every_edge(
            n in 1usize..50,
            edges in prop::collection::vec((0u64..50, 0u64..50), 0..200),
        ) {
            let edges: Vec<_> = edges
                .into_iter()
                .map(|(s, t)| (s % n as u64, t % n as u64))
                .collect();
            let g = Csr::from_edges(n, &edges, false);
            prop_assert_eq!(g.num_edges(), edges.len());
            // Every input edge appears in the adjacency of its source.
            let mut expect: Vec<Vec<u64>> = vec![Vec::new(); n];
            for &(s, t) in &edges {
                expect[s as usize].push(t);
            }
            for v in 0..n as u64 {
                let mut got = g.neighbors(v).to_vec();
                got.sort_unstable();
                expect[v as usize].sort_unstable();
                prop_assert_eq!(&got, &expect[v as usize]);
            }
            // Offsets are monotone.
            for w in g.offsets().windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
