//! Binary dataset serialization.
//!
//! The paper loads OGB/KONECT datasets from disk before scattering them to
//! the GPUs; a reproduction that only ever generates graphs in memory
//! would not serve downstream users. This module defines a compact
//! little-endian binary format for a [`SyntheticDataset`] (graph +
//! features + labels + splits) with a magic/version header, so generated
//! stand-ins can be saved once and reloaded by every experiment binary.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "WGDS"  u32 version  u64 num_nodes  u64 num_edges
//! u32 feature_dim  u32 num_classes  u32 kind_tag  u64 scale
//! offsets: (num_nodes+1) × u64
//! targets: num_edges × u64
//! features: num_nodes·feature_dim × f32
//! labels: num_nodes × u32
//! train/val/test: u64 len + len × u64 each
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Csr;
use crate::datasets::{DatasetKind, SyntheticDataset};
use crate::NodeId;

const MAGIC: &[u8; 4] = b"WGDS";
const VERSION: u32 = 1;

fn kind_tag(kind: DatasetKind) -> u32 {
    match kind {
        DatasetKind::OgbnProducts => 0,
        DatasetKind::OgbnPapers100M => 1,
        DatasetKind::Friendster => 2,
        DatasetKind::UkDomain => 3,
    }
}

fn kind_from_tag(tag: u32) -> io::Result<DatasetKind> {
    Ok(match tag {
        0 => DatasetKind::OgbnProducts,
        1 => DatasetKind::OgbnPapers100M,
        2 => DatasetKind::Friendster,
        3 => DatasetKind::UkDomain,
        _ => return Err(bad(format!("unknown dataset kind tag {tag}"))),
    })
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_u64_slice(w: &mut impl Write, s: &[u64]) -> io::Result<()> {
    for &v in s {
        write_u64(w, v)?;
    }
    Ok(())
}

fn read_u64_vec(r: &mut impl Read, n: usize) -> io::Result<Vec<u64>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_u64(r)?);
    }
    Ok(out)
}

/// Save a dataset to `path`.
pub fn save_dataset(dataset: &SyntheticDataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u64(&mut w, dataset.num_nodes() as u64)?;
    write_u64(&mut w, dataset.num_edges() as u64)?;
    write_u32(&mut w, dataset.feature_dim as u32)?;
    write_u32(&mut w, dataset.num_classes as u32)?;
    write_u32(&mut w, kind_tag(dataset.kind))?;
    write_u64(&mut w, dataset.scale)?;
    write_u64_slice(&mut w, dataset.graph.offsets())?;
    write_u64_slice(&mut w, dataset.graph.targets())?;
    for &f in &dataset.features {
        w.write_all(&f.to_le_bytes())?;
    }
    for &l in &dataset.labels {
        write_u32(&mut w, l)?;
    }
    for split in [&dataset.train, &dataset.val, &dataset.test] {
        write_u64(&mut w, split.len() as u64)?;
        write_u64_slice(&mut w, split)?;
    }
    w.flush()
}

/// Load a dataset from `path`, validating the header and structural
/// invariants.
pub fn load_dataset(path: impl AsRef<Path>) -> io::Result<SyntheticDataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a WGDS dataset file".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported WGDS version {version}")));
    }
    let num_nodes = read_u64(&mut r)? as usize;
    let num_edges = read_u64(&mut r)? as usize;
    let feature_dim = read_u32(&mut r)? as usize;
    let num_classes = read_u32(&mut r)? as usize;
    let kind = kind_from_tag(read_u32(&mut r)?)?;
    let scale = read_u64(&mut r)?;

    let offsets = read_u64_vec(&mut r, num_nodes + 1)?;
    if offsets.first() != Some(&0) || offsets.last() != Some(&(num_edges as u64)) {
        return Err(bad("corrupt offsets".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("offsets not monotone".into()));
    }
    let targets = read_u64_vec(&mut r, num_edges)?;
    if targets.iter().any(|&t| t as usize >= num_nodes) {
        return Err(bad("edge target out of range".into()));
    }

    let mut features = Vec::with_capacity(num_nodes * feature_dim);
    let mut fb = [0u8; 4];
    for _ in 0..num_nodes * feature_dim {
        r.read_exact(&mut fb)?;
        features.push(f32::from_le_bytes(fb));
    }
    let mut labels = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let l = read_u32(&mut r)?;
        if l as usize >= num_classes {
            return Err(bad(format!("label {l} out of range")));
        }
        labels.push(l);
    }
    let mut splits: Vec<Vec<NodeId>> = Vec::with_capacity(3);
    for _ in 0..3 {
        let len = read_u64(&mut r)? as usize;
        let s = read_u64_vec(&mut r, len)?;
        if s.iter().any(|&v| v as usize >= num_nodes) {
            return Err(bad("split node out of range".into()));
        }
        splits.push(s);
    }
    let test = splits.pop().unwrap();
    let val = splits.pop().unwrap();
    let train = splits.pop().unwrap();

    Ok(SyntheticDataset {
        kind,
        scale,
        graph: Csr::from_parts(offsets, targets),
        features,
        feature_dim,
        labels,
        num_classes,
        train,
        val,
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wgds-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = SyntheticDataset::generate(DatasetKind::OgbnProducts, 3000, 77);
        let path = tmp("roundtrip");
        save_dataset(&d, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.kind, d.kind);
        assert_eq!(back.scale, d.scale);
        assert_eq!(back.graph, d.graph);
        assert_eq!(back.features, d.features);
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.train, d.train);
        assert_eq!(back.val, d.val);
        assert_eq!(back.test, d.test);
        assert_eq!(back.num_classes, d.num_classes);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a dataset").unwrap();
        let err = load_dataset(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("not a WGDS"));
    }

    #[test]
    fn rejects_truncation() {
        let d = SyntheticDataset::generate(DatasetKind::Friendster, 50_000, 1);
        let path = tmp("trunc");
        save_dataset(&d, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_dataset(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_version() {
        let d = SyntheticDataset::generate(DatasetKind::UkDomain, 50_000, 2);
        let path = tmp("version");
        save_dataset(&d, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99; // bump version field
        std::fs::write(&path, &bytes).unwrap();
        let err = load_dataset(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("version"));
    }
}
