//! # wg-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation section
//! (`src/bin/table*.rs`, `src/bin/fig*.rs`) plus criterion
//! microbenchmarks for the core ops (`benches/`). Each binary prints the
//! same rows/series the paper reports, alongside the paper's numbers
//! where applicable, so EXPERIMENTS.md can record paper-vs-measured.
//!
//! Absolute times come from the simulated-machine cost models, so they
//! are *comparable in structure* (who wins, by what factor, where
//! crossovers fall) but not in absolute scale to a physical DGX-A100 —
//! see DESIGN.md.

pub mod json;

use std::sync::Arc;

use wg_graph::DatasetKind;
use wholegraph::prelude::*;

/// Default scale divisors for the performance stand-ins: large enough to
/// run in seconds on a laptop, small enough that sampling does not
/// saturate the whole graph in two hops.
pub fn bench_scale(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::OgbnProducts => 100,    // ~24k nodes
        DatasetKind::OgbnPapers100M => 2000, // ~55k nodes
        DatasetKind::Friendster => 1000,     // ~68k nodes (R-MAT rounds up)
        DatasetKind::UkDomain => 1500,       // ~70k nodes
    }
}

/// Generate the standard benchmark stand-in for a dataset.
pub fn bench_dataset(kind: DatasetKind, seed: u64) -> Arc<SyntheticDataset> {
    Arc::new(SyntheticDataset::generate(kind, bench_scale(kind), seed))
}

/// A paper-shaped pipeline configuration sized for the benchmark
/// stand-ins: the paper's batch size, 3 layers and fanout 30, with a
/// hidden width that keeps real CPU execution tractable (the *simulated*
/// compute time is computed from the configured width, so the reported
/// shape is faithful).
pub fn bench_pipeline_config(fw: Framework, model: ModelKind) -> PipelineConfig {
    PipelineConfig {
        hidden: 256,
        num_layers: 3,
        heads: 4,
        fanouts: vec![30, 30, 30],
        batch_size: 512,
        dropout: 0.5,
        lr: 3e-3,
        ..PipelineConfig::tiny(fw, model)
    }
}

/// Executor mode requested on the regenerator's command line: passing
/// `--overlap` re-runs the experiment under the double-buffered
/// overlapped executor (same numerics, pipelined schedule).
pub fn overlap_mode() -> ExecMode {
    if std::env::args().any(|a| a == "--overlap") {
        ExecMode::Overlapped
    } else {
        ExecMode::Serial
    }
}

/// A *harder* learnable stand-in for the accuracy experiments: noisier
/// features and weaker homophily than the default generator, so accuracy
/// climbs over many epochs and plateaus below 100% (the default SBM is
/// separable enough that curves saturate after two epochs, which makes
/// Figure 7 uninformative).
pub fn hard_accuracy_dataset(kind: DatasetKind, scale: u64, seed: u64) -> Arc<SyntheticDataset> {
    use rand::prelude::*;
    use rand::rngs::SmallRng;
    let (paper_nodes, paper_edges, feature_dim) = kind.paper_stats();
    let n = (paper_nodes / scale).max(1000) as usize;
    let avg_degree = 2.0 * paper_edges as f64 / paper_nodes as f64;
    let num_classes = kind.num_classes();
    let (graph, labels) = wg_graph::gen::sbm(n, num_classes, avg_degree, 0.55, seed);
    let features =
        wg_graph::gen::class_features(&labels, num_classes, feature_dim, 3.0, seed ^ 0xfeed);
    let mut order: Vec<wg_graph::NodeId> = (0..n as u64).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x51137));
    let n_train = (n / 10).max(1);
    let n_eval = (n / 50).max(1);
    Arc::new(SyntheticDataset {
        kind,
        scale,
        graph,
        features,
        feature_dim,
        labels,
        num_classes,
        train: order[..n_train].to_vec(),
        val: order[n_train..n_train + n_eval].to_vec(),
        test: order[n_train + n_eval..n_train + 2 * n_eval].to_vec(),
    })
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        for (w, c) in self.widths.iter_mut().zip(cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let line = |cells: &[String], widths: &[usize]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers, &self.widths);
        let total: usize = self.widths.iter().sum::<usize>() + 2 * self.widths.len();
        println!("  {}", "-".repeat(total));
        for r in &self.rows {
            line(r, &self.widths);
        }
    }
}

/// Format a simulated span in seconds with 4 significant digits (the
/// paper's epoch-time unit).
pub fn secs(t: SimTime) -> String {
    format!("{:.4}", t.as_secs())
}

/// Format a speedup.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Standard experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("(simulated DGX-A100; shapes comparable to the paper, absolute");
    println!(" numbers are simulator outputs — see DESIGN.md/EXPERIMENTS.md)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_and_aligns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["wide-cell".into(), "3".into()]);
        t.print();
        assert_eq!(t.rows.len(), 2);
        assert!(t.widths[0] >= "wide-cell".len());
    }

    #[test]
    fn bench_datasets_are_reasonably_sized() {
        for kind in DatasetKind::ALL {
            let scale = bench_scale(kind);
            let (nodes, _, _) = kind.paper_stats();
            let expect = nodes / scale;
            assert!(expect > 10_000, "{kind:?} stand-in too small");
            assert!(expect < 200_000, "{kind:?} stand-in too large for CI");
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(SimTime::from_secs(1.23456)), "1.2346");
        assert_eq!(speedup(57.321), "57.32x");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
