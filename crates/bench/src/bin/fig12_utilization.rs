//! Figure 12 — GPU utilization over time during training on the
//! ogbn-papers100M stand-in, for PyG, DGL and WholeGraph.
//!
//! Prints an ASCII utilization strip per framework (one char per time
//! bin: '#' ≥ 90%, '+' ≥ 50%, '.' ≥ 10%, ' ' below) plus the aggregate
//! ratio.

use wg_bench::{banner, bench_dataset, bench_pipeline_config, overlap_mode};
use wg_graph::DatasetKind;
use wholegraph::prelude::*;

fn main() {
    let exec = overlap_mode();
    banner("Figure 12", "GPU utilization over time (GPU0 of 8)");
    println!(
        "executor: {} (pass --overlap for the pipelined schedule)",
        exec.name()
    );
    let dataset = bench_dataset(DatasetKind::OgbnPapers100M, 17);
    for fw in [Framework::Pyg, Framework::Dgl, Framework::WholeGraph] {
        let machine = Machine::dgx_a100();
        let cfg = bench_pipeline_config(fw, ModelKind::GraphSage)
            .with_seed(17)
            .with_exec(exec);
        let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
        // A few measured epochs populate the trace wave-by-wave so the
        // strip shows the periodic idle/busy pattern.
        let mut r = pipe.measure_epoch(0, 1);
        for e in 1..4 {
            r = pipe.measure_epoch(e, 1);
        }
        let gpu = wg_sim::DeviceId::Gpu(0);
        let end = pipe.machine().now(gpu);
        let trace = pipe.machine().trace(gpu);
        let series = trace.utilization_series(72);
        let strip: String = series
            .iter()
            .map(|(_, u)| match u {
                u if *u >= 0.9 => '#',
                u if *u >= 0.5 => '+',
                u if *u >= 0.1 => '.',
                _ => ' ',
            })
            .collect();
        let overall = trace.utilization(SimTime::ZERO, end);
        println!(
            "\n{:<11} overall {:>5.1}%  (epoch {})",
            fw.name(),
            overall * 100.0,
            r.epoch_time
        );
        println!("  |{strip}|");
        // Optional CSV artifacts for external plotting.
        if let Ok(dir) = std::env::var("WG_TRACE_CSV") {
            let base = format!("{dir}/fig12_{}", fw.name().to_lowercase());
            std::fs::write(format!("{base}_trace.csv"), trace.to_csv()).expect("write trace csv");
            std::fs::write(format!("{base}_util.csv"), trace.utilization_csv(200))
                .expect("write utilization csv");
            println!("  wrote {base}_trace.csv / _util.csv");
        }
    }
    println!("\nPaper shape: PyG/DGL utilization fluctuates and repeatedly");
    println!("drops to zero while the CPU prepares data; WholeGraph sustains");
    println!(">=95% because sampling and gathering also run on the GPUs.");
}
