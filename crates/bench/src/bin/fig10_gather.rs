//! Figure 10 — gathering-feature performance: NCCL-based (distributed
//! memory, 5 steps) vs ours (distributed *shared* memory, one kernel).
//!
//! For each dataset, real training-shaped gathers are executed both ways
//! (outputs verified identical) and the latency speedup plus BusBW of each
//! method are reported, as in the paper's combined bar/line chart.

use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_bench::{banner, bench_dataset, Table};
use wg_graph::{DatasetKind, MultiGpuGraph};
use wg_mem::gather::global_gather;
use wg_mem::nccl::nccl_gather;
use wg_sim::Machine;

fn main() {
    banner("Figure 10", "gathering features: NCCL-based vs ours");
    let mut t = Table::new(&[
        "dataset",
        "rows",
        "ours (ms)",
        "NCCL (ms)",
        "speedup",
        "ours BusBW",
        "NCCL BusBW",
    ]);
    for kind in DatasetKind::ALL {
        let dataset = bench_dataset(kind, 5);
        let machine = Machine::dgx_a100();
        let store = MultiGpuGraph::build(
            machine.cost(),
            machine.num_gpus(),
            &dataset.graph,
            &dataset.features,
            dataset.feature_dim,
            &machine.memory(),
        )
        .unwrap();
        // A training-shaped gather, sized into the bandwidth-dominated
        // regime the paper measures (its gathers move hundreds of MB; at
        // stand-in scale we draw ~1.6n random rows so fixed per-op
        // overheads stay negligible).
        let n = dataset.num_nodes();
        let mut rng = SmallRng::seed_from_u64(9);
        let rows: Vec<usize> = (0..(8 * n / 5))
            .map(|_| store.feature_row(rng.gen_range(0..n as u64)))
            .collect();
        let width = dataset.feature_dim;
        let spec = machine.spec(wg_sim::DeviceId::Gpu(0));
        let mut a = vec![0.0f32; rows.len() * width];
        let mut b = vec![0.0f32; rows.len() * width];
        let ours = global_gather(store.features(), &rows, &mut a, 0, machine.cost(), spec);
        let nccl = nccl_gather(store.features(), &rows, &mut b, 0, machine.cost(), spec);
        assert_eq!(a, b, "gather implementations disagree");
        t.row(&[
            kind.name().to_string(),
            rows.len().to_string(),
            format!("{:.3}", ours.sim_time.as_millis()),
            format!("{:.3}", nccl.total_time().as_millis()),
            format!("{:.2}x", nccl.total_time() / ours.sim_time),
            format!("{:.0} GB/s", ours.bus_bandwidth() / 1e9),
            format!("{:.0} GB/s", nccl.alltoallv_bus_bandwidth() / 1e9),
        ]);
    }
    t.print();
    println!("\nPaper shape: speedups above 2x on all datasets; both BusBW");
    println!("values close to the measured NVLink limit (~230 GB/s) — the");
    println!("NCCL AlltoAllV itself is fine, the other 4 steps are the cost.");
}
