//! Gatekeeper for `BENCH_wallclock.json` — the one place the pinned
//! bit-exactness checksums and steady-state allocation budgets live.
//! `scripts/tier1.sh` and the CI bench job both call this instead of
//! grepping the JSON apart in shell.
//!
//! ```text
//! check_bench gate <bench.json>
//!     Hard gate: `bit_identical` must be true, every expected bench
//!     present, every checksum equal to the pinned value, every
//!     allocs_per_batch within budget. Exit 1 on any violation.
//!
//! check_bench compare <baseline.json> <current.json> [--warn-pct N] [--fail-pct N]
//!                     [--expect-improvement <bench>]...
//!     Per-bench pool-time (`tn_ms`) drift, current vs baseline. Drift
//!     above --warn-pct (default 25) prints a warning; above --fail-pct
//!     (default: never) exits 1. Wall-clock is noisy on shared runners,
//!     so CI warns rather than fails by default.
//!
//!     --expect-improvement <bench> (repeatable) marks a bench whose time
//!     is *supposed* to step-change downward in this commit (e.g. a SIMD
//!     or blocking optimization): the named bench is exempt from the
//!     drift thresholds, and instead a warning is printed if it did NOT
//!     get faster. Baseline-refresh procedure for such a commit:
//!       1. land the optimization with the old `BENCH_wallclock.json`
//!          still committed;
//!       2. run `cargo run --release -p wg-bench --bin wallclock` on the
//!          reference machine — the harness itself asserts bit-identical
//!          checksums and the allocation budgets;
//!       3. run `check_bench gate BENCH_wallclock.json` (checksums must
//!          be byte-identical; if the commit legitimately moved numerics,
//!          update `EXPECT` below in the same commit);
//!       4. commit the refreshed JSON together with the code, and pass
//!          `--expect-improvement <bench>` in CI until the baseline lands.
//!
//! check_bench multinode <bench.json>
//!     Validate `BENCH_multinode.json`: schema string, executed-N=1
//!     checksum equal to the single-pipeline one, node counts strictly
//!     increasing from 1, positive epoch times, no halo traffic at N=1
//!     (and some at N>1), and a genuine end-to-end speedup.
//!
//! check_bench cache <bench.json>
//!     Validate `BENCH_cache.json` (the feature-cache sweep): every
//!     cached point's loss/accuracy bits equal the uncached baseline's,
//!     bus bytes are conserved (`bus + saved == baseline bus`), static
//!     hit rates grow monotonically with cache size, points with hits
//!     strictly improve epoch time — and on the hot-set stream a static
//!     cache of at most 10% of the rows cuts remote gather rows by at
//!     least half.
//!
//! check_bench storage <bench.json>
//!     Validate `BENCH_storage.json` (the out-of-core residency sweep):
//!     schema string, every point's loss/accuracy bits equal to the
//!     tier-off baseline's, bytes conserved exactly between the DSM and
//!     disk tiers (`storage + dsm == uncached total`), zero disk traffic
//!     at full residency, disk rows monotone as residency shrinks, and
//!     the prefetch-overlapped storage time strictly below the blocking
//!     sum at every point with <= 50% residency.
//!
//! check_bench serving <bench.json>
//!     Validate `BENCH_serving.json` (the serving sweep): schema string,
//!     `bit_identical` true (coalesced == sequential per-request bits),
//!     no shedding on the main legs with every offered request answered,
//!     coalesced QPS at least 2x sequential at equal-or-better exact
//!     p99, a QPS floor (coalesced sustains >= 80% of the offered
//!     rate), a p99 ceiling (<= 4x the coalescing window), a genuine
//!     dedup factor, live histogram quantile estimates, and balanced
//!     shed accounting on the overload leg.
//! ```
//!
//! Exit codes: 0 pass, 1 gate/threshold violation, 2 usage or IO error.

use std::process::exit;

use wg_bench::json::Json;

/// The pinned per-bench contract: (name, FNV-1a checksum, allocation
/// budget per warm batch). The checksums are schedule- and
/// thread-count-invariant by the harness's bit-identical construction,
/// so this gate holds under any `WG_THREADS`. A kernel change that
/// legitimately moves numerics must update the pin here — in the same
/// commit, with the bench rerun.
const EXPECT: [(&str, &str, u64); 4] = [
    ("sample", "f0d397b0ce92dc84", 0),
    ("gather", "2b272988158bae37", 0),
    ("spmm", "9ca0fe519fc2bdf1", 0),
    // The epoch checksum covers loss + train-accuracy bits only (not
    // epoch_time): the feature-cache tier moves simulated time without
    // touching a trained bit, and this pin is the witness. The budget is
    // the measured steady-state figure with warm pools — cache lookups
    // included.
    ("epoch", "2f1ecc574fe94d6a", 9),
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  check_bench gate <bench.json>\n  check_bench compare <baseline.json> \
         <current.json> [--warn-pct N] [--fail-pct N] [--expect-improvement <bench>]...\n  \
         check_bench multinode <bench.json>\n  check_bench cache <bench.json>\n  \
         check_bench storage <bench.json>\n  check_bench serving <bench.json>"
    );
    exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("check_bench: cannot read {path}: {e}");
        exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("check_bench: {path} is not valid JSON: {e}");
        exit(2);
    })
}

/// The `benches` array member named `name`.
fn bench<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    doc.get("benches")?
        .as_array()?
        .iter()
        .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
}

fn gate(path: &str) -> i32 {
    let doc = load(path);
    let mut failures = 0u32;
    let mut fail = |msg: String| {
        eprintln!("GATE FAIL: {msg}");
        failures += 1;
    };
    if doc.get("bit_identical").and_then(Json::as_bool) != Some(true) {
        fail("bit_identical is not true".to_string());
    }
    for (name, want_sum, budget) in EXPECT {
        let Some(b) = bench(&doc, name) else {
            fail(format!("bench '{name}' missing from {path}"));
            continue;
        };
        match b.get("checksum").and_then(Json::as_str) {
            Some(got) if got == want_sum => {}
            got => fail(format!(
                "{name}: checksum {} != pinned {want_sum}",
                got.unwrap_or("<missing>")
            )),
        }
        match b.get("allocs_per_batch").and_then(Json::as_f64) {
            Some(a) if a <= budget as f64 => {}
            Some(a) => fail(format!("{name}: {a} allocs/batch exceeds budget {budget}")),
            None => fail(format!("{name}: allocs_per_batch missing")),
        }
    }
    if failures == 0 {
        println!(
            "check_bench gate: OK ({} benches, checksums pinned, alloc budgets held)",
            EXPECT.len()
        );
        0
    } else {
        eprintln!("check_bench gate: {failures} failure(s) in {path}");
        1
    }
}

/// Validate the executed multi-node sweep artifact.
fn multinode(path: &str) -> i32 {
    let doc = load(path);
    let mut failures = 0u32;
    let mut fail = |msg: String| {
        eprintln!("MULTINODE FAIL: {msg}");
        failures += 1;
    };
    match doc.get("schema").and_then(Json::as_str) {
        Some("wg-multinode-sweep-v1") => {}
        got => fail(format!(
            "schema {} != wg-multinode-sweep-v1",
            got.unwrap_or("<missing>")
        )),
    }
    match doc.get("n1") {
        None => fail("n1 equivalence block missing".to_string()),
        Some(n1) => {
            if n1.get("bit_identical").and_then(Json::as_bool) != Some(true) {
                fail("n1.bit_identical is not true".to_string());
            }
            let sum = n1.get("checksum").and_then(Json::as_str);
            let single = n1.get("single_checksum").and_then(Json::as_str);
            if sum.is_none() || sum != single {
                fail(format!(
                    "executed N=1 checksum {} != single-pipeline {}",
                    sum.unwrap_or("<missing>"),
                    single.unwrap_or("<missing>")
                ));
            }
        }
    }
    let points: Vec<&Json> = doc
        .get("points")
        .and_then(Json::as_array)
        .map(|p| p.iter().collect())
        .unwrap_or_default();
    if points.len() < 2 {
        fail(format!(
            "need at least 2 sweep points, got {}",
            points.len()
        ));
        eprintln!("check_bench multinode: {failures} failure(s) in {path}");
        return 1;
    }
    let field = |p: &Json, key: &str| -> f64 {
        p.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
            eprintln!("check_bench: sweep point missing {key} in {path}");
            exit(2);
        })
    };
    let mut prev_nodes = 0.0;
    for p in &points {
        let nodes = field(p, "nodes");
        if nodes <= prev_nodes {
            fail(format!("node counts not strictly increasing at {nodes}"));
        }
        prev_nodes = nodes;
        if field(p, "epoch_time_s") <= 0.0 {
            fail(format!("non-positive epoch time at {nodes} nodes"));
        }
        let halo = field(p, "halo_bytes");
        if nodes == 1.0 && halo != 0.0 {
            fail(format!("{halo} halo bytes at N=1 (must be exactly zero)"));
        }
        if nodes > 1.0 && halo <= 0.0 {
            fail(format!("no halo traffic at {nodes} nodes"));
        }
    }
    if field(points[0], "nodes") != 1.0 {
        fail("sweep must start at 1 node".to_string());
    }
    if (field(points[0], "speedup") - 1.0).abs() > 1e-9 {
        fail("first point's speedup is not 1.0".to_string());
    }
    let (first, last) = (
        field(points[0], "epoch_time_s"),
        field(points[points.len() - 1], "epoch_time_s"),
    );
    if last >= first {
        fail(format!(
            "no end-to-end speedup: {last}s at max nodes vs {first}s at 1"
        ));
    }
    if failures == 0 {
        println!(
            "check_bench multinode: OK ({} points, N=1 bit-identical, {:.2}x end-to-end)",
            points.len(),
            first / last
        );
        0
    } else {
        eprintln!("check_bench multinode: {failures} failure(s) in {path}");
        1
    }
}

/// Validate the feature-cache sweep artifact.
fn cache(path: &str) -> i32 {
    let doc = load(path);
    let mut failures = 0u32;
    let mut fail = |msg: String| {
        eprintln!("CACHE FAIL: {msg}");
        failures += 1;
    };
    match doc.get("schema").and_then(Json::as_str) {
        Some("wg-cache-sweep-v1") => {}
        got => fail(format!(
            "schema {} != wg-cache-sweep-v1",
            got.unwrap_or("<missing>")
        )),
    }
    let str_field = |p: &Json, key: &str| -> String {
        p.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .unwrap_or_else(|| {
                eprintln!("check_bench: cache point missing {key} in {path}");
                exit(2);
            })
    };
    let num_field = |p: &Json, key: &str| -> f64 {
        p.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
            eprintln!("check_bench: cache point missing {key} in {path}");
            exit(2);
        })
    };
    // Epoch-workload section: numerics pinned to the baseline, bytes
    // conserved, static hit rate monotone in cache size, time improving
    // whenever the cache actually hit.
    let Some(base) = doc.get("baseline") else {
        fail("baseline missing".to_string());
        eprintln!("check_bench cache: {failures} failure(s) in {path}");
        return 1;
    };
    let points: Vec<&Json> = doc
        .get("points")
        .and_then(Json::as_array)
        .map(|p| p.iter().collect())
        .unwrap_or_default();
    if points.len() < 5 {
        fail(format!("need >= 5 epoch points, got {}", points.len()));
    }
    let base_bus = num_field(base, "bus_bytes");
    let mut prev_static_rate = -1.0;
    for p in &points {
        let mode = str_field(p, "mode");
        let rows = num_field(p, "rows");
        if str_field(p, "loss_bits") != str_field(base, "loss_bits") {
            fail(format!("{mode}/{rows}: loss bits differ from baseline"));
        }
        if str_field(p, "accuracy_bits") != str_field(base, "accuracy_bits") {
            fail(format!("{mode}/{rows}: accuracy bits differ from baseline"));
        }
        if mode == "off" {
            continue;
        }
        let conserved = num_field(p, "bus_bytes") + num_field(p, "saved_bus_bytes");
        if conserved != base_bus {
            fail(format!(
                "{mode}/{rows}: bus bytes not conserved ({conserved} != {base_bus})"
            ));
        }
        if mode == "static" {
            let rate = num_field(p, "hit_rate");
            if rate < prev_static_rate {
                fail(format!(
                    "static hit rate not monotone at {rows} rows ({rate} < {prev_static_rate})"
                ));
            }
            prev_static_rate = rate;
        }
        if num_field(p, "hits") > 0.0
            && num_field(p, "epoch_time_s") >= num_field(base, "epoch_time_s")
        {
            fail(format!("{mode}/{rows}: hits but no epoch-time improvement"));
        }
    }
    // Hot-set section: the headline claim. A static cache of <= 10% of
    // the rows must cut remote gather rows by >= 50%, values and bytes
    // accounted for exactly.
    match doc.get("hotset") {
        None => fail("hotset section missing".to_string()),
        Some(hs) => {
            let Some(hbase) = hs.get("baseline") else {
                fail("hotset.baseline missing".to_string());
                eprintln!("check_bench cache: {failures} failure(s) in {path}");
                return 1;
            };
            let hpoints: Vec<&Json> = hs
                .get("points")
                .and_then(Json::as_array)
                .map(|p| p.iter().collect())
                .unwrap_or_default();
            let hbase_bus = num_field(hbase, "bus_bytes");
            let mut headline = false;
            for p in &hpoints {
                let mode = str_field(p, "mode");
                let rows = num_field(p, "rows");
                if str_field(p, "checksum") != str_field(hbase, "checksum") {
                    fail(format!("hotset {mode}/{rows}: gathered values diverged"));
                }
                if mode == "off" {
                    continue;
                }
                let conserved = num_field(p, "bus_bytes") + num_field(p, "saved_bus_bytes");
                if conserved != hbase_bus {
                    fail(format!("hotset {mode}/{rows}: bus bytes not conserved"));
                }
                if mode == "static"
                    && num_field(p, "frac") <= 0.10
                    && num_field(p, "remote_row_reduction") >= 0.50
                {
                    headline = true;
                }
            }
            if !headline {
                fail(
                    "no static hot-set point with frac <= 0.10 cuts remote rows by >= 50%"
                        .to_string(),
                );
            }
        }
    }
    if failures == 0 {
        println!(
            "check_bench cache: OK ({} epoch points; numerics pinned, bytes conserved, >=50% remote-row cut at <=10% cache)",
            points.len()
        );
        0
    } else {
        eprintln!("check_bench cache: {failures} failure(s) in {path}");
        1
    }
}

/// Validate the out-of-core storage sweep artifact.
fn storage(path: &str) -> i32 {
    let doc = load(path);
    let mut failures = 0u32;
    let mut fail = |msg: String| {
        eprintln!("STORAGE FAIL: {msg}");
        failures += 1;
    };
    match doc.get("schema").and_then(Json::as_str) {
        Some("wg-storage-sweep-v1") => {}
        got => fail(format!(
            "schema {} != wg-storage-sweep-v1",
            got.unwrap_or("<missing>")
        )),
    }
    let str_field = |p: &Json, key: &str| -> String {
        p.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .unwrap_or_else(|| {
                eprintln!("check_bench: storage point missing {key} in {path}");
                exit(2);
            })
    };
    let num_field = |p: &Json, key: &str| -> f64 {
        p.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
            eprintln!("check_bench: storage point missing {key} in {path}");
            exit(2);
        })
    };
    let Some(base) = doc.get("baseline") else {
        fail("baseline missing".to_string());
        eprintln!("check_bench storage: {failures} failure(s) in {path}");
        return 1;
    };
    let points: Vec<&Json> = doc
        .get("points")
        .and_then(Json::as_array)
        .map(|p| p.iter().collect())
        .unwrap_or_default();
    if points.len() < 4 {
        fail(format!("need >= 4 sweep points, got {}", points.len()));
    }
    let base_algo = num_field(base, "algo_bytes");
    let mut prev_disk = -1.0;
    let mut full_residency_seen = false;
    let mut overlap_gated = 0u32;
    for p in &points {
        let frac = num_field(p, "frac");
        // Values never move: the disk-served rows round-tripped through
        // the spill file bit-identically.
        if str_field(p, "loss_bits") != str_field(base, "loss_bits") {
            fail(format!("{frac}: loss bits differ from tier-off baseline"));
        }
        if str_field(p, "accuracy_bits") != str_field(base, "accuracy_bits") {
            fail(format!(
                "{frac}: accuracy bits differ from tier-off baseline"
            ));
        }
        // Bytes conserved: every gathered byte came from exactly one of
        // the DSM or the disk tier.
        let split = num_field(p, "storage_bytes") + num_field(p, "dsm_bytes");
        if split != base_algo {
            fail(format!(
                "{frac}: storage + dsm bytes {split} != uncached total {base_algo}"
            ));
        }
        let disk = num_field(p, "storage_rows");
        if disk < prev_disk {
            fail(format!("disk rows not monotone at frac {frac}"));
        }
        prev_disk = disk;
        let (blocking, exposed) = (
            num_field(p, "storage_blocking_s"),
            num_field(p, "storage_exposed_s"),
        );
        if frac >= 1.0 {
            full_residency_seen = true;
            if disk != 0.0 || blocking != 0.0 {
                fail(format!(
                    "full residency still hit disk ({disk} rows, {blocking}s)"
                ));
            }
        }
        // The overlap claim: at <= 50% residency the tier serves real
        // traffic, and the double-buffered prefetch must strictly beat
        // charging every NVMe read as blocking.
        if frac <= 0.50 {
            if disk <= 0.0 || blocking <= 0.0 {
                fail(format!("{frac}: expected disk traffic at <= 50% residency"));
            }
            if exposed >= blocking {
                fail(format!(
                    "{frac}: prefetch-overlapped {exposed}s not strictly below blocking {blocking}s"
                ));
            }
            overlap_gated += 1;
        }
    }
    if !full_residency_seen {
        fail("no full-residency (frac = 1.0) point".to_string());
    }
    if overlap_gated == 0 {
        fail("no point at <= 50% residency to gate the prefetch overlap".to_string());
    }
    if failures == 0 {
        println!(
            "check_bench storage: OK ({} points; numerics pinned, dsm + disk bytes conserved, \
             prefetch overlap holds on {overlap_gated} low-residency points)",
            points.len()
        );
        0
    } else {
        eprintln!("check_bench storage: {failures} failure(s) in {path}");
        1
    }
}

/// Validate the serving sweep artifact.
fn serving(path: &str) -> i32 {
    let doc = load(path);
    let mut failures = 0u32;
    let mut fail = |msg: String| {
        eprintln!("SERVING FAIL: {msg}");
        failures += 1;
    };
    match doc.get("schema").and_then(Json::as_str) {
        Some("wg-serving-v1") => {}
        got => fail(format!(
            "schema {} != wg-serving-v1",
            got.unwrap_or("<missing>")
        )),
    }
    if doc.get("bit_identical").and_then(Json::as_bool) != Some(true) {
        fail("bit_identical is not true (coalesced must equal sequential per-request)".to_string());
    }
    let num = |p: &Json, key: &str| -> f64 {
        p.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
            eprintln!("check_bench: serving block missing {key} in {path}");
            exit(2);
        })
    };
    let (Some(seq), Some(coal)) = (doc.get("sequential"), doc.get("coalesced")) else {
        fail("sequential/coalesced blocks missing".to_string());
        eprintln!("check_bench serving: {failures} failure(s) in {path}");
        return 1;
    };
    // Main legs: open-loop but not overloaded — every offered request
    // answered, none shed, so the two QPS figures cover identical work.
    for (name, leg) in [("sequential", seq), ("coalesced", coal)] {
        if num(leg, "shed") != 0.0 {
            fail(format!(
                "{name}: main leg shed {} requests",
                num(leg, "shed")
            ));
        }
        if num(leg, "admitted") != num(leg, "offered") {
            fail(format!(
                "{name}: admitted {} != offered {}",
                num(leg, "admitted"),
                num(leg, "offered")
            ));
        }
        if num(leg, "hist_p50_us") <= 0.0 || num(leg, "hist_p99_us") <= 0.0 {
            fail(format!("{name}: histogram quantile estimates missing"));
        }
    }
    // The headline: >= 2x sustained QPS at equal-or-better exact p99.
    let (sq, cq) = (num(seq, "qps"), num(coal, "qps"));
    if cq < 2.0 * sq {
        fail(format!("coalesced {cq:.0} qps < 2x sequential {sq:.0} qps"));
    }
    if num(coal, "p99_us") > num(seq, "p99_us") {
        fail(format!(
            "coalesced p99 {}us worse than sequential {}us",
            num(coal, "p99_us"),
            num(seq, "p99_us")
        ));
    }
    // Absolute service-quality bounds: the coalesced engine must sustain
    // most of the offered rate, with tail latency bounded by a small
    // multiple of the coalescing window it deliberately introduces.
    let rate = doc
        .get("traffic")
        .map(|t| num(t, "rate_qps"))
        .unwrap_or_else(|| {
            fail("traffic block missing".to_string());
            f64::INFINITY
        });
    if cq < 0.8 * rate {
        fail(format!(
            "qps floor: coalesced {cq:.0} qps < 80% of offered {rate:.0}"
        ));
    }
    if let Some(c) = doc.get("coalescing") {
        let ceiling = 4.0 * num(c, "max_delay_us");
        if num(coal, "p99_us") > ceiling {
            fail(format!(
                "p99 ceiling: coalesced {}us > {ceiling}us (4x window)",
                num(coal, "p99_us")
            ));
        }
    } else {
        fail("coalescing block missing".to_string());
    }
    if num(coal, "dedup_factor") <= 1.0 {
        fail("coalesced run collapsed no duplicate queries".to_string());
    }
    if num(coal, "batches") >= num(seq, "batches") {
        fail("coalescing did not reduce dispatch count".to_string());
    }
    // Overload leg: shedding happened and the books balance exactly.
    match doc.get("overload") {
        None => fail("overload block missing".to_string()),
        Some(o) => {
            if num(o, "shed") <= 0.0 {
                fail("overload leg shed nothing".to_string());
            }
            if num(o, "admitted") + num(o, "shed") != num(o, "offered") {
                fail(format!(
                    "overload books: {} admitted + {} shed != {} offered",
                    num(o, "admitted"),
                    num(o, "shed"),
                    num(o, "offered")
                ));
            }
        }
    }
    if failures == 0 {
        println!(
            "check_bench serving: OK ({:.2}x qps at {:.2}x p99, bit-identical, shed books balance)",
            cq / sq,
            num(coal, "p99_us") / num(seq, "p99_us")
        );
        0
    } else {
        eprintln!("check_bench serving: {failures} failure(s) in {path}");
        1
    }
}

/// `--flag N` style option, or the default.
fn pct_flag(args: &[String], flag: &str, default: Option<f64>) -> Option<f64> {
    match args.iter().position(|a| a == flag) {
        None => default,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(v) => Some(v),
            None => usage(),
        },
    }
}

/// Every value following a repeatable `--flag <value>` pair.
fn multi_flag<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            match args.get(i + 1) {
                Some(v) => out.push(v.as_str()),
                None => usage(),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn compare(base_path: &str, cur_path: &str, args: &[String]) -> i32 {
    let warn_pct = pct_flag(args, "--warn-pct", Some(25.0));
    let fail_pct = pct_flag(args, "--fail-pct", None);
    let expect_improvement = multi_flag(args, "--expect-improvement");
    for e in &expect_improvement {
        if !EXPECT.iter().any(|(name, _, _)| name == e) {
            eprintln!("check_bench: --expect-improvement names unknown bench '{e}'");
            exit(2);
        }
    }
    let base = load(base_path);
    let cur = load(cur_path);
    let mut worst: f64 = f64::NEG_INFINITY;
    let mut failed = false;
    println!("bench time drift, {cur_path} vs {base_path} (pool-schedule tn_ms):");
    for (name, _, _) in EXPECT {
        let t = |doc: &Json, path: &str| -> f64 {
            bench(doc, name)
                .and_then(|b| b.get("tn_ms"))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| {
                    eprintln!("check_bench: bench '{name}' has no tn_ms in {path}");
                    exit(2);
                })
        };
        let (b, c) = (t(&base, base_path), t(&cur, cur_path));
        let pct = (c - b) / b.max(1e-12) * 100.0;
        let mark = if expect_improvement.contains(&name) {
            // Step-change expected: exempt from the drift thresholds, but
            // flag the opposite surprise — an "optimized" bench that
            // didn't get faster.
            if pct >= 0.0 {
                "  << WARN: expected an improvement"
            } else {
                "  (improvement expected)"
            }
        } else {
            worst = worst.max(pct);
            match (fail_pct, warn_pct) {
                (Some(f), _) if pct > f => {
                    failed = true;
                    "  << FAIL"
                }
                (_, Some(w)) if pct > w => "  << WARN: regression",
                _ => "",
            }
        };
        println!("  {name:>8}: {b:>10.3} ms -> {c:>10.3} ms  ({pct:>+7.1}%){mark}");
    }
    if failed {
        eprintln!(
            "check_bench compare: time regression beyond --fail-pct {}%",
            fail_pct.unwrap_or(f64::INFINITY)
        );
        1
    } else {
        println!(
            "check_bench compare: OK (worst drift {:+.1}%{})",
            if worst.is_finite() { worst } else { 0.0 },
            warn_pct.map_or_else(String::new, |w| format!(", warn threshold {w}%"))
        );
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("gate") => match args.get(1) {
            Some(path) => gate(path),
            None => usage(),
        },
        Some("compare") => match (args.get(1), args.get(2)) {
            (Some(b), Some(c)) => compare(b, c, &args[3..]),
            _ => usage(),
        },
        Some("multinode") => match args.get(1) {
            Some(path) => multinode(path),
            None => usage(),
        },
        Some("cache") => match args.get(1) {
            Some(path) => cache(path),
            None => usage(),
        },
        Some("storage") => match args.get(1) {
            Some(path) => storage(path),
            None => usage(),
        },
        Some("serving") => match args.get(1) {
            Some(path) => serving(path),
            None => usage(),
        },
        _ => usage(),
    };
    exit(code);
}
