//! Table IV — per-GPU memory usage of WholeGraph by phase on
//! ogbn-papers100M.
//!
//! The stand-in runs at 1/2000 scale; the theoretical column is computed
//! at full paper scale with the paper's own arithmetic (3.2 B stored
//! edges × 8 B; 111.1 M nodes × 512 B features), and the measured per-GPU
//! column is scaled back up for comparison.

use wg_bench::{banner, bench_dataset, bench_pipeline_config, bench_scale, Table};
use wg_graph::DatasetKind;
use wholegraph::memstats::{memory_report, register_training_memory, training_bytes_per_gpu};
use wholegraph::prelude::*;

const GIB: f64 = (1u64 << 30) as f64;

fn main() {
    banner("Table IV", "memory usage of WholeGraph for ogbn-papers100M");
    let kind = DatasetKind::OgbnPapers100M;
    let scale = bench_scale(kind);
    let dataset = bench_dataset(kind, 3);
    let machine = Machine::dgx_a100();
    let cfg = bench_pipeline_config(Framework::WholeGraph, ModelKind::GraphSage).with_seed(3);
    let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();

    // One real iteration pins the training-phase shapes.
    let batch: Vec<_> = pipe.epoch_batches(0)[0].clone();
    let it = pipe.run_iteration(0, 0, &batch, true);
    let train_bytes = training_bytes_per_gpu(&pipe.model, &it.shapes, pipe.dataset().feature_dim);
    register_training_memory(pipe.machine(), train_bytes).unwrap();

    let rows = memory_report(pipe.machine());
    let mut t = Table::new(&[
        "phase",
        "measured/GPU (GiB, @paper scale)",
        "paper measured/GPU",
        "theoretical total (GB)",
        "paper theoretical",
    ]);
    // Paper: graph 3.1 GiB/GPU (24 GB total), features 6.7 (53), training 20.4.
    let paper = [
        ("graph structure", 3.1, "24"),
        ("node feature", 6.7, "53"),
        ("training", 20.4, "-"),
    ];
    for (row, (label, paper_per_gpu, paper_total)) in rows.iter().zip(paper) {
        // Structure/features scale with the graph; training state scales
        // with the mini-batch (same at any graph scale) plus parameters.
        let scaled_per_gpu = match label {
            "training" => row.per_gpu_bytes as f64, // batch-shaped, not graph-shaped
            _ => row.per_gpu_bytes as f64 * scale as f64,
        };
        let scaled_total = match label {
            "training" => f64::NAN,
            _ => row.total_bytes as f64 * scale as f64,
        };
        t.row(&[
            label.to_string(),
            format!("{:.1}", scaled_per_gpu / GIB),
            format!("{paper_per_gpu:.1}"),
            if scaled_total.is_nan() {
                "-".to_string()
            } else {
                format!("{:.0}", scaled_total / 1e9)
            },
            paper_total.to_string(),
        ]);
    }
    t.print();
    println!("\n(The training row is mini-batch-shaped, so it reflects the");
    println!("stand-in's smaller frontiers rather than paper scale; structure");
    println!("and feature rows scale linearly with the graph and are rescaled");
    println!("to paper size above, confirming both are spread across all GPUs.)");
}
