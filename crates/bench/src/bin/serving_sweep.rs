//! Serving sweep — the evidence behind the adaptive micro-batching
//! claim. Replays one seeded open-loop Zipf query stream through the
//! serving engine twice — sequential (one request per forward pass) and
//! coalesced (dedup + shared pass per window) — against identically
//! trained pipelines, then verifies the coalesced run answered every
//! request with bit-identical predictions and logits checksums before
//! writing `BENCH_serving.json` (gated by `check_bench serving`).
//!
//! Latencies are reported two ways on purpose: exact order statistics
//! over the per-request completions (what the ≥2x-at-equal-p99 gate
//! compares) and interpolated estimates from the `serve.latency_us`
//! histogram (what a production scrape would see) — keeping the cheap
//! estimator honest against ground truth in the same artifact.
//!
//! A second short leg runs a hard burst into a tiny admission queue to
//! record shed accounting under overload: `admitted + shed == offered`
//! exactly, with `shed > 0`.
//!
//! `--trace <out.json>` re-runs the coalesced leg with span tracing on
//! and writes the Chrome trace (per-batch `serve.batch` spans over the
//! sample/gather/forward children).

use std::sync::Arc;

use wg_bench::{banner, Table};
use wg_graph::{DatasetKind, SyntheticDataset};
use wg_serve::{
    ArrivalProcess, BatchMode, Request, ServeConfig, ServeEngine, ServeReport, TrafficConfig,
};
use wg_trace::metrics::HistogramSnapshot;
use wholegraph::prelude::*;

/// Requests in the main open-loop stream.
const REQUESTS: usize = 2000;
/// Offered rate — hot enough that sequential serving queues.
const RATE_QPS: f64 = 50_000.0;
/// Query-node skew (real serving traffic concentrates on hot entities).
const ZIPF_S: f64 = 1.1;
/// Traffic seed (pipeline seed stays the wallclock harness's 11).
const TRAFFIC_SEED: u64 = 13;
/// Coalescing window: at most this many requests per dispatch...
const MAX_BATCH: usize = 64;
/// ...waiting at most this long (µs) for company.
const MAX_DELAY_US: f64 = 2000.0;

/// The serving pipeline: ogbn-products stand-in at 1/1500, tiny
/// GraphSage warmed by one training epoch, 4 simulated GPUs, cache
/// pinned *off* so the artifact never depends on ambient `WG_CACHE_*`
/// (bit-identity across cache modes is covered by the serve tests).
fn pipeline(dataset: &Arc<SyntheticDataset>) -> Pipeline {
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
        .with_seed(11)
        .with_cache(0, CacheMode::Static);
    let mut p = Pipeline::new(machine, Arc::clone(dataset), cfg).expect("pipeline");
    p.train_epoch(0);
    p
}

/// Run `traffic` through a fresh engine and sort completions by request
/// id (dispatch order differs between modes; identity is per-request).
fn run_mode(dataset: &Arc<SyntheticDataset>, cfg: ServeConfig, traffic: &[Request]) -> ServeReport {
    let mut pipe = pipeline(dataset);
    let mut report = ServeEngine::new(cfg).run(&mut pipe, traffic);
    report.completions.sort_by_key(|c| c.id);
    report
}

/// `serve.latency_us` bucket-count delta between two snapshots, as a
/// standalone histogram the interpolated quantile estimator runs on —
/// the registry is cumulative, so each mode's estimate needs its own
/// window.
fn latency_hist_delta(
    before: &wg_trace::metrics::Snapshot,
    after: &wg_trace::metrics::Snapshot,
) -> Option<HistogramSnapshot> {
    let find = |s: &wg_trace::metrics::Snapshot| {
        s.histograms
            .iter()
            .find(|h| h.name == "serve.latency_us")
            .cloned()
    };
    let a = find(after)?;
    let mut d = a.clone();
    if let Some(b) = find(before) {
        for (i, c) in b.buckets.iter().enumerate() {
            d.buckets[i] -= c;
        }
        d.count -= b.count;
        d.sum -= b.sum;
    }
    (d.count > 0).then_some(d)
}

/// One mode's JSON block.
fn mode_json(name: &str, r: &ServeReport, hist: Option<&HistogramSnapshot>) -> String {
    let us = |t: Option<SimTime>| t.map_or(0.0, |t| t.as_micros());
    format!(
        "  \"{name}\": {{\n    \"offered\": {}, \"admitted\": {}, \"shed\": {}, \
         \"expired\": {},\n    \"batches\": {}, \"batched_rows\": {}, \"unique_rows\": {}, \
         \"dedup_factor\": {:.6},\n    \"qps\": {:.3}, \"makespan_s\": {:.9},\n    \
         \"p50_us\": {:.3}, \"p99_us\": {:.3},\n    \
         \"hist_p50_us\": {:.3}, \"hist_p99_us\": {:.3},\n    \
         \"sample_s\": {:.9}, \"gather_s\": {:.9}, \"compute_s\": {:.9}\n  }}",
        r.offered,
        r.admitted,
        r.shed,
        r.expired,
        r.batches,
        r.batched_rows,
        r.unique_rows,
        r.dedup_factor(),
        r.qps(),
        r.makespan.as_secs(),
        us(r.p50()),
        us(r.p99()),
        hist.and_then(|h| h.p50()).unwrap_or(0.0),
        hist.and_then(|h| h.p99()).unwrap_or(0.0),
        r.sample_time.as_secs(),
        r.gather_time.as_secs(),
        r.compute_time.as_secs(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    banner(
        "serving sweep",
        "sequential vs coalesced micro-batching on open-loop Zipf traffic",
    );
    wg_trace::enable_metrics();
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        1500,
        5,
    ));
    let traffic = TrafficConfig {
        requests: REQUESTS,
        process: ArrivalProcess::Poisson { rate_qps: RATE_QPS },
        zipf_s: ZIPF_S,
        num_nodes: dataset.num_nodes() as u64,
        seed: TRAFFIC_SEED,
        deadline: None,
    }
    .generate();
    println!(
        "workload: {REQUESTS} requests, Poisson {RATE_QPS:.0} qps, Zipf({ZIPF_S}) over {} nodes\n",
        dataset.num_nodes()
    );

    let coalesced_cfg = ServeConfig::coalesced(MAX_BATCH, SimTime::from_micros(MAX_DELAY_US));
    let s0 = wg_trace::metrics::snapshot();
    let seq = run_mode(&dataset, ServeConfig::sequential(), &traffic);
    let s1 = wg_trace::metrics::snapshot();
    let coal = run_mode(&dataset, coalesced_cfg, &traffic);
    let s2 = wg_trace::metrics::snapshot();
    let seq_hist = latency_hist_delta(&s0, &s1);
    let coal_hist = latency_hist_delta(&s1, &s2);

    // The tentpole invariant: coalescing moved time, not values.
    assert_eq!(seq.admitted, coal.admitted);
    let bit_identical =
        seq.completions.iter().zip(&coal.completions).all(|(a, b)| {
            a.id == b.id && a.pred == b.pred && a.logits_checksum == b.logits_checksum
        });
    assert!(bit_identical, "coalesced serving diverged from sequential");

    let mut t = Table::new(&["mode", "batches", "dedup", "qps", "p50", "p99", "shed"]);
    for (name, r) in [("sequential", &seq), ("coalesced", &coal)] {
        t.row(&[
            name.to_string(),
            r.batches.to_string(),
            format!("{:.2}x", r.dedup_factor()),
            format!("{:.0}", r.qps()),
            format!("{}", r.p50().unwrap_or(SimTime::ZERO)),
            format!("{}", r.p99().unwrap_or(SimTime::ZERO)),
            r.shed.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nbit-identical per-request results; coalescing speedup {:.2}x qps at {:.2}x p99",
        coal.qps() / seq.qps(),
        coal.p99().unwrap_or(SimTime::ZERO).as_secs()
            / seq.p99().unwrap_or(SimTime::ZERO).as_secs().max(1e-12),
    );

    // Overload leg: a 50-deep burst train into a 16-deep queue must shed,
    // and the books must balance exactly.
    let burst_traffic = TrafficConfig {
        requests: 400,
        process: ArrivalProcess::Bursty {
            rate_qps: 100_000.0,
            burst: 50,
        },
        zipf_s: ZIPF_S,
        num_nodes: dataset.num_nodes() as u64,
        seed: TRAFFIC_SEED ^ 0xb0,
        deadline: None,
    }
    .generate();
    let overload = run_mode(
        &dataset,
        ServeConfig {
            mode: BatchMode::Coalesced {
                max_batch: 8,
                max_delay: SimTime::from_micros(50.0),
            },
            queue_capacity: 16,
        },
        &burst_traffic,
    );
    assert_eq!(overload.admitted + overload.shed, overload.offered);
    println!(
        "\noverload leg: {} offered, {} admitted, {} shed (books balance)",
        overload.offered, overload.admitted, overload.shed
    );

    if let Some(path) = &trace_path {
        // A traced coalesced replay: per-batch serve.batch spans with
        // sample/gather/forward children on the simulated timeline.
        wg_trace::enable_all();
        let machine = Machine::new(MachineConfig::dgx_like(4));
        let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
            .with_seed(11)
            .with_cache(0, CacheMode::Static);
        let mut pipe = Pipeline::new(machine, Arc::clone(&dataset), cfg).expect("traced pipeline");
        pipe.train_epoch(0);
        ServeEngine::new(coalesced_cfg).run(&mut pipe, &traffic);
        wg_trace::disable_all();
        wg_trace::enable_metrics();
        wholegraph::observability::write_chrome_trace(path, pipe.machine())
            .expect("write serving trace");
        println!("serving chrome trace written to {path}");
    }

    let json = format!(
        "{{\n  \"schema\": \"wg-serving-v1\",\n  \"dataset\": \"ogbn-products\",\n  \
         \"scale\": 1500,\n  \"pipeline_seed\": 11,\n  \"traffic\": {{\n    \
         \"requests\": {REQUESTS}, \"rate_qps\": {RATE_QPS}, \"zipf_s\": {ZIPF_S}, \
         \"seed\": {TRAFFIC_SEED}\n  }},\n  \"coalescing\": {{\n    \
         \"max_batch\": {MAX_BATCH}, \"max_delay_us\": {MAX_DELAY_US}, \
         \"queue_capacity\": 4096\n  }},\n  \"bit_identical\": {bit_identical},\n  \
         \"qps_speedup\": {:.6},\n{},\n{},\n  \"overload\": {{\n    \
         \"offered\": {}, \"admitted\": {}, \"shed\": {}, \"queue_capacity\": 16\n  }}\n}}\n",
        coal.qps() / seq.qps(),
        mode_json("sequential", &seq, seq_hist.as_ref()),
        mode_json("coalesced", &coal, coal_hist.as_ref()),
        overload.offered,
        overload.admitted,
        overload.shed,
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("Wrote BENCH_serving.json");
}
