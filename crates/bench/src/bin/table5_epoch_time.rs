//! Table V — average epoch time and speedups of PyG, DGL and WholeGraph
//! for GCN / GraphSage / GAT on all four datasets.
//!
//! For every (dataset, model, framework) combination, one iteration is
//! executed for real on the scaled stand-in and the epoch is extrapolated
//! wave-by-wave (iterations are statistically identical). The paper's
//! speedup columns are printed alongside for comparison.

use wg_bench::{banner, bench_dataset, bench_pipeline_config, overlap_mode, secs, speedup, Table};
use wg_graph::DatasetKind;
use wholegraph::prelude::*;

/// Paper Table V speedups (ours-vs-PyG, ours-vs-DGL) per (dataset, model).
fn paper_speedups(kind: DatasetKind, model: ModelKind) -> (f64, f64) {
    use DatasetKind::*;
    use ModelKind::*;
    match (kind, model) {
        (OgbnProducts, Gcn) => (242.98, 28.01),
        (OgbnProducts, GraphSage) => (231.27, 31.11),
        (OgbnProducts, Gat) => (75.25, 8.91),
        (OgbnPapers100M, Gcn) => (62.91, 38.65),
        (OgbnPapers100M, GraphSage) => (52.48, 45.61),
        (OgbnPapers100M, Gat) => (16.69, 11.12),
        (Friendster, Gcn) => (102.79, 57.16),
        (Friendster, GraphSage) => (89.57, 57.32),
        (Friendster, Gat) => (22.43, 12.05),
        (UkDomain, Gcn) => (44.26, 27.83),
        (UkDomain, GraphSage) => (42.35, 14.17),
        (UkDomain, Gat) => (14.17, 7.84),
        // Models beyond the paper's evaluation have no reference numbers.
        _ => (f64::NAN, f64::NAN),
    }
}

fn main() {
    let exec = overlap_mode();
    banner(
        "Table V",
        "average epoch time and speedups (3 models x 4 datasets)",
    );
    println!(
        "executor: {} (pass --overlap for the pipelined schedule)",
        exec.name()
    );
    let mut t = Table::new(&[
        "dataset",
        "model",
        "PyG (s)",
        "DGL (s)",
        "Ours (s)",
        "vs PyG",
        "vs DGL",
        "paper vsPyG",
        "paper vsDGL",
    ]);
    let mut min_pyg = f64::INFINITY;
    let mut max_pyg = 0.0f64;
    let mut min_dgl = f64::INFINITY;
    let mut max_dgl = 0.0f64;

    for kind in DatasetKind::ALL {
        let dataset = bench_dataset(kind, 77);
        for model in ModelKind::ALL {
            let mut times = Vec::new();
            for fw in [Framework::Pyg, Framework::Dgl, Framework::WholeGraph] {
                let machine = Machine::dgx_a100();
                let cfg = bench_pipeline_config(fw, model)
                    .with_seed(77)
                    .with_exec(exec);
                let mut pipe = Pipeline::new(machine, dataset.clone(), cfg)
                    .expect("stand-in fits in simulated GPU memory");
                let r = pipe.measure_epoch(0, 1);
                times.push(r.epoch_time);
            }
            let (pyg, dgl, ours) = (times[0], times[1], times[2]);
            let s_pyg = pyg / ours;
            let s_dgl = dgl / ours;
            min_pyg = min_pyg.min(s_pyg);
            max_pyg = max_pyg.max(s_pyg);
            min_dgl = min_dgl.min(s_dgl);
            max_dgl = max_dgl.max(s_dgl);
            let (pp, pd) = paper_speedups(kind, model);
            t.row(&[
                kind.name().to_string(),
                model.name().to_string(),
                secs(pyg),
                secs(dgl),
                secs(ours),
                speedup(s_pyg),
                speedup(s_dgl),
                speedup(pp),
                speedup(pd),
            ]);
        }
    }
    t.print();
    println!("\nmeasured speedup ranges: vs PyG {min_pyg:.1}x..{max_pyg:.1}x, vs DGL {min_dgl:.1}x..{max_dgl:.1}x");
    println!("paper ranges:            vs PyG 14.2x..243.0x,  vs DGL 7.8x..57.3x");
    println!("Shape checks: WholeGraph always fastest; GAT speedups smallest");
    println!("(compute-heavier training dilutes the input-pipeline win).");
}
